//! Umbrella crate for the DPhyp reproduction: re-exports the workspace crates so that the
//! examples and cross-crate integration tests have a single, convenient dependency.
//!
//! Library users should depend on the individual crates (`dphyp`, `qo-hypergraph`,
//! `qo-catalog`, …) directly; this crate only exists to host `examples/` and `tests/`.

pub use dphyp;
pub use qo_algebra as algebra;
pub use qo_baselines as baselines;
pub use qo_bitset as bitset;
pub use qo_catalog as catalog;
pub use qo_exec as exec;
pub use qo_hypergraph as hypergraph;
pub use qo_ingest as ingest;
pub use qo_plan as plan;
pub use qo_workloads as workloads;
