//! Incremental re-optimization: re-cost a cached [`DpTable`] under drifted statistics.
//!
//! A plan cache stores, per query fingerprint, the compact plan-table of a finished
//! optimization ([`DpTable::from_plan`] — the `2n − 1` plan classes of the winning tree, not
//! the full enumeration memo). When the same query shape arrives with new statistics, the
//! cheap path is not to re-enumerate csg-cmp-pairs but to walk the memoized classes bottom-up
//! and recompute cardinalities and costs through the same `JoinCombiner` the enumeration
//! used ([`qo_catalog::recost_table`]). The result is bit-identical to what a from-scratch
//! optimization computes *for the same join order* — whether that order is still the winning
//! one is a separate question, answered here by a greedy probe: [`recost_spec`] also runs GOO
//! under the new statistics, and the caller compares the two costs against its staleness
//! tolerance to decide between serving the re-costed plan and re-optimizing in full.
//!
//! Everything is width-erased behind [`CachedTable`] so a cache can hold single-word and
//! two-word queries side by side; [`recost_spec`] dispatches the width exactly like the other
//! spec entry points.

use crate::adaptive::AdaptiveOptions;
use crate::optimizer::{CostModelKind, OptimizeError};
use crate::query::{with_width_dispatch, QuerySpec};
use qo_baselines::goo;
use qo_catalog::{recost_table, Catalog, CostModel, CoutCost, DpTable, MixedCost};
use qo_hypergraph::Hypergraph;
use qo_plan::PlanNode;

/// A width-erased plan table, the persisted form of one optimized query.
///
/// The width is committed when the table is built (it follows the query's relation count
/// through the same ladder as every spec entry point) and checked again on reuse.
#[derive(Clone, Debug)]
pub enum CachedTable {
    /// Single-word tier: queries of up to 64 relations.
    Narrow(DpTable<1>),
    /// Two-word tier: queries of up to 128 relations.
    Wide(DpTable<2>),
}

impl CachedTable {
    /// Builds the compact plan-table of a finished optimization at the width matching
    /// `node_count` (the plan's query size, not its scan count — trust the spec).
    pub fn from_plan(plan: &PlanNode, node_count: usize) -> Result<CachedTable, OptimizeError> {
        if node_count <= qo_bitset::NodeSet64::CAPACITY {
            Ok(CachedTable::Narrow(DpTable::from_plan(plan)))
        } else if node_count <= qo_bitset::NodeSet128::CAPACITY {
            Ok(CachedTable::Wide(DpTable::from_plan(plan)))
        } else {
            Err(OptimizeError::TooManyRelations {
                count: node_count,
                max: crate::query::MAX_WIDE_NODES,
            })
        }
    }

    /// Number of memoized plan classes.
    pub fn len(&self) -> usize {
        match self {
            CachedTable::Narrow(t) => t.len(),
            CachedTable::Wide(t) => t.len(),
        }
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The outcome of one incremental re-cost: the cached join order under new statistics, plus
/// the greedy probe the caller uses to judge staleness.
#[derive(Clone, Debug)]
pub struct Recosted {
    /// The cached join order, re-costed (still in the id space the table was built in).
    pub plan: PlanNode,
    /// Cost of that order under the new statistics — bit-identical to a from-scratch
    /// optimization that picks the same order.
    pub cost: f64,
    /// Estimated output cardinality under the new statistics.
    pub cardinality: f64,
    /// Cost of a fresh greedy (GOO) plan under the new statistics. A re-costed order that a
    /// mere greedy ordering beats has demonstrably gone stale.
    pub greedy_cost: f64,
    /// The re-costed table, ready to replace the cache entry if the caller accepts the plan.
    pub table: CachedTable,
}

/// Re-costs a cached table against `spec`'s statistics, without enumerating a single
/// csg-cmp-pair, and runs the greedy staleness probe.
///
/// Returns `Ok(None)` when the table cannot be re-costed against this spec — width mismatch,
/// structural mismatch (a stored join no longer connected), or no greedy plan. Callers treat
/// `None` as a cache miss and fall back to a full optimization; it cannot happen when the spec
/// has the same shape the table was built for.
pub fn recost_spec(
    spec: &QuerySpec,
    table: &CachedTable,
    options: &AdaptiveOptions,
) -> Result<Option<Recosted>, OptimizeError> {
    let _span = qo_obsv::Span::enter("recost");
    let cost_model = options.cost_model;
    with_width_dispatch(
        spec,
        |graph, catalog| match table {
            CachedTable::Narrow(t) => recost_width(t, graph, catalog, cost_model)
                .map(|(parts, t)| parts.with_table(CachedTable::Narrow(t))),
            CachedTable::Wide(_) => None,
        },
        |graph, catalog| match table {
            CachedTable::Wide(t) => recost_width(t, graph, catalog, cost_model)
                .map(|(parts, t)| parts.with_table(CachedTable::Wide(t))),
            CachedTable::Narrow(_) => None,
        },
    )
}

/// A [`Recosted`] before the width of its table is re-erased; the table travels separately.
struct RecostedParts {
    plan: PlanNode,
    cost: f64,
    cardinality: f64,
    greedy_cost: f64,
}

impl RecostedParts {
    fn with_table(self, table: CachedTable) -> Recosted {
        Recosted {
            plan: self.plan,
            cost: self.cost,
            cardinality: self.cardinality,
            greedy_cost: self.greedy_cost,
            table,
        }
    }
}

fn recost_width<const W: usize>(
    table: &DpTable<W>,
    graph: &Hypergraph<W>,
    catalog: &Catalog<W>,
    cost_model: CostModelKind,
) -> Option<(RecostedParts, DpTable<W>)> {
    match cost_model {
        CostModelKind::Cout => recost_with_model(table, graph, catalog, &CoutCost),
        CostModelKind::Mixed => recost_with_model(table, graph, catalog, &MixedCost),
    }
}

fn recost_with_model<M: CostModel<W>, const W: usize>(
    table: &DpTable<W>,
    graph: &Hypergraph<W>,
    catalog: &Catalog<W>,
    cost_model: &M,
) -> Option<(RecostedParts, DpTable<W>)> {
    let recosted = recost_table(table, graph, catalog, cost_model)?;
    let all = graph.all_nodes();
    let class = *recosted.get(all)?;
    let plan = recosted.reconstruct(all)?;
    let greedy = goo(graph, catalog, cost_model).ok()?;
    Some((
        RecostedParts {
            plan,
            cost: class.cost,
            cardinality: class.cardinality,
            greedy_cost: greedy.cost,
        },
        recosted,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::optimize_adaptive;

    fn chain_spec_with(n: usize, scale: f64) -> QuerySpec {
        let mut b = QuerySpec::builder(n);
        for i in 0..n {
            b.set_cardinality(i, scale * (100.0 + i as f64));
        }
        for i in 0..n - 1 {
            b.add_simple_edge(i, i + 1, 0.01);
        }
        b.build()
    }

    #[test]
    fn recost_under_identical_stats_reproduces_the_cached_plan() {
        let spec = chain_spec_with(10, 1.0);
        let result = optimize_adaptive(&spec).unwrap();
        let table = CachedTable::from_plan(&result.plan, spec.node_count()).unwrap();
        assert_eq!(table.len(), 2 * 10 - 1);
        let r = recost_spec(&spec, &table, &AdaptiveOptions::default())
            .unwrap()
            .expect("same shape re-costs");
        assert_eq!(r.cost, result.cost, "bit-identical under unchanged stats");
        assert_eq!(r.cardinality, result.cardinality);
        assert_eq!(r.plan, result.plan);
        assert!(r.greedy_cost >= r.cost, "greedy cannot beat the optimum");
    }

    #[test]
    fn recost_tracks_drifted_statistics_bit_identically_for_a_stable_order() {
        let spec = chain_spec_with(10, 1.0);
        let cold = optimize_adaptive(&spec).unwrap();
        let table = CachedTable::from_plan(&cold.plan, spec.node_count()).unwrap();
        // A tiny drift (0.1% growth) that leaves the optimal join order in place.
        let drifted = chain_spec_with(10, 1.001);
        let r = recost_spec(&drifted, &table, &AdaptiveOptions::default())
            .unwrap()
            .expect("same shape");
        let fresh = optimize_adaptive(&drifted).unwrap();
        assert_eq!(fresh.plan, r.plan, "a 0.1% drift keeps the join order");
        assert_eq!(r.cost, fresh.cost, "bit-identical to from-scratch");
        assert_ne!(r.cost, cold.cost, "but not to the stale costs");
    }

    #[test]
    fn heavy_drift_surfaces_in_the_greedy_probe() {
        // Build a star whose cached order hinges on R1 being tiny, then invert the statistics:
        // the re-costed stale order must not beat the greedy probe by much — the probe is what
        // lets a cache detect that the cached order has gone stale.
        let star = |hub: f64, sat1: f64| {
            let mut b = QuerySpec::builder(6);
            b.set_cardinality(0, hub);
            b.set_cardinality(1, sat1);
            for i in 2..6 {
                b.set_cardinality(i, 1_000.0);
            }
            for i in 1..6 {
                b.add_simple_edge(0, i, 0.001);
            }
            b.build()
        };
        let cold = optimize_adaptive(&star(1_000_000.0, 2.0)).unwrap();
        let table = CachedTable::from_plan(&cold.plan, 6).unwrap();
        let drifted = star(1_000_000.0, 5_000_000.0);
        let r = recost_spec(&drifted, &table, &AdaptiveOptions::default())
            .unwrap()
            .expect("same shape");
        let fresh = optimize_adaptive(&drifted).unwrap();
        // The stale order is strictly worse than a fresh optimization under the new stats.
        assert!(r.cost > fresh.cost, "{} vs {}", r.cost, fresh.cost);
        // And the greedy probe exposes it: a caller comparing r.cost against r.greedy_cost
        // with any reasonable tolerance re-optimizes.
        assert!(r.greedy_cost.is_finite() && r.greedy_cost > 0.0);
        assert!(r.cost > r.greedy_cost, "stale order loses even to greedy");
    }

    #[test]
    fn width_mismatch_and_wide_tables_are_handled() {
        let narrow = chain_spec_with(10, 1.0);
        let wide = chain_spec_with(80, 1.0);
        let wide_result = optimize_adaptive(&wide).unwrap();
        let wide_table = CachedTable::from_plan(&wide_result.plan, 80).unwrap();
        assert!(matches!(wide_table, CachedTable::Wide(_)));
        assert!(!wide_table.is_empty());
        // A wide table against a narrow spec is a clean miss, not a panic.
        assert!(
            recost_spec(&narrow, &wide_table, &AdaptiveOptions::default())
                .unwrap()
                .is_none()
        );
        // Re-costing on the two-word tier works end to end.
        let r = recost_spec(&wide, &wide_table, &AdaptiveOptions::default())
            .unwrap()
            .expect("wide recost");
        assert_eq!(r.cost, wide_result.cost);
        // Oversized plans are rejected at table-build time.
        assert!(matches!(
            CachedTable::from_plan(&wide_result.plan, 300),
            Err(OptimizeError::TooManyRelations { .. })
        ));
    }
}
