//! The adaptive optimization driver: budgeted exact DPhyp with tiered fallbacks.
//!
//! Exact DP enumerates one csg-cmp-pair per cost-function call, so the pair count *is* the
//! optimization time — and it explodes on dense query shapes (a star with `n` relations has
//! `(n−1)·2^(n−2)` pairs, ≈ `10^30` at `n = 96`). A production planner cannot hand such queries
//! back to the caller; it must degrade gracefully. The driver runs three tiers:
//!
//! 1. **Exact** — DPhyp under a csg-cmp-pair budget and an optional wall-clock budget
//!    ([`AdaptiveOptions::time_budget`]). Both are enforced *inside* the enumeration: the
//!    [`qo_catalog::BudgetedHandler`] answers [`Abort`](qo_catalog::EmitSignal::Abort) from
//!    `EmitCsgCmp` once either budget is spent and [`DpHyp`] unwinds immediately, so an
//!    over-budget query costs at most `budget` pair emissions (or the configured wall time),
//!    never the full (possibly astronomical) enumeration. A spent *time* budget additionally
//!    skips the IDP tier and drops straight to greedy ordering.
//! 2. **IDP** — [`qo_baselines::idp`], iterative dynamic programming with block size `k`. The
//!    driver shrinks `k` until one block round's worst case (`3^k` subset-splits) fits the same
//!    budget, so a *round* never exceeds it; total fallback work is `rounds × 3^k` (at most
//!    `⌈n/(k−1)⌉` rounds), i.e. a small multiple of the budget rather than a hard cap —
//!    [`BudgetTelemetry::fallback_cost_calls`] reports what was actually spent.
//! 3. **Greedy** — [`qo_baselines::goo`] as the last resort when even a 2-block DP would not
//!    fit (budget < 9) or IDP could not complete a plan.
//!
//! [`OptimizeResult`] reports which tier produced the plan and the budget telemetry (pairs
//! spent in the exact tier, whether it aborted, the effective `k`). Width dispatch works like
//! [`Optimizer::optimize_spec`](crate::Optimizer::optimize_spec): hand the driver a
//! width-agnostic [`QuerySpec`] and it instantiates the narrowest sufficient node-set width.
//!
//! ```
//! use dphyp::{optimize_adaptive, AdaptiveOptimizer, AdaptiveOptions, PlanTier, QuerySpec};
//!
//! // A 40-relation star: 39·2^38 ≈ 10^13 csg-cmp-pairs — hopeless for exact enumeration.
//! let mut b = QuerySpec::builder(40);
//! for i in 1..40 {
//!     b.add_simple_edge(0, i, 0.01);
//! }
//! let star = b.build();
//! let driver = AdaptiveOptimizer::new(AdaptiveOptions {
//!     ccp_budget: 50_000, // the default is 1M; a small budget keeps the example fast
//!     ..Default::default()
//! });
//! let result = driver.optimize_spec(&star).unwrap();
//! assert_ne!(result.tier, PlanTier::Exact); // the driver fell back automatically …
//! assert_eq!(result.plan.scan_count(), 40); // … and still produced a complete plan.
//! assert!(result.telemetry.exact_aborted);
//!
//! // Queries whose pair count fits the budget stay exact — bit-identical to plain DPhyp.
//! let mut b = QuerySpec::builder(20);
//! for i in 0..19 {
//!     b.add_simple_edge(i, i + 1, 0.01);
//! }
//! let chain = b.build();
//! let result = optimize_adaptive(&chain).unwrap();
//! assert_eq!(result.tier, PlanTier::Exact);
//! assert_eq!(result.telemetry.exact_ccps, (20 * 20 * 20 - 20) / 6);
//! ```

use crate::enumerate::DpHyp;
use crate::optimizer::{CostModelKind, OptimizeError};
use crate::parallel::{optimize_parallel_exact, ParallelExact};
use crate::query::QuerySpec;
use qo_baselines::{
    goo, idp_with_strategy, BaselineError, BaselineResult, IdpStrategy, MAX_IDP_BLOCK_SIZE,
};
use qo_catalog::DpTable;
use qo_catalog::{
    BudgetedHandler, Catalog, CcpHandler, CostBasedHandler, CostModel, CoutCost, JoinCombiner,
    MixedCost, PruneCounters,
};
use qo_hypergraph::Hypergraph;
use qo_obsv::{RecordingSink, Span, Trace};
use qo_plan::PlanNode;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Options of the [`AdaptiveOptimizer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptiveOptions {
    /// Maximum csg-cmp-pairs the exact tier may process before the enumeration is aborted and
    /// the driver falls back. A budget exactly equal to a query's true pair count still
    /// completes exactly (the abort fires strictly *beyond* the budget).
    pub ccp_budget: usize,
    /// Upper bound on the IDP block size `k`; the effective `k` additionally shrinks until one
    /// block round (`3^k` splits) fits `ccp_budget`. Must be ≤ [`MAX_IDP_BLOCK_SIZE`].
    pub idp_block_size: usize,
    /// Optional wall-clock budget for the whole optimization. The exact tier polls the
    /// deadline from inside `EmitCsgCmp` (every
    /// [`BudgetedHandler::DEADLINE_CHECK_INTERVAL`] pairs) and aborts when it has passed; a
    /// deadline that expires during the exact tier also skips IDP and goes straight to greedy
    /// ordering, so a tiny time budget still yields a valid plan in (approximately) that time.
    /// `None` — the default — budgets pairs only.
    pub time_budget: Option<Duration>,
    /// Cost model shared by all tiers.
    pub cost_model: CostModelKind,
    /// How the IDP tier selects each round's blocks: smallest-cardinality-first (the default)
    /// or the connectivity-aware [`IdpStrategy::ConnectedSmallest`], which prefers selections
    /// forming densely connected subgraphs and tie-breaks by cardinality. On uniformly
    /// connected shapes (stars, chains) the two are identical by construction.
    pub idp_strategy: IdpStrategy,
    /// Intra-query parallelism of the exact tier. `None` (the default) and `Some(1)` run the
    /// classic sequential enumeration; `Some(0)` uses one worker per available core
    /// ([`std::thread::available_parallelism`]); `Some(k ≥ 2)` uses exactly `k` workers.
    /// The produced plan — cost, cardinality, join order — is bit-identical at every setting
    /// (see the `parallel` module docs for the argument), as are the pair-budget semantics:
    /// the csg-cmp-pair budget is spent in the serial structure pass. The fallback tiers are
    /// unaffected by this knob.
    pub parallelism: Option<usize>,
    /// Cost-bounded branch-and-bound pruning of the exact tier. When enabled, the driver first
    /// seeds an upper bound from the cheap heuristics (GOO, plus a small-block IDP on larger
    /// queries) and then skips *costing and registering* any plan class whose accumulated cost
    /// already exceeds the best known complete plan — safe because the built-in cost models are
    /// monotone and non-negative ([`CostModel::supports_pruning`]); models that are not opt out
    /// and silently disable pruning. The optimal plan, its cost, its join order, the emitted
    /// csg-cmp-pair sequence and therefore the budget/tier decisions are all unchanged — only
    /// cost-function evaluations and DP-table insertions are saved
    /// ([`BudgetTelemetry::pruned_pairs`] / [`BudgetTelemetry::pruned_classes`]). Defaults to
    /// `false`.
    pub pruning: bool,
    /// Structured tracing of this optimization. When enabled, the driver installs a
    /// [`RecordingSink`] for the duration of the run (shadowing any ambient
    /// [`qo_obsv::ObsvSink`] on this thread) and attaches the harvested per-phase
    /// [`Trace`] to [`OptimizeResult::trace`]. The produced plan, cost, tier and budget
    /// telemetry are bit-identical with tracing on or off — only wall times are observed —
    /// and plan caches deliberately ignore this knob when keying entries. Defaults to
    /// `false`, in which case the instrumentation points reduce to a thread-local check.
    pub trace: bool,
    /// Per-query override of the serving layer's always-on trace sampling rate: trace one
    /// in this many serves of this query (`Some(0)` disables sampling for it entirely).
    /// Surfaced in `.jg` as `option sample_rate = N`. The driver itself ignores the knob —
    /// sampling is a property of *serving*, not of one optimization — and like `trace` it
    /// never affects the produced plan, so plan caches exclude it from their options key.
    /// `None` (the default) defers to the service's configured rate.
    pub sample_rate: Option<u64>,
}

impl Default for AdaptiveOptions {
    /// One million pairs (≈ 100 ms of enumeration on current hardware — chain/cycle queries of
    /// 100+ relations stay exact, 20+-relation stars fall back), blocks of up to 10, and no
    /// wall-clock budget.
    fn default() -> Self {
        AdaptiveOptions {
            ccp_budget: 1_000_000,
            idp_block_size: 10,
            time_budget: None,
            cost_model: CostModelKind::Cout,
            idp_strategy: IdpStrategy::default(),
            parallelism: None,
            pruning: false,
            trace: false,
            sample_rate: None,
        }
    }
}

/// Which tier of the adaptive driver produced the final plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanTier {
    /// Exact DPhyp completed within the budget; the plan is optimal.
    Exact,
    /// Iterative dynamic programming (IDP-k): optimal within each block, greedy across blocks.
    Idp,
    /// Greedy operator ordering: valid, no optimality guarantee.
    Greedy,
}

impl fmt::Display for PlanTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlanTier::Exact => "exact",
            PlanTier::Idp => "idp",
            PlanTier::Greedy => "greedy",
        })
    }
}

/// Budget telemetry of one adaptive optimization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BudgetTelemetry {
    /// The configured csg-cmp-pair budget.
    pub ccp_budget: usize,
    /// Pairs the exact tier processed before completing or aborting (≤ `ccp_budget`).
    pub exact_ccps: usize,
    /// Did the exact tier hit the budget and abort?
    pub exact_aborted: bool,
    /// Did the exact tier abort because the wall-clock budget (rather than the pair budget)
    /// ran out? Implies `exact_aborted`; always `false` without a configured time budget.
    pub exact_time_exceeded: bool,
    /// Effective IDP block size, shrunk to fit the budget (`0` when the IDP tier did not run).
    pub idp_k: usize,
    /// Cost-function calls made by the fallback tier (`0` in the exact tier).
    pub fallback_cost_calls: usize,
    /// Csg-cmp-pairs whose cost evaluation the branch-and-bound upper bound skipped (at least
    /// one input class was pruned). All zero unless [`AdaptiveOptions::pruning`] is on.
    pub pruned_pairs: usize,
    /// Candidate plan classes discarded because their accumulated cost exceeded the bound.
    pub pruned_classes: usize,
    /// How often a completed full plan tightened the upper bound below the heuristic seed.
    pub bound_updates: usize,
    /// Wall time spent seeding the branch-and-bound upper bound (GOO plus, on 8+-relation
    /// queries, a small-block IDP) before the exact tier started. [`Duration::ZERO`] when
    /// pruning is off or the cost model opts out — the heuristics then never ran. Pruning
    /// speedup claims must charge this time to the pruned configuration: the seed run is
    /// part of its end-to-end cost.
    pub seed_bound_time: Duration,
}

impl BudgetTelemetry {
    fn record_prune(&mut self, c: PruneCounters) {
        self.pruned_pairs = c.pruned_pairs;
        self.pruned_classes = c.pruned_classes;
        self.bound_updates = c.bound_updates;
    }
}

/// Telemetry of one multi-threaded exact enumeration: how evenly the cost pass's work spread
/// over the workers.
#[derive(Clone, Debug, PartialEq)]
pub struct ParallelTelemetry {
    /// Worker threads of the cost pass.
    pub threads: usize,
    /// Csg-cmp-pairs costed by each worker, *after* work-stealing moved chunks between them
    /// (summing to the evaluated-pair count — the feasible pairs minus any pruned ones).
    pub per_thread_pairs: Vec<usize>,
    /// Post-steal load balance in `(0, 1]`: total pairs over `threads ×` the busiest worker's
    /// pairs. `1.0` means the stealing spread the cost pass perfectly evenly; low values mean
    /// one worker still dominated (e.g. a single enormous shard chunk).
    pub efficiency: f64,
    /// Cost-pass chunks claimed by a worker other than the shard's install owner — how much
    /// work the stealing actually moved. `0` means static ownership was already balanced.
    pub stolen_chunks: usize,
}

impl ParallelTelemetry {
    fn new(threads: usize, per_thread_pairs: Vec<usize>, stolen_chunks: usize) -> Self {
        let total: usize = per_thread_pairs.iter().sum();
        let max = per_thread_pairs.iter().copied().max().unwrap_or(0);
        let efficiency = if max == 0 {
            1.0
        } else {
            total as f64 / (threads as f64 * max as f64)
        };
        ParallelTelemetry {
            threads,
            per_thread_pairs,
            efficiency,
            stolen_chunks,
        }
    }
}

/// The result of an adaptive optimization: the plan, which tier produced it, and the budget
/// telemetry.
#[derive(Clone, Debug)]
pub struct OptimizeResult {
    /// The best plan the winning tier found.
    pub plan: PlanNode,
    /// Its cost under the configured cost model.
    pub cost: f64,
    /// Its estimated output cardinality.
    pub cardinality: f64,
    /// The tier that produced the plan.
    pub tier: PlanTier,
    /// How the budget was spent.
    pub telemetry: BudgetTelemetry,
    /// DP-table entries materialized by the winning tier.
    pub dp_entries: usize,
    /// Work distribution of the multi-threaded cost pass; `None` when the exact tier ran
    /// sequentially (the default) or did not complete.
    pub parallel: Option<ParallelTelemetry>,
    /// Per-phase span trace of this optimization; `Some` only when
    /// [`AdaptiveOptions::trace`] was on. Purely observational — two results that differ
    /// only here describe bit-identical plans.
    pub trace: Option<Trace>,
}

/// The tiered driver: budgeted exact DPhyp, then IDP-k, then GOO.
///
/// See the [module documentation](self) for the tier semantics and a usage example.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdaptiveOptimizer {
    options: AdaptiveOptions,
}

impl AdaptiveOptimizer {
    /// Creates a driver with the given options.
    pub fn new(options: AdaptiveOptions) -> Self {
        AdaptiveOptimizer { options }
    }

    /// The options this driver runs with.
    pub fn options(&self) -> &AdaptiveOptions {
        &self.options
    }

    /// Optimizes a width-agnostic [`QuerySpec`], picking node-set width *and* algorithm tier:
    /// the width is dispatched once per optimization through the same ladder as
    /// [`Optimizer::optimize_spec`](crate::Optimizer::optimize_spec), and within the chosen
    /// width the driver walks the tiers until one produces a plan.
    pub fn optimize_spec(&self, spec: &QuerySpec) -> Result<OptimizeResult, OptimizeError> {
        crate::query::with_width_dispatch(
            spec,
            |graph, catalog| self.optimize_hypergraph(graph, catalog),
            |graph, catalog| self.optimize_hypergraph(graph, catalog),
        )?
    }

    /// Runs the tiered driver over an already-instantiated hypergraph and catalog.
    pub fn optimize_hypergraph<const W: usize>(
        &self,
        graph: &Hypergraph<W>,
        catalog: &Catalog<W>,
    ) -> Result<OptimizeResult, OptimizeError> {
        match self.options.cost_model {
            CostModelKind::Cout => self.drive(graph, catalog, &CoutCost),
            CostModelKind::Mixed => self.drive(graph, catalog, &MixedCost),
        }
    }

    /// The exact tier's worker count under the configured [`AdaptiveOptions::parallelism`].
    fn exact_threads(&self) -> usize {
        match self.options.parallelism {
            None | Some(1) => 1,
            Some(0) => std::thread::available_parallelism().map_or(1, |p| p.get()),
            Some(k) => k,
        }
    }

    /// Entry point of the tiered walk: handles the [`AdaptiveOptions::trace`] knob (install
    /// a recording sink, run, attach the harvested [`Trace`]) around [`Self::drive_inner`].
    fn drive<M: CostModel<W> + Sync, const W: usize>(
        &self,
        graph: &Hypergraph<W>,
        catalog: &Catalog<W>,
        cost_model: &M,
    ) -> Result<OptimizeResult, OptimizeError> {
        if !self.options.trace {
            return self.drive_inner(graph, catalog, cost_model);
        }
        let sink = Arc::new(RecordingSink::new());
        let result = qo_obsv::with_sink(sink.clone(), || {
            self.drive_inner(graph, catalog, cost_model)
        });
        result.map(|mut r| {
            r.trace = Some(sink.trace());
            r
        })
    }

    fn drive_inner<M: CostModel<W> + Sync, const W: usize>(
        &self,
        graph: &Hypergraph<W>,
        catalog: &Catalog<W>,
        cost_model: &M,
    ) -> Result<OptimizeResult, OptimizeError> {
        catalog
            .validate_for(graph)
            .map_err(OptimizeError::InvalidCatalog)?;
        let deadline = self.options.time_budget.map(|b| Instant::now() + b);

        // Branch-and-bound upper bound: the best heuristic full-plan cost, seeded before the
        // exact tier so every enumerator starts with a finite bound. Only meaningful for
        // monotone, non-negative models — others silently run unbounded.
        let mut seed_bound_time = Duration::ZERO;
        let bound = if self.options.pruning && cost_model.supports_pruning() {
            let span = Span::enter("seed_bound");
            let seed_started = Instant::now();
            let b = seed_bound(graph, catalog, cost_model, self.options.idp_strategy);
            seed_bound_time = seed_started.elapsed();
            drop(span);
            Some(b)
        } else {
            None
        };

        // Tier 1: exact DPhyp under the pair budget and, when configured, the deadline —
        // sequentially, or (threads ≥ 2) via the two-pass parallel enumeration, which is
        // bit-identical in plans, costs and budget semantics.
        let threads = self.exact_threads();
        let mut telemetry = BudgetTelemetry {
            ccp_budget: self.options.ccp_budget,
            exact_ccps: 0,
            exact_aborted: true,
            exact_time_exceeded: false,
            idp_k: 0,
            fallback_cost_calls: 0,
            pruned_pairs: 0,
            pruned_classes: 0,
            bound_updates: 0,
            seed_bound_time,
        };
        if threads >= 2 {
            let span = Span::enter("enumerate");
            let outcome = optimize_parallel_exact(
                graph,
                catalog,
                cost_model,
                threads,
                self.options.ccp_budget,
                deadline,
                bound,
                qo_obsv::current_sink(),
            );
            drop(span);
            match outcome {
                ParallelExact::Completed {
                    table,
                    ccps,
                    per_thread_pairs,
                    prune,
                    stolen_chunks,
                } => {
                    telemetry.exact_ccps = ccps;
                    telemetry.exact_aborted = false;
                    telemetry.record_prune(prune);
                    return finish_exact(
                        table,
                        graph,
                        telemetry,
                        Some(ParallelTelemetry::new(
                            threads,
                            per_thread_pairs,
                            stolen_chunks,
                        )),
                    );
                }
                ParallelExact::Aborted {
                    ccps,
                    time_exceeded,
                } => {
                    telemetry.exact_ccps = ccps;
                    telemetry.exact_time_exceeded = time_exceeded;
                }
            }
        } else {
            let combiner = JoinCombiner::new(graph, catalog, cost_model);
            let cost_handler = match bound {
                Some(b) => CostBasedHandler::with_bound(combiner, b),
                None => CostBasedHandler::new(combiner),
            };
            let mut handler = BudgetedHandler::new(cost_handler, self.options.ccp_budget);
            if let Some(d) = deadline {
                handler = handler.with_deadline(d);
            }
            let span = Span::enter("enumerate");
            let _ = DpHyp::new(graph, &mut handler).run();
            drop(span);
            qo_obsv::event("exact_ccps", handler.ccp_count() as u64);
            telemetry.exact_ccps = handler.ccp_count();
            telemetry.exact_aborted = handler.aborted();
            telemetry.exact_time_exceeded = handler.deadline_exceeded();
            telemetry.record_prune(handler.inner().prune_counters());
            if !telemetry.exact_aborted {
                return finish_exact(handler.into_inner().into_table(), graph, telemetry, None);
            }
        }

        // Tier 2: IDP with the block size shrunk until one round's worst case (3^k splits)
        // fits the same budget. Skipped when the wall clock has already run out — IDP rounds
        // are not deadline-instrumented, so a spent time budget goes straight to greedy.
        let time_left = deadline.is_none_or(|d| Instant::now() < d);
        if time_left {
            if let Some(k) = self.effective_idp_k() {
                telemetry.idp_k = k;
                let _span = Span::enter("idp");
                match idp_with_strategy(graph, catalog, cost_model, k, self.options.idp_strategy) {
                    Ok(r) => return Ok(finish_fallback(r, PlanTier::Idp, telemetry)),
                    // A plan IDP cannot complete (pathological hyperedge connectivity) may
                    // still be reachable by GOO's exhaustive pair scan — fall through.
                    Err(BaselineError::NoCompletePlan) => {}
                    Err(BaselineError::InvalidCatalog(m)) => {
                        unreachable!("catalog validated above: {m}")
                    }
                }
            }
        }

        // Tier 3: greedy operator ordering.
        let _span = Span::enter("greedy");
        match goo(graph, catalog, cost_model) {
            Ok(r) => Ok(finish_fallback(r, PlanTier::Greedy, telemetry)),
            Err(BaselineError::NoCompletePlan) => {
                Err(OptimizeError::NoCompletePlan { largest_covered: 0 })
            }
            Err(BaselineError::InvalidCatalog(m)) => unreachable!("catalog validated above: {m}"),
        }
    }

    /// Largest block size `k ≤ idp_block_size` whose single-round worst case (`3^k`
    /// subset-splits) fits the ccp budget, or `None` if not even `k = 2` fits.
    fn effective_idp_k(&self) -> Option<usize> {
        let cap = self.options.idp_block_size.min(MAX_IDP_BLOCK_SIZE);
        (2..=cap)
            .take_while(|&k| 3usize.pow(k as u32) <= self.options.ccp_budget)
            .last()
    }
}

/// Block size of the bound-seeding IDP run: one round costs at most `3^4 = 81` subset-splits
/// per block, negligible next to the exact enumeration it is about to bound.
const SEED_IDP_K: usize = 4;

/// Seeds the branch-and-bound upper bound: the cheapest complete-plan cost the heuristics can
/// find. GOO always runs; on queries of 8+ relations a small-block IDP runs too (below that,
/// IDP-4 degenerates to near-exact DP and adds nothing GOO misses at that size). Returns
/// `f64::INFINITY` when no heuristic completes a plan — the exact tier then runs unbounded and
/// surfaces its own `NoCompletePlan`.
fn seed_bound<M: CostModel<W>, const W: usize>(
    graph: &Hypergraph<W>,
    catalog: &Catalog<W>,
    cost_model: &M,
    idp_strategy: IdpStrategy,
) -> f64 {
    let mut bound = f64::INFINITY;
    if let Ok(r) = goo(graph, catalog, cost_model) {
        bound = r.cost;
    }
    if graph.node_count() >= 8 {
        if let Ok(r) = idp_with_strategy(graph, catalog, cost_model, SEED_IDP_K, idp_strategy) {
            bound = bound.min(r.cost);
        }
    }
    bound
}

/// Builds the exact-tier result from a completed DP table (sequential or merged parallel).
fn finish_exact<const W: usize>(
    table: DpTable<W>,
    graph: &Hypergraph<W>,
    telemetry: BudgetTelemetry,
    parallel: Option<ParallelTelemetry>,
) -> Result<OptimizeResult, OptimizeError> {
    let all = graph.all_nodes();
    let Some(class) = table.get(all) else {
        let largest_covered = table.classes().map(|c| c.set.len()).max().unwrap_or(0);
        return Err(OptimizeError::NoCompletePlan { largest_covered });
    };
    let plan = table
        .reconstruct(all)
        .expect("class for the full relation set must reconstruct");
    Ok(OptimizeResult {
        cost: class.cost,
        cardinality: class.cardinality,
        plan,
        tier: PlanTier::Exact,
        telemetry,
        dp_entries: table.len(),
        parallel,
        trace: None,
    })
}

fn finish_fallback(r: BaselineResult, tier: PlanTier, mut t: BudgetTelemetry) -> OptimizeResult {
    t.fallback_cost_calls = r.cost_calls;
    OptimizeResult {
        plan: r.plan,
        cost: r.cost,
        cardinality: r.cardinality,
        tier,
        telemetry: t,
        dp_entries: r.dp_entries,
        parallel: None,
        trace: None,
    }
}

/// Convenience shorthand: adaptively optimizes a width-agnostic spec with [`AdaptiveOptions`]
/// defaults (1M-pair budget, IDP blocks of up to 10, `C_out`).
pub fn optimize_adaptive(spec: &QuerySpec) -> Result<OptimizeResult, OptimizeError> {
    AdaptiveOptimizer::default().optimize_spec(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize_spec;
    use qo_plan::JoinOp;

    fn chain_spec(n: usize) -> QuerySpec {
        let mut b = QuerySpec::builder(n);
        for i in 0..n {
            b.set_cardinality(i, 100.0 + i as f64);
        }
        for i in 0..n - 1 {
            b.add_simple_edge(i, i + 1, 0.01);
        }
        b.build()
    }

    fn star_spec(satellites: usize) -> QuerySpec {
        let n = satellites + 1;
        let mut b = QuerySpec::builder(n);
        b.set_cardinality(0, 50_000.0);
        for i in 1..n {
            b.set_cardinality(i, 10.0 * i as f64);
            b.add_simple_edge(0, i, 0.003);
        }
        b.build()
    }

    #[test]
    fn ample_budget_is_bit_identical_to_plain_dphyp() {
        for spec in [chain_spec(20), star_spec(11)] {
            let exact = optimize_spec(&spec).unwrap();
            let adaptive = optimize_adaptive(&spec).unwrap();
            assert_eq!(adaptive.tier, PlanTier::Exact);
            assert_eq!(adaptive.cost, exact.cost, "costs must be bit-identical");
            assert_eq!(adaptive.cardinality, exact.cardinality);
            assert_eq!(adaptive.telemetry.exact_ccps, exact.ccp_count);
            assert_eq!(adaptive.dp_entries, exact.dp_entries);
            assert!(!adaptive.telemetry.exact_aborted);
            assert_eq!(adaptive.telemetry.idp_k, 0);
        }
    }

    #[test]
    fn budget_equal_to_true_ccp_count_stays_exact() {
        let spec = chain_spec(12);
        let true_ccps = optimize_spec(&spec).unwrap().ccp_count;
        let at_budget = AdaptiveOptimizer::new(AdaptiveOptions {
            ccp_budget: true_ccps,
            ..Default::default()
        })
        .optimize_spec(&spec)
        .unwrap();
        assert_eq!(
            at_budget.tier,
            PlanTier::Exact,
            "budget == ccp count must not fall back (off-by-one)"
        );
        assert_eq!(at_budget.telemetry.exact_ccps, true_ccps);
        // One pair less, and the driver must degrade.
        let below = AdaptiveOptimizer::new(AdaptiveOptions {
            ccp_budget: true_ccps - 1,
            ..Default::default()
        })
        .optimize_spec(&spec)
        .unwrap();
        assert_ne!(below.tier, PlanTier::Exact);
        assert!(below.telemetry.exact_aborted);
        assert_eq!(below.telemetry.exact_ccps, true_ccps - 1);
    }

    #[test]
    fn parallel_exact_is_bit_identical_to_sequential() {
        for spec in [chain_spec(14), star_spec(10)] {
            let sequential = optimize_adaptive(&spec).unwrap();
            assert_eq!(sequential.tier, PlanTier::Exact);
            assert!(sequential.parallel.is_none());
            for threads in [2usize, 4, 8] {
                let parallel = AdaptiveOptimizer::new(AdaptiveOptions {
                    parallelism: Some(threads),
                    ..Default::default()
                })
                .optimize_spec(&spec)
                .unwrap();
                assert_eq!(parallel.tier, PlanTier::Exact);
                assert_eq!(parallel.cost, sequential.cost, "{threads} threads");
                assert_eq!(parallel.cardinality, sequential.cardinality);
                assert_eq!(parallel.plan, sequential.plan, "{threads} threads");
                assert_eq!(parallel.dp_entries, sequential.dp_entries);
                assert_eq!(
                    parallel.telemetry.exact_ccps, sequential.telemetry.exact_ccps,
                    "the structure pass replays the sequential emission sequence"
                );
                let pt = parallel.parallel.expect("parallel telemetry");
                assert_eq!(pt.threads, threads);
                assert_eq!(pt.per_thread_pairs.len(), threads);
                assert_eq!(
                    pt.per_thread_pairs.iter().sum::<usize>(),
                    sequential.telemetry.exact_ccps,
                    "all feasible pairs costed exactly once"
                );
                assert!(pt.efficiency > 0.0 && pt.efficiency <= 1.0);
            }
        }
    }

    #[test]
    fn parallel_budget_boundary_matches_sequential_semantics() {
        // Satellite: the ccp budget is spent in the serial structure pass, so budget == true
        // pair count must stay exact and budget − 1 must fall back — at any thread count.
        let spec = chain_spec(12);
        let true_ccps = optimize_spec(&spec).unwrap().ccp_count;
        for threads in [2usize, 4] {
            let at_budget = AdaptiveOptimizer::new(AdaptiveOptions {
                ccp_budget: true_ccps,
                parallelism: Some(threads),
                ..Default::default()
            })
            .optimize_spec(&spec)
            .unwrap();
            assert_eq!(at_budget.tier, PlanTier::Exact, "{threads} threads");
            assert_eq!(at_budget.telemetry.exact_ccps, true_ccps);
            assert!(at_budget.parallel.is_some());
            let below = AdaptiveOptimizer::new(AdaptiveOptions {
                ccp_budget: true_ccps - 1,
                parallelism: Some(threads),
                ..Default::default()
            })
            .optimize_spec(&spec)
            .unwrap();
            assert_ne!(below.tier, PlanTier::Exact, "{threads} threads");
            assert!(below.telemetry.exact_aborted);
            assert_eq!(below.telemetry.exact_ccps, true_ccps - 1);
            assert!(below.parallel.is_none(), "aborted runs report no spread");
        }
    }

    #[test]
    fn parallel_auto_and_one_thread_settings_resolve_sensibly() {
        let spec = chain_spec(8);
        let sequential = optimize_adaptive(&spec).unwrap();
        // Some(1) is the sequential path.
        let one = AdaptiveOptimizer::new(AdaptiveOptions {
            parallelism: Some(1),
            ..Default::default()
        })
        .optimize_spec(&spec)
        .unwrap();
        assert!(one.parallel.is_none());
        assert_eq!(one.cost, sequential.cost);
        // Some(0) resolves to the host's core count; whatever that is, the plan is identical.
        let auto = AdaptiveOptimizer::new(AdaptiveOptions {
            parallelism: Some(0),
            ..Default::default()
        })
        .optimize_spec(&spec)
        .unwrap();
        assert_eq!(auto.cost, sequential.cost);
        assert_eq!(auto.plan, sequential.plan);
        if let Some(pt) = &auto.parallel {
            assert_eq!(
                pt.threads,
                std::thread::available_parallelism().map_or(1, |p| p.get())
            );
        }
    }

    #[test]
    fn parallel_time_budget_still_yields_a_valid_fallback_plan() {
        // Satellite: the deadline is thread-shared; a spent clock aborts the parallel exact
        // tier and the driver still answers with a complete greedy plan.
        let spec = star_spec(16);
        let r = AdaptiveOptimizer::new(AdaptiveOptions {
            time_budget: Some(Duration::from_micros(1)),
            parallelism: Some(4),
            ..Default::default()
        })
        .optimize_spec(&spec)
        .unwrap();
        assert_eq!(r.tier, PlanTier::Greedy, "a spent clock must skip IDP");
        assert!(r.telemetry.exact_aborted);
        assert!(r.telemetry.exact_time_exceeded);
        assert_eq!(r.plan.scan_count(), 17);
        assert_eq!(r.plan.join_count(), 16);
    }

    #[test]
    fn parallel_handles_non_inner_and_disconnected_shapes() {
        // Disconnected specs must surface the same error in parallel as sequentially.
        let mut b = QuerySpec::builder(4);
        b.add_simple_edge(0, 1, 0.1);
        b.add_simple_edge(2, 3, 0.1);
        let err = AdaptiveOptimizer::new(AdaptiveOptions {
            parallelism: Some(4),
            ..Default::default()
        })
        .optimize_spec(&b.build())
        .unwrap_err();
        assert!(matches!(err, OptimizeError::NoCompletePlan { .. }));
    }

    #[test]
    fn parallel_telemetry_efficiency_formula() {
        let pt = ParallelTelemetry::new(4, vec![10, 10, 10, 10], 0);
        assert_eq!(pt.efficiency, 1.0);
        let skewed = ParallelTelemetry::new(2, vec![30, 10], 3);
        assert!((skewed.efficiency - 40.0 / 60.0).abs() < 1e-12);
        assert_eq!(skewed.stolen_chunks, 3);
        let idle = ParallelTelemetry::new(4, vec![0, 0, 0, 0], 0);
        assert_eq!(idle.efficiency, 1.0, "an empty pass is vacuously balanced");
    }

    #[test]
    fn tiny_budgets_still_return_valid_greedy_plans() {
        let spec = star_spec(9);
        for budget in [0usize, 1] {
            let r = AdaptiveOptimizer::new(AdaptiveOptions {
                ccp_budget: budget,
                ..Default::default()
            })
            .optimize_spec(&spec)
            .unwrap();
            assert_eq!(r.tier, PlanTier::Greedy, "budget {budget}");
            assert_eq!(r.plan.scan_count(), 10);
            assert_eq!(r.plan.join_count(), 9);
            assert!(r.telemetry.exact_ccps <= budget);
            assert!(r.telemetry.exact_aborted);
            assert_eq!(
                r.telemetry.idp_k, 0,
                "no IDP round fits a budget of {budget}"
            );
            assert!(r.telemetry.fallback_cost_calls > 0);
        }
    }

    #[test]
    fn over_budget_stars_fall_back_to_idp() {
        // star-17: 16 · 2^15 = 524288 pairs; budget 10k forces the fallback, 3^8 < 10k keeps
        // IDP feasible at k = 8.
        let spec = star_spec(16);
        let r = AdaptiveOptimizer::new(AdaptiveOptions {
            ccp_budget: 10_000,
            ..Default::default()
        })
        .optimize_spec(&spec)
        .unwrap();
        assert_eq!(r.tier, PlanTier::Idp);
        assert_eq!(r.telemetry.idp_k, 8);
        assert_eq!(r.telemetry.exact_ccps, 10_000);
        assert_eq!(r.plan.scan_count(), 17);
        // The fallback plan cannot beat the true optimum.
        let exact = optimize_spec(&spec).unwrap();
        assert!(r.cost >= exact.cost - 1e-9);
    }

    #[test]
    fn tiny_time_budget_still_yields_a_valid_fallback_plan() {
        // star-17: ~524k pairs, far more than a microsecond of enumeration. The deadline
        // aborts the exact tier, and — the clock being spent — the driver skips IDP and
        // answers with a complete greedy plan.
        let spec = star_spec(16);
        let r = AdaptiveOptimizer::new(AdaptiveOptions {
            time_budget: Some(Duration::from_micros(1)),
            ..Default::default()
        })
        .optimize_spec(&spec)
        .unwrap();
        assert_eq!(r.tier, PlanTier::Greedy, "a spent clock must skip IDP");
        assert!(r.telemetry.exact_aborted);
        assert!(r.telemetry.exact_time_exceeded);
        assert_eq!(r.plan.scan_count(), 17);
        assert_eq!(r.plan.join_count(), 16);
        assert!(r.cost.is_finite());
    }

    #[test]
    fn generous_time_budget_leaves_the_exact_tier_untouched() {
        let spec = chain_spec(12);
        let with_time = AdaptiveOptimizer::new(AdaptiveOptions {
            time_budget: Some(Duration::from_secs(3600)),
            ..Default::default()
        })
        .optimize_spec(&spec)
        .unwrap();
        assert_eq!(with_time.tier, PlanTier::Exact);
        assert!(!with_time.telemetry.exact_time_exceeded);
        let plain = optimize_spec(&spec).unwrap();
        assert_eq!(with_time.cost, plain.cost, "bit-identical to plain DPhyp");
    }

    #[test]
    fn effective_block_size_shrinks_with_the_budget() {
        let k_for = |budget| {
            AdaptiveOptimizer::new(AdaptiveOptions {
                ccp_budget: budget,
                ..Default::default()
            })
            .effective_idp_k()
        };
        assert_eq!(k_for(0), None);
        assert_eq!(k_for(8), None); // 3^2 = 9 > 8
        assert_eq!(k_for(9), Some(2));
        assert_eq!(k_for(100), Some(4)); // 3^4 = 81 ≤ 100 < 3^5
        assert_eq!(k_for(1_000_000), Some(10)); // capped by idp_block_size
    }

    #[test]
    fn width_dispatch_covers_wide_specs_and_rejects_oversized_ones() {
        // An 80-relation chain is cheap even exactly — runs on the two-word tier.
        let r = optimize_adaptive(&chain_spec(80)).unwrap();
        assert_eq!(r.tier, PlanTier::Exact);
        assert_eq!(r.plan.scan_count(), 80);
        let err = optimize_adaptive(&chain_spec(200)).unwrap_err();
        assert!(matches!(err, OptimizeError::TooManyRelations { .. }));
    }

    #[test]
    fn adaptive_honors_the_cost_model_choice() {
        let spec = chain_spec(6);
        let cout = AdaptiveOptimizer::new(AdaptiveOptions::default())
            .optimize_spec(&spec)
            .unwrap();
        let mixed = AdaptiveOptimizer::new(AdaptiveOptions {
            cost_model: CostModelKind::Mixed,
            ..Default::default()
        })
        .optimize_spec(&spec)
        .unwrap();
        assert_eq!(cout.tier, PlanTier::Exact);
        assert_eq!(mixed.tier, PlanTier::Exact);
        assert_ne!(cout.cost, mixed.cost, "models cost plans differently");
        assert!(cout.plan.operators().iter().all(|o| *o == JoinOp::Inner));
    }

    #[test]
    fn disconnected_specs_error_in_every_tier() {
        let mut b = QuerySpec::builder(4);
        b.add_simple_edge(0, 1, 0.1);
        b.add_simple_edge(2, 3, 0.1);
        let spec = b.build();
        // Exact tier reports the largest covered set.
        let err = optimize_adaptive(&spec).unwrap_err();
        assert!(matches!(err, OptimizeError::NoCompletePlan { .. }));
        // Forced-fallback path must error too, not loop or panic.
        let err = AdaptiveOptimizer::new(AdaptiveOptions {
            ccp_budget: 0,
            ..Default::default()
        })
        .optimize_spec(&spec)
        .unwrap_err();
        assert!(matches!(err, OptimizeError::NoCompletePlan { .. }));
    }

    #[test]
    fn connectivity_aware_block_selection_never_degrades_the_96_star() {
        // The driver's motivating query: a 96-relation star, exact enumeration structurally
        // infeasible, answered by the IDP tier. Every satellite connects to the hub by exactly
        // one edge, so the connectivity-aware strategy's cardinality tie-break must reproduce
        // the default strategy's selections — and therefore its plan cost — exactly.
        let n = 96;
        let mut b = QuerySpec::builder(n);
        b.set_cardinality(0, 1_000_000.0);
        for i in 1..n {
            b.set_cardinality(i, 10.0 + (i as f64) * 7.0);
            b.add_simple_edge(0, i, 0.001 + 0.0001 * (i as f64));
        }
        let star = b.build();
        let default = AdaptiveOptimizer::default().optimize_spec(&star).unwrap();
        let connected = AdaptiveOptimizer::new(AdaptiveOptions {
            idp_strategy: IdpStrategy::ConnectedSmallest,
            ..Default::default()
        })
        .optimize_spec(&star)
        .unwrap();
        assert_eq!(default.tier, PlanTier::Idp);
        assert_eq!(connected.tier, PlanTier::Idp);
        assert!(
            connected.cost <= default.cost,
            "connectivity-aware selection degraded the 96-star: {} > {}",
            connected.cost,
            default.cost
        );
        assert_eq!(
            connected.cost, default.cost,
            "tie-break makes them identical"
        );
    }

    #[test]
    fn tier_display_names_are_stable() {
        assert_eq!(PlanTier::Exact.to_string(), "exact");
        assert_eq!(PlanTier::Idp.to_string(), "idp");
        assert_eq!(PlanTier::Greedy.to_string(), "greedy");
    }
}
