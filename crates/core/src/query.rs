//! Width-agnostic query descriptions and the once-per-optimization width dispatch.
//!
//! Every planner-facing type in the workspace is generic over the node-set width `W` (words of
//! 64 relations each), but a caller that parses a query does not want to commit to a width in
//! its own signatures. [`QuerySpec`] stores the query shape with plain relation-id lists, and
//! [`Optimizer::optimize_spec`](crate::Optimizer::optimize_spec) inspects the node count
//! **once** per optimization:
//!
//! * `n ≤ 64` → instantiate `Hypergraph<1>`/`Catalog<1>` — the hot single-word path, compiled
//!   to exactly the pre-widening code;
//! * `64 < n ≤ 128` → instantiate the two-word `W = 2` tier;
//! * beyond [`MAX_WIDE_NODES`] → a clean [`OptimizeError::TooManyRelations`] error instead of a
//!   panic deep inside mask construction.
//!
//! The dispatch is deliberately *per optimization*, not per operation: after the branch, the
//! whole enumeration (DPhyp, the DP table, the combiner) runs monomorphized for the chosen
//! width with no width checks on the per-pair hot path.

use crate::optimizer::{OptimizeError, Optimized, Optimizer};
use qo_bitset::{NodeId, NodeSet, NodeSet128, NodeSet64};
use qo_catalog::{Catalog, EdgeAnnotation};
use qo_hypergraph::{Hyperedge, Hypergraph};
use qo_plan::JoinOp;

/// Largest relation count any compiled width supports (`W = 2`, two words).
pub const MAX_WIDE_NODES: usize = NodeSet128::CAPACITY;

/// One hyperedge of a width-agnostic query description.
///
/// Read access to the edge structure is what external front ends (e.g. the `.jg` ingest
/// pretty-printer) need to serialize a spec back to text; construction still goes through
/// [`QuerySpecBuilder`].
#[derive(Clone, Debug, PartialEq)]
pub struct SpecEdge {
    left: Vec<NodeId>,
    right: Vec<NodeId>,
    flex: Vec<NodeId>,
    selectivity: f64,
    op: JoinOp,
}

impl SpecEdge {
    /// Relations on the left side of the hyperedge.
    pub fn left(&self) -> &[NodeId] {
        &self.left
    }

    /// Relations on the right side of the hyperedge.
    pub fn right(&self) -> &[NodeId] {
        &self.right
    }

    /// Flexible relations of a generalized hyperedge (Def. 6); empty for plain hyperedges.
    pub fn flex(&self) -> &[NodeId] {
        &self.flex
    }

    /// Selectivity of the predicate.
    pub fn selectivity(&self) -> f64 {
        self.selectivity
    }

    /// Operator the edge was derived from.
    pub fn op(&self) -> JoinOp {
        self.op
    }
}

/// A width-agnostic query: relation statistics plus hyperedges, stored as plain id lists.
///
/// Build one with [`QuerySpec::builder`], then hand it to
/// [`Optimizer::optimize_spec`](crate::Optimizer::optimize_spec) (or
/// [`optimize_spec`](crate::optimize_spec)); the facade chooses the node-set width from the
/// relation count. The per-width instantiation is also available directly via
/// [`QuerySpec::instantiate`] for callers that drive the enumeration themselves (e.g. to run a
/// baseline algorithm on the wide tier), and the adaptive driver
/// ([`crate::optimize_adaptive`]) consumes the same spec when the enumeration algorithm should
/// be picked automatically too.
///
/// ```
/// use dphyp::{optimize_spec, QuerySpec};
///
/// // An 80-relation chain: wider than one 64-bit mask word, so the facade
/// // silently dispatches to the two-word (W = 2) tier.
/// let mut b = QuerySpec::builder(80);
/// for i in 0..80 {
///     b.set_cardinality(i, 1_000.0);
/// }
/// for i in 0..79 {
///     b.add_simple_edge(i, i + 1, 0.01);
/// }
/// let result = optimize_spec(&b.build()).unwrap();
/// assert_eq!(result.plan.join_count(), 79);
/// assert_eq!(result.ccp_count, (80 * 80 * 80 - 80) / 6);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct QuerySpec {
    node_count: usize,
    cardinalities: Vec<f64>,
    lateral_refs: Vec<Vec<NodeId>>,
    edges: Vec<SpecEdge>,
}

impl QuerySpec {
    /// Starts building a spec over `node_count` relations.
    pub fn builder(node_count: usize) -> QuerySpecBuilder {
        QuerySpecBuilder {
            spec: QuerySpec {
                node_count,
                cardinalities: vec![1000.0; node_count],
                lateral_refs: vec![Vec::new(); node_count],
                edges: Vec::new(),
            },
        }
    }

    /// Number of relations in the query.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of hyperedges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Cardinality of a relation (defaults to 1000 unless set on the builder).
    pub fn cardinality(&self, relation: NodeId) -> f64 {
        self.cardinalities[relation]
    }

    /// Lateral references of a relation; empty for ordinary base relations.
    pub fn lateral_refs(&self, relation: NodeId) -> &[NodeId] {
        &self.lateral_refs[relation]
    }

    /// The hyperedges of the spec, in insertion order (edge-id order after instantiation).
    pub fn edges(&self) -> impl Iterator<Item = &SpecEdge> {
        self.edges.iter()
    }

    /// Overlays execution-observed statistics onto the spec: observed base cardinalities and
    /// per-edge selectivities replace their estimates, everything structural (edges, operators,
    /// lateral references, relation ids) is unchanged. The result is "the same query under
    /// drifted statistics" — its shape fingerprint matches the original while its stats epoch
    /// moves with every observation, so serving it through a plan cache walks the re-cost /
    /// re-optimize drift path rather than a cold miss (the feedback loop's planning half).
    pub fn apply_observed(&self, observed: &qo_catalog::ObservedStats) -> QuerySpec {
        let mut b = QuerySpec::builder(self.node_count);
        for r in 0..self.node_count {
            b.set_cardinality(r, observed.cardinality(r).unwrap_or(self.cardinalities[r]));
            if !self.lateral_refs[r].is_empty() {
                b.set_lateral_refs(r, &self.lateral_refs[r]);
            }
        }
        for (id, e) in self.edges.iter().enumerate() {
            let selectivity = observed.selectivity(id).unwrap_or(e.selectivity);
            if e.flex.is_empty() {
                b.add_edge(&e.left, &e.right, selectivity, e.op);
            } else {
                b.add_generalized_edge(&e.left, &e.right, &e.flex, selectivity);
            }
        }
        b.build()
    }

    /// Materializes the spec at a concrete width.
    ///
    /// # Panics
    /// Panics if the relation count (or any referenced id) exceeds the width's capacity; use
    /// [`Optimizer::optimize_spec`](crate::Optimizer::optimize_spec) for the checked dispatch.
    pub fn instantiate<const W: usize>(&self) -> (Hypergraph<W>, Catalog<W>) {
        let mut gb = Hypergraph::<W>::builder(self.node_count);
        for e in &self.edges {
            let left: NodeSet<W> = e.left.iter().copied().collect();
            let right: NodeSet<W> = e.right.iter().copied().collect();
            let flex: NodeSet<W> = e.flex.iter().copied().collect();
            gb.add_edge(Hyperedge::generalized(left, right, flex));
        }
        (gb.build(), self.instantiate_catalog())
    }

    /// Materializes only the statistics side of the spec — the [`Catalog`] without the
    /// hypergraph. Fingerprinting needs exactly this (the statistics epoch is a catalog
    /// property), and building per-node adjacency for a catalog-only consumer would be wasted
    /// work on a per-lookup hot path.
    ///
    /// # Panics
    /// Panics if the relation count (or any referenced id) exceeds the width's capacity.
    pub fn instantiate_catalog<const W: usize>(&self) -> Catalog<W> {
        let mut cb = Catalog::<W>::builder(self.node_count);
        for (r, &card) in self.cardinalities.iter().enumerate() {
            cb.set_cardinality(r, card);
        }
        for (r, refs) in self.lateral_refs.iter().enumerate() {
            if !refs.is_empty() {
                cb.set_lateral_refs(r, refs.iter().copied().collect());
            }
        }
        for (id, e) in self.edges.iter().enumerate() {
            cb.annotate_edge(id, EdgeAnnotation::with_op(e.selectivity, e.op));
        }
        cb.build()
    }
}

/// Builder for [`QuerySpec`].
#[derive(Clone, Debug)]
pub struct QuerySpecBuilder {
    spec: QuerySpec,
}

impl QuerySpecBuilder {
    /// Sets the cardinality of a relation.
    pub fn set_cardinality(&mut self, relation: NodeId, cardinality: f64) -> &mut Self {
        self.spec.cardinalities[relation] = cardinality;
        self
    }

    /// Sets the lateral references of a relation (table functions / dependent subqueries).
    pub fn set_lateral_refs(&mut self, relation: NodeId, refs: &[NodeId]) -> &mut Self {
        self.spec.lateral_refs[relation] = refs.to_vec();
        self
    }

    /// Adds a simple inner-join edge `({a}, {b})` with the given selectivity.
    pub fn add_simple_edge(&mut self, a: NodeId, b: NodeId, selectivity: f64) -> &mut Self {
        self.add_edge(&[a], &[b], selectivity, JoinOp::Inner)
    }

    /// Adds a hyperedge `(left, right)` with the given selectivity and operator.
    pub fn add_edge(
        &mut self,
        left: &[NodeId],
        right: &[NodeId],
        selectivity: f64,
        op: JoinOp,
    ) -> &mut Self {
        self.spec.edges.push(SpecEdge {
            left: left.to_vec(),
            right: right.to_vec(),
            flex: Vec::new(),
            selectivity,
            op,
        });
        self
    }

    /// Adds a generalized hyperedge `(left, right, flex)` (Def. 6) with the given selectivity.
    pub fn add_generalized_edge(
        &mut self,
        left: &[NodeId],
        right: &[NodeId],
        flex: &[NodeId],
        selectivity: f64,
    ) -> &mut Self {
        self.spec.edges.push(SpecEdge {
            left: left.to_vec(),
            right: right.to_vec(),
            flex: flex.to_vec(),
            selectivity,
            op: JoinOp::Inner,
        });
        self
    }

    /// Finalizes the spec.
    pub fn build(&self) -> QuerySpec {
        self.spec.clone()
    }
}

/// The single place encoding the width ladder: instantiates `spec` at the narrowest
/// sufficient node-set width and runs the matching continuation (`n ≤ 64` → `narrow`,
/// `n ≤ 128` → `wide`), or returns [`OptimizeError::TooManyRelations`] beyond
/// [`MAX_WIDE_NODES`]. Every spec-consuming entry point (the exact [`Optimizer`] facade, the
/// adaptive driver) dispatches through here so a future width tier is added exactly once.
pub(crate) fn with_width_dispatch<R>(
    spec: &QuerySpec,
    narrow: impl FnOnce(&Hypergraph<1>, &Catalog<1>) -> R,
    wide: impl FnOnce(&Hypergraph<2>, &Catalog<2>) -> R,
) -> Result<R, OptimizeError> {
    let n = spec.node_count();
    if n <= NodeSet64::CAPACITY {
        let (graph, catalog) = spec.instantiate::<1>();
        Ok(narrow(&graph, &catalog))
    } else if n <= NodeSet128::CAPACITY {
        let (graph, catalog) = spec.instantiate::<2>();
        Ok(wide(&graph, &catalog))
    } else {
        Err(OptimizeError::TooManyRelations {
            count: n,
            max: MAX_WIDE_NODES,
        })
    }
}

impl Optimizer {
    /// Optimizes a width-agnostic [`QuerySpec`], dispatching on the node count **once**:
    /// queries of up to 64 relations run the single-word (`W = 1`) enumeration, larger queries
    /// up to [`MAX_WIDE_NODES`] run the two-word tier, and anything beyond returns
    /// [`OptimizeError::TooManyRelations`].
    pub fn optimize_spec(&self, spec: &QuerySpec) -> Result<Optimized, OptimizeError> {
        with_width_dispatch(
            spec,
            |graph, catalog| self.optimize_hypergraph(graph, catalog),
            |graph, catalog| self.optimize_hypergraph(graph, catalog),
        )?
    }
}

/// Convenience shorthand: optimizes a width-agnostic spec with default options and the `C_out`
/// cost model, picking the node-set width from the relation count.
pub fn optimize_spec(spec: &QuerySpec) -> Result<Optimized, OptimizeError> {
    Optimizer::default().optimize_spec(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_spec(n: usize) -> QuerySpec {
        let mut b = QuerySpec::builder(n);
        for i in 0..n {
            b.set_cardinality(i, 100.0 + i as f64);
        }
        for i in 0..n - 1 {
            b.add_simple_edge(i, i + 1, 0.01);
        }
        b.build()
    }

    #[test]
    fn small_specs_run_on_the_single_word_tier() {
        let spec = chain_spec(20);
        let result = optimize_spec(&spec).expect("plannable");
        assert_eq!(result.plan.scan_count(), 20);
        assert_eq!(result.ccp_count, (20usize.pow(3) - 20) / 6);
        // Identical to planning the explicitly single-word instantiation.
        let (g, c) = spec.instantiate::<1>();
        let narrow = crate::optimize(&g, &c).unwrap();
        assert_eq!(narrow.cost, result.cost);
        assert_eq!(narrow.ccp_count, result.ccp_count);
    }

    #[test]
    fn wide_specs_dispatch_to_the_two_word_tier() {
        let n = 80;
        let result = optimize_spec(&chain_spec(n)).expect("80-relation chain plans");
        assert_eq!(result.plan.scan_count(), n);
        assert_eq!(result.plan.join_count(), n - 1);
        assert_eq!(result.ccp_count, (n.pow(3) - n) / 6);
        assert_eq!(result.dp_entries, n * (n + 1) / 2);
        assert!(result.cost.is_finite());
        // The plan really covers relations beyond node 63.
        assert!(result.plan.relations_wide::<2>().contains(79));
    }

    #[test]
    fn oversized_specs_error_cleanly() {
        let err = optimize_spec(&chain_spec(MAX_WIDE_NODES + 1)).unwrap_err();
        assert_eq!(
            err,
            OptimizeError::TooManyRelations {
                count: MAX_WIDE_NODES + 1,
                max: MAX_WIDE_NODES
            }
        );
        assert!(err.to_string().contains("129 relations"));
    }

    #[test]
    fn boundary_counts_choose_the_narrowest_sufficient_width() {
        // 64 relations stay on the single-word tier; 65 require the wide one. Both must plan.
        for n in [64usize, 65] {
            let result = optimize_spec(&chain_spec(n)).expect("boundary chain plans");
            assert_eq!(result.plan.join_count(), n - 1);
        }
    }

    #[test]
    fn apply_observed_moves_stats_but_not_shape() {
        let mut b = QuerySpec::builder(3);
        b.set_cardinality(0, 1_000_000.0);
        b.set_cardinality(1, 100.0);
        b.set_cardinality(2, 5.0);
        b.set_lateral_refs(2, &[0]);
        b.add_simple_edge(0, 1, 0.001);
        b.add_edge(&[0], &[2], 1.0, JoinOp::LeftOuter);
        let spec = b.build();

        let mut obs = qo_catalog::ObservedStats::new();
        obs.observe_cardinality(0, 16.0);
        obs.observe_selectivity(0, 0.14);
        let fed = spec.apply_observed(&obs);

        assert_eq!(fed.cardinality(0), 16.0);
        assert_eq!(fed.cardinality(1), 100.0, "unobserved keeps its estimate");
        let sels: Vec<f64> = fed.edges().map(|e| e.selectivity()).collect();
        assert_eq!(sels, vec![0.14, 1.0]);
        assert_eq!(fed.lateral_refs(2), &[0]);
        assert_eq!(
            fed.edges().map(|e| e.op()).collect::<Vec<_>>(),
            vec![JoinOp::Inner, JoinOp::LeftOuter]
        );
        // Same shape, different stats epoch: the plan-cache drift signal.
        assert!(crate::same_shape(&spec, &fed));
        assert_ne!(
            fed.instantiate_catalog::<1>().stats_epoch(),
            spec.instantiate_catalog::<1>().stats_epoch()
        );
        // An empty overlay is the identity.
        assert_eq!(spec.apply_observed(&qo_catalog::ObservedStats::new()), spec);
    }

    #[test]
    fn specs_carry_operators_and_laterals() {
        // R0 ⟕ R1 via spec annotation round-trips through instantiation.
        let mut b = QuerySpec::builder(2);
        b.set_cardinality(0, 50.0).set_cardinality(1, 500.0);
        b.add_edge(&[0], &[1], 0.001, JoinOp::LeftOuter);
        let result = optimize_spec(&b.build()).unwrap();
        assert_eq!(result.plan.operators(), vec![JoinOp::LeftOuter]);

        let mut b = QuerySpec::builder(2);
        b.set_cardinality(0, 100.0).set_cardinality(1, 5.0);
        b.set_lateral_refs(1, &[0]);
        b.add_simple_edge(0, 1, 1.0);
        let result = optimize_spec(&b.build()).unwrap();
        assert_eq!(result.plan.operators(), vec![JoinOp::DepJoin]);
    }
}
