//! The DPhyp enumeration engine (Sec. 3 of the paper).
//!
//! The algorithm enumerates every csg-cmp-pair of the query hypergraph exactly once, in an order
//! in which smaller pairs precede larger ones — the order dynamic programming needs. It is
//! distributed over the five member functions of the paper:
//!
//! * [`DpHyp::run`] (`Solve`): seeds the DP table with single relations and processes the nodes
//!   in descending order,
//! * `EnumerateCsgRec`: recursively grows connected subgraphs by adding subsets of the
//!   neighborhood,
//! * `EmitCsg`: finds the seed nodes of all connected complements of a subgraph,
//! * `EnumerateCmpRec`: recursively grows the complements,
//! * `EmitCsgCmp`: delegated to the [`CcpHandler`] (plan construction, counting, …).
//!
//! Generalized hyperedges (Sec. 6) need no special treatment here: the neighborhood and
//! connectivity primitives of `qo-hypergraph` already resolve their flexible node sets.

use qo_bitset::NodeSet;
use qo_catalog::{CcpHandler, CountingHandler, EmitSignal};
use qo_hypergraph::Hypergraph;

/// Unwinds the enumeration when a handler call answered [`EmitSignal::Abort`].
macro_rules! propagate {
    ($signal:expr) => {
        if $signal.is_abort() {
            return EmitSignal::Abort;
        }
    };
}

/// The DPhyp enumerator.
///
/// The enumerator borrows the hypergraph and a [`CcpHandler`]; the handler decides what a
/// csg-cmp-pair *means* (building plans, counting, checking TESs, …).
pub struct DpHyp<'a, H, const W: usize = 1>
where
    H: CcpHandler<W>,
{
    graph: &'a Hypergraph<W>,
    handler: &'a mut H,
}

impl<'a, H: CcpHandler<W>, const W: usize> DpHyp<'a, H, W> {
    /// Creates an enumerator over `graph` reporting to `handler`.
    pub fn new(graph: &'a Hypergraph<W>, handler: &'a mut H) -> Self {
        DpHyp { graph, handler }
    }

    /// Runs the full enumeration (`Solve` in the paper).
    ///
    /// Initializes the handler with every single relation, then, for every node `v` in
    /// decreasing order, emits the csg-cmp-pairs whose first component is `{v}` and recursively
    /// expands `{v}` into larger connected subgraphs. The prefix `B_v = {w | w ≤ v}` is
    /// forbidden during the expansion to avoid duplicate enumerations.
    ///
    /// Returns [`EmitSignal::Continue`] when every csg-cmp-pair was enumerated, or
    /// [`EmitSignal::Abort`] when the handler cut the enumeration short (e.g. a
    /// [`qo_catalog::BudgetedHandler`] whose pair budget ran out) — the handler's DP state is
    /// then a valid but partial memo. Handlers without a budget never abort, so plain callers
    /// can ignore the signal with `let _ = …`.
    pub fn run(&mut self) -> EmitSignal {
        let n = self.graph.node_count();
        for v in 0..n {
            self.handler.init_leaf(v);
        }
        for v in (0..n).rev() {
            let single = NodeSet::single(v);
            propagate!(self.emit_csg(single));
            propagate!(self.enumerate_csg_rec(single, NodeSet::prefix_through(v)));
        }
        EmitSignal::Continue
    }

    /// `EnumerateCsgRec`: extends the connected set `s1` by subsets of its neighborhood.
    fn enumerate_csg_rec(&mut self, s1: NodeSet<W>, x: NodeSet<W>) -> EmitSignal {
        let neighborhood = self.graph.neighborhood(s1, x);
        if neighborhood.is_empty() {
            return EmitSignal::Continue;
        }
        // First emit (smaller sets first — required for DP validity), then recurse.
        for n in neighborhood.subsets() {
            let grown = s1 | n;
            if self.handler.contains(grown) {
                propagate!(self.emit_csg(grown));
            }
        }
        let x_extended = x | neighborhood;
        for n in neighborhood.subsets() {
            propagate!(self.enumerate_csg_rec(s1 | n, x_extended));
        }
        EmitSignal::Continue
    }

    /// `EmitCsg`: for a connected set `s1`, finds all seed nodes of potential complements and
    /// starts their recursive expansion.
    fn emit_csg(&mut self, s1: NodeSet<W>) -> EmitSignal {
        let min = s1.min_node().expect("EmitCsg called with an empty set");
        let x = s1 | NodeSet::prefix_through(min);
        let neighborhood = self.graph.neighborhood(s1, x);
        if neighborhood.is_empty() {
            return EmitSignal::Continue;
        }
        for v in neighborhood.iter_descending() {
            let s2 = NodeSet::single(v);
            if self.graph.has_connecting_edge(s1, s2) {
                propagate!(self.handler.emit_ccp(s1, s2));
            }
            // While the seed {v} may not yet be connected to s1 (it may only be the
            // representative of a larger hypernode), it can often be *extended* to a valid
            // complement. Forbid the neighbors that are still to be processed at this level to
            // avoid duplicate complements.
            let forbidden = x | (NodeSet::prefix_through(v) & neighborhood);
            propagate!(self.enumerate_cmp_rec(s1, s2, forbidden));
        }
        EmitSignal::Continue
    }

    /// `EnumerateCmpRec`: extends the complement `s2` by subsets of its neighborhood, emitting a
    /// csg-cmp-pair whenever the grown complement is connected and linked to `s1`.
    fn enumerate_cmp_rec(&mut self, s1: NodeSet<W>, s2: NodeSet<W>, x: NodeSet<W>) -> EmitSignal {
        let neighborhood = self.graph.neighborhood(s2, x);
        if neighborhood.is_empty() {
            return EmitSignal::Continue;
        }
        for n in neighborhood.subsets() {
            let grown = s2 | n;
            if self.handler.contains(grown) && self.graph.has_connecting_edge(s1, grown) {
                propagate!(self.handler.emit_ccp(s1, grown));
            }
        }
        let x_extended = x | neighborhood;
        for n in neighborhood.subsets() {
            propagate!(self.enumerate_cmp_rec(s1, s2 | n, x_extended));
        }
        EmitSignal::Continue
    }
}

/// Convenience: runs DPhyp with a [`CountingHandler`] and returns it. Used by tests, the
/// search-space statistics of the optimizer and the ablation benchmarks. Generic over the mask
/// width like the enumerator itself.
pub fn count_ccps_dphyp<const W: usize>(graph: &Hypergraph<W>) -> CountingHandler<W> {
    let mut handler = CountingHandler::new();
    let _ = DpHyp::new(graph, &mut handler).run();
    handler
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use qo_hypergraph::{enumerate_ccps, Hyperedge, Hypergraph};
    use std::collections::BTreeSet;

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    /// Asserts that DPhyp emits exactly the canonical csg-cmp-pairs of the oracle, without
    /// duplicates.
    fn assert_matches_oracle(graph: &Hypergraph) {
        let handler = count_ccps_dphyp(graph);
        let emitted = handler.canonical_pairs();
        let mut dedup = emitted.clone();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            emitted.len(),
            "duplicate csg-cmp-pairs emitted"
        );
        let expected = enumerate_ccps(graph);
        assert_eq!(
            emitted.iter().copied().collect::<BTreeSet<_>>(),
            expected.iter().copied().collect::<BTreeSet<_>>(),
            "emitted pairs differ from the oracle"
        );
        assert_eq!(emitted.len(), expected.len());
    }

    fn chain(n: usize) -> Hypergraph {
        let mut b = Hypergraph::builder(n);
        for i in 0..n - 1 {
            b.add_simple_edge(i, i + 1);
        }
        b.build()
    }

    fn cycle(n: usize) -> Hypergraph {
        let mut b = Hypergraph::builder(n);
        for i in 0..n {
            b.add_simple_edge(i, (i + 1) % n);
        }
        b.build()
    }

    fn star(satellites: usize) -> Hypergraph {
        let mut b = Hypergraph::builder(satellites + 1);
        for i in 1..=satellites {
            b.add_simple_edge(0, i);
        }
        b.build()
    }

    fn clique(n: usize) -> Hypergraph {
        let mut b = Hypergraph::builder(n);
        for i in 0..n {
            for j in i + 1..n {
                b.add_simple_edge(i, j);
            }
        }
        b.build()
    }

    /// The paper's Fig. 2 hypergraph.
    fn fig2() -> Hypergraph {
        let mut b = Hypergraph::builder(6);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(1, 2);
        b.add_simple_edge(3, 4);
        b.add_simple_edge(4, 5);
        b.add_hyperedge(ns(&[0, 1, 2]), ns(&[3, 4, 5]));
        b.build()
    }

    #[test]
    fn single_relation_has_no_pairs() {
        let g = Hypergraph::<1>::builder(1).build();
        let h = count_ccps_dphyp(&g);
        assert_eq!(h.ccp_count(), 0);
    }

    #[test]
    fn two_relations_single_pair() {
        let g = chain(2);
        let h = count_ccps_dphyp(&g);
        assert_eq!(h.canonical_pairs(), vec![(ns(&[0]), ns(&[1]))]);
    }

    #[test]
    fn fig2_graph_matches_oracle_and_has_nine_pairs() {
        let g = fig2();
        assert_matches_oracle(&g);
        assert_eq!(count_ccps_dphyp(&g).ccp_count(), 9);
    }

    #[test]
    fn simple_graph_families_match_oracle() {
        for n in 2..=7 {
            assert_matches_oracle(&chain(n));
            assert_matches_oracle(&cycle(n.max(3)));
            assert_matches_oracle(&star(n));
            assert_matches_oracle(&clique(n));
        }
    }

    #[test]
    fn chain_ccp_count_matches_closed_form() {
        for n in 2..=10usize {
            let g = chain(n);
            assert_eq!(
                count_ccps_dphyp(&g).ccp_count(),
                (n.pow(3) - n) / 6,
                "chain {n}"
            );
        }
    }

    #[test]
    fn star_ccp_count_matches_closed_form() {
        for sats in 1..=8usize {
            let n = sats + 1;
            let g = star(sats);
            assert_eq!(
                count_ccps_dphyp(&g).ccp_count(),
                (n - 1) * (1 << (n - 2)),
                "star with {sats} satellites"
            );
        }
    }

    #[test]
    fn clique_ccp_count_matches_closed_form() {
        for n in 2..=8usize {
            let g = clique(n);
            let expected = (3usize.pow(n as u32) - (1 << (n + 1))).div_ceil(2);
            assert_eq!(count_ccps_dphyp(&g).ccp_count(), expected, "clique {n}");
        }
    }

    #[test]
    fn hypergraphs_with_one_big_hyperedge_match_oracle() {
        // Star and cycle bases with a spanning hyperedge, as in the paper's experiments.
        let mut b = Hypergraph::builder(8);
        for i in 0..8 {
            b.add_simple_edge(i, (i + 1) % 8);
        }
        b.add_hyperedge(ns(&[0, 1, 2, 3]), ns(&[4, 5, 6, 7]));
        assert_matches_oracle(&b.build());

        let mut b = Hypergraph::builder(9);
        for i in 1..9 {
            b.add_simple_edge(0, i);
        }
        b.add_hyperedge(ns(&[1, 2, 3, 4]), ns(&[5, 6, 7, 8]));
        assert_matches_oracle(&b.build());
    }

    #[test]
    fn generalized_hyperedges_match_oracle() {
        let mut b = Hypergraph::builder(5);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(3, 4);
        b.add_edge(Hyperedge::generalized(ns(&[0]), ns(&[4]), ns(&[2])));
        b.add_simple_edge(1, 2);
        b.add_simple_edge(2, 3);
        assert_matches_oracle(&b.build());
    }

    #[test]
    fn disconnected_graph_only_pairs_within_components() {
        let mut b = Hypergraph::builder(5);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(3, 4);
        let g = b.build();
        assert_matches_oracle(&g);
        let h = count_ccps_dphyp(&g);
        assert_eq!(h.ccp_count(), 2);
        assert!(!h.contains(g.all_nodes()));
    }

    #[test]
    fn hyperedge_only_graph_where_full_set_is_unreachable() {
        // Single edge ({0}, {1,2}): {1,2} is not connected, so no pair exists at all.
        let mut b = Hypergraph::builder(3);
        b.add_hyperedge(ns(&[0]), ns(&[1, 2]));
        let g = b.build();
        assert_matches_oracle(&g);
        assert_eq!(count_ccps_dphyp(&g).ccp_count(), 0);
    }

    #[test]
    fn dp_ordering_smaller_pairs_come_first() {
        // Every emitted pair's components must already be present (as leaves or earlier unions):
        // the CountingHandler would answer `contains == false` otherwise and the cost-based
        // handler would panic in debug builds. Verify explicitly on a mid-size graph.
        let g = cycle(7);
        let mut handler = CountingHandler::new();
        let _ = DpHyp::new(&g, &mut handler).run();
        let mut known: BTreeSet<NodeSet> = (0..7).map(NodeSet::single).collect();
        for &(a, b) in handler.pairs() {
            assert!(
                known.contains(&a),
                "pair emitted before its csg was known: {a:?}"
            );
            assert!(
                known.contains(&b),
                "pair emitted before its cmp was known: {b:?}"
            );
            known.insert(a | b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random hypergraphs: a random simple-edge skeleton plus up to two random hyperedges.
        #[test]
        fn prop_random_hypergraphs_match_oracle(
            n in 2usize..8,
            extra_edges in proptest::collection::vec((0usize..8, 0usize..8), 0..6),
            hyper in proptest::collection::vec(
                (proptest::collection::btree_set(0usize..8, 1..3),
                 proptest::collection::btree_set(0usize..8, 1..3)),
                0..2
            ),
        ) {
            let mut b = Hypergraph::builder(n);
            // A chain skeleton keeps most generated graphs connected.
            for i in 0..n - 1 {
                b.add_simple_edge(i, i + 1);
            }
            for (a, c) in extra_edges {
                let (a, c) = (a % n, c % n);
                if a != c {
                    b.add_simple_edge(a, c);
                }
            }
            for (u, v) in hyper {
                let u: NodeSet = u.into_iter().map(|x| x % n).collect();
                let v: NodeSet = v.into_iter().map(|x| x % n).collect();
                if !u.is_empty() && !v.is_empty() && u.is_disjoint(v) {
                    b.add_hyperedge(u, v);
                }
            }
            let g = b.build();
            let emitted = count_ccps_dphyp(&g).canonical_pairs();
            let mut dedup = emitted.clone();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), emitted.len(), "duplicates");
            let expected = enumerate_ccps(&g);
            prop_assert_eq!(
                emitted.into_iter().collect::<BTreeSet<_>>(),
                expected.into_iter().collect::<BTreeSet<_>>()
            );
        }
    }
}
