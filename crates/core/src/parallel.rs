//! Multi-threaded exact enumeration: a serial structure pass followed by a level-synchronized
//! parallel cost pass over a sharded DP table, bit-identical to sequential DPhyp.
//!
//! DPhyp's outer loop carries a total-order dependency (each start vertex's recursion consults
//! the classes every earlier vertex created), so the enumeration *order* cannot be partitioned
//! across threads without changing which pairs are emitted. What *can* be parallelized is the
//! expensive part — cardinality estimation and costing — because the memo's dependency
//! structure is strictly by subset size: the best plan of a size-`s` class reads only classes
//! of size `< s`. The split:
//!
//! 1. **Structure pass (serial).** Run the unmodified [`DpHyp`] enumeration with a handler
//!    that performs no costing at all: it answers the enumerator's `contains` queries from a
//!    plain membership set and records every feasible csg-cmp-pair into a bucket keyed by
//!    `(|S1 ∪ S2|, shard_of(S1 ∪ S2))`, in emission order. Feasibility is the structural part
//!    of [`JoinCombiner::combine`] ([`JoinCombiner::feasible`]); for the common catalog
//!    (no TES enforcement, no lateral refs) `combine` never rejects a connected pair
//!    ([`JoinCombiner::always_combines`]) and the per-pair check is skipped entirely. The pair
//!    budget and wall-clock deadline wrap this pass through the ordinary [`BudgetedHandler`],
//!    so abort semantics are exactly sequential at any thread count.
//! 2. **Cost pass (parallel).** Workers sweep the levels `2 ..= n` in lockstep, a
//!    [`Barrier`] between levels. Within a level each worker read-locks all shards of the
//!    [`ShardedDpTable`] (every input class has size `< level` and is sealed), costs the pairs
//!    of the shards it owns into a private staging table, and — after a barrier — installs its
//!    staged winners into its own shards under write locks.
//!
//! **Why the result is bit-identical to sequential DPhyp:** the pair list per class equals the
//! sequential emission sequence (pass 1 replays it); each class lives in exactly one shard and
//! is therefore folded by exactly one worker, in that recorded order, under the same
//! strictly-cheaper-replaces/incumbent-wins-ties offer rule; and every input cost it reads is
//! final, because sequential DPhyp, being a dynamic program, also only ever combines classes
//! whose own pairs have all been emitted. Same candidates from same inputs in the same per-class
//! order under the same tie-break — the same winner, at every thread count.

use crate::enumerate::DpHyp;
use qo_bitset::{NodeId, NodeSet};
use qo_catalog::{
    shard_of, BudgetedHandler, Candidate, CandidateJoin, Catalog, CcpHandler, CostModel, DpTable,
    EmitSignal, JoinCombiner, NodeSetSet, ShardedDpTable, SharedBudget, SHARD_COUNT,
};
use qo_hypergraph::{EdgeId, Hypergraph};
use std::sync::Barrier;
use std::time::Instant;

/// Outcome of a parallel exact enumeration.
pub(crate) enum ParallelExact<const W: usize> {
    /// Both passes finished: the merged table (leaves plus every class the sequential run
    /// would memoize), the structure pass's csg-cmp-pair count, and the per-worker costed-pair
    /// tallies of the cost pass.
    Completed {
        table: DpTable<W>,
        ccps: usize,
        per_thread_pairs: Vec<usize>,
    },
    /// A budget ran out: either the structure pass hit the pair budget / deadline (sequential
    /// semantics), or the cost pass hit the deadline.
    Aborted { ccps: usize, time_exceeded: bool },
}

/// The structure pass's handler: membership without costing, plus the per-(level, shard) pair
/// buckets the cost pass consumes.
struct StructureHandler<'a, M: CostModel<W> + ?Sized, const W: usize> {
    combiner: &'a JoinCombiner<'a, M, W>,
    /// Pairs must run the structural part of `combine` before being registered; `false` for
    /// catalogs where every connected pair combines ([`JoinCombiner::always_combines`]).
    needs_feasibility: bool,
    members: NodeSetSet<W>,
    /// `buckets[level][shard]` — the feasible pairs whose union has `level` members and lives
    /// in `shard`, in emission order.
    buckets: Vec<Vec<Vec<(NodeSet<W>, NodeSet<W>)>>>,
    edge_buf: Vec<EdgeId>,
    ccps: usize,
}

impl<'a, M: CostModel<W> + ?Sized, const W: usize> StructureHandler<'a, M, W> {
    fn new(combiner: &'a JoinCombiner<'a, M, W>, node_count: usize) -> Self {
        StructureHandler {
            combiner,
            needs_feasibility: !combiner.always_combines(),
            members: NodeSetSet::new(),
            buckets: vec![vec![Vec::new(); SHARD_COUNT]; node_count + 1],
            edge_buf: Vec::new(),
            ccps: 0,
        }
    }
}

impl<M: CostModel<W> + ?Sized, const W: usize> CcpHandler<W> for StructureHandler<'_, M, W> {
    fn init_leaf(&mut self, relation: NodeId) {
        self.members.insert(NodeSet::single(relation));
    }

    fn contains(&self, set: NodeSet<W>) -> bool {
        self.members.contains(set)
    }

    fn emit_ccp(&mut self, s1: NodeSet<W>, s2: NodeSet<W>) -> EmitSignal {
        self.ccps += 1;
        if self.needs_feasibility {
            self.combiner
                .graph()
                .connecting_edges_into(s1, s2, &mut self.edge_buf);
            if !self.combiner.feasible(s1, s2, &self.edge_buf) {
                // Sequential `combine` would return no candidate: no class is created, and the
                // membership answer must stay `false`.
                return EmitSignal::Continue;
            }
        }
        let union = s1 | s2;
        self.members.insert(union);
        self.buckets[union.len()][shard_of(union)].push((s1, s2));
        EmitSignal::Continue
    }

    fn ccp_count(&self) -> usize {
        self.ccps
    }
}

/// Runs the two-pass parallel exact enumeration with `threads ≥ 2` workers.
pub(crate) fn optimize_parallel_exact<M: CostModel<W> + Sync, const W: usize>(
    graph: &Hypergraph<W>,
    catalog: &Catalog<W>,
    cost_model: &M,
    threads: usize,
    ccp_budget: usize,
    deadline: Option<Instant>,
) -> ParallelExact<W> {
    debug_assert!(threads >= 2, "threads = 1 takes the sequential path");
    let n = graph.node_count();
    let combiner = JoinCombiner::new(graph, catalog, cost_model);

    // Pass 1: serial structure enumeration under the sequential budget semantics.
    let mut handler = BudgetedHandler::new(StructureHandler::new(&combiner, n), ccp_budget);
    if let Some(d) = deadline {
        handler = handler.with_deadline(d);
    }
    let _ = DpHyp::new(graph, &mut handler).run();
    if handler.aborted() {
        return ParallelExact::Aborted {
            ccps: handler.ccp_count(),
            time_exceeded: handler.deadline_exceeded(),
        };
    }
    let ccps = handler.ccp_count();
    let buckets = handler.into_inner().buckets;

    // Pass 2: seed the leaves, then cost level by level in lockstep.
    let table = ShardedDpTable::<W>::new();
    for relation in 0..n {
        table.insert_leaf(relation, catalog.cardinality(relation));
    }
    let budget = SharedBudget::new(deadline);
    let barrier = Barrier::new(threads);
    let per_thread_pairs = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let (buckets, table, combiner, budget, barrier) =
                    (&buckets, &table, &combiner, &budget, &barrier);
                scope.spawn(move || {
                    cost_pass_worker(t, threads, n, buckets, table, combiner, budget, barrier)
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("cost-pass worker panicked"))
            .collect::<Vec<_>>()
    });
    if budget.aborted() {
        return ParallelExact::Aborted {
            // The structure pass completed within budget; report the pairs actually costed.
            ccps: budget.pairs(),
            time_exceeded: true,
        };
    }
    ParallelExact::Completed {
        table: table.into_merged(),
        ccps,
        per_thread_pairs,
    }
}

/// One worker of the cost pass; returns the number of pairs it costed.
///
/// Every worker executes *all* levels and hits *both* barriers per level unconditionally —
/// an abort only skips the processing inside a level — so no combination of deadline firings
/// can strand a subset of workers at a barrier.
#[allow(clippy::too_many_arguments)]
fn cost_pass_worker<M: CostModel<W> + ?Sized, const W: usize>(
    t: usize,
    threads: usize,
    node_count: usize,
    buckets: &[Vec<Vec<(NodeSet<W>, NodeSet<W>)>>],
    table: &ShardedDpTable<W>,
    combiner: &JoinCombiner<'_, M, W>,
    budget: &SharedBudget,
    barrier: &Barrier,
) -> usize {
    let mut pairs_done = 0usize;
    let mut edge_buf: Vec<EdgeId> = Vec::new();
    for level_buckets in buckets.iter().take(node_count + 1).skip(2) {
        // Read phase: all inputs are of a strictly smaller size and are sealed behind the
        // read guards.
        let mut staging: DpTable<W> = DpTable::new();
        {
            let reader = table.read_all();
            if !budget.aborted() {
                let mut local = 0usize;
                'shards: for shard in (t..SHARD_COUNT).step_by(threads) {
                    for &(s1, s2) in &level_buckets[shard] {
                        local += 1;
                        if local.is_multiple_of(SharedBudget::DEADLINE_CHECK_INTERVAL)
                            && budget.poll_deadline()
                        {
                            break 'shards;
                        }
                        let a = reader
                            .get(s1)
                            .expect("structure pass registered this subset's class")
                            .stats();
                        let b = reader
                            .get(s2)
                            .expect("structure pass registered this subset's class")
                            .stats();
                        combiner
                            .graph()
                            .connecting_edges_into(s1, s2, &mut edge_buf);
                        if let Some(candidate) = combiner.combine(&a, &b, &edge_buf) {
                            staging.offer(candidate);
                        }
                    }
                }
                pairs_done += local;
                budget.add_pairs(local);
            }
        }
        barrier.wait();
        // Install phase: this worker's shards are written by this worker alone.
        if !budget.aborted() {
            for class in staging.classes() {
                let join = class
                    .best_join
                    .expect("staged classes are joins; leaves were seeded before the scope");
                table
                    .shard(shard_of(class.set))
                    .write()
                    .expect("shard lock poisoned")
                    .offer(Candidate {
                        set: class.set,
                        cardinality: class.cardinality,
                        cost: class.cost,
                        join: Some(CandidateJoin {
                            left: join.left,
                            right: join.right,
                            op: join.op,
                            predicates: staging.best_join_predicates(class),
                        }),
                    });
            }
        }
        barrier.wait();
    }
    pairs_done
}
