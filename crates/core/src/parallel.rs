//! Multi-threaded exact enumeration: a serial structure pass followed by a level-synchronized,
//! work-stealing parallel cost pass over a sharded DP table, bit-identical to sequential DPhyp.
//!
//! DPhyp's outer loop carries a total-order dependency (each start vertex's recursion consults
//! the classes every earlier vertex created), so the enumeration *order* cannot be partitioned
//! across threads without changing which pairs are emitted. What *can* be parallelized is the
//! expensive part — cardinality estimation and costing — because the memo's dependency
//! structure is strictly by subset size: the best plan of a size-`s` class reads only classes
//! of size `< s`. The split:
//!
//! 1. **Structure pass (serial).** Run the unmodified [`DpHyp`] enumeration with a handler
//!    that performs no costing at all: it answers the enumerator's `contains` queries from a
//!    plain membership set and records every feasible csg-cmp-pair into a bucket keyed by
//!    `(|S1 ∪ S2|, shard_of(S1 ∪ S2))`, in emission order. Feasibility is the structural part
//!    of [`JoinCombiner::combine`] ([`JoinCombiner::feasible`]); for the common catalog
//!    (no TES enforcement, no lateral refs) `combine` never rejects a connected pair
//!    ([`JoinCombiner::always_combines`]) and the per-pair check is skipped entirely. The pair
//!    budget and wall-clock deadline wrap this pass through the ordinary [`BudgetedHandler`],
//!    so abort semantics are exactly sequential at any thread count.
//! 2. **Cost pass (parallel, work-stealing).** Workers sweep the levels `2 ..= n` in lockstep,
//!    a [`Barrier`] between levels. Each level's shard buckets are pre-split into fixed-size
//!    *chunks* (contiguous segments of one shard's pair list, in `(shard, start)` order), and
//!    workers claim chunks greedily off a shared atomic cursor — so a star-shaped level whose
//!    pairs hash into few shards no longer idles everyone but those shards' owners. A claimed
//!    chunk is costed into a private per-chunk staging table under the level's read guards.
//!    After a barrier, each shard's *install owner* (`shard % threads`) folds that shard's
//!    staged chunk tables into the shared [`ShardedDpTable`], in ascending chunk order, under
//!    its write lock.
//!
//! **Why the result is bit-identical to sequential DPhyp:** the pair list per class equals the
//! sequential emission sequence (pass 1 replays it), and a chunk is a contiguous segment of
//! that sequence, folded in order under the same strictly-cheaper-replaces/incumbent-wins-ties
//! offer rule. Re-offering the per-chunk segment winners in ascending chunk order is the same
//! fold applied to the segment minima — which preserves the *first-arriving* global minimum,
//! because a later segment's winner replaces an earlier one only when strictly cheaper, exactly
//! as the later pair itself would have. Every input cost a chunk reads is final (all smaller
//! levels are sealed behind the barrier), so: same candidates from same inputs in the same
//! per-class order under the same tie-break — the same winner, at every thread count and any
//! steal schedule.
//!
//! **Cost-bounded pruning** (an upper bound seeded from the heuristic tiers, see
//! [`AdaptiveOptions::pruning`](crate::AdaptiveOptions::pruning)) composes with both passes
//! without touching the emission sequence: the structure pass is oblivious to costs, and the
//! cost pass simply skips staging any candidate whose accumulated cost exceeds the bound. A
//! class all of whose candidates were over the bound never enters the table, so later levels
//! find its subsets missing and skip those pairs' cost evaluations entirely — monotonicity
//! guarantees no such plan could have beaten the bound. The bound stays static across the pass
//! (the only class that could tighten it — the full set — is costed last), so no cross-worker
//! coordination is needed, and ties with the bound survive, keeping the winner identical to the
//! unpruned enumeration.

use crate::enumerate::DpHyp;
use qo_bitset::{NodeId, NodeSet};
use qo_catalog::{
    shard_of, BudgetedHandler, Candidate, CandidateJoin, Catalog, CcpHandler, CostModel, DpTable,
    EmitSignal, JoinCombiner, NodeSetSet, PruneCounters, ShardedDpTable, SharedBudget, SHARD_COUNT,
};
use qo_hypergraph::{EdgeId, Hypergraph};
use qo_obsv::{ObsvSink, Span};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, OnceLock};
use std::time::Instant;

/// Outcome of a parallel exact enumeration.
#[allow(clippy::large_enum_variant)] // constructed once per optimization; never stored in bulk
pub(crate) enum ParallelExact<const W: usize> {
    /// Both passes finished: the merged table (leaves plus every class the sequential run
    /// would memoize, minus any the bound pruned), the structure pass's csg-cmp-pair count,
    /// the per-worker costed-pair tallies of the cost pass, the pruning counters, and how many
    /// chunks were claimed by a worker other than their shard's install owner.
    Completed {
        table: DpTable<W>,
        ccps: usize,
        per_thread_pairs: Vec<usize>,
        prune: PruneCounters,
        stolen_chunks: usize,
    },
    /// A budget ran out: either the structure pass hit the pair budget / deadline (sequential
    /// semantics), or the cost pass hit the deadline.
    Aborted { ccps: usize, time_exceeded: bool },
}

/// The structure pass's handler: membership without costing, plus the per-(level, shard) pair
/// buckets the cost pass consumes.
struct StructureHandler<'a, M: CostModel<W> + ?Sized, const W: usize> {
    combiner: &'a JoinCombiner<'a, M, W>,
    /// Pairs must run the structural part of `combine` before being registered; `false` for
    /// catalogs where every connected pair combines ([`JoinCombiner::always_combines`]).
    needs_feasibility: bool,
    members: NodeSetSet<W>,
    /// `buckets[level][shard]` — the feasible pairs whose union has `level` members and lives
    /// in `shard`, in emission order.
    buckets: Vec<Vec<Vec<(NodeSet<W>, NodeSet<W>)>>>,
    edge_buf: Vec<EdgeId>,
    ccps: usize,
}

impl<'a, M: CostModel<W> + ?Sized, const W: usize> StructureHandler<'a, M, W> {
    fn new(combiner: &'a JoinCombiner<'a, M, W>, node_count: usize) -> Self {
        StructureHandler {
            combiner,
            needs_feasibility: !combiner.always_combines(),
            members: NodeSetSet::new(),
            buckets: vec![vec![Vec::new(); SHARD_COUNT]; node_count + 1],
            edge_buf: Vec::new(),
            ccps: 0,
        }
    }
}

impl<M: CostModel<W> + ?Sized, const W: usize> CcpHandler<W> for StructureHandler<'_, M, W> {
    fn init_leaf(&mut self, relation: NodeId) {
        self.members.insert(NodeSet::single(relation));
    }

    fn contains(&self, set: NodeSet<W>) -> bool {
        self.members.contains(set)
    }

    fn emit_ccp(&mut self, s1: NodeSet<W>, s2: NodeSet<W>) -> EmitSignal {
        self.ccps += 1;
        if self.needs_feasibility {
            self.combiner
                .graph()
                .connecting_edges_into(s1, s2, &mut self.edge_buf);
            if !self.combiner.feasible(s1, s2, &self.edge_buf) {
                // Sequential `combine` would return no candidate: no class is created, and the
                // membership answer must stay `false`.
                return EmitSignal::Continue;
            }
        }
        let union = s1 | s2;
        self.members.insert(union);
        self.buckets[union.len()][shard_of(union)].push((s1, s2));
        EmitSignal::Continue
    }

    fn ccp_count(&self) -> usize {
        self.ccps
    }
}

/// Pairs per work-stealing chunk. Small enough that a star level's dominant shard splits into
/// many stealable pieces, large enough that the per-chunk staging table and claim traffic stay
/// negligible next to the costing itself.
const STEAL_CHUNK_PAIRS: usize = 1024;

/// One contiguous segment of a shard's level bucket — the unit of work-stealing.
struct Chunk {
    shard: usize,
    start: usize,
    end: usize,
}

/// Shared state of one level of the work-stealing cost pass.
struct LevelWork<const W: usize> {
    /// Chunks in `(shard, start)` order; the install phase replays each shard's chunks in
    /// ascending order, reproducing the sequential fold over that shard's pair list.
    chunks: Vec<Chunk>,
    /// Cursor of the next unclaimed chunk; workers claim with a `fetch_add`.
    claim: AtomicUsize,
    /// Per-chunk staged winners, written exactly once by the claiming worker before the
    /// level's install barrier.
    staged: Vec<OnceLock<DpTable<W>>>,
}

/// Splits every level's shard buckets into the chunk lists the workers steal from.
fn build_level_work<const W: usize>(
    buckets: &[Vec<Vec<(NodeSet<W>, NodeSet<W>)>>],
) -> Vec<LevelWork<W>> {
    buckets
        .iter()
        .map(|level| {
            let mut chunks = Vec::new();
            for (shard, bucket) in level.iter().enumerate() {
                let mut start = 0;
                while start < bucket.len() {
                    let end = bucket.len().min(start + STEAL_CHUNK_PAIRS);
                    chunks.push(Chunk { shard, start, end });
                    start = end;
                }
            }
            let staged = (0..chunks.len()).map(|_| OnceLock::new()).collect();
            LevelWork {
                chunks,
                claim: AtomicUsize::new(0),
                staged,
            }
        })
        .collect()
}

/// What one cost-pass worker did.
#[derive(Default)]
struct WorkerStats {
    /// Pairs whose cost this worker evaluated (both inputs present in the table).
    pairs: usize,
    /// Pairs skipped because an input class had been pruned at an earlier level.
    pruned_pairs: usize,
    /// Candidates discarded because their accumulated cost exceeded the bound.
    pruned_classes: usize,
    /// Chunks this worker claimed whose shard it does not install.
    stolen_chunks: usize,
}

/// Runs the two-pass parallel exact enumeration with `threads ≥ 2` workers. A `bound` — the
/// best heuristic full-plan cost — enables branch-and-bound pruning of the cost pass.
///
/// `sink` is the caller's observability sink (thread-locals do not cross into the worker
/// scope): worker 0 reports per-size-level `cost_pass_level{,_pairs,_ns}` events through it.
/// `None` — the default — makes the instrumentation free.
#[allow(clippy::too_many_arguments)]
pub(crate) fn optimize_parallel_exact<M: CostModel<W> + Sync, const W: usize>(
    graph: &Hypergraph<W>,
    catalog: &Catalog<W>,
    cost_model: &M,
    threads: usize,
    ccp_budget: usize,
    deadline: Option<Instant>,
    bound: Option<f64>,
    sink: Option<Arc<dyn ObsvSink>>,
) -> ParallelExact<W> {
    debug_assert!(threads >= 2, "threads = 1 takes the sequential path");
    let n = graph.node_count();
    let combiner = JoinCombiner::new(graph, catalog, cost_model);

    // Pass 1: serial structure enumeration under the sequential budget semantics.
    let structure_span = Span::enter("structure");
    let mut handler = BudgetedHandler::new(StructureHandler::new(&combiner, n), ccp_budget);
    if let Some(d) = deadline {
        handler = handler.with_deadline(d);
    }
    let _ = DpHyp::new(graph, &mut handler).run();
    drop(structure_span);
    if handler.aborted() {
        return ParallelExact::Aborted {
            ccps: handler.ccp_count(),
            time_exceeded: handler.deadline_exceeded(),
        };
    }
    let ccps = handler.ccp_count();
    let buckets = handler.into_inner().buckets;
    let work = build_level_work(&buckets);

    // Pass 2: seed the leaves, then cost level by level in lockstep.
    let cost_span = Span::enter("cost_pass");
    let table = ShardedDpTable::<W>::new();
    for relation in 0..n {
        table.insert_leaf(relation, catalog.cardinality(relation));
    }
    let budget = SharedBudget::new(deadline);
    let barrier = Barrier::new(threads);
    let stats = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let (buckets, work, table, combiner, budget, barrier) =
                    (&buckets, &work, &table, &combiner, &budget, &barrier);
                // Only worker 0 reports per-level events; the others run uninstrumented.
                let sink = if t == 0 { sink.as_deref() } else { None };
                scope.spawn(move || {
                    cost_pass_worker(
                        t, threads, n, buckets, work, table, combiner, budget, barrier, bound, sink,
                    )
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("cost-pass worker panicked"))
            .collect::<Vec<_>>()
    });
    drop(cost_span);
    if budget.aborted() {
        return ParallelExact::Aborted {
            // The structure pass completed within budget; report the pairs actually costed.
            ccps: budget.pairs(),
            time_exceeded: true,
        };
    }
    let prune = PruneCounters {
        pruned_pairs: stats.iter().map(|s| s.pruned_pairs).sum(),
        pruned_classes: stats.iter().map(|s| s.pruned_classes).sum(),
        // The bound never tightens here: the only class that could lower it — the full set —
        // is costed in the pass's final level.
        bound_updates: 0,
    };
    ParallelExact::Completed {
        table: table.into_merged(),
        ccps,
        per_thread_pairs: stats.iter().map(|s| s.pairs).collect(),
        prune,
        stolen_chunks: stats.iter().map(|s| s.stolen_chunks).sum(),
    }
}

/// One worker of the cost pass; returns its work tallies.
///
/// Every worker executes *all* levels and hits *both* barriers per level unconditionally —
/// an abort only skips the processing inside a level — so no combination of deadline firings
/// can strand a subset of workers at a barrier.
#[allow(clippy::too_many_arguments)]
fn cost_pass_worker<M: CostModel<W> + ?Sized, const W: usize>(
    t: usize,
    threads: usize,
    node_count: usize,
    buckets: &[Vec<Vec<(NodeSet<W>, NodeSet<W>)>>],
    work: &[LevelWork<W>],
    table: &ShardedDpTable<W>,
    combiner: &JoinCombiner<'_, M, W>,
    budget: &SharedBudget,
    barrier: &Barrier,
    bound: Option<f64>,
    sink: Option<&dyn ObsvSink>,
) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let mut edge_buf: Vec<EdgeId> = Vec::new();
    let mut polled = 0usize;
    for level in 2..=node_count {
        let level_buckets = &buckets[level];
        let level_work = &work[level];
        let level_started = sink.map(|_| Instant::now());
        // Read phase: all inputs are of a strictly smaller size and are sealed behind the
        // read guards. Workers race for chunks off the shared cursor.
        {
            let reader = table.read_all();
            if !budget.aborted() {
                let mut evaluated = 0usize;
                'claims: loop {
                    let i = level_work.claim.fetch_add(1, Ordering::Relaxed);
                    let Some(chunk) = level_work.chunks.get(i) else {
                        break;
                    };
                    if chunk.shard % threads != t {
                        stats.stolen_chunks += 1;
                    }
                    let mut staging: DpTable<W> = DpTable::new();
                    for &(s1, s2) in &level_buckets[chunk.shard][chunk.start..chunk.end] {
                        polled += 1;
                        if polled.is_multiple_of(SharedBudget::DEADLINE_CHECK_INTERVAL)
                            && budget.poll_deadline()
                        {
                            break 'claims;
                        }
                        let (Some(a), Some(b)) = (reader.get(s1), reader.get(s2)) else {
                            // At least one input class was pruned at an earlier level; under a
                            // monotone model every plan through it is over the bound too.
                            stats.pruned_pairs += 1;
                            continue;
                        };
                        evaluated += 1;
                        let (a, b) = (a.stats(), b.stats());
                        combiner
                            .graph()
                            .connecting_edges_into(s1, s2, &mut edge_buf);
                        if let Some(candidate) = combiner.combine(&a, &b, &edge_buf) {
                            // Strictly-over-the-bound candidates can never be part of a plan
                            // cheaper than the one we already hold; ties survive so the winner
                            // stays identical to the unpruned enumeration.
                            if bound.is_some_and(|ub| candidate.cost > ub) {
                                stats.pruned_classes += 1;
                            } else {
                                staging.offer(candidate);
                            }
                        }
                    }
                    let _ = level_work.staged[i].set(staging);
                }
                stats.pairs += evaluated;
                budget.add_pairs(evaluated);
            }
        }
        barrier.wait();
        // Install phase: each shard is folded by its install owner alone, ascending chunk
        // order — the sequential fold over that shard's segment minima.
        if !budget.aborted() {
            for (i, chunk) in level_work.chunks.iter().enumerate() {
                if chunk.shard % threads != t {
                    continue;
                }
                let staging = level_work.staged[i]
                    .get()
                    .expect("claimed chunks are staged before the install barrier");
                for class in staging.classes() {
                    let join = class
                        .best_join
                        .expect("staged classes are joins; leaves were seeded before the scope");
                    table
                        .shard(shard_of(class.set))
                        .write()
                        .expect("shard lock poisoned")
                        .offer(Candidate {
                            set: class.set,
                            cardinality: class.cardinality,
                            cost: class.cost,
                            join: Some(CandidateJoin {
                                left: join.left,
                                right: join.right,
                                op: join.op,
                                predicates: staging.best_join_predicates(class),
                            }),
                        });
                }
            }
        }
        barrier.wait();
        // Per-size-level instrumentation, reported once per level by worker 0 from behind
        // the install barrier (so the level is fully installed when the event lands).
        if let (Some(sink), Some(started)) = (sink, level_started) {
            let pairs: usize = level_buckets.iter().map(|b| b.len()).sum();
            sink.event("cost_pass_level", level as u64);
            sink.event("cost_pass_level_pairs", pairs as u64);
            sink.event("cost_pass_level_ns", started.elapsed().as_nanos() as u64);
        }
    }
    stats
}
