//! # DPhyp — dynamic-programming join enumeration over hypergraphs
//!
//! This crate is a from-scratch implementation of the DPhyp algorithm of
//! *Dynamic Programming Strikes Back* (Moerkotte & Neumann, SIGMOD 2008), together with the
//! paper's technique for handling non-inner joins (outer joins, semi-/antijoins, nestjoins and
//! their dependent counterparts) by encoding reorderability conflicts as hyperedges.
//!
//! ## Quick start
//!
//! ```
//! use dphyp::{Optimizer, OptimizerOptions};
//! use qo_hypergraph::Hypergraph;
//! use qo_catalog::Catalog;
//!
//! // A chain query R0 - R1 - R2.
//! let mut b = Hypergraph::builder(3);
//! b.add_simple_edge(0, 1);
//! b.add_simple_edge(1, 2);
//! let graph = b.build();
//! let mut cat = Catalog::builder(3);
//! cat.set_cardinality(0, 10.0)
//!     .set_cardinality(1, 10_000.0)
//!     .set_cardinality(2, 100.0)
//!     .set_selectivity(0, 0.001)
//!     .set_selectivity(1, 0.01);
//! let catalog = cat.build();
//!
//! let optimizer = Optimizer::new(OptimizerOptions::default());
//! let result = optimizer.optimize_hypergraph(&graph, &catalog).unwrap();
//! assert_eq!(result.plan.relations(), graph.all_nodes());
//! assert_eq!(result.ccp_count, 4); // chain of 3 relations has 4 csg-cmp-pairs
//! ```
//!
//! ## Architecture
//!
//! * [`enumerate::DpHyp`] is the pure enumeration engine: it walks the hypergraph and reports
//!   every csg-cmp-pair exactly once to a [`qo_catalog::CcpHandler`].
//! * [`Optimizer`] is the user-facing facade: it wires the enumeration to the cost-based handler
//!   of `qo-catalog`, reconstructs the final [`qo_plan::PlanNode`], and offers the full
//!   non-inner-join pipeline (operator tree → TES conflict analysis → hypergraph → DPhyp) from
//!   `qo-algebra`.
//! * The TES generate-and-test variant the paper compares against in Fig. 8a is available via
//!   [`OptimizerOptions::conflict_encoding`] = [`ConflictEncoding::TesTest`].
//! * [`adaptive::AdaptiveOptimizer`] is the production driver on top: it runs the exact
//!   enumeration under a csg-cmp-pair budget and degrades to IDP-k and greedy ordering when a
//!   query's search space (e.g. a 96-relation star, `95·2^94` pairs) cannot be enumerated
//!   exactly, reporting the chosen tier and the spent budget in [`OptimizeResult`].
//! * [`canon`] and [`recost`] are the plan-cache substrate used by the `qo-service` subsystem:
//!   relation-order-invariant spec canonicalization (with a structure-only shape hash) and
//!   incremental re-costing of a cached plan table under drifted statistics.

pub mod adaptive;
pub mod canon;
pub mod enumerate;
mod optimizer;
mod parallel;
mod query;
pub mod recost;

pub use adaptive::{
    optimize_adaptive, AdaptiveOptimizer, AdaptiveOptions, BudgetTelemetry, OptimizeResult,
    ParallelTelemetry, PlanTier,
};
pub use canon::{canonicalize, same_shape, CanonicalQuery};
pub use enumerate::{count_ccps_dphyp, DpHyp};
pub use optimizer::{
    optimize, CostModelKind, OptimizeError, Optimized, Optimizer, OptimizerOptions,
};
pub use query::{optimize_spec, QuerySpec, QuerySpecBuilder, SpecEdge, MAX_WIDE_NODES};
pub use recost::{recost_spec, CachedTable, Recosted};

pub use qo_baselines::IdpStrategy;

pub use qo_algebra::{ConflictEncoding, OpTree, Predicate};
pub use qo_bitset::{NodeId, NodeSet, NodeSet128, NodeSet64};
pub use qo_catalog::{Catalog, CostModel, CoutCost, ExecutionFeedback, MixedCost, ObservedStats};
pub use qo_hypergraph::{Hyperedge, Hypergraph};
pub use qo_plan::{JoinOp, PlanNode};
