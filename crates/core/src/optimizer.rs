//! The user-facing optimizer facade.

use crate::enumerate::DpHyp;
use qo_algebra::{derive_query, ConflictEncoding, OpTree, OpTreeError};
use qo_catalog::{
    Catalog, CcpHandler, CostBasedHandler, CostModel, CoutCost, JoinCombiner, MixedCost,
};
use qo_hypergraph::Hypergraph;
use qo_plan::PlanNode;
use std::fmt;

/// Built-in cost models selectable through [`OptimizerOptions`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CostModelKind {
    /// The classic `C_out` model (sum of intermediate cardinalities).
    #[default]
    Cout,
    /// A simple asymmetric hash-join / nested-loop model.
    Mixed,
}

/// Options controlling the optimizer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptimizerOptions {
    /// The cost model used to compare plans.
    pub cost_model: CostModelKind,
    /// How non-inner-join conflicts are communicated to the enumeration (hyperedges, the
    /// paper's proposal, or the generate-and-test TES check it compares against).
    pub conflict_encoding: ConflictEncoding,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            cost_model: CostModelKind::Cout,
            conflict_encoding: ConflictEncoding::Hyperedges,
        }
    }
}

/// Errors returned by the optimizer.
#[derive(Clone, Debug, PartialEq)]
pub enum OptimizeError {
    /// The catalog does not match the hypergraph.
    InvalidCatalog(String),
    /// The operator tree failed validation.
    InvalidTree(OpTreeError),
    /// No cross-product-free plan covering all relations exists (the query graph is not
    /// connected in the sense of Def. 3). `largest_covered` is the size of the largest connected
    /// set the enumeration found.
    NoCompletePlan {
        /// Size of the largest connected relation set found.
        largest_covered: usize,
    },
    /// The query has more relations than the widest compiled mask width supports
    /// (see [`crate::MAX_WIDE_NODES`]).
    TooManyRelations {
        /// Relations in the query.
        count: usize,
        /// Largest supported relation count.
        max: usize,
    },
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::InvalidCatalog(msg) => write!(f, "invalid catalog: {msg}"),
            OptimizeError::InvalidTree(e) => write!(f, "invalid operator tree: {e}"),
            OptimizeError::NoCompletePlan { largest_covered } => write!(
                f,
                "no cross-product-free plan covers all relations (largest connected set: {largest_covered} relations)"
            ),
            OptimizeError::TooManyRelations { count, max } => write!(
                f,
                "query has {count} relations but the widest compiled node-set width supports {max}"
            ),
        }
    }
}

impl std::error::Error for OptimizeError {}

impl From<OpTreeError> for OptimizeError {
    fn from(e: OpTreeError) -> Self {
        OptimizeError::InvalidTree(e)
    }
}

/// The result of a successful optimization.
#[derive(Clone, Debug)]
pub struct Optimized {
    /// The optimal plan under the chosen cost model.
    pub plan: PlanNode,
    /// Its cost.
    pub cost: f64,
    /// Its estimated output cardinality.
    pub cardinality: f64,
    /// Number of csg-cmp-pairs processed (= cost-function invocations, the paper's measure of
    /// enumeration work).
    pub ccp_count: usize,
    /// Number of entries in the DP table (= connected subgraphs discovered).
    pub dp_entries: usize,
}

/// The DPhyp-based join-order optimizer.
///
/// See the crate-level documentation for a usage example.
#[derive(Clone, Debug, Default)]
pub struct Optimizer {
    options: OptimizerOptions,
}

impl Optimizer {
    /// Creates an optimizer with the given options.
    pub fn new(options: OptimizerOptions) -> Self {
        Optimizer { options }
    }

    /// The options this optimizer runs with.
    pub fn options(&self) -> &OptimizerOptions {
        &self.options
    }

    /// Optimizes a query given directly as an annotated hypergraph plus catalog.
    ///
    /// This is the entry point for inner-join queries and for callers that build their
    /// hypergraph themselves (e.g. the benchmark workloads). Non-inner operators are honored if
    /// the catalog's edge annotations carry them.
    ///
    /// Generic over the mask width `W`: existing single-word callers are unchanged (the width
    /// is inferred from the graph), and `Hypergraph<2>` queries of up to 128 relations run the
    /// same monomorphized enumeration over two-word masks. Callers that only have a
    /// width-agnostic [`crate::QuerySpec`] should use [`Optimizer::optimize_spec`], which picks
    /// the width once per optimization.
    pub fn optimize_hypergraph<const W: usize>(
        &self,
        graph: &Hypergraph<W>,
        catalog: &Catalog<W>,
    ) -> Result<Optimized, OptimizeError> {
        catalog
            .validate_for(graph)
            .map_err(OptimizeError::InvalidCatalog)?;
        let enforce_tes = self.options.conflict_encoding == ConflictEncoding::TesTest;
        // Dispatch on the model kind exactly once; everything downstream — combiner, handler,
        // `EmitCsgCmp` — is monomorphized per concrete model, so the per-pair hot path has no
        // virtual dispatch.
        match self.options.cost_model {
            CostModelKind::Cout => optimize_graph_with(graph, catalog, &CoutCost, enforce_tes),
            CostModelKind::Mixed => optimize_graph_with(graph, catalog, &MixedCost, enforce_tes),
        }
    }

    /// Optimizes a query given as an initial operator tree (Sec. 5): runs the SES/TES conflict
    /// analysis, derives the hypergraph according to the configured
    /// [`ConflictEncoding`], and enumerates with DPhyp.
    pub fn optimize_tree(&self, tree: &OpTree) -> Result<Optimized, OptimizeError> {
        let query = derive_query(tree, self.options.conflict_encoding)?;
        let enforce_tes = self.options.conflict_encoding == ConflictEncoding::TesTest;
        match self.options.cost_model {
            CostModelKind::Cout => {
                optimize_graph_with(&query.graph, &query.catalog, &CoutCost, enforce_tes)
            }
            CostModelKind::Mixed => {
                optimize_graph_with(&query.graph, &query.catalog, &MixedCost, enforce_tes)
            }
        }
    }

    /// Like [`Optimizer::optimize_hypergraph`] but with a caller-provided cost model. Concrete
    /// model types get a fully monomorphized enumeration; `&dyn CostModel` still works for
    /// models chosen at runtime.
    pub fn optimize_hypergraph_with_model<M: CostModel<W> + ?Sized, const W: usize>(
        &self,
        graph: &Hypergraph<W>,
        catalog: &Catalog<W>,
        cost_model: &M,
    ) -> Result<Optimized, OptimizeError> {
        catalog
            .validate_for(graph)
            .map_err(OptimizeError::InvalidCatalog)?;
        let enforce_tes = self.options.conflict_encoding == ConflictEncoding::TesTest;
        optimize_graph_with(graph, catalog, cost_model, enforce_tes)
    }
}

/// Shared optimization driver used by the facade (and, through re-export, by the benchmark
/// harness for the generate-and-test comparison). Monomorphized per cost model.
pub(crate) fn optimize_graph_with<M: CostModel<W> + ?Sized, const W: usize>(
    graph: &Hypergraph<W>,
    catalog: &Catalog<W>,
    cost_model: &M,
    enforce_tes: bool,
) -> Result<Optimized, OptimizeError> {
    let combiner = JoinCombiner::new(graph, catalog, cost_model).with_tes_enforcement(enforce_tes);
    let mut handler = CostBasedHandler::new(combiner);
    let _ = DpHyp::new(graph, &mut handler).run(); // unbudgeted handlers never abort
    let ccp_count = handler.ccp_count();
    let table = handler.into_table();
    let all = graph.all_nodes();
    let Some(class) = table.get(all) else {
        let largest_covered = table.classes().map(|c| c.set.len()).max().unwrap_or(0);
        return Err(OptimizeError::NoCompletePlan { largest_covered });
    };
    let plan = table
        .reconstruct(all)
        .expect("class for the full relation set must reconstruct");
    Ok(Optimized {
        cost: class.cost,
        cardinality: class.cardinality,
        plan,
        ccp_count,
        dp_entries: table.len(),
    })
}

/// Convenience shorthand: optimizes an annotated hypergraph with default options and the `C_out`
/// cost model. Generic over the mask width like [`Optimizer::optimize_hypergraph`].
pub fn optimize<const W: usize>(
    graph: &Hypergraph<W>,
    catalog: &Catalog<W>,
) -> Result<Optimized, OptimizeError> {
    Optimizer::new(OptimizerOptions::default()).optimize_hypergraph(graph, catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qo_algebra::Predicate;
    use qo_bitset::{NodeSet, SubsetIter};
    use qo_catalog::{CountingHandler, EdgeAnnotation, SubPlanStats};
    use qo_plan::{JoinOp, PlanShape};
    use std::collections::HashMap;

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    /// Exhaustive optimal cost over all cross-product-free bushy plans, using the same
    /// `JoinCombiner` as the optimizer — the ground truth for optimality tests.
    fn exhaustive_optimal_cost(graph: &Hypergraph, catalog: &Catalog) -> Option<f64> {
        let model = CoutCost;
        let combiner = JoinCombiner::new(graph, catalog, &model);
        let all = graph.all_nodes();
        let mut best: HashMap<NodeSet, SubPlanStats> = HashMap::new();
        for r in all {
            best.insert(
                NodeSet::single(r),
                SubPlanStats::leaf(r, catalog.cardinality(r)),
            );
        }
        // Ascending mask order: subsets come before supersets.
        for s in SubsetIter::new(all) {
            if s.is_singleton() {
                continue;
            }
            let mut best_here: Option<SubPlanStats> = None;
            for s1 in s.proper_subsets() {
                let s2 = s - s1;
                let (Some(a), Some(b)) = (best.get(&s1), best.get(&s2)) else {
                    continue;
                };
                let edges = graph.connecting_edges(s1, s2);
                if let Some(cand) = combiner.combine(a, b, &edges) {
                    if best_here.is_none_or(|c| cand.cost < c.cost) {
                        best_here = Some(cand.stats());
                    }
                }
            }
            if let Some(c) = best_here {
                best.insert(s, c);
            }
        }
        best.get(&all).map(|c| c.cost)
    }

    fn chain_graph(cards: &[f64], sels: &[f64]) -> (Hypergraph, Catalog) {
        let n = cards.len();
        let mut b = Hypergraph::builder(n);
        for i in 0..n - 1 {
            b.add_simple_edge(i, i + 1);
        }
        let g = b.build();
        let mut cb = Catalog::builder(n);
        for (i, &c) in cards.iter().enumerate() {
            cb.set_cardinality(i, c);
        }
        for (i, &s) in sels.iter().enumerate() {
            cb.set_selectivity(i, s);
        }
        (g, cb.build())
    }

    #[test]
    fn optimizes_a_simple_chain_optimally() {
        let (g, c) = chain_graph(&[10.0, 10_000.0, 100.0], &[0.001, 0.01]);
        let result = optimize(&g, &c).unwrap();
        assert_eq!(result.plan.relations(), g.all_nodes());
        assert_eq!(result.plan.join_count(), 2);
        assert_eq!(result.ccp_count, 4);
        assert_eq!(result.dp_entries, 6); // 3 singletons + {01} + {12} + {012}
        let exhaustive = exhaustive_optimal_cost(&g, &c).unwrap();
        assert!(
            (result.cost - exhaustive).abs() < 1e-9,
            "DPhyp must be optimal"
        );
    }

    #[test]
    fn dphyp_is_optimal_on_various_graphs() {
        // Star with skewed cardinalities.
        let mut b = Hypergraph::builder(5);
        for i in 1..5 {
            b.add_simple_edge(0, i);
        }
        let g = b.build();
        let mut cb = Catalog::builder(5);
        cb.set_cardinality(0, 1_000_000.0);
        for i in 1..5 {
            cb.set_cardinality(i, 10.0 * i as f64);
            cb.set_selectivity(i - 1, 0.001 * i as f64);
        }
        let c = cb.build();
        let result = optimize(&g, &c).unwrap();
        let exhaustive = exhaustive_optimal_cost(&g, &c).unwrap();
        assert!((result.cost - exhaustive).abs() < 1e-6 * exhaustive.max(1.0));

        // Cycle with a hyperedge.
        let mut b = Hypergraph::builder(6);
        for i in 0..6 {
            b.add_simple_edge(i, (i + 1) % 6);
        }
        b.add_hyperedge(ns(&[0, 1]), ns(&[3, 4]));
        let g = b.build();
        let mut cb = Catalog::builder(6);
        for i in 0..6 {
            cb.set_cardinality(i, 100.0 + 50.0 * i as f64);
        }
        for e in 0..7 {
            cb.set_selectivity(e, 0.05);
        }
        let c = cb.build();
        let result = optimize(&g, &c).unwrap();
        let exhaustive = exhaustive_optimal_cost(&g, &c).unwrap();
        assert!((result.cost - exhaustive).abs() < 1e-6 * exhaustive.max(1.0));
    }

    #[test]
    fn reports_missing_complete_plan_for_disconnected_queries() {
        let mut b = Hypergraph::<1>::builder(4);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(2, 3);
        let g = b.build();
        let c = Catalog::uniform(4, 100.0, 2, 0.1);
        let err = optimize(&g, &c).unwrap_err();
        assert_eq!(err, OptimizeError::NoCompletePlan { largest_covered: 2 });
        assert!(err.to_string().contains("cross-product-free"));
    }

    #[test]
    fn rejects_mismatched_catalog() {
        let mut b = Hypergraph::<1>::builder(3);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(1, 2);
        let g = b.build();
        let c = Catalog::uniform(5, 100.0, 2, 0.1);
        assert!(matches!(
            optimize(&g, &c),
            Err(OptimizeError::InvalidCatalog(_))
        ));
    }

    #[test]
    fn mixed_cost_model_changes_plans_but_still_covers_all_relations() {
        let (g, c) = chain_graph(&[5.0, 50_000.0, 20.0, 300.0], &[0.0001, 0.01, 0.05]);
        let cout = Optimizer::new(OptimizerOptions {
            cost_model: CostModelKind::Cout,
            ..Default::default()
        })
        .optimize_hypergraph(&g, &c)
        .unwrap();
        let mixed = Optimizer::new(OptimizerOptions {
            cost_model: CostModelKind::Mixed,
            ..Default::default()
        })
        .optimize_hypergraph(&g, &c)
        .unwrap();
        assert_eq!(cout.plan.relations(), mixed.plan.relations());
        // Identical enumeration effort regardless of the cost model.
        assert_eq!(cout.ccp_count, mixed.ccp_count);
    }

    fn left_deep_star(ops: &[JoinOp]) -> OpTree {
        let mut tree = OpTree::relation(0, 10_000.0);
        for (i, op) in ops.iter().enumerate() {
            let rel = i + 1;
            tree = OpTree::op(
                *op,
                Predicate::between(0, rel, 0.001),
                tree,
                OpTree::relation(rel, 100.0 * (rel as f64)),
            );
        }
        tree
    }

    #[test]
    fn non_inner_pipeline_preserves_operators() {
        let tree = left_deep_star(&[JoinOp::Inner, JoinOp::LeftOuter, JoinOp::LeftAnti]);
        let result = Optimizer::default().optimize_tree(&tree).unwrap();
        assert_eq!(result.plan.relations(), ns(&[0, 1, 2, 3]));
        let ops = result.plan.operators();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops.iter().filter(|o| **o == JoinOp::Inner).count(), 1);
        assert_eq!(ops.iter().filter(|o| **o == JoinOp::LeftOuter).count(), 1);
        assert_eq!(ops.iter().filter(|o| **o == JoinOp::LeftAnti).count(), 1);
    }

    #[test]
    fn antijoin_star_is_forced_left_deep() {
        // All antijoins: the derived hyperedges pin the antijoin order, so the optimal plan is
        // the original left-deep order and the search space is linear.
        let tree = left_deep_star(&[JoinOp::LeftAnti; 5]);
        let result = Optimizer::default().optimize_tree(&tree).unwrap();
        assert_eq!(result.plan.shape(), PlanShape::LeftDeep);
        assert_eq!(result.ccp_count, 5, "one csg-cmp-pair per antijoin");
        // Antijoined satellites appear in their original order bottom-up.
        let ops = result.plan.operators();
        assert!(ops.iter().all(|o| *o == JoinOp::LeftAnti));
    }

    #[test]
    fn tes_test_encoding_finds_the_same_cost_with_more_work() {
        let tree = left_deep_star(&[
            JoinOp::LeftAnti,
            JoinOp::LeftAnti,
            JoinOp::Inner,
            JoinOp::LeftAnti,
            JoinOp::Inner,
        ]);
        let hyper = Optimizer::new(OptimizerOptions {
            conflict_encoding: ConflictEncoding::Hyperedges,
            ..Default::default()
        })
        .optimize_tree(&tree)
        .unwrap();
        let tes = Optimizer::new(OptimizerOptions {
            conflict_encoding: ConflictEncoding::TesTest,
            ..Default::default()
        })
        .optimize_tree(&tree)
        .unwrap();
        assert_eq!(hyper.plan.relations(), tes.plan.relations());
        assert!(
            tes.ccp_count >= hyper.ccp_count,
            "generate-and-test must consider at least as many candidate pairs \
             (tes: {}, hyperedges: {})",
            tes.ccp_count,
            hyper.ccp_count
        );
    }

    #[test]
    fn dependent_join_pipeline_produces_apply_operators() {
        // R0 d-join f(R0), then an inner join with R2.
        let tree = OpTree::op(
            JoinOp::Inner,
            Predicate::between(1, 2, 0.01),
            OpTree::op(
                JoinOp::DepJoin,
                Predicate::between(0, 1, 1.0),
                OpTree::relation(0, 1000.0),
                OpTree::lateral_relation(1, 5.0, ns(&[0])),
            ),
            OpTree::relation(2, 200.0),
        );
        let result = Optimizer::default().optimize_tree(&tree).unwrap();
        let ops = result.plan.operators();
        assert!(
            ops.contains(&JoinOp::DepJoin),
            "the lateral reference must surface as a dependent join: {ops:?}"
        );
    }

    #[test]
    fn counting_and_optimizing_agree_on_search_space_size() {
        let (g, c) = chain_graph(&[10.0, 20.0, 30.0, 40.0, 50.0], &[0.1, 0.1, 0.1, 0.1]);
        let mut counter = CountingHandler::new();
        let _ = DpHyp::new(&g, &mut counter).run();
        let result = optimize(&g, &c).unwrap();
        assert_eq!(counter.ccp_count(), result.ccp_count);
    }

    #[test]
    fn invalid_tree_error_is_propagated() {
        let bad = OpTree::join(
            Predicate::between(0, 0, 0.5),
            OpTree::relation(0, 10.0),
            OpTree::relation(0, 10.0),
        );
        let err = Optimizer::default().optimize_tree(&bad).unwrap_err();
        assert!(matches!(err, OptimizeError::InvalidTree(_)));
        assert!(err.to_string().contains("operator tree"));
    }

    #[test]
    fn per_edge_operator_annotations_work_without_the_tree_pipeline() {
        // Manually annotate a hypergraph edge with a left outer join.
        let mut b = Hypergraph::<1>::builder(2);
        b.add_simple_edge(0, 1);
        let g = b.build();
        let mut cb = Catalog::builder(2);
        cb.set_cardinality(0, 50.0).set_cardinality(1, 500.0);
        cb.annotate_edge(0, EdgeAnnotation::with_op(0.001, JoinOp::LeftOuter));
        let c = cb.build();
        let result = optimize(&g, &c).unwrap();
        assert_eq!(result.plan.operators(), vec![JoinOp::LeftOuter]);
        // Left outer join preserves the left side: cardinality at least 50.
        assert!(result.cardinality >= 50.0);
    }
}
