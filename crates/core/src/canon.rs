//! Spec canonicalization: a relation-order-invariant normal form for [`QuerySpec`]s.
//!
//! A plan cache that keys on the literal spec would treat `A ⋈ B` and `B ⋈ A` — or the same
//! join graph submitted with relations declared in a different order — as different queries.
//! This module computes a *canonical relabeling* of a spec: structurally equal queries (equal
//! up to renaming/reordering of relations and reordering of edges) map to the identical
//! canonical spec, and queries that differ only in statistics map to canonical specs with the
//! identical *shape* (same relations-and-edges skeleton, different numbers). Two artifacts come
//! out of the pass:
//!
//! * [`CanonicalQuery::shape_hash`] — a 64-bit digest of the hypergraph shape alone (edge
//!   structure, operators, lateral references — **no** cardinalities or selectivities),
//!   invariant under any relabeling of the relations. This is the plan-cache key; statistics
//!   are digested separately so a stats-only change is distinguishable from a shape change.
//! * The canonical spec plus the id mappings back to the caller's original relation and edge
//!   ids, so a plan computed in canonical space translates back losslessly
//!   ([`qo_plan::PlanNode::map_ids`]).
//!
//! The structural signatures come from Weisfeiler–Leman-style color refinement over the
//! hypergraph: every relation starts with a color derived from its lateral-reference structure
//! and is iteratively re-colored with the multiset of its incident edge signatures (sides
//! viewed as color multisets, commutative operators side-normalized) until the color partition
//! stops refining. Relations the refinement cannot distinguish are ordered by their statistics
//! as a tie-break — that choice never affects the shape hash (which uses colors only), and a
//! pathological tie that still relabels inconsistently is caught downstream by the cache's
//! structural-equality check ([`same_shape`]) rather than trusted blindly.

use crate::query::{QuerySpec, SpecEdge};
use qo_bitset::NodeId;
use qo_plan::JoinOp;

/// FxHash-style fold of one word into a running hash — [`qo_catalog::StatsEpoch`]'s scheme,
/// reused so the workspace has exactly one implementation of it.
#[inline]
fn mix(h: u64, word: u64) -> u64 {
    qo_catalog::StatsEpoch(h).fold(word).0
}

/// Final avalanche: spreads low-entropy chains over the whole 64-bit range.
#[inline]
fn finish(h: u64) -> u64 {
    qo_catalog::StatsEpoch(h).finalize().0
}

/// Hashes a word sequence with a domain seed.
fn hash_seq(seed: u64, words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = mix(qo_catalog::StatsEpoch::SEED.0, seed);
    for w in words {
        h = mix(h, w);
    }
    finish(h)
}

/// Stable rank of an operator (its position in [`JoinOp::ALL`]).
fn op_rank(op: JoinOp) -> u64 {
    JoinOp::ALL
        .iter()
        .position(|&o| o == op)
        .expect("JoinOp::ALL is exhaustive") as u64
}

/// A spec in canonical relabeling, with the mappings back to the original id spaces.
#[derive(Clone, Debug)]
pub struct CanonicalQuery {
    /// The canonically relabeled spec: relation ids in canonical order, edges in canonical
    /// order with sorted hypernode sides (commutative edges side-normalized).
    pub spec: QuerySpec,
    /// `to_original[canonical_relation_id] = original_relation_id`.
    pub to_original: Vec<NodeId>,
    /// `edge_to_original[canonical_edge_index] = original_edge_index`.
    pub edge_to_original: Vec<usize>,
    /// Relation-order-invariant digest of the hypergraph *shape* (structure, operators,
    /// laterals — no statistics). Statistics never feed into this hash, so a stats-only drift
    /// keeps it unchanged.
    pub shape_hash: u64,
}

impl CanonicalQuery {
    /// Translates a plan over canonical ids back into the original relation and edge ids.
    pub fn plan_to_original(&self, plan: &qo_plan::PlanNode) -> qo_plan::PlanNode {
        plan.map_ids(&|r| self.to_original[r], &|e| self.edge_to_original[e])
    }
}

/// Computes the canonical form of a spec. See the [module docs](self) for the invariants.
pub fn canonicalize(spec: &QuerySpec) -> CanonicalQuery {
    let _span = qo_obsv::Span::enter("canonicalize");
    let n = spec.node_count();
    let edges: Vec<&SpecEdge> = spec.edges().collect();

    // ---- Weisfeiler–Leman color refinement over the hypergraph structure. ----
    // Initial colors: lateral-reference structure only (out-degree plus being-referenced
    // count); everything else emerges from refinement over the edges.
    let mut referenced = vec![0u64; n];
    for r in 0..n {
        for &t in spec.lateral_refs(r) {
            referenced[t] += 1;
        }
    }
    let init: Vec<u64> = (0..n)
        .map(|r| {
            finish(mix(
                mix(0x1db3, spec.lateral_refs(r).len() as u64),
                referenced[r],
            ))
        })
        .collect();
    let color = refine(spec, &edges, init);

    // ---- Shape hash: colors + edge signatures + lateral skeleton, all order-invariant. ----
    let mut relation_colors = color.clone();
    relation_colors.sort_unstable();
    let mut edge_hashes: Vec<u64> = edges.iter().map(|e| edge_shape_hash(e, &color)).collect();
    edge_hashes.sort_unstable();
    let mut lateral_hashes: Vec<u64> = (0..n)
        .map(|r| {
            let mut refs: Vec<u64> = spec.lateral_refs(r).iter().map(|&t| color[t]).collect();
            refs.sort_unstable();
            hash_seq(0x1a7e, std::iter::once(color[r]).chain(refs))
        })
        .collect();
    lateral_hashes.sort_unstable();
    let shape_hash = hash_seq(
        SHAPE_SEED,
        [n as u64, edges.len() as u64]
            .into_iter()
            .chain(relation_colors)
            .chain(edge_hashes)
            .chain(lateral_hashes),
    );

    // ---- Canonical relation order: structural color, original id as the tie-break. ----
    // Statistics are deliberately *not* part of the order: the cache's bread-and-butter case
    // is the same query resubmitted with drifted statistics, and a stats-sensitive order would
    // relabel the drifted submission differently — turning every drift into a structural
    // mismatch and starving the incremental re-cost path. With colors only, a drift keeps the
    // relabeling bit-stable. The id tie-break fires only for relations the refinement cannot
    // distinguish (true structural symmetry); a *permuted* submission of such a query may then
    // canonicalize to a different-but-isomorphic skeleton, which the cache detects via
    // [`same_shape`] and answers with a full (still correct) optimization.
    let mut order: Vec<NodeId> = (0..n).collect();
    order.sort_by(|&a, &b| color[a].cmp(&color[b]).then(a.cmp(&b)));
    // order[c] = original id of canonical relation c; invert for original → canonical.
    let mut to_canonical = vec![0usize; n];
    for (c, &orig) in order.iter().enumerate() {
        to_canonical[orig] = c;
    }

    // ---- Canonical edges: remap, sort sides, side-normalize commutative ops, sort edges. ----
    struct CanonEdge {
        left: Vec<NodeId>,
        right: Vec<NodeId>,
        flex: Vec<NodeId>,
        op: JoinOp,
        selectivity: f64,
        original: usize,
    }
    let mut canon_edges: Vec<CanonEdge> = edges
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let map_side = |ids: &[NodeId]| {
                let mut v: Vec<NodeId> = ids.iter().map(|&r| to_canonical[r]).collect();
                v.sort_unstable();
                v
            };
            let mut left = map_side(e.left());
            let mut right = map_side(e.right());
            let flex = map_side(e.flex());
            // A commutative operator's sides are interchangeable: store the lexicographically
            // smaller one first so `A -- B` and `B -- A` submissions canonicalize identically.
            if e.op().is_commutative() && left > right {
                std::mem::swap(&mut left, &mut right);
            }
            CanonEdge {
                left,
                right,
                flex,
                op: e.op(),
                selectivity: e.selectivity(),
                original: i,
            }
        })
        .collect();
    // Selectivities stay out of the sort for the same drift-stability reason as above; the
    // original index breaks ties between parallel edges.
    canon_edges.sort_by(|a, b| {
        a.left
            .cmp(&b.left)
            .then_with(|| a.right.cmp(&b.right))
            .then_with(|| a.flex.cmp(&b.flex))
            .then_with(|| op_rank(a.op).cmp(&op_rank(b.op)))
            .then_with(|| a.original.cmp(&b.original))
    });

    // ---- Assemble the canonical spec. ----
    let mut b = QuerySpec::builder(n);
    for (c, &orig) in order.iter().enumerate() {
        b.set_cardinality(c, spec.cardinality(orig));
        let mut refs: Vec<NodeId> = spec
            .lateral_refs(orig)
            .iter()
            .map(|&t| to_canonical[t])
            .collect();
        refs.sort_unstable();
        if !refs.is_empty() {
            b.set_lateral_refs(c, &refs);
        }
    }
    let mut edge_to_original = Vec::with_capacity(canon_edges.len());
    for e in &canon_edges {
        if e.flex.is_empty() {
            b.add_edge(&e.left, &e.right, e.selectivity, e.op);
        } else {
            b.add_generalized_edge(&e.left, &e.right, &e.flex, e.selectivity);
        }
        edge_to_original.push(e.original);
    }

    CanonicalQuery {
        spec: b.build(),
        to_original: order,
        edge_to_original,
        shape_hash,
    }
}

/// Weisfeiler–Leman color refinement: starting from `init`, repeatedly re-colors every
/// relation with (its color, the sorted multiset of its incident edge signatures, its lateral
/// in/out color profile) until the color partition stops refining. The result is invariant
/// under relabeling of the relations.
fn refine(spec: &QuerySpec, edges: &[&SpecEdge], init: Vec<u64>) -> Vec<u64> {
    let n = spec.node_count();
    // Incidence lists: (edge index, role) per relation, so a round touches each edge once per
    // member instead of scanning the whole edge list per relation.
    let mut incident: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    for (i, e) in edges.iter().enumerate() {
        for &r in e.left() {
            incident[r].push((i, 0));
        }
        for &r in e.right() {
            incident[r].push((i, 1));
        }
        for &r in e.flex() {
            incident[r].push((i, 2));
        }
    }
    let mut lat_in: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for s in 0..n {
        for &t in spec.lateral_refs(s) {
            lat_in[t].push(s);
        }
    }

    let distinct = |c: &[u64]| {
        let mut v = c.to_vec();
        v.sort_unstable();
        v.dedup();
        v.len()
    };
    let mut color = init;
    let mut partition = distinct(&color);
    // WL converges within n productive rounds (each grows the partition by at least one).
    for _ in 0..n.max(1) {
        let mut next = Vec::with_capacity(n);
        for r in 0..n {
            let mut contributions: Vec<u64> = incident[r]
                .iter()
                .map(|&(i, role)| edge_signature_for(edges[i], role, &color))
                .collect();
            // Lateral references refine too: the colors a relation references, and the colors
            // that reference it.
            let mut lat_out: Vec<u64> = spec.lateral_refs(r).iter().map(|&t| color[t]).collect();
            lat_out.sort_unstable();
            let mut lat_in_colors: Vec<u64> = lat_in[r].iter().map(|&s| color[s]).collect();
            lat_in_colors.sort_unstable();
            contributions.push(hash_seq(0xa110, lat_out));
            contributions.push(hash_seq(0xa111, lat_in_colors));
            contributions.sort_unstable();
            next.push(hash_seq(
                0xc010,
                std::iter::once(color[r]).chain(contributions),
            ));
        }
        let next_partition = distinct(&next);
        color = next;
        if next_partition == partition {
            break;
        }
        partition = next_partition;
    }
    color
}

/// Edge signature from the perspective of one member (role 0 = left, 1 = right, 2 = flex);
/// commutative operators erase the left/right distinction.
fn edge_signature_for(e: &SpecEdge, role: u64, color: &[u64]) -> u64 {
    let commutative = e.op().is_commutative();
    let side_hash = |ids: &[NodeId], seed: u64| {
        let mut c: Vec<u64> = ids.iter().map(|&r| color[r]).collect();
        c.sort_unstable();
        hash_seq(seed, c)
    };
    let mut sides = [side_hash(e.left(), 0x51de), side_hash(e.right(), 0x51de)];
    let mut eff_role = role;
    if commutative {
        // Normalize: sides in sorted hash order, membership role collapsed to "a side".
        if sides[0] > sides[1] {
            sides.swap(0, 1);
        }
        if eff_role == 1 {
            eff_role = 0;
        }
    }
    hash_seq(
        0xed9e,
        [
            op_rank(e.op()),
            eff_role,
            sides[0],
            sides[1],
            side_hash(e.flex(), 0xf1e8),
        ],
    )
}

/// Role-free structural hash of one edge (used for the shape digest and stats tie-breaks).
fn edge_shape_hash(e: &SpecEdge, color: &[u64]) -> u64 {
    let side_hash = |ids: &[NodeId], seed: u64| {
        let mut c: Vec<u64> = ids.iter().map(|&r| color[r]).collect();
        c.sort_unstable();
        hash_seq(seed, c)
    };
    let mut sides = [side_hash(e.left(), 0x51de), side_hash(e.right(), 0x51de)];
    if e.op().is_commutative() && sides[0] > sides[1] {
        sides.swap(0, 1);
    }
    hash_seq(
        0xed9f,
        [
            op_rank(e.op()),
            sides[0],
            sides[1],
            side_hash(e.flex(), 0xf1e8),
        ],
    )
}

/// Do two specs describe the same hypergraph *shape* — identical relation count, lateral
/// structure and edge skeleton (sides, flex sets, operators), ignoring all statistics?
///
/// This is an exact positional comparison, intended for specs that are both already canonical:
/// the plan cache uses it to confirm that a shape-hash match is a true structural match (and
/// not a 64-bit collision or an inconsistent tie-break relabeling) before reusing a cached
/// table.
pub fn same_shape(a: &QuerySpec, b: &QuerySpec) -> bool {
    if a.node_count() != b.node_count() || a.edge_count() != b.edge_count() {
        return false;
    }
    for r in 0..a.node_count() {
        if a.lateral_refs(r) != b.lateral_refs(r) {
            return false;
        }
    }
    a.edges().zip(b.edges()).all(|(x, y)| {
        x.left() == y.left() && x.right() == y.right() && x.flex() == y.flex() && x.op() == y.op()
    })
}

/// Seed of the shape digest (a distinct domain from every per-component seed above).
const SHAPE_SEED: u64 = 0x0005_11a9_e5ee_d000;

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_spec(n: usize) -> QuerySpec {
        let mut b = QuerySpec::builder(n);
        for i in 0..n {
            b.set_cardinality(i, 100.0 + i as f64);
        }
        for i in 0..n - 1 {
            b.add_simple_edge(i, i + 1, 0.01 + 0.001 * i as f64);
        }
        b.build()
    }

    /// Applies a permutation to a spec: relation `r` becomes `perm[r]`, edges shuffled by a
    /// rotation, sides swapped for every other inner edge.
    fn permuted(spec: &QuerySpec, perm: &[usize], rotate: usize) -> QuerySpec {
        let n = spec.node_count();
        let mut b = QuerySpec::builder(n);
        for r in 0..n {
            b.set_cardinality(perm[r], spec.cardinality(r));
            let refs: Vec<usize> = spec.lateral_refs(r).iter().map(|&t| perm[t]).collect();
            if !refs.is_empty() {
                b.set_lateral_refs(perm[r], &refs);
            }
        }
        let edges: Vec<_> = spec.edges().cloned().collect();
        for (i, e) in edges
            .iter()
            .cycle()
            .skip(rotate % edges.len().max(1))
            .take(edges.len())
            .enumerate()
        {
            let map = |ids: &[usize]| ids.iter().map(|&r| perm[r]).collect::<Vec<_>>();
            let (mut l, mut r) = (map(e.left()), map(e.right()));
            if e.op().is_commutative() && i % 2 == 1 {
                std::mem::swap(&mut l, &mut r);
            }
            if e.flex().is_empty() {
                b.add_edge(&l, &r, e.selectivity(), e.op());
            } else {
                b.add_generalized_edge(&l, &r, &map(e.flex()), e.selectivity());
            }
        }
        b.build()
    }

    /// An asymmetric snowflake: fact R0 with three spokes of lengths 1, 2 and 3. The WL
    /// refinement fully discriminates such a tree, so canonicalization is exact on it.
    fn snowflake_spec() -> QuerySpec {
        let mut b = QuerySpec::builder(7);
        for (i, card) in [50_000.0, 10.0, 200.0, 30.0, 400.0, 50.0, 60.0]
            .into_iter()
            .enumerate()
        {
            b.set_cardinality(i, card);
        }
        b.add_simple_edge(0, 1, 0.01); // spoke A: one hop
        b.add_simple_edge(0, 2, 0.02); // spoke B: two hops
        b.add_simple_edge(2, 3, 0.03);
        b.add_simple_edge(0, 4, 0.04); // spoke C: three hops
        b.add_simple_edge(4, 5, 0.05);
        b.add_simple_edge(5, 6, 0.06);
        b.build()
    }

    #[test]
    fn canonical_form_is_permutation_invariant() {
        let spec = snowflake_spec();
        let canon = canonicalize(&spec);
        let perm = [3usize, 0, 5, 1, 6, 2, 4];
        let shuffled = permuted(&spec, &perm, 3);
        let canon2 = canonicalize(&shuffled);
        assert_eq!(canon.shape_hash, canon2.shape_hash);
        assert_eq!(canon.spec, canon2.spec, "identical canonical spec");
        // The mapping leads back to each representation's own ids.
        for c in 0..7 {
            assert_eq!(perm[canon.to_original[c]], canon2.to_original[c]);
        }
    }

    #[test]
    fn symmetric_shapes_stay_shape_invariant_under_permutation() {
        // A palindromic chain has a mirror automorphism the id tie-break cannot see through:
        // the canonical *spec* of a permuted copy may be a different (isomorphic) skeleton,
        // but the color-based shape hash must agree regardless.
        let spec = chain_spec(7);
        let canon = canonicalize(&spec);
        let perm = [6usize, 5, 4, 3, 2, 1, 0];
        let canon2 = canonicalize(&permuted(&spec, &perm, 2));
        assert_eq!(canon.shape_hash, canon2.shape_hash);
        assert!(
            same_shape(&canon.spec, &canon2.spec),
            "a pure mirror maps cleanly"
        );
    }

    #[test]
    fn stats_drift_keeps_the_canonical_relabeling_bit_stable() {
        // The plan cache's core scenario: the same query resubmitted with different
        // statistics must relabel identically, so the cached table stays structurally valid.
        let spec = chain_spec(8);
        let mut b = QuerySpec::builder(8);
        for i in 0..8 {
            b.set_cardinality(i, 5.0 * (8.0 - i as f64));
        }
        for i in 0..7 {
            b.add_simple_edge(i, i + 1, 0.5 - 0.01 * i as f64);
        }
        let drifted = b.build();
        let c1 = canonicalize(&spec);
        let c2 = canonicalize(&drifted);
        assert_eq!(c1.shape_hash, c2.shape_hash);
        assert_eq!(c1.to_original, c2.to_original, "identical relabeling");
        assert_eq!(c1.edge_to_original, c2.edge_to_original);
        assert!(same_shape(&c1.spec, &c2.spec));
    }

    #[test]
    fn shape_hash_ignores_statistics() {
        let spec = chain_spec(6);
        let mut b = QuerySpec::builder(6);
        for i in 0..6 {
            b.set_cardinality(i, 9999.0 - i as f64);
        }
        for i in 0..5 {
            b.add_simple_edge(i, i + 1, 0.5);
        }
        let drifted = b.build();
        let c1 = canonicalize(&spec);
        let c2 = canonicalize(&drifted);
        assert_eq!(c1.shape_hash, c2.shape_hash, "stats are not shape");
        assert!(same_shape(&c1.spec, &c2.spec));
        assert_ne!(c1.spec, c2.spec, "the statistics themselves differ");
    }

    #[test]
    fn structural_changes_change_the_shape_hash() {
        let spec = chain_spec(6);
        let base = canonicalize(&spec).shape_hash;

        // Extra edge.
        let mut b = QuerySpec::builder(6);
        for i in 0..6 {
            b.set_cardinality(i, 100.0 + i as f64);
        }
        for i in 0..5 {
            b.add_simple_edge(i, i + 1, 0.01);
        }
        b.add_simple_edge(0, 5, 0.01);
        assert_ne!(canonicalize(&b.build()).shape_hash, base, "cycle ≠ chain");

        // Same edge count, different shape (star vs chain).
        let mut b = QuerySpec::builder(6);
        for i in 1..6 {
            b.add_simple_edge(0, i, 0.01);
        }
        assert_ne!(canonicalize(&b.build()).shape_hash, base, "star ≠ chain");

        // An operator change is a shape change.
        let mut b = QuerySpec::builder(6);
        for i in 0..5 {
            b.add_edge(&[i], &[i + 1], 0.01, JoinOp::Inner);
        }
        let inner_hash = canonicalize(&b.build()).shape_hash;
        let mut b = QuerySpec::builder(6);
        for i in 0..4 {
            b.add_edge(&[i], &[i + 1], 0.01, JoinOp::Inner);
        }
        b.add_edge(&[4], &[5], 0.01, JoinOp::LeftAnti);
        assert_ne!(canonicalize(&b.build()).shape_hash, inner_hash);

        // Growing a hypernode changes the shape.
        let mut b = QuerySpec::builder(6);
        for i in 0..4 {
            b.add_simple_edge(i, i + 1, 0.01);
        }
        b.add_edge(&[3, 4], &[5], 0.01, JoinOp::Inner);
        let hyper = canonicalize(&b.build()).shape_hash;
        assert_ne!(hyper, base);

        // Lateral references are shape.
        let mut b = QuerySpec::builder(6);
        for i in 0..5 {
            b.add_simple_edge(i, i + 1, 0.01);
        }
        b.set_lateral_refs(5, &[0]);
        assert_ne!(canonicalize(&b.build()).shape_hash, base);
    }

    #[test]
    fn commutative_side_swap_is_normalized_away() {
        let mut b = QuerySpec::builder(2);
        b.set_cardinality(0, 10.0).set_cardinality(1, 500.0);
        b.add_edge(&[0], &[1], 0.1, JoinOp::Inner);
        let ab = canonicalize(&b.build());
        let mut b = QuerySpec::builder(2);
        b.set_cardinality(0, 10.0).set_cardinality(1, 500.0);
        b.add_edge(&[1], &[0], 0.1, JoinOp::Inner);
        let ba = canonicalize(&b.build());
        assert_eq!(ab.spec, ba.spec);
        assert_eq!(ab.shape_hash, ba.shape_hash);

        // A non-commutative operator keeps its orientation: swapping sides IS a different query.
        let mut b = QuerySpec::builder(2);
        b.add_edge(&[0], &[1], 0.1, JoinOp::LeftAnti);
        let fwd = canonicalize(&b.build());
        let mut b = QuerySpec::builder(2);
        b.add_edge(&[1], &[0], 0.1, JoinOp::LeftAnti);
        let rev = canonicalize(&b.build());
        // Both relations are structurally distinguishable (antijoin left vs right), so the
        // canonical specs coincide — the *relabeling* differs instead.
        assert_eq!(fwd.shape_hash, rev.shape_hash);
        assert_ne!(fwd.to_original, rev.to_original);
    }

    #[test]
    fn plans_translate_back_to_original_ids() {
        let spec = chain_spec(5);
        let canon = canonicalize(&spec);
        let result = crate::optimize_spec(&canon.spec).unwrap();
        let translated = canon.plan_to_original(&result.plan);
        assert_eq!(translated.relation_ids(), (0..5).collect::<Vec<_>>());
        // Costs and cardinalities are untouched by relabeling.
        assert_eq!(translated.cost(), result.plan.cost());
        assert_eq!(translated.cardinality(), result.plan.cardinality());
    }
}
