//! The [`NodeSet`] bit-set representation of a set of relations.

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Sub, SubAssign};

/// Index of a relation (a node of the query hypergraph).
///
/// Relations are identified by their position in the total node order `≺` of the hypergraph,
/// i.e. `R_i ≺ R_j ⟺ i < j`, exactly as in the paper.
pub type NodeId = usize;

/// Maximum number of relations representable in a [`NodeSet`].
pub const MAX_NODES: usize = 64;

/// A set of relations, represented as a 64-bit mask.
///
/// Bit `i` is set iff relation `R_i` is a member. All operations are O(1) bit manipulation.
///
/// ```
/// use qo_bitset::NodeSet;
///
/// let s = NodeSet::from_iter([1, 3, 4]);
/// assert_eq!(s.len(), 3);
/// assert!(s.contains(3));
/// assert_eq!(s.min_node(), Some(1));
/// let t = NodeSet::single(3);
/// assert_eq!((s - t).iter().collect::<Vec<_>>(), vec![1, 4]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeSet(u64);

impl NodeSet {
    /// The empty set.
    pub const EMPTY: NodeSet = NodeSet(0);

    /// Creates a set from a raw bit mask.
    #[inline]
    pub const fn from_mask(mask: u64) -> Self {
        NodeSet(mask)
    }

    /// Returns the raw bit mask.
    #[inline]
    pub const fn mask(self) -> u64 {
        self.0
    }

    /// The singleton set `{node}`.
    ///
    /// # Panics
    /// Panics if `node >= MAX_NODES`.
    #[inline]
    pub fn single(node: NodeId) -> Self {
        assert!(node < MAX_NODES, "node id {node} out of range");
        NodeSet(1u64 << node)
    }

    /// The set `{0, 1, .., n-1}` of the first `n` nodes.
    ///
    /// # Panics
    /// Panics if `n > MAX_NODES`.
    #[inline]
    pub fn first_n(n: usize) -> Self {
        assert!(n <= MAX_NODES, "{n} exceeds MAX_NODES");
        if n == MAX_NODES {
            NodeSet(u64::MAX)
        } else {
            NodeSet((1u64 << n) - 1)
        }
    }

    /// The set of nodes in the half-open range `[lo, hi)`.
    #[inline]
    pub fn range(lo: NodeId, hi: NodeId) -> Self {
        assert!(lo <= hi && hi <= MAX_NODES);
        Self::first_n(hi) - Self::first_n(lo)
    }

    /// Returns `B_v = {w | w ≤ v}`, the set of nodes ordered before `v` plus `v` itself.
    ///
    /// This is the "forbidden" prefix used by the enumeration algorithms to avoid emitting
    /// duplicate connected subgraphs.
    #[inline]
    pub fn prefix_through(v: NodeId) -> Self {
        Self::first_n(v + 1)
    }

    /// Is the set empty?
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of elements.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Is this a singleton set?
    #[inline]
    pub const fn is_singleton(self) -> bool {
        self.0 != 0 && self.0 & (self.0 - 1) == 0
    }

    /// Does the set contain `node`?
    #[inline]
    pub const fn contains(self, node: NodeId) -> bool {
        node < MAX_NODES && self.0 & (1u64 << node) != 0
    }

    /// Is `self` a subset of `other` (`self ⊆ other`)?
    #[inline]
    pub const fn is_subset_of(self, other: NodeSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Is `self` a proper subset of `other` (`self ⊂ other`)?
    #[inline]
    pub const fn is_proper_subset_of(self, other: NodeSet) -> bool {
        self.0 != other.0 && self.0 & !other.0 == 0
    }

    /// Is `self` a superset of `other`?
    #[inline]
    pub const fn is_superset_of(self, other: NodeSet) -> bool {
        other.0 & !self.0 == 0
    }

    /// Do the sets have no element in common?
    #[inline]
    pub const fn is_disjoint(self, other: NodeSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Do the sets share at least one element?
    #[inline]
    pub const fn intersects(self, other: NodeSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersection(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub const fn difference(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & !other.0)
    }

    /// Adds a node, returning the new set.
    #[inline]
    pub fn with(self, node: NodeId) -> NodeSet {
        self.union(NodeSet::single(node))
    }

    /// Removes a node, returning the new set.
    #[inline]
    pub fn without(self, node: NodeId) -> NodeSet {
        self.difference(NodeSet::single(node))
    }

    /// Inserts a node in place.
    #[inline]
    pub fn insert(&mut self, node: NodeId) {
        *self = self.with(node);
    }

    /// Removes a node in place.
    #[inline]
    pub fn remove(&mut self, node: NodeId) {
        *self = self.without(node);
    }

    /// The smallest element, i.e. `min(S)` of the paper, if the set is non-empty.
    #[inline]
    pub const fn min_node(self) -> Option<NodeId> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as NodeId)
        }
    }

    /// The largest element, if the set is non-empty.
    #[inline]
    pub const fn max_node(self) -> Option<NodeId> {
        if self.0 == 0 {
            None
        } else {
            Some(63 - self.0.leading_zeros() as NodeId)
        }
    }

    /// The singleton `min(S)` as a set (empty if `S` is empty), as defined in Sec. 2.3.
    #[inline]
    pub const fn min_singleton(self) -> NodeSet {
        NodeSet(self.0 & self.0.wrapping_neg())
    }

    /// `S \ min(S)` — the non-representative rest of a hypernode (written `min̄(S)` in the paper).
    #[inline]
    pub const fn without_min(self) -> NodeSet {
        NodeSet(self.0 & (self.0.wrapping_sub(1)))
    }

    /// Mixes the raw mask into a well-distributed 64-bit hash.
    ///
    /// This is the hashing primitive of the planner's DP table: a fixed-cost multiply-xor
    /// finalizer (FxHash-style, based on the SplitMix64 mixer) instead of std's SipHash. Node
    /// sets are single machine words, so keyed hashing buys nothing here, and the finalizer's
    /// full avalanche keeps clustered masks (consecutive subsets differ in few bits) spread
    /// across table slots.
    #[inline]
    pub const fn hash64(self) -> u64 {
        let mut z = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Index of this set's hash in a power-of-two table of `1 << bits` slots, using the highest
    /// bits of [`NodeSet::hash64`] (the best-mixed ones for multiply-based finalizers).
    #[inline]
    pub const fn hash_index(self, bits: u32) -> usize {
        (self.hash64() >> (64 - bits)) as usize
    }

    /// Iterates over elements in ascending node order.
    #[inline]
    pub fn iter(self) -> NodeSetIter {
        NodeSetIter { remaining: self.0 }
    }

    /// Iterates over elements in descending node order, as required by `Solve` and `EmitCsg`.
    #[inline]
    pub fn iter_descending(self) -> NodeSetRevIter {
        NodeSetRevIter { remaining: self.0 }
    }

    /// Iterates over all non-empty subsets of this set in ascending mask order.
    ///
    /// This ordering guarantees that any proper subset of a subset `X` is enumerated before `X`
    /// whenever both share the same containing set, which is what bottom-up dynamic programming
    /// over subsets (DPsub) requires.
    #[inline]
    pub fn subsets(self) -> crate::SubsetIter {
        crate::SubsetIter::new(self)
    }

    /// Iterates over all non-empty *proper* subsets of this set in ascending mask order.
    #[inline]
    pub fn proper_subsets(self) -> crate::ProperSubsetIter {
        crate::ProperSubsetIter::new(self)
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let mut s = NodeSet::EMPTY;
        for n in iter {
            s.insert(n);
        }
        s
    }
}

impl IntoIterator for NodeSet {
    type Item = NodeId;
    type IntoIter = NodeSetIter;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl BitOr for NodeSet {
    type Output = NodeSet;
    #[inline]
    fn bitor(self, rhs: NodeSet) -> NodeSet {
        self.union(rhs)
    }
}

impl BitOrAssign for NodeSet {
    #[inline]
    fn bitor_assign(&mut self, rhs: NodeSet) {
        *self = self.union(rhs);
    }
}

impl BitAnd for NodeSet {
    type Output = NodeSet;
    #[inline]
    fn bitand(self, rhs: NodeSet) -> NodeSet {
        self.intersection(rhs)
    }
}

impl BitAndAssign for NodeSet {
    #[inline]
    fn bitand_assign(&mut self, rhs: NodeSet) {
        *self = self.intersection(rhs);
    }
}

impl BitXor for NodeSet {
    type Output = NodeSet;
    #[inline]
    fn bitxor(self, rhs: NodeSet) -> NodeSet {
        NodeSet(self.0 ^ rhs.0)
    }
}

impl BitXorAssign for NodeSet {
    #[inline]
    fn bitxor_assign(&mut self, rhs: NodeSet) {
        self.0 ^= rhs.0;
    }
}

impl Sub for NodeSet {
    type Output = NodeSet;
    #[inline]
    fn sub(self, rhs: NodeSet) -> NodeSet {
        self.difference(rhs)
    }
}

impl SubAssign for NodeSet {
    #[inline]
    fn sub_assign(&mut self, rhs: NodeSet) {
        *self = self.difference(rhs);
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for n in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "R{n}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Ascending iterator over the elements of a [`NodeSet`].
#[derive(Clone, Debug)]
pub struct NodeSetIter {
    remaining: u64,
}

impl Iterator for NodeSetIter {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.remaining == 0 {
            return None;
        }
        let node = self.remaining.trailing_zeros() as NodeId;
        self.remaining &= self.remaining - 1;
        Some(node)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for NodeSetIter {}

/// Descending iterator over the elements of a [`NodeSet`].
#[derive(Clone, Debug)]
pub struct NodeSetRevIter {
    remaining: u64,
}

impl Iterator for NodeSetRevIter {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.remaining == 0 {
            return None;
        }
        let node = 63 - self.remaining.leading_zeros() as NodeId;
        self.remaining &= !(1u64 << node);
        Some(node)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for NodeSetRevIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn empty_set_basics() {
        let e = NodeSet::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.min_node(), None);
        assert_eq!(e.max_node(), None);
        assert!(e.min_singleton().is_empty());
        assert_eq!(e.iter().count(), 0);
        assert!(!e.is_singleton());
    }

    #[test]
    fn singleton_basics() {
        let s = NodeSet::single(7);
        assert!(s.is_singleton());
        assert_eq!(s.len(), 1);
        assert_eq!(s.min_node(), Some(7));
        assert_eq!(s.max_node(), Some(7));
        assert_eq!(s.min_singleton(), s);
        assert!(s.without_min().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn singleton_out_of_range_panics() {
        let _ = NodeSet::single(64);
    }

    #[test]
    fn first_n_and_range() {
        assert_eq!(NodeSet::first_n(0), NodeSet::EMPTY);
        assert_eq!(
            NodeSet::first_n(3).iter().collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(NodeSet::first_n(64).len(), 64);
        assert_eq!(
            NodeSet::range(2, 5).iter().collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(NodeSet::range(3, 3), NodeSet::EMPTY);
    }

    #[test]
    fn prefix_through_matches_paper_definition() {
        // B_v = {w | w ≤ v}
        assert_eq!(NodeSet::prefix_through(0), NodeSet::single(0));
        assert_eq!(
            NodeSet::prefix_through(3).iter().collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn membership_and_subset_relations() {
        let s = NodeSet::from_iter([1, 3, 4]);
        let t = NodeSet::from_iter([1, 3]);
        assert!(s.contains(3));
        assert!(!s.contains(2));
        assert!(!s.contains(100));
        assert!(t.is_subset_of(s));
        assert!(t.is_proper_subset_of(s));
        assert!(s.is_subset_of(s));
        assert!(!s.is_proper_subset_of(s));
        assert!(s.is_superset_of(t));
        assert!(s.intersects(t));
        assert!(s.is_disjoint(NodeSet::from_iter([0, 2])));
    }

    #[test]
    fn set_algebra() {
        let a = NodeSet::from_iter([0, 1, 2]);
        let b = NodeSet::from_iter([2, 3]);
        assert_eq!((a | b).iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!((a & b).iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!((a - b).iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!((a ^ b).iter().collect::<Vec<_>>(), vec![0, 1, 3]);

        let mut c = a;
        c |= b;
        assert_eq!(c, a | b);
        c &= b;
        assert_eq!(c, b);
        c -= NodeSet::single(3);
        assert_eq!(c, NodeSet::single(2));
        c ^= NodeSet::single(2);
        assert!(c.is_empty());
    }

    #[test]
    fn insert_and_remove() {
        let mut s = NodeSet::EMPTY;
        s.insert(5);
        s.insert(9);
        assert_eq!(s.len(), 2);
        s.remove(5);
        assert_eq!(s, NodeSet::single(9));
        // removing a non-member is a no-op
        s.remove(17);
        assert_eq!(s, NodeSet::single(9));
    }

    #[test]
    fn min_singleton_and_rest() {
        // Paper example: S = {R4, R5, R6}, min(S) = {R4}, min̄(S) = {R5, R6}.
        let s = NodeSet::from_iter([4, 5, 6]);
        assert_eq!(s.min_singleton(), NodeSet::single(4));
        assert_eq!(s.without_min(), NodeSet::from_iter([5, 6]));
    }

    #[test]
    fn descending_iteration() {
        let s = NodeSet::from_iter([0, 3, 7, 63]);
        assert_eq!(s.iter_descending().collect::<Vec<_>>(), vec![63, 7, 3, 0]);
    }

    #[test]
    fn debug_format() {
        let s = NodeSet::from_iter([0, 2]);
        assert_eq!(format!("{s:?}"), "{R0, R2}");
        assert_eq!(format!("{}", NodeSet::EMPTY), "{}");
    }

    #[test]
    fn hash64_spreads_clustered_masks() {
        // Consecutive subset masks (the access pattern of subset-driven DP) must not collide in
        // the upper bits used for table indexing.
        let mut indexes = BTreeSet::new();
        for mask in 1u64..=256 {
            indexes.insert(NodeSet::from_mask(mask).hash_index(10));
        }
        // 256 keys into 1024 slots: demand a reasonable spread (no catastrophic clustering).
        assert!(indexes.len() > 180, "only {} distinct slots", indexes.len());
        // And determinism.
        assert_eq!(
            NodeSet::from_mask(0xABCD).hash64(),
            NodeSet::from_mask(0xABCD).hash64()
        );
        assert_ne!(
            NodeSet::from_mask(1).hash64(),
            NodeSet::from_mask(2).hash64()
        );
    }

    #[test]
    fn ordering_is_mask_order() {
        // Lexicographic ordering on sets used by the non-commutative operator handling
        // (Sec. 5.4) is implemented as mask order; {R0} < {R1} < {R0,R1} etc.
        assert!(NodeSet::single(0) < NodeSet::single(1));
        assert!(NodeSet::single(1) < NodeSet::from_iter([0, 1]));
    }

    proptest! {
        #[test]
        fn prop_roundtrip_via_btreeset(nodes in proptest::collection::btree_set(0usize..64, 0..20)) {
            let s: NodeSet = nodes.iter().copied().collect();
            let back: BTreeSet<usize> = s.iter().collect();
            prop_assert_eq!(back, nodes.clone());
            prop_assert_eq!(s.len(), nodes.len());
            prop_assert_eq!(s.min_node(), nodes.iter().next().copied());
            prop_assert_eq!(s.max_node(), nodes.iter().next_back().copied());
        }

        #[test]
        fn prop_set_algebra_matches_btreeset(
            a in proptest::collection::btree_set(0usize..64, 0..20),
            b in proptest::collection::btree_set(0usize..64, 0..20),
        ) {
            let sa: NodeSet = a.iter().copied().collect();
            let sb: NodeSet = b.iter().copied().collect();
            let union: BTreeSet<_> = a.union(&b).copied().collect();
            let inter: BTreeSet<_> = a.intersection(&b).copied().collect();
            let diff: BTreeSet<_> = a.difference(&b).copied().collect();
            prop_assert_eq!((sa | sb).iter().collect::<BTreeSet<_>>(), union);
            prop_assert_eq!((sa & sb).iter().collect::<BTreeSet<_>>(), inter);
            prop_assert_eq!((sa - sb).iter().collect::<BTreeSet<_>>(), diff);
            prop_assert_eq!(sa.is_subset_of(sb), a.is_subset(&b));
            prop_assert_eq!(sa.is_disjoint(sb), a.is_disjoint(&b));
        }

        #[test]
        fn prop_descending_is_reverse_of_ascending(mask in any::<u64>()) {
            let s = NodeSet::from_mask(mask);
            let mut asc: Vec<_> = s.iter().collect();
            asc.reverse();
            prop_assert_eq!(asc, s.iter_descending().collect::<Vec<_>>());
        }
    }
}
