//! The [`NodeSet`] bit-set representation of a set of relations.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Sub, SubAssign};

/// Index of a relation (a node of the query hypergraph).
///
/// Relations are identified by their position in the total node order `≺` of the hypergraph,
/// i.e. `R_i ≺ R_j ⟺ i < j`, exactly as in the paper.
pub type NodeId = usize;

/// Maximum number of relations representable in a single-word [`NodeSet64`].
///
/// Wider sets raise the cap in steps of 64: `NodeSet<W>` holds up to [`NodeSet::CAPACITY`]
/// `= 64 * W` relations.
pub const MAX_NODES: usize = 64;

/// A set of relations, represented as a `W`-word bit mask (`64 * W` bits).
///
/// Bit `i` (i.e. bit `i % 64` of word `i / 64`) is set iff relation `R_i` is a member. All
/// operations are O(`W`) word-parallel bit manipulation; for the default width `W = 1` (the
/// [`NodeSet64`] alias, which every non-wide layer of the workspace uses) they compile to the
/// same single-word code as the pre-widening `u64` representation.
///
/// ```
/// use qo_bitset::{NodeSet, NodeSet128};
///
/// let s: NodeSet = NodeSet::from_iter([1, 3, 4]);
/// assert_eq!(s.len(), 3);
/// assert!(s.contains(3));
/// assert_eq!(s.min_node(), Some(1));
/// let t = NodeSet::single(3);
/// assert_eq!((s - t).iter().collect::<Vec<_>>(), vec![1, 4]);
///
/// // Two words hold up to 128 relations.
/// let wide = NodeSet128::from_iter([0, 63, 64, 127]);
/// assert_eq!(wide.len(), 4);
/// assert_eq!(wide.max_node(), Some(127));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeSet<const W: usize = 1>([u64; W]);

/// Single-word node set: up to 64 relations. The workspace-wide default (`NodeSet` without a
/// width parameter resolves to this type in type positions).
pub type NodeSet64 = NodeSet<1>;

/// Two-word node set: up to 128 relations, the ">64 relations" workload tier.
pub type NodeSet128 = NodeSet<2>;

impl<const W: usize> Default for NodeSet<W> {
    fn default() -> Self {
        Self::EMPTY
    }
}

impl<const W: usize> NodeSet<W> {
    /// The empty set.
    pub const EMPTY: NodeSet<W> = NodeSet([0; W]);

    /// Maximum number of relations this width can represent (`64 * W`).
    pub const CAPACITY: usize = 64 * W;

    /// Creates a set from raw words; word `w` holds the membership bits of relations
    /// `64w .. 64w + 63`.
    #[inline]
    pub const fn from_words(words: [u64; W]) -> Self {
        NodeSet(words)
    }

    /// The raw words of the set.
    #[inline]
    pub const fn words(self) -> [u64; W] {
        self.0
    }

    /// Creates a set from a raw 64-bit mask (placed in the lowest word; higher words are zero).
    #[inline]
    pub const fn from_mask(mask: u64) -> Self {
        let mut words = [0; W];
        words[0] = mask;
        NodeSet(words)
    }

    /// Returns the raw bit mask of the lowest word.
    ///
    /// For `W = 1` this is the whole set. Wider sets must fit their members in the first 64
    /// nodes for the mask to be faithful (debug-asserted); use [`NodeSet::words`] otherwise.
    #[inline]
    pub const fn mask(self) -> u64 {
        let mut i = 1;
        while i < W {
            debug_assert!(
                self.0[i] == 0,
                "mask() on a set with members beyond node 63"
            );
            i += 1;
        }
        self.0[0]
    }

    /// The singleton set `{node}`.
    ///
    /// # Panics
    /// Panics if `node >= CAPACITY`.
    #[inline]
    pub fn single(node: NodeId) -> Self {
        assert!(node < Self::CAPACITY, "node id {node} out of range");
        let mut words = [0; W];
        words[node / 64] = 1u64 << (node % 64);
        NodeSet(words)
    }

    /// The set `{0, 1, .., n-1}` of the first `n` nodes.
    ///
    /// # Panics
    /// Panics if `n > CAPACITY`.
    #[inline]
    pub fn first_n(n: usize) -> Self {
        assert!(
            n <= Self::CAPACITY,
            "{n} exceeds the {}-node capacity",
            Self::CAPACITY
        );
        let mut words = [0; W];
        let mut i = 0;
        while i * 64 < n {
            let in_word = n - i * 64;
            words[i] = if in_word >= 64 {
                u64::MAX
            } else {
                (1u64 << in_word) - 1
            };
            i += 1;
        }
        NodeSet(words)
    }

    /// The set of nodes in the half-open range `[lo, hi)`.
    #[inline]
    pub fn range(lo: NodeId, hi: NodeId) -> Self {
        assert!(lo <= hi && hi <= Self::CAPACITY);
        Self::first_n(hi) - Self::first_n(lo)
    }

    /// Returns `B_v = {w | w ≤ v}`, the set of nodes ordered before `v` plus `v` itself.
    ///
    /// This is the "forbidden" prefix used by the enumeration algorithms to avoid emitting
    /// duplicate connected subgraphs.
    #[inline]
    pub fn prefix_through(v: NodeId) -> Self {
        Self::first_n(v + 1)
    }

    /// Is the set empty?
    #[inline]
    pub const fn is_empty(self) -> bool {
        let mut i = 0;
        while i < W {
            if self.0[i] != 0 {
                return false;
            }
            i += 1;
        }
        true
    }

    /// Number of elements.
    #[inline]
    pub const fn len(self) -> usize {
        let mut n = 0;
        let mut i = 0;
        while i < W {
            n += self.0[i].count_ones() as usize;
            i += 1;
        }
        n
    }

    /// Is this a singleton set?
    #[inline]
    pub const fn is_singleton(self) -> bool {
        // Exactly one word is a power of two, every other word is zero.
        let mut seen = false;
        let mut i = 0;
        while i < W {
            let w = self.0[i];
            if w != 0 {
                if seen || w & (w - 1) != 0 {
                    return false;
                }
                seen = true;
            }
            i += 1;
        }
        seen
    }

    /// Does the set contain `node`?
    #[inline]
    pub const fn contains(self, node: NodeId) -> bool {
        node < Self::CAPACITY && self.0[node / 64] & (1u64 << (node % 64)) != 0
    }

    /// Is `self` a subset of `other` (`self ⊆ other`)?
    #[inline]
    pub const fn is_subset_of(self, other: NodeSet<W>) -> bool {
        let mut i = 0;
        while i < W {
            if self.0[i] & !other.0[i] != 0 {
                return false;
            }
            i += 1;
        }
        true
    }

    /// Is `self` a proper subset of `other` (`self ⊂ other`)?
    #[inline]
    pub const fn is_proper_subset_of(self, other: NodeSet<W>) -> bool {
        let mut equal = true;
        let mut i = 0;
        while i < W {
            if self.0[i] & !other.0[i] != 0 {
                return false;
            }
            if self.0[i] != other.0[i] {
                equal = false;
            }
            i += 1;
        }
        !equal
    }

    /// Is `self` a superset of `other`?
    #[inline]
    pub const fn is_superset_of(self, other: NodeSet<W>) -> bool {
        other.is_subset_of(self)
    }

    /// Do the sets have no element in common?
    #[inline]
    pub const fn is_disjoint(self, other: NodeSet<W>) -> bool {
        let mut i = 0;
        while i < W {
            if self.0[i] & other.0[i] != 0 {
                return false;
            }
            i += 1;
        }
        true
    }

    /// Do the sets share at least one element?
    #[inline]
    pub const fn intersects(self, other: NodeSet<W>) -> bool {
        !self.is_disjoint(other)
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: NodeSet<W>) -> NodeSet<W> {
        let mut words = self.0;
        let mut i = 0;
        while i < W {
            words[i] |= other.0[i];
            i += 1;
        }
        NodeSet(words)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersection(self, other: NodeSet<W>) -> NodeSet<W> {
        let mut words = self.0;
        let mut i = 0;
        while i < W {
            words[i] &= other.0[i];
            i += 1;
        }
        NodeSet(words)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub const fn difference(self, other: NodeSet<W>) -> NodeSet<W> {
        let mut words = self.0;
        let mut i = 0;
        while i < W {
            words[i] &= !other.0[i];
            i += 1;
        }
        NodeSet(words)
    }

    /// Symmetric difference.
    #[inline]
    pub const fn symmetric_difference(self, other: NodeSet<W>) -> NodeSet<W> {
        let mut words = self.0;
        let mut i = 0;
        while i < W {
            words[i] ^= other.0[i];
            i += 1;
        }
        NodeSet(words)
    }

    /// Adds a node, returning the new set.
    #[inline]
    pub fn with(self, node: NodeId) -> NodeSet<W> {
        self.union(NodeSet::single(node))
    }

    /// Removes a node, returning the new set.
    #[inline]
    pub fn without(self, node: NodeId) -> NodeSet<W> {
        self.difference(NodeSet::single(node))
    }

    /// Inserts a node in place.
    #[inline]
    pub fn insert(&mut self, node: NodeId) {
        *self = self.with(node);
    }

    /// Removes a node in place.
    #[inline]
    pub fn remove(&mut self, node: NodeId) {
        *self = self.without(node);
    }

    /// The smallest element, i.e. `min(S)` of the paper, if the set is non-empty.
    #[inline]
    pub const fn min_node(self) -> Option<NodeId> {
        let mut i = 0;
        while i < W {
            if self.0[i] != 0 {
                return Some(i * 64 + self.0[i].trailing_zeros() as usize);
            }
            i += 1;
        }
        None
    }

    /// The largest element, if the set is non-empty.
    #[inline]
    pub const fn max_node(self) -> Option<NodeId> {
        let mut i = W;
        while i > 0 {
            i -= 1;
            if self.0[i] != 0 {
                return Some(i * 64 + 63 - self.0[i].leading_zeros() as usize);
            }
        }
        None
    }

    /// The singleton `min(S)` as a set (empty if `S` is empty), as defined in Sec. 2.3.
    #[inline]
    pub const fn min_singleton(self) -> NodeSet<W> {
        let mut words = [0; W];
        let mut i = 0;
        while i < W {
            if self.0[i] != 0 {
                words[i] = self.0[i] & self.0[i].wrapping_neg();
                return NodeSet(words);
            }
            i += 1;
        }
        NodeSet(words)
    }

    /// `S \ min(S)` — the non-representative rest of a hypernode (written `min̄(S)` in the paper).
    #[inline]
    pub const fn without_min(self) -> NodeSet<W> {
        let mut words = self.0;
        let mut i = 0;
        while i < W {
            if words[i] != 0 {
                words[i] &= words[i].wrapping_sub(1);
                break;
            }
            i += 1;
        }
        NodeSet(words)
    }

    /// Mixes the raw mask into a well-distributed 64-bit hash.
    ///
    /// This is the hashing primitive of the planner's DP table: a fixed-cost multiply-xor
    /// finalizer (FxHash-style, based on the SplitMix64 mixer) instead of std's SipHash. Node
    /// sets are a handful of machine words, so keyed hashing buys nothing here, and the
    /// finalizer's full avalanche keeps clustered masks (consecutive subsets differ in few bits)
    /// spread across table slots. All `W` words are folded in (one mixer round per word); for
    /// `W = 1` the function is bit-identical to the pre-widening single-word finalizer.
    #[inline]
    pub const fn hash64(self) -> u64 {
        let mut z: u64 = 0;
        let mut i = 0;
        while i < W {
            z = z
                .wrapping_add(self.0[i])
                .wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            i += 1;
        }
        z
    }

    /// Index of this set's hash in a power-of-two table of `1 << bits` slots, using the highest
    /// bits of [`NodeSet::hash64`] (the best-mixed ones for multiply-based finalizers).
    #[inline]
    pub const fn hash_index(self, bits: u32) -> usize {
        (self.hash64() >> (64 - bits)) as usize
    }

    /// Iterates over elements in ascending node order.
    #[inline]
    pub fn iter(self) -> NodeSetIter<W> {
        NodeSetIter { remaining: self.0 }
    }

    /// Iterates over elements in descending node order, as required by `Solve` and `EmitCsg`.
    #[inline]
    pub fn iter_descending(self) -> NodeSetRevIter<W> {
        NodeSetRevIter { remaining: self.0 }
    }

    /// Iterates over all non-empty subsets of this set in ascending mask order.
    ///
    /// This ordering guarantees that any proper subset of a subset `X` is enumerated before `X`
    /// whenever both share the same containing set, which is what bottom-up dynamic programming
    /// over subsets (DPsub) requires.
    #[inline]
    pub fn subsets(self) -> crate::SubsetIter<W> {
        crate::SubsetIter::new(self)
    }

    /// Iterates over all non-empty *proper* subsets of this set in ascending mask order.
    #[inline]
    pub fn proper_subsets(self) -> crate::ProperSubsetIter<W> {
        crate::ProperSubsetIter::new(self)
    }
}

impl<const W: usize> FromIterator<NodeId> for NodeSet<W> {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let mut s = NodeSet::EMPTY;
        for n in iter {
            s.insert(n);
        }
        s
    }
}

impl<const W: usize> IntoIterator for NodeSet<W> {
    type Item = NodeId;
    type IntoIter = NodeSetIter<W>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<const W: usize> BitOr for NodeSet<W> {
    type Output = NodeSet<W>;
    #[inline]
    fn bitor(self, rhs: NodeSet<W>) -> NodeSet<W> {
        self.union(rhs)
    }
}

impl<const W: usize> BitOrAssign for NodeSet<W> {
    #[inline]
    fn bitor_assign(&mut self, rhs: NodeSet<W>) {
        *self = self.union(rhs);
    }
}

impl<const W: usize> BitAnd for NodeSet<W> {
    type Output = NodeSet<W>;
    #[inline]
    fn bitand(self, rhs: NodeSet<W>) -> NodeSet<W> {
        self.intersection(rhs)
    }
}

impl<const W: usize> BitAndAssign for NodeSet<W> {
    #[inline]
    fn bitand_assign(&mut self, rhs: NodeSet<W>) {
        *self = self.intersection(rhs);
    }
}

impl<const W: usize> BitXor for NodeSet<W> {
    type Output = NodeSet<W>;
    #[inline]
    fn bitxor(self, rhs: NodeSet<W>) -> NodeSet<W> {
        self.symmetric_difference(rhs)
    }
}

impl<const W: usize> BitXorAssign for NodeSet<W> {
    #[inline]
    fn bitxor_assign(&mut self, rhs: NodeSet<W>) {
        *self = self.symmetric_difference(rhs);
    }
}

impl<const W: usize> Sub for NodeSet<W> {
    type Output = NodeSet<W>;
    #[inline]
    fn sub(self, rhs: NodeSet<W>) -> NodeSet<W> {
        self.difference(rhs)
    }
}

impl<const W: usize> SubAssign for NodeSet<W> {
    #[inline]
    fn sub_assign(&mut self, rhs: NodeSet<W>) {
        *self = self.difference(rhs);
    }
}

impl<const W: usize> Ord for NodeSet<W> {
    /// Numeric mask order of the `64 * W`-bit integer (most significant word first), matching
    /// the single-word ordering the non-commutative operator handling (Sec. 5.4) relies on.
    /// Derived array ordering would compare the *low* word first and is therefore not used.
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        let mut i = W;
        while i > 0 {
            i -= 1;
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }
}

impl<const W: usize> PartialOrd for NodeSet<W> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const W: usize> fmt::Debug for NodeSet<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for n in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "R{n}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl<const W: usize> fmt::Display for NodeSet<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Ascending iterator over the elements of a [`NodeSet`].
#[derive(Clone, Debug)]
pub struct NodeSetIter<const W: usize = 1> {
    remaining: [u64; W],
}

impl<const W: usize> Iterator for NodeSetIter<W> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        for i in 0..W {
            let w = self.remaining[i];
            if w != 0 {
                let node = i * 64 + w.trailing_zeros() as usize;
                self.remaining[i] = w & (w - 1);
                return Some(node);
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n: usize = self.remaining.iter().map(|w| w.count_ones() as usize).sum();
        (n, Some(n))
    }
}

impl<const W: usize> ExactSizeIterator for NodeSetIter<W> {}

/// Descending iterator over the elements of a [`NodeSet`].
#[derive(Clone, Debug)]
pub struct NodeSetRevIter<const W: usize = 1> {
    remaining: [u64; W],
}

impl<const W: usize> Iterator for NodeSetRevIter<W> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        for i in (0..W).rev() {
            let w = self.remaining[i];
            if w != 0 {
                let bit = 63 - w.leading_zeros() as usize;
                self.remaining[i] = w & !(1u64 << bit);
                return Some(i * 64 + bit);
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n: usize = self.remaining.iter().map(|w| w.count_ones() as usize).sum();
        (n, Some(n))
    }
}

impl<const W: usize> ExactSizeIterator for NodeSetRevIter<W> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn empty_set_basics() {
        let e = NodeSet64::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.min_node(), None);
        assert_eq!(e.max_node(), None);
        assert!(e.min_singleton().is_empty());
        assert_eq!(e.iter().count(), 0);
        assert!(!e.is_singleton());
    }

    #[test]
    fn singleton_basics() {
        let s = NodeSet64::single(7);
        assert!(s.is_singleton());
        assert_eq!(s.len(), 1);
        assert_eq!(s.min_node(), Some(7));
        assert_eq!(s.max_node(), Some(7));
        assert_eq!(s.min_singleton(), s);
        assert!(s.without_min().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn singleton_out_of_range_panics() {
        let _ = NodeSet64::single(64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn wide_singleton_out_of_range_panics() {
        let _ = NodeSet128::single(128);
    }

    #[test]
    fn first_n_and_range() {
        assert_eq!(NodeSet64::first_n(0), NodeSet::EMPTY);
        assert_eq!(
            NodeSet64::first_n(3).iter().collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(NodeSet64::first_n(64).len(), 64);
        assert_eq!(
            NodeSet64::range(2, 5).iter().collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(NodeSet64::range(3, 3), NodeSet::EMPTY);
    }

    #[test]
    fn wide_first_n_and_range_cross_word_boundaries() {
        assert_eq!(NodeSet128::CAPACITY, 128);
        assert_eq!(NodeSet128::first_n(0), NodeSet::EMPTY);
        assert_eq!(NodeSet128::first_n(64).len(), 64);
        assert_eq!(NodeSet128::first_n(65).len(), 65);
        assert_eq!(NodeSet128::first_n(128).len(), 128);
        assert_eq!(NodeSet128::first_n(96).max_node(), Some(95));
        assert_eq!(
            NodeSet128::range(62, 66).iter().collect::<Vec<_>>(),
            vec![62, 63, 64, 65]
        );
        assert_eq!(NodeSet128::prefix_through(64).len(), 65);
    }

    #[test]
    fn prefix_through_matches_paper_definition() {
        // B_v = {w | w ≤ v}
        assert_eq!(NodeSet64::prefix_through(0), NodeSet::single(0));
        assert_eq!(
            NodeSet64::prefix_through(3).iter().collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn membership_and_subset_relations() {
        let s = NodeSet64::from_iter([1, 3, 4]);
        let t = NodeSet64::from_iter([1, 3]);
        assert!(s.contains(3));
        assert!(!s.contains(2));
        assert!(!s.contains(100));
        assert!(t.is_subset_of(s));
        assert!(t.is_proper_subset_of(s));
        assert!(s.is_subset_of(s));
        assert!(!s.is_proper_subset_of(s));
        assert!(s.is_superset_of(t));
        assert!(s.intersects(t));
        assert!(s.is_disjoint(NodeSet::from_iter([0, 2])));
    }

    #[test]
    fn wide_membership_and_subset_relations_across_words() {
        let s = NodeSet128::from_iter([1, 63, 64, 100]);
        let t = NodeSet128::from_iter([63, 100]);
        assert!(s.contains(64));
        assert!(!s.contains(65));
        assert!(!s.contains(200));
        assert!(t.is_subset_of(s));
        assert!(t.is_proper_subset_of(s));
        assert!(s.is_superset_of(t));
        assert!(s.intersects(t));
        assert!(s.is_disjoint(NodeSet::from_iter([2, 65])));
        assert!(!s.is_singleton());
        assert!(NodeSet128::single(127).is_singleton());
    }

    #[test]
    fn set_algebra() {
        let a = NodeSet64::from_iter([0, 1, 2]);
        let b = NodeSet64::from_iter([2, 3]);
        assert_eq!((a | b).iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!((a & b).iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!((a - b).iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!((a ^ b).iter().collect::<Vec<_>>(), vec![0, 1, 3]);

        let mut c = a;
        c |= b;
        assert_eq!(c, a | b);
        c &= b;
        assert_eq!(c, b);
        c -= NodeSet::single(3);
        assert_eq!(c, NodeSet::single(2));
        c ^= NodeSet::single(2);
        assert!(c.is_empty());
    }

    #[test]
    fn insert_and_remove() {
        let mut s = NodeSet64::EMPTY;
        s.insert(5);
        s.insert(9);
        assert_eq!(s.len(), 2);
        s.remove(5);
        assert_eq!(s, NodeSet::single(9));
        // removing a non-member is a no-op
        s.remove(17);
        assert_eq!(s, NodeSet::single(9));
    }

    #[test]
    fn min_singleton_and_rest() {
        // Paper example: S = {R4, R5, R6}, min(S) = {R4}, min̄(S) = {R5, R6}.
        let s = NodeSet64::from_iter([4, 5, 6]);
        assert_eq!(s.min_singleton(), NodeSet::single(4));
        assert_eq!(s.without_min(), NodeSet::from_iter([5, 6]));
    }

    #[test]
    fn wide_min_max_and_rest_in_the_high_word() {
        let s = NodeSet128::from_iter([70, 100, 127]);
        assert_eq!(s.min_node(), Some(70));
        assert_eq!(s.max_node(), Some(127));
        assert_eq!(s.min_singleton(), NodeSet::single(70));
        assert_eq!(s.without_min(), NodeSet::from_iter([100, 127]));
        let mixed = NodeSet128::from_iter([3, 70]);
        assert_eq!(mixed.min_singleton(), NodeSet::single(3));
        assert_eq!(mixed.without_min(), NodeSet::single(70));
    }

    #[test]
    fn descending_iteration() {
        let s = NodeSet64::from_iter([0, 3, 7, 63]);
        assert_eq!(s.iter_descending().collect::<Vec<_>>(), vec![63, 7, 3, 0]);
        let w = NodeSet128::from_iter([0, 63, 64, 127]);
        assert_eq!(
            w.iter_descending().collect::<Vec<_>>(),
            vec![127, 64, 63, 0]
        );
    }

    #[test]
    fn debug_format() {
        let s = NodeSet64::from_iter([0, 2]);
        assert_eq!(format!("{s:?}"), "{R0, R2}");
        assert_eq!(format!("{}", NodeSet64::EMPTY), "{}");
        assert_eq!(format!("{}", NodeSet128::from_iter([1, 64])), "{R1, R64}");
    }

    #[test]
    fn hash64_spreads_clustered_masks() {
        // Consecutive subset masks (the access pattern of subset-driven DP) must not collide in
        // the upper bits used for table indexing.
        let mut indexes = BTreeSet::new();
        for mask in 1u64..=256 {
            indexes.insert(NodeSet64::from_mask(mask).hash_index(10));
        }
        // 256 keys into 1024 slots: demand a reasonable spread (no catastrophic clustering).
        assert!(indexes.len() > 180, "only {} distinct slots", indexes.len());
        // And determinism.
        assert_eq!(
            NodeSet64::from_mask(0xABCD).hash64(),
            NodeSet64::from_mask(0xABCD).hash64()
        );
        assert_ne!(
            NodeSet64::from_mask(1).hash64(),
            NodeSet64::from_mask(2).hash64()
        );
    }

    #[test]
    fn wide_hash64_folds_all_words() {
        // Sets differing only in the high word must hash differently (the low word alone would
        // collide them), and clustered high-word masks must spread too.
        assert_ne!(
            NodeSet128::from_iter([0]).hash64(),
            NodeSet128::from_iter([0, 64]).hash64()
        );
        assert_ne!(
            NodeSet128::from_iter([64]).hash64(),
            NodeSet128::from_iter([65]).hash64()
        );
        let mut indexes = BTreeSet::new();
        for i in 64..128 {
            for j in 0..32 {
                indexes.insert(NodeSet128::from_iter([i, j]).hash_index(12));
            }
        }
        assert!(
            indexes.len() > 1500,
            "only {} distinct slots",
            indexes.len()
        );
    }

    #[test]
    fn ordering_is_mask_order() {
        // Lexicographic ordering on sets used by the non-commutative operator handling
        // (Sec. 5.4) is implemented as mask order; {R0} < {R1} < {R0,R1} etc.
        assert!(NodeSet64::single(0) < NodeSet::single(1));
        assert!(NodeSet64::single(1) < NodeSet::from_iter([0, 1]));
        // For the wide widths, numeric order compares high words first: any set containing a
        // high-word member is larger than every low-word-only set.
        assert!(NodeSet128::single(63) < NodeSet128::single(64));
        assert!(NodeSet128::from_iter([0, 1, 2, 3]) < NodeSet128::single(64));
        assert!(NodeSet128::from_iter([64]) < NodeSet128::from_iter([0, 64]));
    }

    #[test]
    fn word_accessors_round_trip() {
        let s = NodeSet128::from_iter([5, 64, 127]);
        let words = s.words();
        assert_eq!(words[0], 1 << 5);
        assert_eq!(words[1], (1 << 0) | (1 << 63));
        assert_eq!(NodeSet128::from_words(words), s);
        assert_eq!(NodeSet64::from_mask(0b101).mask(), 0b101);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_via_btreeset(nodes in proptest::collection::btree_set(0usize..64, 0..20)) {
            let s: NodeSet = nodes.iter().copied().collect();
            let back: BTreeSet<usize> = s.iter().collect();
            prop_assert_eq!(back, nodes.clone());
            prop_assert_eq!(s.len(), nodes.len());
            prop_assert_eq!(s.min_node(), nodes.iter().next().copied());
            prop_assert_eq!(s.max_node(), nodes.iter().next_back().copied());
        }

        #[test]
        fn prop_set_algebra_matches_btreeset(
            a in proptest::collection::btree_set(0usize..64, 0..20),
            b in proptest::collection::btree_set(0usize..64, 0..20),
        ) {
            let sa: NodeSet = a.iter().copied().collect();
            let sb: NodeSet = b.iter().copied().collect();
            let union: BTreeSet<_> = a.union(&b).copied().collect();
            let inter: BTreeSet<_> = a.intersection(&b).copied().collect();
            let diff: BTreeSet<_> = a.difference(&b).copied().collect();
            prop_assert_eq!((sa | sb).iter().collect::<BTreeSet<_>>(), union);
            prop_assert_eq!((sa & sb).iter().collect::<BTreeSet<_>>(), inter);
            prop_assert_eq!((sa - sb).iter().collect::<BTreeSet<_>>(), diff);
            prop_assert_eq!(sa.is_subset_of(sb), a.is_subset(&b));
            prop_assert_eq!(sa.is_disjoint(sb), a.is_disjoint(&b));
        }

        #[test]
        fn prop_descending_is_reverse_of_ascending(mask in any::<u64>()) {
            let s = NodeSet64::from_mask(mask);
            let mut asc: Vec<_> = s.iter().collect();
            asc.reverse();
            prop_assert_eq!(asc, s.iter_descending().collect::<Vec<_>>());
        }
    }
}
