//! Fast enumeration of the subsets of a [`NodeSet`].
//!
//! The enumeration uses the classic Vance–Maier trick (`next = (cur − M) & M`), which walks all
//! subsets of a mask `M` in ascending numeric (mask) order without touching the bits outside of
//! `M`. Ascending mask order has the useful property that a set is always enumerated *after* all
//! of its subsets that are themselves subsets of `M`, which is exactly the order bottom-up
//! dynamic programming needs.

use crate::NodeSet;

/// Iterator over all non-empty subsets of a set, in ascending mask order.
///
/// ```
/// use qo_bitset::{NodeSet, SubsetIter};
///
/// let n = NodeSet::from_iter([1, 3]);
/// let subs: Vec<NodeSet> = SubsetIter::new(n).collect();
/// assert_eq!(subs, vec![
///     NodeSet::single(1),
///     NodeSet::single(3),
///     NodeSet::from_iter([1, 3]),
/// ]);
/// ```
#[derive(Clone, Debug)]
pub struct SubsetIter {
    universe: u64,
    current: u64,
    done: bool,
}

impl SubsetIter {
    /// Creates an iterator over all non-empty subsets of `universe`.
    #[inline]
    pub fn new(universe: NodeSet) -> Self {
        SubsetIter {
            universe: universe.mask(),
            current: 0,
            done: universe.is_empty(),
        }
    }
}

impl Iterator for SubsetIter {
    type Item = NodeSet;

    #[inline]
    fn next(&mut self) -> Option<NodeSet> {
        if self.done {
            return None;
        }
        // Vance–Maier: next subset in ascending order.
        self.current = self.current.wrapping_sub(self.universe) & self.universe;
        if self.current == 0 {
            self.done = true;
            return None;
        }
        if self.current == self.universe {
            // The full set is the last subset; mark done so that the next call terminates
            // without recomputing.
            self.done = true;
        }
        Some(NodeSet::from_mask(self.current))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            return (0, Some(0));
        }
        let total = (1u128 << self.universe.count_ones()) - 1;
        // We cannot cheaply tell how many subsets are left, only bound it.
        (0, usize::try_from(total).ok())
    }
}

/// Iterator over all non-empty *proper* subsets of a set, in ascending mask order.
///
/// `EnumerateCsgRec` and `EnumerateCmpRec` of the paper iterate over "each non-empty subset" of
/// the neighborhood, including the full neighborhood, so they use [`SubsetIter`]; DPsub on the
/// other hand needs proper subsets `S1 ⊂ S` to split a set into two non-empty halves.
#[derive(Clone, Debug)]
pub struct ProperSubsetIter {
    inner: SubsetIter,
    universe: u64,
}

impl ProperSubsetIter {
    /// Creates an iterator over all non-empty proper subsets of `universe`.
    #[inline]
    pub fn new(universe: NodeSet) -> Self {
        ProperSubsetIter {
            inner: SubsetIter::new(universe),
            universe: universe.mask(),
        }
    }
}

impl Iterator for ProperSubsetIter {
    type Item = NodeSet;

    #[inline]
    fn next(&mut self) -> Option<NodeSet> {
        let next = self.inner.next()?;
        if next.mask() == self.universe {
            return None;
        }
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn brute_force_subsets(universe: NodeSet) -> Vec<NodeSet> {
        let members: Vec<_> = universe.iter().collect();
        let mut out = Vec::new();
        for mask in 1u64..(1u64 << members.len()) {
            let mut s = NodeSet::EMPTY;
            for (i, &m) in members.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    s.insert(m);
                }
            }
            out.push(s);
        }
        out.sort();
        out
    }

    #[test]
    fn empty_universe_yields_nothing() {
        assert_eq!(SubsetIter::new(NodeSet::EMPTY).count(), 0);
        assert_eq!(ProperSubsetIter::new(NodeSet::EMPTY).count(), 0);
    }

    #[test]
    fn singleton_universe() {
        let u = NodeSet::single(5);
        assert_eq!(SubsetIter::new(u).collect::<Vec<_>>(), vec![u]);
        assert_eq!(ProperSubsetIter::new(u).count(), 0);
    }

    #[test]
    fn subsets_of_three_elements() {
        let u = NodeSet::from_iter([0, 2, 4]);
        let subs: Vec<_> = SubsetIter::new(u).collect();
        assert_eq!(subs.len(), 7);
        // Ascending mask order.
        for w in subs.windows(2) {
            assert!(w[0].mask() < w[1].mask());
        }
        // Last subset is the full set.
        assert_eq!(*subs.last().unwrap(), u);
        // Proper subsets exclude the full set.
        let proper: Vec<_> = ProperSubsetIter::new(u).collect();
        assert_eq!(proper.len(), 6);
        assert!(!proper.contains(&u));
    }

    #[test]
    fn iterator_is_fused_after_exhaustion() {
        let mut it = SubsetIter::new(NodeSet::from_iter([1, 2]));
        assert_eq!(it.by_ref().count(), 3);
        assert_eq!(it.next(), None);
        assert_eq!(it.next(), None);
    }

    #[test]
    fn full_64_bit_universe_starts_correctly() {
        // Just make sure nothing overflows with a full mask; don't enumerate 2^64 subsets.
        let mut it = SubsetIter::new(NodeSet::from_mask(u64::MAX));
        assert_eq!(it.next(), Some(NodeSet::single(0)));
        assert_eq!(it.next(), Some(NodeSet::single(1)));
        assert_eq!(it.next(), Some(NodeSet::from_iter([0, 1])));
    }

    #[test]
    fn subsets_ordered_after_their_subsets() {
        // Dynamic programming requirement: if A ⊂ B both appear, A appears before B.
        let u = NodeSet::from_iter([0, 1, 3, 5]);
        let subs: Vec<_> = SubsetIter::new(u).collect();
        for (i, a) in subs.iter().enumerate() {
            for b in &subs[i + 1..] {
                assert!(!b.is_proper_subset_of(*a), "{b:?} after its superset {a:?}");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_subset_enumeration_is_complete_and_duplicate_free(
            nodes in proptest::collection::btree_set(0usize..64, 1..12)
        ) {
            let u: NodeSet = nodes.iter().copied().collect();
            let enumerated: Vec<_> = SubsetIter::new(u).collect();
            let expected = brute_force_subsets(u);
            let as_set: BTreeSet<_> = enumerated.iter().copied().collect();
            prop_assert_eq!(enumerated.len(), expected.len(), "duplicates emitted");
            prop_assert_eq!(as_set, expected.into_iter().collect::<BTreeSet<_>>());
            // every emitted set is a non-empty subset of u
            for s in &enumerated {
                prop_assert!(!s.is_empty());
                prop_assert!(s.is_subset_of(u));
            }
        }

        #[test]
        fn prop_proper_subsets_are_subsets_minus_universe(
            nodes in proptest::collection::btree_set(0usize..64, 1..12)
        ) {
            let u: NodeSet = nodes.iter().copied().collect();
            let all: BTreeSet<_> = SubsetIter::new(u).collect();
            let mut proper: BTreeSet<_> = ProperSubsetIter::new(u).collect();
            prop_assert!(!proper.contains(&u));
            proper.insert(u);
            prop_assert_eq!(proper, all);
        }
    }
}
