//! Fast enumeration of the subsets of a [`NodeSet`].
//!
//! The enumeration uses the classic Vance–Maier trick (`next = (cur − M) & M`), which walks all
//! subsets of a mask `M` in ascending numeric (mask) order without touching the bits outside of
//! `M`. Ascending mask order has the useful property that a set is always enumerated *after* all
//! of its subsets that are themselves subsets of `M`, which is exactly the order bottom-up
//! dynamic programming needs.
//!
//! For multi-word sets (`W > 1`) the subtraction generalizes to a ripple-borrow across the
//! words: `cur − M` is computed word by word from the least significant end, propagating the
//! borrow exactly like a `64 * W`-bit integer subtraction, and the trailing `& M` masks the
//! result back into the universe. The walk therefore stays branch-light and allocation-free at
//! every width, and `W = 1` compiles to the original single-word step.

use crate::NodeSet;

/// One Vance–Maier step: `(cur − universe) & universe` as a `64 * W`-bit integer operation.
#[inline]
fn vance_maier_step<const W: usize>(cur: [u64; W], universe: [u64; W]) -> [u64; W] {
    let mut out = [0u64; W];
    let mut borrow = false;
    for i in 0..W {
        let (d, b1) = cur[i].overflowing_sub(universe[i]);
        let (d, b2) = d.overflowing_sub(borrow as u64);
        borrow = b1 | b2;
        out[i] = d & universe[i];
    }
    out
}

/// Iterator over all non-empty subsets of a set, in ascending mask order.
///
/// ```
/// use qo_bitset::{NodeSet, SubsetIter};
///
/// let n: NodeSet = NodeSet::from_iter([1, 3]);
/// let subs: Vec<NodeSet> = SubsetIter::new(n).collect();
/// assert_eq!(subs, vec![
///     NodeSet::single(1),
///     NodeSet::single(3),
///     NodeSet::from_iter([1, 3]),
/// ]);
/// ```
#[derive(Clone, Debug)]
pub struct SubsetIter<const W: usize = 1> {
    universe: NodeSet<W>,
    current: NodeSet<W>,
    done: bool,
}

impl<const W: usize> SubsetIter<W> {
    /// Creates an iterator over all non-empty subsets of `universe`.
    #[inline]
    pub fn new(universe: NodeSet<W>) -> Self {
        SubsetIter {
            universe,
            current: NodeSet::EMPTY,
            done: universe.is_empty(),
        }
    }

    /// Creates an iterator that resumes the walk *after* `position` (which must be a subset of
    /// `universe`): the first yielded subset is the successor of `position` in ascending mask
    /// order.
    ///
    /// This exists so the walk can be segmented — e.g. to verify termination behavior near the
    /// end of a full 64-bit universe without enumerating 2^64 subsets, or to hand disjoint
    /// mask ranges to parallel workers.
    #[inline]
    pub fn resuming_after(universe: NodeSet<W>, position: NodeSet<W>) -> Self {
        debug_assert!(position.is_subset_of(universe));
        SubsetIter {
            universe,
            current: position,
            done: universe.is_empty() || position == universe,
        }
    }
}

impl<const W: usize> Iterator for SubsetIter<W> {
    type Item = NodeSet<W>;

    #[inline]
    fn next(&mut self) -> Option<NodeSet<W>> {
        if self.done {
            return None;
        }
        // Vance–Maier: next subset in ascending order (multi-word ripple-borrow subtract).
        self.current = NodeSet::from_words(vance_maier_step(
            self.current.words(),
            self.universe.words(),
        ));
        if self.current.is_empty() {
            self.done = true;
            return None;
        }
        if self.current == self.universe {
            // The full set is the last subset; mark done so that the next call terminates
            // without recomputing.
            self.done = true;
        }
        Some(self.current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            return (0, Some(0));
        }
        let total = (1u128 << self.universe.len().min(127)) - 1;
        // We cannot cheaply tell how many subsets are left, only bound it.
        (0, usize::try_from(total).ok())
    }
}

/// Iterator over all non-empty *proper* subsets of a set, in ascending mask order.
///
/// `EnumerateCsgRec` and `EnumerateCmpRec` of the paper iterate over "each non-empty subset" of
/// the neighborhood, including the full neighborhood, so they use [`SubsetIter`]; DPsub on the
/// other hand needs proper subsets `S1 ⊂ S` to split a set into two non-empty halves.
#[derive(Clone, Debug)]
pub struct ProperSubsetIter<const W: usize = 1> {
    inner: SubsetIter<W>,
    universe: NodeSet<W>,
}

impl<const W: usize> ProperSubsetIter<W> {
    /// Creates an iterator over all non-empty proper subsets of `universe`.
    #[inline]
    pub fn new(universe: NodeSet<W>) -> Self {
        ProperSubsetIter {
            inner: SubsetIter::new(universe),
            universe,
        }
    }
}

impl<const W: usize> Iterator for ProperSubsetIter<W> {
    type Item = NodeSet<W>;

    #[inline]
    fn next(&mut self) -> Option<NodeSet<W>> {
        let next = self.inner.next()?;
        if next == self.universe {
            return None;
        }
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeSet128, NodeSet64};
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn brute_force_subsets<const W: usize>(universe: NodeSet<W>) -> Vec<NodeSet<W>> {
        let members: Vec<_> = universe.iter().collect();
        let mut out = Vec::new();
        for mask in 1u64..(1u64 << members.len()) {
            let mut s = NodeSet::EMPTY;
            for (i, &m) in members.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    s.insert(m);
                }
            }
            out.push(s);
        }
        out.sort();
        out
    }

    #[test]
    fn empty_universe_yields_nothing() {
        assert_eq!(SubsetIter::new(NodeSet64::EMPTY).count(), 0);
        assert_eq!(ProperSubsetIter::new(NodeSet64::EMPTY).count(), 0);
        assert_eq!(SubsetIter::new(NodeSet128::EMPTY).count(), 0);
    }

    #[test]
    fn singleton_universe() {
        let u = NodeSet64::single(5);
        assert_eq!(SubsetIter::new(u).collect::<Vec<_>>(), vec![u]);
        assert_eq!(ProperSubsetIter::new(u).count(), 0);
        let w = NodeSet128::single(100);
        assert_eq!(SubsetIter::new(w).collect::<Vec<_>>(), vec![w]);
        assert_eq!(ProperSubsetIter::new(w).count(), 0);
    }

    #[test]
    fn subsets_of_three_elements() {
        let u = NodeSet64::from_iter([0, 2, 4]);
        let subs: Vec<_> = SubsetIter::new(u).collect();
        assert_eq!(subs.len(), 7);
        // Ascending mask order.
        for w in subs.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Last subset is the full set.
        assert_eq!(*subs.last().unwrap(), u);
        // Proper subsets exclude the full set.
        let proper: Vec<_> = ProperSubsetIter::new(u).collect();
        assert_eq!(proper.len(), 6);
        assert!(!proper.contains(&u));
    }

    #[test]
    fn wide_subsets_straddling_the_word_boundary() {
        // Universe {62, 63, 64, 65}: the ripple-borrow must carry between the words.
        let u = NodeSet128::from_iter([62, 63, 64, 65]);
        let subs: Vec<_> = SubsetIter::new(u).collect();
        assert_eq!(subs.len(), 15);
        for w in subs.windows(2) {
            assert!(w[0] < w[1], "not ascending: {:?} then {:?}", w[0], w[1]);
        }
        assert_eq!(subs, brute_force_subsets(u));
        assert_eq!(*subs.last().unwrap(), u);
        // Proper subsets exclude the full set.
        assert_eq!(ProperSubsetIter::new(u).count(), 14);
    }

    #[test]
    fn wide_subsets_with_high_word_only_members() {
        let u = NodeSet128::from_iter([64, 80, 127]);
        let subs: Vec<_> = SubsetIter::new(u).collect();
        assert_eq!(subs, brute_force_subsets(u));
    }

    #[test]
    fn iterator_is_fused_after_exhaustion() {
        let mut it = SubsetIter::new(NodeSet64::from_iter([1, 2]));
        assert_eq!(it.by_ref().count(), 3);
        assert_eq!(it.next(), None);
        assert_eq!(it.next(), None);
    }

    #[test]
    fn full_64_bit_universe_starts_correctly() {
        // Just make sure nothing overflows with a full mask; don't enumerate 2^64 subsets.
        let mut it = SubsetIter::new(NodeSet64::from_mask(u64::MAX));
        assert_eq!(it.next(), Some(NodeSet::single(0)));
        assert_eq!(it.next(), Some(NodeSet::single(1)));
        assert_eq!(it.next(), Some(NodeSet::from_iter([0, 1])));
    }

    #[test]
    fn full_64_bit_universe_terminates_without_short_cycling() {
        // Regression test for the n == 64 boundary of subset-driven enumeration (DPsub): the
        // walk's counter covers the full u64 range, so a naive `cur - 1` / `cur + 1` loop would
        // wrap and either cycle forever or terminate one subset early. Resume the walk just
        // before the end of the full universe and check the exact tail and termination.
        let universe = NodeSet64::from_mask(u64::MAX);
        let mut it = SubsetIter::resuming_after(universe, NodeSet::from_mask(u64::MAX - 2));
        assert_eq!(it.next(), Some(NodeSet::from_mask(u64::MAX - 1)));
        assert_eq!(it.next(), Some(NodeSet::from_mask(u64::MAX)));
        assert_eq!(it.next(), None, "walk must stop after the full set");
        assert_eq!(it.next(), None, "iterator must stay fused");
        // Resuming *at* the full set yields nothing.
        let mut it = SubsetIter::resuming_after(universe, universe);
        assert_eq!(it.next(), None);
    }

    #[test]
    fn full_128_bit_universe_terminates_without_short_cycling() {
        // Same boundary for the widened walk: the last few subsets of a full 128-bit universe.
        let universe = NodeSet128::first_n(128);
        let penultimate = universe - NodeSet::single(0);
        let mut it = SubsetIter::resuming_after(universe, penultimate - NodeSet::single(1));
        assert_eq!(it.next(), Some(universe - NodeSet::single(1)));
        assert_eq!(it.next(), Some(universe - NodeSet::single(0)));
        assert_eq!(it.next(), Some(universe));
        assert_eq!(it.next(), None);
        assert_eq!(it.next(), None);
    }

    #[test]
    fn resuming_mid_walk_matches_the_uninterrupted_walk() {
        let u = NodeSet64::from_iter([0, 1, 3, 5, 8]);
        let full: Vec<_> = SubsetIter::new(u).collect();
        for (i, &pos) in full.iter().enumerate() {
            let resumed: Vec<_> = SubsetIter::resuming_after(u, pos).collect();
            assert_eq!(resumed, full[i + 1..], "resume after {pos:?}");
        }
    }

    #[test]
    fn subsets_ordered_after_their_subsets() {
        // Dynamic programming requirement: if A ⊂ B both appear, A appears before B.
        let u = NodeSet64::from_iter([0, 1, 3, 5]);
        let subs: Vec<_> = SubsetIter::new(u).collect();
        for (i, a) in subs.iter().enumerate() {
            for b in &subs[i + 1..] {
                assert!(!b.is_proper_subset_of(*a), "{b:?} after its superset {a:?}");
            }
        }
    }

    #[test]
    fn wide_subsets_ordered_after_their_subsets() {
        let u = NodeSet128::from_iter([0, 63, 64, 90, 127]);
        let subs: Vec<_> = SubsetIter::new(u).collect();
        assert_eq!(subs.len(), 31);
        for (i, a) in subs.iter().enumerate() {
            for b in &subs[i + 1..] {
                assert!(!b.is_proper_subset_of(*a), "{b:?} after its superset {a:?}");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_subset_enumeration_is_complete_and_duplicate_free(
            nodes in proptest::collection::btree_set(0usize..64, 1..12)
        ) {
            let u: NodeSet = nodes.iter().copied().collect();
            let enumerated: Vec<_> = SubsetIter::new(u).collect();
            let expected = brute_force_subsets(u);
            let as_set: BTreeSet<_> = enumerated.iter().copied().collect();
            prop_assert_eq!(enumerated.len(), expected.len(), "duplicates emitted");
            prop_assert_eq!(as_set, expected.into_iter().collect::<BTreeSet<_>>());
            // every emitted set is a non-empty subset of u
            for s in &enumerated {
                prop_assert!(!s.is_empty());
                prop_assert!(s.is_subset_of(u));
            }
        }

        #[test]
        fn prop_proper_subsets_are_subsets_minus_universe(
            nodes in proptest::collection::btree_set(0usize..64, 1..12)
        ) {
            let u: NodeSet = nodes.iter().copied().collect();
            let all: BTreeSet<_> = SubsetIter::new(u).collect();
            let mut proper: BTreeSet<_> = ProperSubsetIter::new(u).collect();
            prop_assert!(!proper.contains(&u));
            proper.insert(u);
            prop_assert_eq!(proper, all);
        }

        #[test]
        fn prop_wide_subset_enumeration_matches_brute_force(
            nodes in proptest::collection::btree_set(0usize..128, 1..12)
        ) {
            let u: NodeSet128 = nodes.iter().copied().collect();
            let enumerated: Vec<_> = SubsetIter::new(u).collect();
            prop_assert_eq!(enumerated, brute_force_subsets(u));
        }
    }
}
