//! Enumeration of fixed-size subsets (combinations) in ascending mask order.
//!
//! The level-synchronized parallel variant of DPsub processes the subsets of one size as a
//! batch: every proper subset of a size-`k` set has size `< k`, so a barrier between sizes
//! seals all inputs a level reads. [`CombinationIter`] walks the `C(n, k)` size-`k` subsets of
//! `{R0, …, R(n−1)}` in *ascending mask order* — the order in which the sequential
//! [`SubsetIter`](crate::SubsetIter) walk visits them — so a by-size schedule can replay the
//! sequential visit order within each level and stay bit-identical.
//!
//! Ascending mask order on equal-size sets is colexicographic order on the member positions;
//! the successor step is the classic colex increment: find the lowest member that can move up
//! by one position, move it, and reset all members below it to the smallest positions.

use crate::NodeSet;

/// Iterator over all subsets of `{R0, …, R(n−1)}` with exactly `k` members, in ascending mask
/// order.
///
/// ```
/// use qo_bitset::{CombinationIter, NodeSet};
///
/// let pairs: Vec<NodeSet> = CombinationIter::new(4, 2).collect();
/// assert_eq!(pairs.len(), 6);
/// assert_eq!(pairs[0], NodeSet::from_iter([0, 1]));
/// assert_eq!(pairs[5], NodeSet::from_iter([2, 3]));
/// for w in pairs.windows(2) {
///     assert!(w[0] < w[1]); // ascending mask order
/// }
/// ```
#[derive(Clone, Debug)]
pub struct CombinationIter<const W: usize = 1> {
    /// Member positions in ascending order; the current combination.
    positions: Vec<usize>,
    n: usize,
    done: bool,
}

impl<const W: usize> CombinationIter<W> {
    /// Creates an iterator over the size-`k` subsets of the first `n` relations. Yields nothing
    /// when `k == 0` or `k > n`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(
            n <= NodeSet::<W>::CAPACITY,
            "{n} exceeds the {}-node capacity",
            NodeSet::<W>::CAPACITY
        );
        CombinationIter {
            positions: (0..k).collect(),
            n,
            done: k == 0 || k > n,
        }
    }
}

impl<const W: usize> Iterator for CombinationIter<W> {
    type Item = NodeSet<W>;

    fn next(&mut self) -> Option<NodeSet<W>> {
        if self.done {
            return None;
        }
        let set: NodeSet<W> = self.positions.iter().copied().collect();
        // Colex successor: the lowest member with a free position above it moves up one; all
        // members below it drop back to the smallest positions.
        let k = self.positions.len();
        let mut i = 0;
        loop {
            if i == k {
                self.done = true;
                break;
            }
            let limit = if i + 1 == k {
                self.n
            } else {
                self.positions[i + 1]
            };
            if self.positions[i] + 1 < limit {
                self.positions[i] += 1;
                for (j, p) in self.positions[..i].iter_mut().enumerate() {
                    *p = j;
                }
                break;
            }
            i += 1;
        }
        Some(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeSet128, NodeSet64, SubsetIter};

    #[test]
    fn empty_and_oversized_k_yield_nothing() {
        assert_eq!(CombinationIter::<1>::new(5, 0).count(), 0);
        assert_eq!(CombinationIter::<1>::new(5, 6).count(), 0);
        assert_eq!(CombinationIter::<1>::new(0, 0).count(), 0);
    }

    #[test]
    fn full_size_yields_exactly_the_universe() {
        let all: Vec<NodeSet64> = CombinationIter::new(6, 6).collect();
        assert_eq!(all, vec![NodeSet64::first_n(6)]);
    }

    #[test]
    fn pairs_of_four_match_the_known_mask_sequence() {
        let masks: Vec<u64> = CombinationIter::<1>::new(4, 2).map(|s| s.mask()).collect();
        // {0,1} {0,2} {1,2} {0,3} {1,3} {2,3} — ascending numeric order.
        assert_eq!(masks, vec![3, 5, 6, 9, 10, 12]);
    }

    #[test]
    fn matches_the_filtered_subset_walk_at_every_size() {
        // The defining property: for each k, the combination walk is exactly the sequential
        // Vance–Maier subset walk filtered to size k.
        for n in 1..=9usize {
            let universe = NodeSet64::first_n(n);
            for k in 1..=n {
                let filtered: Vec<NodeSet64> =
                    SubsetIter::new(universe).filter(|s| s.len() == k).collect();
                let direct: Vec<NodeSet64> = CombinationIter::new(n, k).collect();
                assert_eq!(direct, filtered, "n = {n}, k = {k}");
            }
        }
    }

    #[test]
    fn wide_combinations_cross_the_word_boundary() {
        let all: Vec<NodeSet128> = CombinationIter::new(66, 65).collect();
        assert_eq!(all.len(), 66);
        for w in all.windows(2) {
            assert!(w[0] < w[1], "not ascending: {:?} then {:?}", w[0], w[1]);
        }
        for s in &all {
            assert_eq!(s.len(), 65);
            assert!(s.is_subset_of(NodeSet128::first_n(66)));
        }
    }

    #[test]
    fn iterator_is_fused_after_exhaustion() {
        let mut it = CombinationIter::<1>::new(3, 2);
        assert_eq!(it.by_ref().count(), 3);
        assert_eq!(it.next(), None);
        assert_eq!(it.next(), None);
    }
}
