//! Relation node sets and fast subset enumeration.
//!
//! Join-order enumeration manipulates sets of relations at a very high rate. Following the
//! DPhyp paper (Moerkotte & Neumann, SIGMOD 2008) and the subset-enumeration technique of
//! Vance & Maier, this crate represents a set of relations as a single `u64` bit mask
//! ([`NodeSet`]) and provides branch-free set algebra plus iterators over
//!
//! * the elements of a set ([`NodeSet::iter`], ascending and [`NodeSet::iter_descending`]),
//! * all non-empty subsets of a set ([`SubsetIter`]),
//! * all *proper*, non-empty subsets ([`NodeSet::proper_subsets`]).
//!
//! The maximum number of relations is [`MAX_NODES`] (64), which comfortably covers the query
//! sizes evaluated in the paper (up to 17 relations) and typical real-world join queries.

mod node_set;
mod subset;

pub use node_set::{NodeId, NodeSet, NodeSetIter, NodeSetRevIter, MAX_NODES};
pub use subset::{ProperSubsetIter, SubsetIter};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_reexports_work() {
        let s = NodeSet::from_iter([0, 2, 5]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 5]);
        assert_eq!(SubsetIter::new(s).count(), 7);
        assert_eq!(ProperSubsetIter::new(s).count(), 6);
    }
}
