//! Relation node sets and fast subset enumeration.
//!
//! Join-order enumeration manipulates sets of relations at a very high rate. Following the
//! DPhyp paper (Moerkotte & Neumann, SIGMOD 2008) and the subset-enumeration technique of
//! Vance & Maier, this crate represents a set of relations as a fixed-width multi-word bit mask
//! ([`NodeSet<W>`](NodeSet), an array of `W` `u64` words) and provides branch-free set algebra
//! plus iterators over
//!
//! * the elements of a set ([`NodeSet::iter`], ascending and [`NodeSet::iter_descending`]),
//! * all non-empty subsets of a set ([`SubsetIter`], multi-word Vance–Maier walk),
//! * all *proper*, non-empty subsets ([`NodeSet::proper_subsets`]),
//! * all subsets of a fixed size ([`CombinationIter`], the by-size schedule of the parallel
//!   DPsub variant).
//!
//! The width is a const generic defaulting to one word: plain `NodeSet` in type positions is
//! [`NodeSet64`] (up to [`MAX_NODES`] = 64 relations, covering the query sizes evaluated in the
//! paper), and it compiles to exactly the single-`u64` code of the pre-widening representation.
//! [`NodeSet128`] (`W = 2`) opens the >64-relation workload tier; each `NodeSet<W>` holds up to
//! `NodeSet::<W>::CAPACITY = 64 * W` relations. The planner facade in `dphyp` picks the width
//! once per optimization based on the query's node count.

mod combination;
mod node_set;
mod subset;

pub use combination::CombinationIter;
pub use node_set::{
    NodeId, NodeSet, NodeSet128, NodeSet64, NodeSetIter, NodeSetRevIter, MAX_NODES,
};
pub use subset::{ProperSubsetIter, SubsetIter};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_reexports_work() {
        let s: NodeSet = NodeSet::from_iter([0, 2, 5]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 5]);
        assert_eq!(SubsetIter::new(s).count(), 7);
        assert_eq!(ProperSubsetIter::new(s).count(), 6);
    }

    #[test]
    fn width_aliases_are_consistent() {
        assert_eq!(NodeSet64::CAPACITY, MAX_NODES);
        assert_eq!(NodeSet128::CAPACITY, 2 * MAX_NODES);
        // `NodeSet` without a width parameter is the single-word alias.
        let s: NodeSet = NodeSet64::single(3);
        assert_eq!(s, NodeSet::single(3));
    }
}

/// Model-based tests of the wide (`W = 2`) node set against a `BTreeSet<usize>` oracle,
/// mirrored against [`NodeSet64`] whenever the members fit in one word.
///
/// CI runs this module explicitly (`cargo test -p qo-bitset wide_model`) so the two-word path
/// cannot rot even if no default-width test happens to touch it.
#[cfg(test)]
mod wide_model {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    /// The oracle result of an operation, computed on `BTreeSet<usize>`.
    fn model_op(op: char, a: &BTreeSet<usize>, b: &BTreeSet<usize>) -> BTreeSet<usize> {
        match op {
            '|' => a.union(b).copied().collect(),
            '&' => a.intersection(b).copied().collect(),
            '-' => a.difference(b).copied().collect(),
            '^' => a.symmetric_difference(b).copied().collect(),
            _ => unreachable!(),
        }
    }

    fn wide_op(op: char, a: NodeSet128, b: NodeSet128) -> NodeSet128 {
        match op {
            '|' => a | b,
            '&' => a & b,
            '-' => a - b,
            '^' => a ^ b,
            _ => unreachable!(),
        }
    }

    fn narrow_op(op: char, a: NodeSet64, b: NodeSet64) -> NodeSet64 {
        match op {
            '|' => a | b,
            '&' => a & b,
            '-' => a - b,
            '^' => a ^ b,
            _ => unreachable!(),
        }
    }

    proptest! {
        /// All binary set operations on random `NodeSet<2>` pairs match the `BTreeSet` model,
        /// and — when every member fits in one word — the `NodeSet64` result as well.
        #[test]
        fn prop_wide_set_ops_match_model_and_narrow_mirror(
            a in proptest::collection::btree_set(0usize..128, 0..24),
            b in proptest::collection::btree_set(0usize..128, 0..24),
        ) {
            let wa: NodeSet128 = a.iter().copied().collect();
            let wb: NodeSet128 = b.iter().copied().collect();
            let fits = a.iter().chain(b.iter()).all(|&n| n < 64);
            for op in ['|', '&', '-', '^'] {
                let expected = model_op(op, &a, &b);
                let got = wide_op(op, wa, wb);
                prop_assert_eq!(
                    got.iter().collect::<BTreeSet<_>>(),
                    expected.clone(),
                    "wide {} mismatch", op
                );
                if fits {
                    let na: NodeSet64 = a.iter().copied().collect();
                    let nb: NodeSet64 = b.iter().copied().collect();
                    let narrow = narrow_op(op, na, nb);
                    prop_assert_eq!(
                        narrow.iter().collect::<BTreeSet<_>>(),
                        got.iter().collect::<BTreeSet<_>>(),
                        "narrow/wide {} mismatch", op
                    );
                }
            }
            // Relational predicates agree with the model too.
            prop_assert_eq!(wa.is_subset_of(wb), a.is_subset(&b));
            prop_assert_eq!(wa.is_disjoint(wb), a.is_disjoint(&b));
            prop_assert_eq!(wa == wb, a == b);
        }

        /// `min_node`, `max_node`, `len` and element iteration match the model.
        #[test]
        fn prop_wide_accessors_match_model(
            nodes in proptest::collection::btree_set(0usize..128, 0..24),
        ) {
            let w: NodeSet128 = nodes.iter().copied().collect();
            prop_assert_eq!(w.len(), nodes.len());
            prop_assert_eq!(w.min_node(), nodes.iter().next().copied());
            prop_assert_eq!(w.max_node(), nodes.iter().next_back().copied());
            prop_assert_eq!(w.iter().collect::<Vec<_>>(),
                            nodes.iter().copied().collect::<Vec<_>>());
            let mut desc: Vec<_> = nodes.iter().copied().collect();
            desc.reverse();
            prop_assert_eq!(w.iter_descending().collect::<Vec<_>>(), desc);
            prop_assert_eq!(w.is_empty(), nodes.is_empty());
            prop_assert_eq!(w.is_singleton(), nodes.len() == 1);
            if let Some(&min) = nodes.iter().next() {
                prop_assert_eq!(w.min_singleton(), NodeSet128::single(min));
                let rest: BTreeSet<_> = nodes.iter().copied().skip(1).collect();
                prop_assert_eq!(w.without_min(), rest.into_iter().collect::<NodeSet128>());
            }
        }

        /// Subset enumeration is complete, duplicate-free, in ascending order, and — for
        /// low-word-only universes — identical to the `NodeSet64` walk.
        #[test]
        fn prop_wide_subset_enumeration_order(
            nodes in proptest::collection::btree_set(0usize..128, 1..10),
        ) {
            let u: NodeSet128 = nodes.iter().copied().collect();
            let subs: Vec<_> = u.subsets().collect();
            prop_assert_eq!(subs.len(), (1usize << nodes.len()) - 1);
            for w in subs.windows(2) {
                prop_assert!(w[0] < w[1], "not ascending");
            }
            for s in &subs {
                prop_assert!(!s.is_empty());
                prop_assert!(s.is_subset_of(u));
            }
            if nodes.iter().all(|&n| n < 64) {
                let nu: NodeSet64 = nodes.iter().copied().collect();
                let narrow: Vec<BTreeSet<usize>> =
                    nu.subsets().map(|s| s.iter().collect()).collect();
                let wide: Vec<BTreeSet<usize>> =
                    subs.iter().map(|s| s.iter().collect()).collect();
                prop_assert_eq!(narrow, wide, "wide walk must mirror the narrow walk");
            }
        }
    }
}
