//! Operator trees, SES/TES conflict analysis and query-hypergraph derivation (Sec. 5 of the
//! DPhyp paper).
//!
//! A query hypergraph alone does not capture the semantics of a query with non-inner joins;
//! what is needed is an *initial operator tree* equivalent to the query (Sec. 5.3). This crate
//! provides that representation ([`OpTree`]) together with the conflict analysis the paper
//! builds on top of it:
//!
//! * the *syntactic eligibility set* SES of every operator — the relations that must be present
//!   before its predicate can be evaluated (Sec. 5.5),
//! * the *total eligibility set* TES, computed bottom-up by [`calc_tes`], which additionally
//!   absorbs the TES of every conflicting descendant operator (`CalcTES` with the `LeftConflict`
//!   / `RightConflict` / `OC` rules of Sec. 5.5 and Appendix A),
//! * the translation of TESs into hyperedges (Sec. 5.7) — or, for the generate-and-test
//!   comparison of Sec. 5.8, into plain predicate edges plus TES annotations that are checked in
//!   `EmitCsgCmp`.
//!
//! The end product is a [`HypergraphQuery`]: a hypergraph plus a catalog whose edge annotations
//! carry the operators, selectivities and TESs — exactly the input DPhyp needs.

mod conflict;
mod derive;
mod optree;

pub use conflict::{calc_tes, ses, ConflictAnalysis, OperatorInfo};
pub use derive::{derive_query, ConflictEncoding, HypergraphQuery};
pub use optree::{OpTree, OpTreeError, Predicate};

pub use qo_bitset::{NodeId, NodeSet};
pub use qo_plan::JoinOp;
