//! The initial operator tree of a query.

use qo_bitset::{NodeId, NodeSet};
use qo_plan::JoinOp;
use std::fmt;

/// A join predicate of the initial operator tree.
///
/// `references` is `FT(p)` — the set of relations whose attributes occur freely in the
/// predicate; `selectivity` is its estimated selectivity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Predicate {
    /// Relations referenced by the predicate (`FT(p)`).
    pub references: NodeSet,
    /// Selectivity in `(0, 1]`.
    pub selectivity: f64,
}

impl Predicate {
    /// Creates a predicate.
    pub fn new(references: NodeSet, selectivity: f64) -> Self {
        Predicate {
            references,
            selectivity,
        }
    }

    /// A simple binary equi-join predicate between two relations.
    pub fn between(a: NodeId, b: NodeId, selectivity: f64) -> Self {
        Predicate::new(NodeSet::from_iter([a, b]), selectivity)
    }
}

/// Errors detected by [`OpTree::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum OpTreeError {
    /// A relation id appears more than once.
    DuplicateRelation(NodeId),
    /// The leaves are not ordered left-to-right by relation id, which is the convention the
    /// paper adopts for non-commutative operator handling (Sec. 5.4).
    LeavesNotOrdered,
    /// A predicate references a relation that does not occur in the tree.
    PredicateReferencesUnknownRelation(NodeId),
    /// A predicate does not reference any relation of one of its operand subtrees; such
    /// degenerate predicates are treated by splitting query blocks (Sec. 5.2) and are rejected
    /// here.
    PredicateDoesNotSpanOperands,
    /// A lateral reference points to a relation that is not to the left of the referencing
    /// relation.
    InvalidLateralReference(NodeId),
    /// An invalid selectivity (must be in `(0, 1]`).
    InvalidSelectivity(f64),
}

impl fmt::Display for OpTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpTreeError::DuplicateRelation(r) => write!(f, "relation R{r} occurs more than once"),
            OpTreeError::LeavesNotOrdered => {
                write!(f, "leaves must be ordered left-to-right by relation id")
            }
            OpTreeError::PredicateReferencesUnknownRelation(r) => {
                write!(
                    f,
                    "a predicate references R{r}, which is not part of the tree"
                )
            }
            OpTreeError::PredicateDoesNotSpanOperands => {
                write!(
                    f,
                    "a predicate does not reference both operands of its operator"
                )
            }
            OpTreeError::InvalidLateralReference(r) => {
                write!(
                    f,
                    "relation R{r} has a lateral reference to a non-preceding relation"
                )
            }
            OpTreeError::InvalidSelectivity(s) => write!(f, "invalid selectivity {s}"),
        }
    }
}

impl std::error::Error for OpTreeError {}

/// The initial operator tree equivalent to the query (Sec. 5.3).
///
/// Leaves are base relations (or table-valued functions, in which case `lateral_refs` lists the
/// relations they reference); inner nodes are binary operators with a predicate. The tree is
/// assumed to be *simplified* in the sense of Galindo-Legaria/Rosenthal and Bhargava et al., and
/// its leaves are ordered left-to-right by relation id (the paper's convention, Sec. 5.4).
#[derive(Clone, Debug, PartialEq)]
pub enum OpTree {
    /// A base relation or table-valued function.
    Relation {
        /// The relation id (its position in the node order).
        id: NodeId,
        /// Estimated cardinality.
        cardinality: f64,
        /// Relations referenced laterally (empty for plain base relations).
        lateral_refs: NodeSet,
    },
    /// A binary operator.
    Op {
        /// The operator.
        op: JoinOp,
        /// Its join predicate.
        predicate: Predicate,
        /// Left operand.
        left: Box<OpTree>,
        /// Right operand.
        right: Box<OpTree>,
    },
}

impl OpTree {
    /// Creates a base-relation leaf.
    pub fn relation(id: NodeId, cardinality: f64) -> OpTree {
        OpTree::Relation {
            id,
            cardinality,
            lateral_refs: NodeSet::EMPTY,
        }
    }

    /// Creates a table-function leaf with lateral references.
    pub fn lateral_relation(id: NodeId, cardinality: f64, refs: NodeSet) -> OpTree {
        OpTree::Relation {
            id,
            cardinality,
            lateral_refs: refs,
        }
    }

    /// Creates an operator node.
    pub fn op(op: JoinOp, predicate: Predicate, left: OpTree, right: OpTree) -> OpTree {
        OpTree::Op {
            op,
            predicate,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Shorthand for an inner join.
    pub fn join(predicate: Predicate, left: OpTree, right: OpTree) -> OpTree {
        OpTree::op(JoinOp::Inner, predicate, left, right)
    }

    /// The set of relations in the tree (`T(◦)` for the root).
    pub fn tables(&self) -> NodeSet {
        match self {
            OpTree::Relation { id, .. } => NodeSet::single(*id),
            OpTree::Op { left, right, .. } => left.tables() | right.tables(),
        }
    }

    /// Number of relations (leaves).
    pub fn relation_count(&self) -> usize {
        match self {
            OpTree::Relation { .. } => 1,
            OpTree::Op { left, right, .. } => left.relation_count() + right.relation_count(),
        }
    }

    /// Number of operators (inner nodes).
    pub fn operator_count(&self) -> usize {
        match self {
            OpTree::Relation { .. } => 0,
            OpTree::Op { left, right, .. } => 1 + left.operator_count() + right.operator_count(),
        }
    }

    /// The leaves in left-to-right order.
    pub fn leaves(&self) -> Vec<&OpTree> {
        let mut out = Vec::new();
        fn rec<'a>(t: &'a OpTree, out: &mut Vec<&'a OpTree>) {
            match t {
                OpTree::Relation { .. } => out.push(t),
                OpTree::Op { left, right, .. } => {
                    rec(left, out);
                    rec(right, out);
                }
            }
        }
        rec(self, &mut out);
        out
    }

    /// Per-relation cardinalities indexed by relation id.
    pub fn cardinalities(&self) -> Vec<(NodeId, f64)> {
        self.leaves()
            .iter()
            .map(|l| match l {
                OpTree::Relation {
                    id, cardinality, ..
                } => (*id, *cardinality),
                OpTree::Op { .. } => unreachable!("leaves() returns only relations"),
            })
            .collect()
    }

    /// Per-relation lateral references.
    pub fn lateral_refs(&self) -> Vec<(NodeId, NodeSet)> {
        self.leaves()
            .iter()
            .map(|l| match l {
                OpTree::Relation {
                    id, lateral_refs, ..
                } => (*id, *lateral_refs),
                OpTree::Op { .. } => unreachable!("leaves() returns only relations"),
            })
            .collect()
    }

    /// All operators of the tree in post-order (children before parents), each with the table
    /// sets of its operands.
    pub fn operators_postorder(&self) -> Vec<(JoinOp, Predicate, NodeSet, NodeSet)> {
        let mut out = Vec::new();
        fn rec(t: &OpTree, out: &mut Vec<(JoinOp, Predicate, NodeSet, NodeSet)>) -> NodeSet {
            match t {
                OpTree::Relation { id, .. } => NodeSet::single(*id),
                OpTree::Op {
                    op,
                    predicate,
                    left,
                    right,
                } => {
                    let lt = rec(left, out);
                    let rt = rec(right, out);
                    out.push((*op, *predicate, lt, rt));
                    lt | rt
                }
            }
        }
        rec(self, &mut out);
        out
    }

    /// Validates the structural conventions the conflict analysis relies on.
    pub fn validate(&self) -> Result<(), OpTreeError> {
        // Leaves: distinct ids, ordered left-to-right.
        let leaves = self.leaves();
        let mut seen: NodeSet = NodeSet::EMPTY;
        let mut previous: Option<NodeId> = None;
        let mut seen_so_far: NodeSet = NodeSet::EMPTY;
        for leaf in &leaves {
            let OpTree::Relation {
                id, lateral_refs, ..
            } = leaf
            else {
                unreachable!()
            };
            if seen.contains(*id) {
                return Err(OpTreeError::DuplicateRelation(*id));
            }
            seen.insert(*id);
            if let Some(prev) = previous {
                if *id < prev {
                    return Err(OpTreeError::LeavesNotOrdered);
                }
            }
            // Lateral references must point to relations occurring earlier (to the left).
            if !lateral_refs.is_subset_of(seen_so_far) {
                let bad = (*lateral_refs - seen_so_far).min_node().unwrap();
                return Err(OpTreeError::InvalidLateralReference(bad));
            }
            seen_so_far.insert(*id);
            previous = Some(*id);
        }
        // Operators: predicates reference known relations and span both operands.
        let tables = self.tables();
        for (_, predicate, lt, rt) in self.operators_postorder() {
            if !(predicate.selectivity.is_finite()
                && predicate.selectivity > 0.0
                && predicate.selectivity <= 1.0)
            {
                return Err(OpTreeError::InvalidSelectivity(predicate.selectivity));
            }
            if !predicate.references.is_subset_of(tables) {
                let bad = (predicate.references - tables).min_node().unwrap();
                return Err(OpTreeError::PredicateReferencesUnknownRelation(bad));
            }
            if !predicate.references.intersects(lt) || !predicate.references.intersects(rt) {
                return Err(OpTreeError::PredicateDoesNotSpanOperands);
            }
        }
        Ok(())
    }

    /// Renders the tree as a one-line algebra expression.
    pub fn compact(&self) -> String {
        match self {
            OpTree::Relation { id, .. } => format!("R{id}"),
            OpTree::Op {
                op, left, right, ..
            } => format!("({} {} {})", left.compact(), op.symbol(), right.compact()),
        }
    }
}

impl fmt::Display for OpTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.compact())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    /// (R0 ⋈ R1) ⟕ R2
    fn sample() -> OpTree {
        OpTree::op(
            JoinOp::LeftOuter,
            Predicate::between(1, 2, 0.1),
            OpTree::join(
                Predicate::between(0, 1, 0.5),
                OpTree::relation(0, 100.0),
                OpTree::relation(1, 200.0),
            ),
            OpTree::relation(2, 300.0),
        )
    }

    #[test]
    fn structural_accessors() {
        let t = sample();
        assert_eq!(t.tables(), ns(&[0, 1, 2]));
        assert_eq!(t.relation_count(), 3);
        assert_eq!(t.operator_count(), 2);
        assert_eq!(t.compact(), "((R0 ⋈ R1) ⟕ R2)");
        assert_eq!(format!("{t}"), t.compact());
        assert_eq!(t.cardinalities(), vec![(0, 100.0), (1, 200.0), (2, 300.0)]);
    }

    #[test]
    fn operators_postorder_has_children_first() {
        let t = sample();
        let ops = t.operators_postorder();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].0, JoinOp::Inner);
        assert_eq!(ops[0].2, ns(&[0]));
        assert_eq!(ops[0].3, ns(&[1]));
        assert_eq!(ops[1].0, JoinOp::LeftOuter);
        assert_eq!(ops[1].2, ns(&[0, 1]));
        assert_eq!(ops[1].3, ns(&[2]));
    }

    #[test]
    fn valid_tree_passes_validation() {
        assert_eq!(sample().validate(), Ok(()));
    }

    #[test]
    fn duplicate_relation_is_rejected() {
        let t = OpTree::join(
            Predicate::between(0, 0, 0.5),
            OpTree::relation(0, 10.0),
            OpTree::relation(0, 10.0),
        );
        assert_eq!(t.validate(), Err(OpTreeError::DuplicateRelation(0)));
    }

    #[test]
    fn unordered_leaves_are_rejected() {
        let t = OpTree::join(
            Predicate::between(0, 1, 0.5),
            OpTree::relation(1, 10.0),
            OpTree::relation(0, 10.0),
        );
        assert_eq!(t.validate(), Err(OpTreeError::LeavesNotOrdered));
    }

    #[test]
    fn predicate_must_span_both_operands() {
        let t = OpTree::join(
            Predicate::new(ns(&[0]), 0.5),
            OpTree::relation(0, 10.0),
            OpTree::relation(1, 10.0),
        );
        assert_eq!(t.validate(), Err(OpTreeError::PredicateDoesNotSpanOperands));
    }

    #[test]
    fn predicate_with_unknown_relation_is_rejected() {
        let t = OpTree::join(
            Predicate::new(ns(&[0, 1, 9]), 0.5),
            OpTree::relation(0, 10.0),
            OpTree::relation(1, 10.0),
        );
        assert_eq!(
            t.validate(),
            Err(OpTreeError::PredicateReferencesUnknownRelation(9))
        );
    }

    #[test]
    fn invalid_selectivity_is_rejected() {
        let t = OpTree::join(
            Predicate::between(0, 1, 0.0),
            OpTree::relation(0, 10.0),
            OpTree::relation(1, 10.0),
        );
        assert_eq!(t.validate(), Err(OpTreeError::InvalidSelectivity(0.0)));
    }

    #[test]
    fn lateral_refs_must_point_left() {
        // R1 references R2, but R2 occurs to its right.
        let t = OpTree::join(
            Predicate::between(1, 2, 0.5),
            OpTree::join(
                Predicate::between(0, 1, 0.5),
                OpTree::relation(0, 10.0),
                OpTree::lateral_relation(1, 5.0, ns(&[2])),
            ),
            OpTree::relation(2, 10.0),
        );
        assert_eq!(t.validate(), Err(OpTreeError::InvalidLateralReference(2)));

        // Referencing R0 (to its left) is fine.
        let ok = OpTree::join(
            Predicate::between(0, 1, 0.5),
            OpTree::relation(0, 10.0),
            OpTree::lateral_relation(1, 5.0, ns(&[0])),
        );
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn error_display_is_informative() {
        let messages = [
            OpTreeError::DuplicateRelation(3).to_string(),
            OpTreeError::LeavesNotOrdered.to_string(),
            OpTreeError::PredicateReferencesUnknownRelation(7).to_string(),
            OpTreeError::PredicateDoesNotSpanOperands.to_string(),
            OpTreeError::InvalidLateralReference(1).to_string(),
            OpTreeError::InvalidSelectivity(2.0).to_string(),
        ];
        for m in messages {
            assert!(!m.is_empty());
        }
    }
}
