//! Deriving the query hypergraph (and its catalog) from an operator tree.
//!
//! This implements Sec. 5.7 of the paper: for every operator `◦` of the initial operator tree a
//! hyperedge `(l, r)` is constructed from its total eligibility set,
//!
//! ```text
//! r = TES(◦) ∩ T(right(◦))        l = TES(◦) \ r
//! ```
//!
//! so that all reorderability conflicts are encoded *structurally* — the enumeration then never
//! generates a csg-cmp-pair that would violate them. The alternative, used as the baseline in
//! the paper's Fig. 8a, keeps the plain predicate edges (from the SES) and instead carries the
//! TES as an annotation that `EmitCsgCmp` has to check for every candidate pair
//! ([`ConflictEncoding::TesTest`]).

use crate::conflict::{calc_tes, ConflictAnalysis};
use crate::optree::{OpTree, OpTreeError};
use qo_bitset::NodeSet;
use qo_catalog::{Catalog, EdgeAnnotation};
use qo_hypergraph::{Hyperedge, Hypergraph};

/// How reorderability conflicts are communicated to the enumeration algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictEncoding {
    /// Encode each operator's TES as a hyperedge (Sec. 5.7) — the paper's proposal.
    Hyperedges,
    /// Keep simple predicate edges and carry the TES as an annotation that is tested for every
    /// candidate csg-cmp-pair (the generate-and-test baseline of Sec. 5.8 / Fig. 8a).
    TesTest,
}

/// A query ready for join enumeration: the hypergraph, the statistics/annotation catalog and the
/// conflict analysis it was derived from.
#[derive(Clone, Debug)]
pub struct HypergraphQuery {
    /// The query hypergraph.
    pub graph: Hypergraph,
    /// Cardinalities, lateral references and per-edge annotations.
    pub catalog: Catalog,
    /// The conflict analysis (SES/TES per operator) the edges were derived from.
    pub analysis: ConflictAnalysis,
    /// The encoding that was used.
    pub encoding: ConflictEncoding,
}

impl HypergraphQuery {
    /// The set of all relations of the query.
    pub fn all_relations(&self) -> NodeSet {
        self.graph.all_nodes()
    }
}

/// Derives the hypergraph and catalog for an operator tree.
///
/// The tree is validated first; relation ids must be dense (`0..n` for some `n`) because they
/// double as hypergraph node ids.
pub fn derive_query(
    tree: &OpTree,
    encoding: ConflictEncoding,
) -> Result<HypergraphQuery, OpTreeError> {
    tree.validate()?;
    let tables = tree.tables();
    let node_count = tables.len();
    // Relation ids must be exactly 0..node_count.
    if tables != NodeSet::first_n(node_count) {
        // Re-use the "unknown relation" error for sparse numbering.
        let missing = (NodeSet::first_n(node_count) - tables)
            .min_node()
            .unwrap_or(node_count);
        return Err(OpTreeError::PredicateReferencesUnknownRelation(missing));
    }

    let analysis = calc_tes(tree);
    let mut graph_builder = Hypergraph::builder(node_count);
    let mut catalog_builder = Catalog::builder(node_count);

    for (id, card) in tree.cardinalities() {
        catalog_builder.set_cardinality(id, card);
    }
    for (id, refs) in tree.lateral_refs() {
        catalog_builder.set_lateral_refs(id, refs);
    }

    for info in &analysis.operators {
        // TES split used for annotations in either mode.
        let tes_right = info.tes & info.right_tables;
        let tes_left = info.tes - tes_right;

        let (l, r) = match encoding {
            ConflictEncoding::Hyperedges => {
                let r = non_empty_side(tes_right, info.ses & info.right_tables, info.right_tables);
                let l = non_empty_side(tes_left, info.ses & info.left_tables, info.left_tables);
                (l, r)
            }
            ConflictEncoding::TesTest => {
                // Plain predicate edges: the syntactic eligibility split.
                let r = non_empty_side(
                    info.ses & info.right_tables,
                    NodeSet::EMPTY,
                    info.right_tables,
                );
                let l = non_empty_side(
                    info.ses & info.left_tables,
                    NodeSet::EMPTY,
                    info.left_tables,
                );
                (l, r)
            }
        };
        debug_assert!(l.is_disjoint(r));
        let edge_id = graph_builder.add_edge(Hyperedge::new(l, r));
        let annotation = EdgeAnnotation::with_op(info.predicate.selectivity, info.op)
            .with_tes(tes_left, tes_right);
        catalog_builder.annotate_edge(edge_id, annotation);
    }

    let graph = graph_builder.build();
    let catalog = catalog_builder.build();
    debug_assert!(catalog.validate_for(&graph).is_ok());
    Ok(HypergraphQuery {
        graph,
        catalog,
        analysis,
        encoding,
    })
}

/// Picks the first non-empty candidate for one side of a hyperedge, falling back to the minimum
/// element of the operand's table set (predicates are guaranteed to span both operands by
/// validation, so the fallbacks only trigger for degenerate TES splits).
fn non_empty_side(primary: NodeSet, secondary: NodeSet, subtree: NodeSet) -> NodeSet {
    if !primary.is_empty() {
        primary
    } else if !secondary.is_empty() {
        secondary
    } else {
        subtree.min_singleton()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optree::Predicate;
    use qo_hypergraph::connectivity;
    use qo_plan::JoinOp;

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    fn left_deep_star(ops: &[JoinOp]) -> OpTree {
        let mut tree = OpTree::relation(0, 1000.0);
        for (i, op) in ops.iter().enumerate() {
            let rel = i + 1;
            tree = OpTree::op(
                *op,
                Predicate::between(0, rel, 0.01),
                tree,
                OpTree::relation(rel, 500.0 + rel as f64),
            );
        }
        tree
    }

    #[test]
    fn inner_star_yields_simple_star_graph() {
        let tree = left_deep_star(&[JoinOp::Inner; 4]);
        let q = derive_query(&tree, ConflictEncoding::Hyperedges).unwrap();
        assert_eq!(q.graph.node_count(), 5);
        assert_eq!(q.graph.edge_count(), 4);
        assert!(
            !q.graph.has_complex_edges(),
            "inner joins produce only simple edges"
        );
        for (id, e) in q.graph.edges() {
            assert_eq!(e.left(), ns(&[0]));
            assert_eq!(e.right(), ns(&[id + 1]));
            let ann = q.catalog.edge_annotation(id);
            assert_eq!(ann.op, JoinOp::Inner);
            assert!((ann.selectivity - 0.01).abs() < 1e-12);
        }
        // Cardinalities and graph connectivity carried over.
        assert_eq!(q.catalog.cardinality(0), 1000.0);
        assert_eq!(q.catalog.cardinality(3), 503.0);
        assert!(connectivity::is_graph_connected(&q.graph));
    }

    #[test]
    fn antijoin_star_grows_hypernodes() {
        // R0 ▷ R1 ▷ R2 ▷ R3: each antijoin's TES contains all previously antijoined satellites,
        // so the derived edges pin the antijoin order (this is the search-space reduction of
        // Sec. 5.7).
        let tree = left_deep_star(&[JoinOp::LeftAnti; 3]);
        let q = derive_query(&tree, ConflictEncoding::Hyperedges).unwrap();
        assert_eq!(q.graph.edge_count(), 3);
        let expected_lefts = [ns(&[0]), ns(&[0, 1]), ns(&[0, 1, 2])];
        for (id, e) in q.graph.edges() {
            assert_eq!(e.left(), expected_lefts[id], "edge {id}");
            assert_eq!(e.right(), ns(&[id + 1]));
            assert_eq!(q.catalog.edge_annotation(id).op, JoinOp::LeftAnti);
        }
        assert!(q.graph.has_complex_edges());
        assert!(connectivity::is_graph_connected(&q.graph));
    }

    #[test]
    fn tes_test_encoding_keeps_simple_edges_but_annotates_tes() {
        let tree = left_deep_star(&[JoinOp::LeftAnti; 3]);
        let q = derive_query(&tree, ConflictEncoding::TesTest).unwrap();
        assert!(
            !q.graph.has_complex_edges(),
            "generate-and-test keeps the plain predicate edges"
        );
        // The TES annotations still grow.
        let ann_last = q.catalog.edge_annotation(2);
        assert_eq!(ann_last.tes(), ns(&[0, 1, 2, 3]));
        assert_eq!(ann_last.tes_right, ns(&[3]));
        assert_eq!(ann_last.tes_left, ns(&[0, 1, 2]));
    }

    #[test]
    fn both_encodings_share_analysis_and_catalog_statistics() {
        let tree = left_deep_star(&[JoinOp::Inner, JoinOp::LeftOuter, JoinOp::LeftAnti]);
        let hy = derive_query(&tree, ConflictEncoding::Hyperedges).unwrap();
        let tt = derive_query(&tree, ConflictEncoding::TesTest).unwrap();
        assert_eq!(hy.encoding, ConflictEncoding::Hyperedges);
        assert_eq!(tt.encoding, ConflictEncoding::TesTest);
        for r in 0..4 {
            assert_eq!(hy.catalog.cardinality(r), tt.catalog.cardinality(r));
        }
        for e in 0..3 {
            assert_eq!(
                hy.catalog.edge_annotation(e).op,
                tt.catalog.edge_annotation(e).op
            );
        }
        assert_eq!(hy.all_relations(), tt.all_relations());
    }

    #[test]
    fn dependent_join_lateral_refs_reach_the_catalog() {
        let tree = OpTree::op(
            JoinOp::DepJoin,
            Predicate::between(0, 1, 1.0),
            OpTree::relation(0, 100.0),
            OpTree::lateral_relation(1, 3.0, ns(&[0])),
        );
        let q = derive_query(&tree, ConflictEncoding::Hyperedges).unwrap();
        assert_eq!(q.catalog.lateral_refs(1), ns(&[0]));
        assert_eq!(q.catalog.edge_annotation(0).op, JoinOp::DepJoin);
    }

    #[test]
    fn invalid_trees_are_rejected() {
        // Sparse relation numbering.
        let sparse = OpTree::join(
            Predicate::between(0, 5, 0.5),
            OpTree::relation(0, 10.0),
            OpTree::relation(5, 10.0),
        );
        assert!(derive_query(&sparse, ConflictEncoding::Hyperedges).is_err());
        // Structural validation failures propagate.
        let dup = OpTree::join(
            Predicate::between(0, 0, 0.5),
            OpTree::relation(0, 10.0),
            OpTree::relation(0, 10.0),
        );
        assert!(matches!(
            derive_query(&dup, ConflictEncoding::Hyperedges),
            Err(OpTreeError::DuplicateRelation(0))
        ));
    }

    #[test]
    fn outer_join_cycle_stays_mostly_simple() {
        // Chain-style tree with predicates (R_{i-1}, R_i), outer joins at the end: outer joins
        // reorder among themselves, so only edges whose operator conflicts with something grow.
        let mut tree = OpTree::relation(0, 100.0);
        let ops = [
            JoinOp::Inner,
            JoinOp::Inner,
            JoinOp::LeftOuter,
            JoinOp::LeftOuter,
        ];
        for (i, op) in ops.iter().enumerate() {
            let rel = i + 1;
            tree = OpTree::op(
                *op,
                Predicate::between(rel - 1, rel, 0.1),
                tree,
                OpTree::relation(rel, 100.0),
            );
        }
        let q = derive_query(&tree, ConflictEncoding::Hyperedges).unwrap();
        assert_eq!(q.graph.edge_count(), 4);
        // The inner-join edges are simple.
        assert!(q.graph.edge(0).is_simple());
        assert!(q.graph.edge(1).is_simple());
        // Outer joins over inner joins do not conflict, and outer joins among themselves do not
        // conflict either, so their edges stay simple too.
        assert!(q.graph.edge(2).is_simple());
        assert!(q.graph.edge(3).is_simple());
        assert_eq!(q.catalog.edge_annotation(3).op, JoinOp::LeftOuter);
    }
}
