//! SES / TES computation and conflict detection (Sec. 5.5 and Appendix A of the paper).
//!
//! For every operator of the initial operator tree we compute
//!
//! * its **syntactic eligibility set** `SES(◦)`: the relations that must be in the operator's
//!   arguments before its predicate can be evaluated (the relations referenced by the predicate
//!   plus, for dependent operators and table functions, the laterally referenced relations), and
//! * its **total eligibility set** `TES(◦)`: `SES(◦)` enlarged by the TES of every conflicting
//!   descendant operator. `TES` is computed bottom-up by [`calc_tes`]; conflicts are detected
//!   with the operator-conflict predicate `OC` ([`qo_plan::JoinOp::operator_conflict`]) combined
//!   with the syntactic tests `LC`/`RC` built on `RightTables`/`LeftTables`.
//!
//! ### A note on conservatism
//!
//! The paper defines `RightTables(◦1, ◦2)` over the path from the descendant `◦2` *exclusive* of
//! the ancestor `◦1`. Read literally, that leaves star-shaped queries (every predicate
//! references the hub, which sits at the far left) entirely conflict-free, so the TESs of the
//! antijoin workload of Fig. 8a would never grow and the search-space reduction the paper
//! measures could not materialize. The paper's own experimental narrative ("the outer joins
//! cannot be reordered with inner joins", "the antijoins are more restrictive than inner joins")
//! shows that its implementation is more conservative than Theorem 1. We therefore include the
//! ancestor's own right (respectively left) operand in `RightTables` (`LeftTables`), which makes
//! the syntactic test succeed whenever the ancestor's predicate touches that side — i.e.
//! conflicts are effectively governed by `OC`. This is safe (it can only *forbid* reorderings,
//! never allow an invalid one) and reproduces the restrictiveness visible in the paper's
//! experiments. See DESIGN.md for the full discussion.

use crate::optree::{OpTree, Predicate};
use qo_bitset::NodeSet;
use qo_plan::JoinOp;

/// Per-operator result of the conflict analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct OperatorInfo {
    /// The operator.
    pub op: JoinOp,
    /// Its predicate.
    pub predicate: Predicate,
    /// Relations of the left operand subtree, `T(left(◦))`.
    pub left_tables: NodeSet,
    /// Relations of the right operand subtree, `T(right(◦))`.
    pub right_tables: NodeSet,
    /// Syntactic eligibility set.
    pub ses: NodeSet,
    /// Total eligibility set (equals `ses` until [`calc_tes`] has processed the operator).
    pub tes: NodeSet,
    /// Index of the operator at the root of the left operand, if the left operand is not a leaf.
    pub left_child: Option<usize>,
    /// Index of the operator at the root of the right operand, if the right operand is not a
    /// leaf.
    pub right_child: Option<usize>,
}

impl OperatorInfo {
    /// All relations below this operator.
    pub fn tables(&self) -> NodeSet {
        self.left_tables | self.right_tables
    }
}

/// The full conflict analysis of an operator tree: every operator in post-order (children before
/// parents) with its SES and TES.
#[derive(Clone, Debug)]
pub struct ConflictAnalysis {
    /// Operators in post-order; the root is the last entry.
    pub operators: Vec<OperatorInfo>,
    /// All relations of the query.
    pub tables: NodeSet,
}

impl ConflictAnalysis {
    /// The root operator, if the tree has at least one operator.
    pub fn root(&self) -> Option<&OperatorInfo> {
        self.operators.last()
    }
}

/// Syntactic eligibility set of one operator: the referenced relations (predicate references
/// plus lateral references of relations in the subtree), restricted to the operator's own
/// subtree.
pub fn ses(
    predicate: &Predicate,
    subtree_tables: NodeSet,
    lateral_refs_in_subtree: NodeSet,
) -> NodeSet {
    (predicate.references | lateral_refs_in_subtree) & subtree_tables
}

/// Runs the full bottom-up TES computation (`CalcTES`) over the operator tree.
///
/// The returned analysis lists the operators in post-order; `operators[i].tes` is final.
pub fn calc_tes(tree: &OpTree) -> ConflictAnalysis {
    let mut analysis = analyze(tree);
    let n = analysis.operators.len();
    // Bottom-up: post-order guarantees descendants come first.
    for i in 0..n {
        // Left subtree: LeftConflict(◦2, ◦1) = LC ∧ OC(◦2, ◦1).
        let mut absorb = NodeSet::EMPTY;
        let p1_refs = analysis.operators[i].predicate.references;
        let op1 = analysis.operators[i].op;
        if let Some(lc) = analysis.operators[i].left_child {
            // Accumulator starts with the ancestor's own right operand (conservative inclusive
            // reading, see module docs).
            let start_acc = analysis.operators[i].right_tables;
            visit_side(
                &analysis.operators,
                lc,
                start_acc,
                Side::Left,
                &mut |j, right_tables| {
                    let desc = &analysis.operators[j];
                    let lc_holds = p1_refs.intersects(right_tables);
                    if lc_holds && JoinOp::operator_conflict(desc.op, op1) {
                        absorb |= desc.tes;
                    }
                },
            );
        }
        // Right subtree: RightConflict(◦1, ◦2) = RC ∧ OC(◦1, ◦2).
        if let Some(rc) = analysis.operators[i].right_child {
            let start_acc = analysis.operators[i].left_tables;
            visit_side(
                &analysis.operators,
                rc,
                start_acc,
                Side::Right,
                &mut |j, left_tables| {
                    let desc = &analysis.operators[j];
                    let rc_holds = p1_refs.intersects(left_tables);
                    if rc_holds && JoinOp::operator_conflict(op1, desc.op) {
                        absorb |= desc.tes;
                    }
                },
            );
        }
        analysis.operators[i].tes |= absorb;
    }
    analysis
}

#[derive(Clone, Copy, PartialEq)]
enum Side {
    Left,
    Right,
}

/// Walks the operator subtree rooted at `idx`, calling `f(j, accumulated)` for every operator
/// `j`, where `accumulated` is `RightTables(◦1, ◦j)` (for [`Side::Left`]) respectively
/// `LeftTables(◦1, ◦j)` (for [`Side::Right`]) including the conservative extension described in
/// the module docs.
fn visit_side(
    operators: &[OperatorInfo],
    idx: usize,
    acc: NodeSet,
    side: Side,
    f: &mut impl FnMut(usize, NodeSet),
) {
    let info = &operators[idx];
    let own_contribution = match side {
        Side::Left => info.right_tables,
        Side::Right => info.left_tables,
    };
    let acc_through_here = acc | own_contribution;
    // "If ◦2 is commutative, we add T(left(◦2)) [T(right(◦2))] ..."
    let commutative_extra = if info.op.is_commutative() {
        match side {
            Side::Left => info.left_tables,
            Side::Right => info.right_tables,
        }
    } else {
        NodeSet::EMPTY
    };
    f(idx, acc_through_here | commutative_extra);
    if let Some(l) = info.left_child {
        visit_side(operators, l, acc_through_here, side, f);
    }
    if let Some(r) = info.right_child {
        visit_side(operators, r, acc_through_here, side, f);
    }
}

/// Structural pass: collects the operators in post-order with tables, SES and child links.
fn analyze(tree: &OpTree) -> ConflictAnalysis {
    let mut operators = Vec::with_capacity(tree.operator_count());
    // Returns (tables of subtree, lateral refs of relations in the subtree, operator index of
    // the subtree root if it is an operator).
    fn rec(t: &OpTree, operators: &mut Vec<OperatorInfo>) -> (NodeSet, NodeSet, Option<usize>) {
        match t {
            OpTree::Relation {
                id, lateral_refs, ..
            } => (NodeSet::single(*id), *lateral_refs, None),
            OpTree::Op {
                op,
                predicate,
                left,
                right,
            } => {
                let (lt, ll, lchild) = rec(left, operators);
                let (rt, rl, rchild) = rec(right, operators);
                let tables = lt | rt;
                let lateral = ll | rl;
                let ses = ses(predicate, tables, lateral);
                let idx = operators.len();
                operators.push(OperatorInfo {
                    op: *op,
                    predicate: *predicate,
                    left_tables: lt,
                    right_tables: rt,
                    ses,
                    tes: ses,
                    left_child: lchild,
                    right_child: rchild,
                });
                let _ = idx;
                (tables, lateral, Some(operators.len() - 1))
            }
        }
    }
    let (tables, _, _) = rec(tree, &mut operators);
    ConflictAnalysis { operators, tables }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optree::{OpTree, Predicate};

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    /// Left-deep tree over n relations where step i applies `ops[i-1]` with a predicate between
    /// the hub R0 and R_i (a star query).
    fn left_deep_star(ops: &[JoinOp]) -> OpTree {
        let mut tree = OpTree::relation(0, 1000.0);
        for (i, op) in ops.iter().enumerate() {
            let rel = i + 1;
            tree = OpTree::op(
                *op,
                Predicate::between(0, rel, 0.01),
                tree,
                OpTree::relation(rel, 1000.0),
            );
        }
        tree
    }

    /// Left-deep tree over n relations where step i applies `ops[i-1]` with a predicate between
    /// R_{i-1} and R_i (a chain query).
    fn left_deep_chain(ops: &[JoinOp]) -> OpTree {
        let mut tree = OpTree::relation(0, 1000.0);
        for (i, op) in ops.iter().enumerate() {
            let rel = i + 1;
            tree = OpTree::op(
                *op,
                Predicate::between(rel - 1, rel, 0.01),
                tree,
                OpTree::relation(rel, 1000.0),
            );
        }
        tree
    }

    #[test]
    fn ses_is_predicate_refs_within_subtree() {
        let p = Predicate::new(ns(&[0, 2, 9]), 0.5);
        assert_eq!(ses(&p, ns(&[0, 1, 2]), NodeSet::EMPTY), ns(&[0, 2]));
        // Lateral refs inside the subtree are added.
        assert_eq!(ses(&p, ns(&[0, 1, 2]), ns(&[1])), ns(&[0, 1, 2]));
    }

    #[test]
    fn analysis_is_postorder_with_child_links() {
        let tree = left_deep_chain(&[JoinOp::Inner, JoinOp::Inner, JoinOp::Inner]);
        let a = calc_tes(&tree);
        assert_eq!(a.operators.len(), 3);
        assert_eq!(a.tables, ns(&[0, 1, 2, 3]));
        // Post-order for a left-deep tree: innermost first.
        assert_eq!(a.operators[0].right_tables, ns(&[1]));
        assert_eq!(a.operators[2].right_tables, ns(&[3]));
        assert_eq!(a.operators[2].left_child, Some(1));
        assert_eq!(a.operators[2].right_child, None);
        assert_eq!(a.root().unwrap().tables(), ns(&[0, 1, 2, 3]));
    }

    #[test]
    fn pure_inner_joins_have_tes_equal_ses() {
        for tree in [
            left_deep_chain(&[JoinOp::Inner; 5]),
            left_deep_star(&[JoinOp::Inner; 5]),
        ] {
            let a = calc_tes(&tree);
            for op in &a.operators {
                assert_eq!(op.tes, op.ses, "inner joins must not pick up conflicts");
                assert_eq!(op.ses, op.predicate.references);
            }
        }
    }

    #[test]
    fn antijoins_conflict_with_each_other_but_not_with_inner_joins() {
        // R0 ⋈ R1 ▷ R2 ▷ R3 (star predicates).
        let tree = left_deep_star(&[JoinOp::Inner, JoinOp::LeftAnti, JoinOp::LeftAnti]);
        let a = calc_tes(&tree);
        // Operator 0: inner join — untouched.
        assert_eq!(a.operators[0].tes, ns(&[0, 1]));
        // Operator 1: first antijoin. Below it only the inner join; OC(B, I) = false, so no
        // conflict and TES stays the SES.
        assert_eq!(a.operators[1].op, JoinOp::LeftAnti);
        assert_eq!(a.operators[1].tes, ns(&[0, 2]));
        // Operator 2: second antijoin. OC(I, I) = true, so it absorbs the first antijoin's TES.
        assert_eq!(a.operators[2].op, JoinOp::LeftAnti);
        assert_eq!(a.operators[2].tes, ns(&[0, 2, 3]));
    }

    #[test]
    fn antijoin_chain_tes_grows_monotonically() {
        let tree = left_deep_star(&[JoinOp::LeftAnti; 4]);
        let a = calc_tes(&tree);
        for i in 1..a.operators.len() {
            assert!(
                a.operators[i]
                    .tes
                    .is_superset_of(a.operators[i - 1].tes - ns(&[0])),
                "antijoin {i} must require all previously antijoined satellites"
            );
        }
        // The last antijoin requires the hub and every previously antijoined satellite.
        assert_eq!(a.operators[3].tes, ns(&[0, 1, 2, 3, 4]));
    }

    #[test]
    fn outer_joins_reorder_freely_among_themselves() {
        // Chain of left outer joins: OC(P, P) = false ⇒ no conflicts.
        let tree = left_deep_chain(&[JoinOp::LeftOuter; 4]);
        let a = calc_tes(&tree);
        for op in &a.operators {
            assert_eq!(op.tes, op.ses);
        }
    }

    #[test]
    fn inner_join_above_outer_join_conflicts() {
        // (R0 ⟕ R1) ⋈ R2 with the join predicate touching R1 (the outer join's null-producing
        // side): the join must not be pushed below the outer join, so its TES absorbs the outer
        // join's TES.
        let tree = OpTree::op(
            JoinOp::Inner,
            Predicate::between(1, 2, 0.1),
            OpTree::op(
                JoinOp::LeftOuter,
                Predicate::between(0, 1, 0.1),
                OpTree::relation(0, 100.0),
                OpTree::relation(1, 100.0),
            ),
            OpTree::relation(2, 100.0),
        );
        let a = calc_tes(&tree);
        assert_eq!(a.operators[0].op, JoinOp::LeftOuter);
        assert_eq!(a.operators[0].tes, ns(&[0, 1]));
        assert_eq!(a.operators[1].op, JoinOp::Inner);
        assert_eq!(
            a.operators[1].tes,
            ns(&[0, 1, 2]),
            "join absorbs the outer join's TES"
        );
    }

    #[test]
    fn outer_join_above_inner_join_does_not_conflict() {
        // (R0 ⋈ R1) ⟕ R2: the inner join below an outer join reorders freely (eq. (3) of
        // Theorem 1), OC(B, P) = false.
        let tree = OpTree::op(
            JoinOp::LeftOuter,
            Predicate::between(1, 2, 0.1),
            OpTree::op(
                JoinOp::Inner,
                Predicate::between(0, 1, 0.1),
                OpTree::relation(0, 100.0),
                OpTree::relation(1, 100.0),
            ),
            OpTree::relation(2, 100.0),
        );
        let a = calc_tes(&tree);
        assert_eq!(a.operators[1].op, JoinOp::LeftOuter);
        assert_eq!(a.operators[1].tes, a.operators[1].ses);
    }

    #[test]
    fn full_outer_join_below_inner_join_conflicts() {
        // (R0 ⟗ R1) ⋈ R2: OC(M, B) is true — the full outer join is not reorderable with the
        // join above it.
        let tree = OpTree::op(
            JoinOp::Inner,
            Predicate::between(1, 2, 0.1),
            OpTree::op(
                JoinOp::FullOuter,
                Predicate::between(0, 1, 0.1),
                OpTree::relation(0, 100.0),
                OpTree::relation(1, 100.0),
            ),
            OpTree::relation(2, 100.0),
        );
        let a = calc_tes(&tree);
        assert_eq!(a.operators[1].tes, ns(&[0, 1, 2]));
    }

    #[test]
    fn lateral_reference_enters_the_ses() {
        // R0 ⋈d f(R0) — the table function R1 references R0 laterally.
        let tree = OpTree::op(
            JoinOp::DepJoin,
            Predicate::between(0, 1, 1.0),
            OpTree::relation(0, 100.0),
            OpTree::lateral_relation(1, 3.0, ns(&[0])),
        );
        let a = calc_tes(&tree);
        assert_eq!(a.operators[0].ses, ns(&[0, 1]));
        // A second, non-dependent join above still sees a plain SES.
        let bigger = OpTree::op(
            JoinOp::Inner,
            Predicate::between(0, 2, 0.5),
            tree,
            OpTree::relation(2, 50.0),
        );
        let a = calc_tes(&bigger);
        assert_eq!(a.operators[1].ses, ns(&[0, 2]));
        // OC(dep-join, inner) treats the d-join as an inner join ⇒ no conflict.
        assert_eq!(a.operators[1].tes, ns(&[0, 2]));
    }

    #[test]
    fn nested_right_subtree_conflicts_are_detected() {
        // R0 ▷ (R1 ⟗ R2): the full outer join sits in the *right* subtree of the antijoin.
        // RC holds (the antijoin predicate references R1) and OC(I, M) is true.
        let tree = OpTree::op(
            JoinOp::LeftAnti,
            Predicate::between(0, 1, 0.1),
            OpTree::relation(0, 100.0),
            OpTree::op(
                JoinOp::FullOuter,
                Predicate::between(1, 2, 0.1),
                OpTree::relation(1, 100.0),
                OpTree::relation(2, 100.0),
            ),
        );
        let a = calc_tes(&tree);
        let root = a.root().unwrap();
        assert_eq!(root.op, JoinOp::LeftAnti);
        assert_eq!(
            root.tes,
            ns(&[0, 1, 2]),
            "antijoin must absorb the full outer join's TES"
        );
    }

    #[test]
    fn commutative_descendant_contributes_both_sides() {
        // ((R0 ⋈ R1) ⟗ R2) ▷ R3 with the antijoin predicate referencing R0: the full outer
        // join below conflicts (OC(M, I) = true) and its TES is absorbed.
        let tree = OpTree::op(
            JoinOp::LeftAnti,
            Predicate::between(0, 3, 0.1),
            OpTree::op(
                JoinOp::FullOuter,
                Predicate::between(1, 2, 0.1),
                OpTree::op(
                    JoinOp::Inner,
                    Predicate::between(0, 1, 0.1),
                    OpTree::relation(0, 10.0),
                    OpTree::relation(1, 10.0),
                ),
                OpTree::relation(2, 10.0),
            ),
            OpTree::relation(3, 10.0),
        );
        let a = calc_tes(&tree);
        let root = a.root().unwrap();
        assert!(root.tes.is_superset_of(ns(&[0, 1, 2, 3])));
    }
}
