//! Pretty-printer: [`IngestQuery`] → canonical `.jg` text.
//!
//! The printer is the inverse of the parse-and-lower pipeline and is held to a round-trip
//! contract (checked by a property test): `parse_queries(to_jg(q))` yields a query equal to
//! `q` — same relation names and ids, bit-identical statistics, same options. Floats are
//! printed with Rust's `{:?}`, which emits the shortest string that parses back to the exact
//! same `f64`, so statistics survive the text round trip without drift.

use crate::lower::{op_name, IngestQuery};
use dphyp::NodeId;
use qo_plan::JoinOp;
use std::fmt::Write;

/// Renders one query as canonical `.jg` text (trailing newline included).
pub fn to_jg(q: &IngestQuery) -> String {
    let mut out = String::new();
    let name_of = |id: NodeId| q.relation_names[id].as_str();
    writeln!(out, "query {} {{", q.name).unwrap();
    for (id, rel_name) in q.relation_names.iter().enumerate() {
        write!(
            out,
            "  relation {rel_name} cardinality={:?}",
            q.spec.cardinality(id)
        )
        .unwrap();
        if let Some(rows) = q.row_overrides[id] {
            write!(out, " rows={rows}").unwrap();
        }
        let lateral = q.spec.lateral_refs(id);
        if !lateral.is_empty() {
            let refs: Vec<&str> = lateral.iter().map(|&r| name_of(r)).collect();
            write!(out, " lateral=({})", refs.join(", ")).unwrap();
        }
        out.push('\n');
    }
    for e in q.spec.edges() {
        write!(
            out,
            "  join {} -- {} selectivity={:?}",
            side(e.left(), &name_of),
            side(e.right(), &name_of),
            e.selectivity()
        )
        .unwrap();
        if e.op() != JoinOp::Inner {
            write!(out, " op={}", op_name(e.op())).unwrap();
        }
        if !e.flex().is_empty() {
            let refs: Vec<&str> = e.flex().iter().map(|&r| name_of(r)).collect();
            write!(out, " flex={{{}}}", refs.join(", ")).unwrap();
        }
        out.push('\n');
    }
    let o = &q.options;
    if let Some(b) = o.ccp_budget {
        writeln!(out, "  option ccp_budget = {b}").unwrap();
    }
    if let Some(k) = o.idp_block_size {
        writeln!(out, "  option idp_block_size = {k}").unwrap();
    }
    if let Some(t) = o.time_budget {
        writeln!(
            out,
            "  option time_budget_ms = {:?}",
            t.as_nanos() as f64 / 1e6
        )
        .unwrap();
    }
    if let Some(m) = o.cost_model {
        let name = match m {
            dphyp::CostModelKind::Cout => "cout",
            dphyp::CostModelKind::Mixed => "mixed",
        };
        writeln!(out, "  option cost_model = {name}").unwrap();
    }
    if let Some(s) = o.idp_strategy {
        let name = match s {
            dphyp::IdpStrategy::SmallestCardinality => "smallest",
            dphyp::IdpStrategy::ConnectedSmallest => "connected",
        };
        writeln!(out, "  option idp_strategy = {name}").unwrap();
    }
    if let Some(p) = o.parallelism {
        writeln!(out, "  option parallelism = {p}").unwrap();
    }
    if let Some(p) = o.pruning {
        writeln!(out, "  option pruning = {}", if p { "on" } else { "off" }).unwrap();
    }
    if let Some(t) = o.trace {
        writeln!(out, "  option trace = {}", if t { "on" } else { "off" }).unwrap();
    }
    if let Some(r) = o.sample_rate {
        writeln!(out, "  option sample_rate = {r}").unwrap();
    }
    out.push_str("}\n");
    out
}

fn side<'a>(ids: &[NodeId], name_of: &impl Fn(NodeId) -> &'a str) -> String {
    debug_assert!(!ids.is_empty(), "a lowered join side is never empty");
    if ids.len() == 1 {
        name_of(ids[0]).to_string()
    } else {
        let names: Vec<&str> = ids.iter().map(|&r| name_of(r)).collect();
        format!("{{{}}}", names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::parse_queries;

    #[test]
    fn round_trips_a_query_with_every_feature() {
        let src = "query all_features {
  relation fact cardinality=250000.0 rows=64
  relation dim cardinality=100.0
  relation tf cardinality=5.0 lateral=(fact)
  relation extra cardinality=0.5
  join fact -- dim selectivity=0.001
  join fact -- tf selectivity=1.0
  join {fact, dim} -- extra selectivity=0.25 op=left_semi
  join dim -- extra selectivity=0.5 flex={tf}
  option ccp_budget = 12345
  option idp_block_size = 6
  option time_budget_ms = 250.0
  option cost_model = mixed
  option idp_strategy = connected
  option parallelism = 4
  option pruning = on
  option trace = on
  option sample_rate = 512
}
";
        let q = &parse_queries(src).unwrap()[0];
        let printed = to_jg(q);
        assert_eq!(printed, src, "printer emits canonical text");
        let reparsed = &parse_queries(&printed).unwrap()[0];
        assert_eq!(reparsed, q, "canonical text lowers to an equal query");
    }

    #[test]
    fn shortest_float_formatting_survives_reparsing() {
        let src = "query f {\n  relation a cardinality=2528312\n  relation b cardinality=113\n  join a -- b selectivity=4e-7\n}";
        let q = &parse_queries(src).unwrap()[0];
        let again = &parse_queries(&to_jg(q)).unwrap()[0];
        assert_eq!(again.spec.cardinality(0), 2_528_312.0);
        assert_eq!(
            again.spec.edges().next().unwrap().selectivity(),
            4e-7,
            "bit-identical selectivity after round trip"
        );
    }
}
