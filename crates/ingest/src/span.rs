//! Byte spans and spanned diagnostics for `.jg` sources.

use std::fmt;

/// A half-open byte range `[start, end)` into one `.jg` source text.
///
/// Spans survive every stage of ingestion — lexing, parsing and lowering — so a semantic error
/// (say, a selectivity of `1.5` on the 40th line) still points at the offending bytes of the
/// *source*, not at some lowered artifact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first byte of the spanned region.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// 1-based line and column of the span start within `source`.
    ///
    /// Columns count bytes (the language is ASCII-only in practice), and a span starting at
    /// end-of-input reports the position one past the last character.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let upto = &source[..self.start.min(source.len())];
        let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = upto.len() - upto.rfind('\n').map_or(0, |i| i + 1) + 1;
        (line, col)
    }
}

/// An ingestion failure: what went wrong and where in the source.
///
/// One error type serves all three stages — an unterminated token, a grammar violation and an
/// invalid statistic all render the same way. [`JgError::render`] produces a compiler-style
/// diagnostic with the source line and a caret run under the offending span.
#[derive(Clone, Debug, PartialEq)]
pub struct JgError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Where in the source it occurred.
    pub span: Span,
}

impl JgError {
    /// Creates an error over the given span.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        JgError {
            message: message.into(),
            span,
        }
    }

    /// Renders a multi-line diagnostic against the source the error was produced from:
    ///
    /// ```text
    /// error: relation `titel` is not declared in this query
    ///   --> line 7, column 8
    ///    |
    ///  7 |   join titel -- movie_info selectivity=0.01
    ///    |        ^^^^^
    /// ```
    pub fn render(&self, source: &str) -> String {
        let (line, col) = self.span.line_col(source);
        let line_text = source.lines().nth(line - 1).unwrap_or("");
        let width = line.to_string().len().max(2);
        let caret_len = (self.span.end - self.span.start)
            .max(1)
            .min(line_text.len().saturating_sub(col - 1).max(1));
        format!(
            "error: {msg}\n  --> line {line}, column {col}\n{pad} |\n{line:>width$} | {text}\n{pad} | {gap}{carets}",
            msg = self.message,
            pad = " ".repeat(width),
            text = line_text,
            gap = " ".repeat(col - 1),
            carets = "^".repeat(caret_len),
            width = width,
        )
    }
}

impl fmt::Display for JgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (bytes {}..{})",
            self.message, self.span.start, self.span.end
        )
    }
}

impl std::error::Error for JgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_counts_from_one() {
        let src = "ab\ncde\nf";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(3, 4).line_col(src), (2, 1));
        assert_eq!(Span::new(5, 6).line_col(src), (2, 3));
        assert_eq!(Span::new(7, 8).line_col(src), (3, 1));
    }

    #[test]
    fn spans_merge() {
        assert_eq!(Span::new(4, 6).to(Span::new(1, 2)), Span::new(1, 6));
    }

    #[test]
    fn render_points_carets_at_the_span() {
        let src = "query q {\n  relation x cardinality=-5\n}";
        let bad = src.find("-5").unwrap();
        let e = JgError::new("bad cardinality", Span::new(bad, bad + 2));
        let rendered = e.render(src);
        assert!(rendered.contains("error: bad cardinality"));
        assert!(rendered.contains("line 2, column 26"));
        assert!(rendered.contains("^^"));
    }
}
