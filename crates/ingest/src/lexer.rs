//! Hand-rolled lexer for `.jg` sources: bytes → spanned tokens.
//!
//! The token set is deliberately tiny — identifiers, numbers, six punctuation marks and the
//! `--` join connector. Comments run from `#` to end of line; keywords are plain identifiers
//! that the parser recognizes positionally, so relation names like `option` never clash with
//! the grammar.

use crate::span::{JgError, Span};

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// `[A-Za-z_][A-Za-z0-9_]*` — names, keywords and symbolic option values.
    Ident,
    /// A decimal number with optional sign, fraction and exponent (`2528312`, `4.0e-7`, `-3`).
    Number,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Equals,
    /// `--`, the join connector.
    Connector,
    /// Virtual end-of-input token (zero-width span at the end of the source).
    Eof,
}

impl TokenKind {
    /// Human-readable name used in "expected X, found Y" diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            TokenKind::Ident => "an identifier",
            TokenKind::Number => "a number",
            TokenKind::LBrace => "`{`",
            TokenKind::RBrace => "`}`",
            TokenKind::LParen => "`(`",
            TokenKind::RParen => "`)`",
            TokenKind::Comma => "`,`",
            TokenKind::Equals => "`=`",
            TokenKind::Connector => "`--`",
            TokenKind::Eof => "end of input",
        }
    }
}

/// One spanned lexeme. The text is not copied: consumers slice the source with the span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// The lexeme class.
    pub kind: TokenKind,
    /// Where in the source the lexeme sits.
    pub span: Span,
}

impl Token {
    /// The lexeme's text within its source.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.span.start..self.span.end]
    }
}

/// Lexes a whole source into tokens (the final token is always [`TokenKind::Eof`]).
///
/// Fails with a spanned [`JgError`] on the first byte that starts no token.
pub fn lex(source: &str) -> Result<Vec<Token>, JgError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'{' | b'}' | b'(' | b')' | b',' | b'=' => {
                let kind = match b {
                    b'{' => TokenKind::LBrace,
                    b'}' => TokenKind::RBrace,
                    b'(' => TokenKind::LParen,
                    b')' => TokenKind::RParen,
                    b',' => TokenKind::Comma,
                    _ => TokenKind::Equals,
                };
                tokens.push(Token {
                    kind,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            b'-' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    tokens.push(Token {
                        kind: TokenKind::Connector,
                        span: Span::new(i, i + 2),
                    });
                    i += 2;
                } else if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    let end = scan_number(bytes, i + 1);
                    tokens.push(Token {
                        kind: TokenKind::Number,
                        span: Span::new(i, end),
                    });
                    i = end;
                } else {
                    return Err(JgError::new(
                        "stray `-`: expected `--` (join connector) or a negative number",
                        Span::new(i, i + 1),
                    ));
                }
            }
            b'0'..=b'9' => {
                let end = scan_number(bytes, i);
                tokens.push(Token {
                    kind: TokenKind::Number,
                    span: Span::new(i, end),
                });
                i = end;
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    span: Span::new(start, i),
                });
            }
            _ => {
                // Report the whole UTF-8 scalar, not a lone continuation byte.
                let ch_len = source[i..].chars().next().map_or(1, char::len_utf8);
                return Err(JgError::new(
                    format!("unexpected character `{}`", &source[i..i + ch_len]),
                    Span::new(i, i + ch_len),
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(bytes.len(), bytes.len()),
    });
    Ok(tokens)
}

/// Scans the digits/fraction/exponent of a number starting at `i` (the sign, if any, was
/// already consumed) and returns the end offset.
fn scan_number(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'.' {
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_full_token_set() {
        assert_eq!(
            kinds("query q { join a -- {b, c} selectivity=4.0e-7 }"),
            vec![
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::LBrace,
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Connector,
                TokenKind::LBrace,
                TokenKind::Ident,
                TokenKind::Comma,
                TokenKind::Ident,
                TokenKind::RBrace,
                TokenKind::Ident,
                TokenKind::Equals,
                TokenKind::Number,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_whitespace_vanish() {
        assert_eq!(
            kinds("# a comment\n  x # trailing\n\t42"),
            vec![TokenKind::Ident, TokenKind::Number, TokenKind::Eof]
        );
    }

    #[test]
    fn numbers_cover_signs_fractions_exponents() {
        let src = "1 -2 3.5 -0.25 1e6 4.0e-7 2E+3";
        let toks = lex(src).unwrap();
        let texts: Vec<&str> = toks[..toks.len() - 1].iter().map(|t| t.text(src)).collect();
        assert_eq!(
            texts,
            vec!["1", "-2", "3.5", "-0.25", "1e6", "4.0e-7", "2E+3"]
        );
        assert!(toks[..toks.len() - 1]
            .iter()
            .all(|t| t.kind == TokenKind::Number));
    }

    #[test]
    fn exponent_needs_digits_to_bind() {
        // `1e` is the number `1` followed by the identifier... no — `e` cannot restart inside
        // a number, so the lexer must split `1e` into Number("1") + Ident("e").
        let src = "1e x";
        let toks = lex(src).unwrap();
        assert_eq!(toks[0].kind, TokenKind::Number);
        assert_eq!(toks[0].text(src), "1");
        assert_eq!(toks[1].kind, TokenKind::Ident);
    }

    #[test]
    fn stray_minus_is_a_spanned_error() {
        let err = lex("a - b").unwrap_err();
        assert_eq!(err.span, Span::new(2, 3));
        assert!(err.message.contains("stray `-`"));
    }

    #[test]
    fn unknown_characters_are_spanned_errors() {
        let err = lex("rel @ x").unwrap_err();
        assert_eq!(err.span, Span::new(4, 5));
        assert!(err.message.contains('@'));
    }
}
