//! Recursive-descent parser for `.jg` sources: spanned tokens → [`JgFile`].
//!
//! The grammar (see the crate docs for the prose version):
//!
//! ```text
//! file      := query*                                   ; at least one
//! query     := "query" IDENT "{" stmt* "}"
//! stmt      := relation | join | option
//! relation  := "relation" IDENT rel-attr*
//! rel-attr  := "cardinality" "=" NUMBER
//!            | "rows" "=" NUMBER
//!            | "lateral" "=" "(" IDENT ("," IDENT)* ")"
//! join      := "join" side "--" side join-attr*
//! side      := IDENT | "{" IDENT ("," IDENT)* "}"
//! join-attr := "selectivity" "=" NUMBER
//!            | "op" "=" IDENT
//!            | "flex" "=" "{" IDENT ("," IDENT)* "}"
//! option    := "option" IDENT "=" (NUMBER | IDENT)
//! ```
//!
//! Keywords (`query`, `relation`, `join`, `option`, attribute names) are contextual: they are
//! ordinary identifiers everywhere except at the position where the grammar expects them, so
//! relations may freely be named `option` or `flex`.

use crate::ast::{
    JgFile, JoinDecl, JoinSide, Name, NumberLit, OptionDecl, OptionValue, QueryDecl, RelationDecl,
};
use crate::lexer::{lex, Token, TokenKind};
use crate::span::{JgError, Span};

/// Parses a whole `.jg` source into its AST.
///
/// Fails with a spanned [`JgError`] on the first lexical or syntactic violation; empty input
/// (no `query` block) is an error too.
pub fn parse(source: &str) -> Result<JgFile, JgError> {
    let tokens = lex(source)?;
    let mut p = Parser {
        source,
        tokens,
        pos: 0,
    };
    let mut queries = Vec::new();
    while !p.at(TokenKind::Eof) {
        queries.push(p.query()?);
    }
    if queries.is_empty() {
        return Err(JgError::new(
            "empty input: expected at least one `query` block",
            Span::new(0, 0),
        ));
    }
    Ok(JgFile { queries })
}

struct Parser<'s> {
    source: &'s str,
    tokens: Vec<Token>,
    pos: usize,
}

impl<'s> Parser<'s> {
    fn peek(&self) -> Token {
        self.tokens[self.pos]
    }

    fn at(&self, kind: TokenKind) -> bool {
        self.peek().kind == kind
    }

    /// Is the next token the given contextual keyword?
    fn at_keyword(&self, kw: &str) -> bool {
        let t = self.peek();
        t.kind == TokenKind::Ident && t.text(self.source) == kw
    }

    fn bump(&mut self) -> Token {
        let t = self.peek();
        if t.kind != TokenKind::Eof {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, JgError> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            let t = self.peek();
            Err(JgError::new(
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    found(t, self.source)
                ),
                t.span,
            ))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<Token, JgError> {
        if self.at_keyword(kw) {
            Ok(self.bump())
        } else {
            let t = self.peek();
            Err(JgError::new(
                format!("expected `{kw}`, found {}", found(t, self.source)),
                t.span,
            ))
        }
    }

    fn name(&mut self) -> Result<Name, JgError> {
        let t = self.expect(TokenKind::Ident)?;
        Ok(Name {
            text: t.text(self.source).to_string(),
            span: t.span,
        })
    }

    fn number(&mut self) -> Result<NumberLit, JgError> {
        let t = self.expect(TokenKind::Number)?;
        let text = t.text(self.source);
        let value = text
            .parse::<f64>()
            .map_err(|_| JgError::new(format!("number `{text}` does not parse as f64"), t.span))?;
        Ok(NumberLit {
            value,
            span: t.span,
        })
    }

    fn query(&mut self) -> Result<QueryDecl, JgError> {
        self.expect_keyword("query")?;
        let name = self.name()?;
        self.expect(TokenKind::LBrace)?;
        let mut q = QueryDecl {
            name,
            relations: Vec::new(),
            joins: Vec::new(),
            options: Vec::new(),
        };
        loop {
            if self.at(TokenKind::RBrace) {
                self.bump();
                return Ok(q);
            }
            if self.at_keyword("relation") {
                q.relations.push(self.relation()?);
            } else if self.at_keyword("join") {
                q.joins.push(self.join()?);
            } else if self.at_keyword("option") {
                q.options.push(self.option()?);
            } else {
                let t = self.peek();
                return Err(JgError::new(
                    format!(
                        "expected `relation`, `join`, `option` or `}}`, found {}",
                        found(t, self.source)
                    ),
                    t.span,
                ));
            }
        }
    }

    fn relation(&mut self) -> Result<RelationDecl, JgError> {
        self.expect_keyword("relation")?;
        let name = self.name()?;
        let mut decl = RelationDecl {
            name,
            cardinality: None,
            rows: None,
            lateral: Vec::new(),
        };
        loop {
            if self.at_keyword("cardinality") {
                let kw = self.bump();
                if decl.cardinality.is_some() {
                    return Err(JgError::new("duplicate `cardinality` attribute", kw.span));
                }
                self.expect(TokenKind::Equals)?;
                decl.cardinality = Some(self.number()?);
            } else if self.at_keyword("rows") {
                let kw = self.bump();
                if decl.rows.is_some() {
                    return Err(JgError::new("duplicate `rows` attribute", kw.span));
                }
                self.expect(TokenKind::Equals)?;
                decl.rows = Some(self.number()?);
            } else if self.at_keyword("lateral") {
                let kw = self.bump();
                if !decl.lateral.is_empty() {
                    return Err(JgError::new("duplicate `lateral` attribute", kw.span));
                }
                self.expect(TokenKind::Equals)?;
                self.expect(TokenKind::LParen)?;
                decl.lateral = self.name_list(TokenKind::RParen)?;
            } else {
                return Ok(decl);
            }
        }
    }

    fn join(&mut self) -> Result<JoinDecl, JgError> {
        let kw = self.expect_keyword("join")?;
        let left = self.join_side()?;
        self.expect(TokenKind::Connector)?;
        let right = self.join_side()?;
        let mut decl = JoinDecl {
            span: kw.span.to(right.span),
            left,
            right,
            flex: Vec::new(),
            selectivity: None,
            op: None,
        };
        loop {
            if self.at_keyword("selectivity") {
                let kw = self.bump();
                if decl.selectivity.is_some() {
                    return Err(JgError::new("duplicate `selectivity` attribute", kw.span));
                }
                self.expect(TokenKind::Equals)?;
                let n = self.number()?;
                decl.span = decl.span.to(n.span);
                decl.selectivity = Some(n);
            } else if self.at_keyword("op") {
                let kw = self.bump();
                if decl.op.is_some() {
                    return Err(JgError::new("duplicate `op` attribute", kw.span));
                }
                self.expect(TokenKind::Equals)?;
                let op = self.name()?;
                decl.span = decl.span.to(op.span);
                decl.op = Some(op);
            } else if self.at_keyword("flex") {
                let kw = self.bump();
                if !decl.flex.is_empty() {
                    return Err(JgError::new("duplicate `flex` attribute", kw.span));
                }
                self.expect(TokenKind::Equals)?;
                self.expect(TokenKind::LBrace)?;
                decl.flex = self.name_list(TokenKind::RBrace)?;
                if let Some(last) = decl.flex.last() {
                    decl.span = decl.span.to(last.span);
                }
            } else {
                return Ok(decl);
            }
        }
    }

    fn join_side(&mut self) -> Result<JoinSide, JgError> {
        if self.at(TokenKind::LBrace) {
            let open = self.bump();
            let relations = self.name_list(TokenKind::RBrace)?;
            let end = self.tokens[self.pos - 1].span; // the consumed closing brace
            Ok(JoinSide {
                relations,
                span: open.span.to(end),
            })
        } else {
            let n = self.name().map_err(|e| {
                JgError::new(
                    format!(
                        "{} (a join side is a relation name or `{{a, b, …}}`)",
                        e.message
                    ),
                    e.span,
                )
            })?;
            Ok(JoinSide {
                span: n.span,
                relations: vec![n],
            })
        }
    }

    /// Parses `IDENT ("," IDENT)* <close>` and consumes the closing token.
    fn name_list(&mut self, close: TokenKind) -> Result<Vec<Name>, JgError> {
        let mut names = vec![self.name()?];
        loop {
            if self.at(TokenKind::Comma) {
                self.bump();
                names.push(self.name()?);
            } else {
                self.expect(close)?;
                return Ok(names);
            }
        }
    }

    fn option(&mut self) -> Result<OptionDecl, JgError> {
        self.expect_keyword("option")?;
        let key = self.name()?;
        self.expect(TokenKind::Equals)?;
        let value = if self.at(TokenKind::Number) {
            OptionValue::Number(self.number()?)
        } else if self.at(TokenKind::Ident) {
            OptionValue::Symbol(self.name()?)
        } else {
            let t = self.peek();
            return Err(JgError::new(
                format!(
                    "expected a number or a symbol as option value, found {}",
                    found(t, self.source)
                ),
                t.span,
            ));
        };
        Ok(OptionDecl { key, value })
    }
}

/// "found …" rendering for diagnostics: the offending text, or a description for EOF.
fn found(t: Token, source: &str) -> String {
    if t.kind == TokenKind::Eof {
        "end of input".to_string()
    } else {
        format!("`{}`", t.text(source))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OK: &str = "
# A two-relation query with every statement kind.
query tiny {
  relation a cardinality=100
  relation b cardinality=2000 lateral=(a)
  join a -- b selectivity=0.01 op=left_outer
  join {a, b} -- {b} selectivity=0.5 flex={a}
  option ccp_budget = 5000
  option cost_model = mixed
}
";

    #[test]
    fn parses_every_statement_kind() {
        let file = parse(OK).unwrap();
        assert_eq!(file.queries.len(), 1);
        let q = &file.queries[0];
        assert_eq!(q.name.text, "tiny");
        assert_eq!(q.relations.len(), 2);
        assert_eq!(q.relations[1].lateral[0].text, "a");
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.joins[0].op.as_ref().unwrap().text, "left_outer");
        assert_eq!(q.joins[1].left.relations.len(), 2);
        assert_eq!(q.joins[1].flex[0].text, "a");
        assert_eq!(q.options.len(), 2);
        match &q.options[1].value {
            OptionValue::Symbol(s) => assert_eq!(s.text, "mixed"),
            v => panic!("expected symbol, got {v:?}"),
        }
    }

    #[test]
    fn join_spans_cover_the_whole_statement() {
        let src = "query q {\n  relation a cardinality=1\n  relation b cardinality=1\n  join a -- b selectivity=0.5\n}";
        let file = parse(src).unwrap();
        let j = &file.queries[0].joins[0];
        assert_eq!(
            &src[j.span.start..j.span.end],
            "join a -- b selectivity=0.5"
        );
    }

    #[test]
    fn contextual_keywords_are_valid_relation_names() {
        let src = "query q {\n  relation option cardinality=1\n  relation join cardinality=2\n  join option -- join selectivity=0.1\n}";
        let q = &parse(src).unwrap().queries[0];
        assert_eq!(q.relations[0].name.text, "option");
        assert_eq!(q.joins[0].right.relations[0].text, "join");
    }

    #[test]
    fn missing_connector_is_spanned() {
        let src = "query q { relation a cardinality=1\n join a a selectivity=0.5 }";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("expected `--`"), "{}", err.message);
        assert_eq!(&src[err.span.start..err.span.end], "a");
        assert_eq!(err.span.start, src.rfind("a s").unwrap());
    }

    #[test]
    fn eof_inside_a_block_is_reported_as_such() {
        let err = parse("query q { relation a cardinality=1").unwrap_err();
        assert!(err.message.contains("end of input"), "{}", err.message);
    }

    #[test]
    fn empty_input_is_an_error() {
        let err = parse("# only comments\n").unwrap_err();
        assert!(err.message.contains("empty input"));
    }

    #[test]
    fn duplicate_attributes_are_rejected() {
        let src = "query q { relation a cardinality=1 cardinality=2 }";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("duplicate `cardinality`"));
        assert_eq!(err.span.start, src.rfind("cardinality").unwrap());
    }
}
