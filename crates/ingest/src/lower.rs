//! Lowering: `.jg` AST → width-agnostic [`QuerySpec`] + per-query planner options.
//!
//! This is where the text world meets the planner: relation declarations become relation ids
//! (in declaration order), join statements become spec hyperedges (in statement order, so the
//! lowered edge ids match the source), and `option` statements become [`QueryOptions`] that
//! overlay the adaptive driver's defaults.
//!
//! Lowering also *validates* the statistics the planner would otherwise choke on silently:
//! non-positive or non-finite cardinalities, selectivities outside `(0, 1]`, unknown relation
//! names, overlapping hypernode sides — each rejected with a [`JgError`] spanning the
//! offending source bytes, so a bad statistic in line 40 of a corpus file is a one-line fix,
//! not a NaN cost surfacing three crates later.

use crate::ast::{JoinDecl, OptionValue, QueryDecl, RelationDecl};
use crate::parser::parse;
use crate::span::{JgError, Span};
use dphyp::{
    AdaptiveOptimizer, AdaptiveOptions, CostModelKind, IdpStrategy, OptimizeError, OptimizeResult,
    QuerySpec,
};
use qo_plan::JoinOp;
use std::collections::HashMap;
use std::time::Duration;

/// Per-query planner options parsed from `option` statements; every field overlays the
/// corresponding [`AdaptiveOptions`] default when set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryOptions {
    /// `option ccp_budget = <int>` — csg-cmp-pair budget of the exact tier.
    pub ccp_budget: Option<usize>,
    /// `option idp_block_size = <int>` — upper bound on the IDP fallback's block size.
    pub idp_block_size: Option<usize>,
    /// `option time_budget_ms = <number>` — wall-clock budget for the exact tier.
    pub time_budget: Option<Duration>,
    /// `option cost_model = cout | mixed`.
    pub cost_model: Option<CostModelKind>,
    /// `option idp_strategy = smallest | connected` — block selection of the IDP fallback.
    pub idp_strategy: Option<IdpStrategy>,
    /// `option parallelism = <int ≥ 0>` — worker threads of the exact tier (`0` = one per
    /// available core, `1` = sequential). Plans are bit-identical at every setting.
    pub parallelism: Option<usize>,
    /// `option pruning = on | off` — cost-bounded branch-and-bound pruning of the exact tier.
    /// Plans are bit-identical at every setting; only cost evaluations are saved.
    pub pruning: Option<bool>,
    /// `option trace = on | off` — per-phase span tracing of the optimization, attached to
    /// `OptimizeResult::trace`. Plans are bit-identical at every setting; only wall times
    /// are observed.
    pub trace: Option<bool>,
    /// `option sample_rate = <int ≥ 0>` — per-query override of the serving layer's
    /// always-on trace sampling rate (trace 1 in N serves; `0` disables sampling for this
    /// query). Purely observational: plans are bit-identical at every setting.
    pub sample_rate: Option<u64>,
}

impl QueryOptions {
    /// Overlays these options onto a base configuration.
    pub fn apply(&self, base: AdaptiveOptions) -> AdaptiveOptions {
        AdaptiveOptions {
            ccp_budget: self.ccp_budget.unwrap_or(base.ccp_budget),
            idp_block_size: self.idp_block_size.unwrap_or(base.idp_block_size),
            time_budget: self.time_budget.or(base.time_budget),
            cost_model: self.cost_model.unwrap_or(base.cost_model),
            idp_strategy: self.idp_strategy.unwrap_or(base.idp_strategy),
            parallelism: self.parallelism.or(base.parallelism),
            pruning: self.pruning.unwrap_or(base.pruning),
            trace: self.trace.unwrap_or(base.trace),
            sample_rate: self.sample_rate.or(base.sample_rate),
        }
    }
}

/// One fully lowered query: everything needed to plan it end to end.
#[derive(Clone, Debug, PartialEq)]
pub struct IngestQuery {
    /// The query's name from the `query` block.
    pub name: String,
    /// Relation names, indexed by the relation ids used in [`IngestQuery::spec`].
    pub relation_names: Vec<String>,
    /// The width-agnostic planner spec.
    pub spec: QuerySpec,
    /// Planner options declared in the query block.
    pub options: QueryOptions,
    /// Per-relation `rows=` overrides of the synthetic table size the feedback experiments
    /// generate, indexed by relation id (`None` = derive from `cardinality`). Purely
    /// execution-side: the planner spec above never sees these.
    pub row_overrides: Vec<Option<usize>>,
}

impl IngestQuery {
    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relation_names.len()
    }

    /// The id of a relation name, if declared.
    pub fn relation_id(&self, name: &str) -> Option<usize> {
        self.relation_names.iter().position(|n| n == name)
    }

    /// The adaptive driver configuration for this query: the driver defaults overlaid with the
    /// query's own `option` statements.
    pub fn adaptive_options(&self) -> AdaptiveOptions {
        self.options.apply(AdaptiveOptions::default())
    }

    /// Plans the query end to end through the adaptive driver (exact DPhyp under the query's
    /// budgets, IDP-k and greedy fallbacks), picking node-set width and algorithm tier
    /// automatically.
    pub fn plan(&self) -> Result<OptimizeResult, OptimizeError> {
        self.plan_with(AdaptiveOptions::default())
    }

    /// Plans the query with the query's own `option` statements overlaid on an explicit base
    /// configuration — the entry point a serving layer (e.g. `qo-service`) uses to combine its
    /// own defaults with per-query overrides.
    pub fn plan_with(&self, base: AdaptiveOptions) -> Result<OptimizeResult, OptimizeError> {
        AdaptiveOptimizer::new(self.options.apply(base)).optimize_spec(&self.spec)
    }
}

/// Parses and lowers a whole `.jg` source: the one-call front door of the crate.
pub fn parse_queries(source: &str) -> Result<Vec<IngestQuery>, JgError> {
    let file = {
        let _span = qo_obsv::Span::enter("parse");
        parse(source)?
    };
    let _span = qo_obsv::Span::enter("lower");
    file.queries.iter().map(lower_query).collect()
}

/// Lowers one parsed query block, validating names and statistics.
pub fn lower_query(q: &QueryDecl) -> Result<IngestQuery, JgError> {
    if q.relations.is_empty() {
        return Err(JgError::new(
            format!("query `{}` declares no relations", q.name.text),
            q.name.span,
        ));
    }

    // Pass 1: relation ids from declaration order, rejecting duplicates.
    let mut ids: HashMap<&str, usize> = HashMap::new();
    for (id, r) in q.relations.iter().enumerate() {
        if ids.insert(&r.name.text, id).is_some() {
            return Err(JgError::new(
                format!("relation `{}` is declared twice", r.name.text),
                r.name.span,
            ));
        }
    }
    let resolve = |name: &crate::ast::Name| -> Result<usize, JgError> {
        ids.get(name.text.as_str()).copied().ok_or_else(|| {
            JgError::new(
                format!("relation `{}` is not declared in this query", name.text),
                name.span,
            )
        })
    };

    // Pass 2: statistics and lateral references.
    let mut b = QuerySpec::builder(q.relations.len());
    for (id, r) in q.relations.iter().enumerate() {
        b.set_cardinality(id, lower_cardinality(r)?);
        if !r.lateral.is_empty() {
            let mut refs = Vec::with_capacity(r.lateral.len());
            for l in &r.lateral {
                let l_id = resolve(l)?;
                if l_id == id {
                    return Err(JgError::new(
                        format!("relation `{}` cannot reference itself laterally", l.text),
                        l.span,
                    ));
                }
                refs.push(l_id);
            }
            b.set_lateral_refs(id, &refs);
        }
    }

    // Pass 3: joins, in statement order (= lowered edge-id order).
    for j in &q.joins {
        let left = resolve_side(&j.left.relations, &resolve)?;
        let right = resolve_side(&j.right.relations, &resolve)?;
        let flex = resolve_side(&j.flex, &resolve)?;
        check_disjoint(&left, &j.left.span, &right, &j.right.span, q)?;
        for (f, name) in flex.iter().zip(&j.flex) {
            if left.contains(f) || right.contains(f) {
                return Err(JgError::new(
                    format!(
                        "flex relation `{}` already appears on a join side",
                        name.text
                    ),
                    name.span,
                ));
            }
        }
        let selectivity = lower_selectivity(j)?;
        let op = match &j.op {
            None => JoinOp::Inner,
            Some(name) => op_from_name(&name.text).ok_or_else(|| {
                JgError::new(
                    format!(
                        "unknown join operator `{}` (expected one of: {})",
                        name.text,
                        OP_NAMES
                            .iter()
                            .map(|(n, _)| *n)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                    name.span,
                )
            })?,
        };
        if !flex.is_empty() {
            if op != JoinOp::Inner {
                let span = j.op.as_ref().expect("non-inner implies op attr").span;
                return Err(JgError::new(
                    "generalized hyperedges (`flex=…`) support inner joins only",
                    span,
                ));
            }
            b.add_generalized_edge(&left, &right, &flex, selectivity);
        } else {
            b.add_edge(&left, &right, selectivity, op);
        }
    }

    Ok(IngestQuery {
        name: q.name.text.clone(),
        relation_names: q.relations.iter().map(|r| r.name.text.clone()).collect(),
        spec: b.build(),
        options: lower_options(q)?,
        row_overrides: q
            .relations
            .iter()
            .map(lower_rows)
            .collect::<Result<_, _>>()?,
    })
}

fn lower_cardinality(r: &RelationDecl) -> Result<f64, JgError> {
    let Some(lit) = r.cardinality else {
        return Err(JgError::new(
            format!(
                "relation `{}` is missing the required `cardinality` attribute",
                r.name.text
            ),
            r.name.span,
        ));
    };
    if !(lit.value.is_finite() && lit.value > 0.0) {
        return Err(JgError::new(
            format!(
                "cardinality must be a positive finite number, got `{}`",
                lit.value
            ),
            lit.span,
        ));
    }
    Ok(lit.value)
}

fn lower_rows(r: &RelationDecl) -> Result<Option<usize>, JgError> {
    let Some(lit) = r.rows else { return Ok(None) };
    if !(lit.value.is_finite() && lit.value.fract() == 0.0 && lit.value >= 1.0) {
        return Err(JgError::new(
            format!("rows must be a positive integer, got `{}`", lit.value),
            lit.span,
        ));
    }
    Ok(Some(lit.value as usize))
}

fn lower_selectivity(j: &JoinDecl) -> Result<f64, JgError> {
    let Some(lit) = j.selectivity else {
        return Err(JgError::new(
            "join is missing the required `selectivity` attribute",
            j.span,
        ));
    };
    if !(lit.value.is_finite() && lit.value > 0.0 && lit.value <= 1.0) {
        return Err(JgError::new(
            format!("selectivity must lie in (0, 1], got `{}`", lit.value),
            lit.span,
        ));
    }
    Ok(lit.value)
}

fn resolve_side(
    names: &[crate::ast::Name],
    resolve: &impl Fn(&crate::ast::Name) -> Result<usize, JgError>,
) -> Result<Vec<usize>, JgError> {
    let mut out = Vec::with_capacity(names.len());
    for (i, n) in names.iter().enumerate() {
        let id = resolve(n)?;
        if out.contains(&id) {
            return Err(JgError::new(
                format!("relation `{}` appears twice in this hypernode", n.text),
                names[i].span,
            ));
        }
        out.push(id);
    }
    Ok(out)
}

fn check_disjoint(
    left: &[usize],
    left_span: &Span,
    right: &[usize],
    right_span: &Span,
    q: &QueryDecl,
) -> Result<(), JgError> {
    if let Some(&shared) = left.iter().find(|id| right.contains(id)) {
        return Err(JgError::new(
            format!(
                "relation `{}` appears on both sides of the join",
                q.relations[shared].name.text
            ),
            left_span.to(*right_span),
        ));
    }
    Ok(())
}

fn lower_options(q: &QueryDecl) -> Result<QueryOptions, JgError> {
    let mut opts = QueryOptions::default();
    for o in &q.options {
        // Duplicate options are rejected like every other duplicate attribute of the
        // language — a silent last-wins would let a pasted-in override go unnoticed.
        let duplicate = match o.key.text.as_str() {
            "ccp_budget" => opts.ccp_budget.is_some(),
            "idp_block_size" => opts.idp_block_size.is_some(),
            "time_budget_ms" => opts.time_budget.is_some(),
            "cost_model" => opts.cost_model.is_some(),
            "idp_strategy" => opts.idp_strategy.is_some(),
            "parallelism" => opts.parallelism.is_some(),
            "pruning" => opts.pruning.is_some(),
            "trace" => opts.trace.is_some(),
            "sample_rate" => opts.sample_rate.is_some(),
            _ => false,
        };
        if duplicate {
            return Err(JgError::new(
                format!("duplicate option `{}`", o.key.text),
                o.key.span,
            ));
        }
        match o.key.text.as_str() {
            "ccp_budget" => {
                opts.ccp_budget = Some(option_usize(&o.value, 1, "ccp_budget")?);
            }
            "idp_block_size" => {
                opts.idp_block_size = Some(option_usize(&o.value, 2, "idp_block_size")?);
            }
            "time_budget_ms" => match &o.value {
                OptionValue::Number(n) if n.value.is_finite() && n.value > 0.0 => {
                    // ms → ns, rounding once: exact (and pretty-print round-trippable) for
                    // every whole- or fractional-millisecond value a `.jg` file will carry.
                    opts.time_budget = Some(Duration::from_nanos((n.value * 1e6).round() as u64));
                }
                v => {
                    return Err(JgError::new(
                        "`time_budget_ms` expects a positive number of milliseconds",
                        v.span(),
                    ))
                }
            },
            "cost_model" => match &o.value {
                OptionValue::Symbol(s) if s.text == "cout" => {
                    opts.cost_model = Some(CostModelKind::Cout);
                }
                OptionValue::Symbol(s) if s.text == "mixed" => {
                    opts.cost_model = Some(CostModelKind::Mixed);
                }
                v => {
                    return Err(JgError::new(
                        "`cost_model` expects `cout` or `mixed`",
                        v.span(),
                    ))
                }
            },
            "idp_strategy" => match &o.value {
                OptionValue::Symbol(s) if s.text == "smallest" => {
                    opts.idp_strategy = Some(IdpStrategy::SmallestCardinality);
                }
                OptionValue::Symbol(s) if s.text == "connected" => {
                    opts.idp_strategy = Some(IdpStrategy::ConnectedSmallest);
                }
                v => {
                    return Err(JgError::new(
                        "`idp_strategy` expects `smallest` or `connected`",
                        v.span(),
                    ))
                }
            },
            "parallelism" => {
                // 0 is meaningful (auto: one worker per core), so the minimum is 0.
                opts.parallelism = Some(option_usize(&o.value, 0, "parallelism")?);
            }
            "pruning" => match &o.value {
                OptionValue::Symbol(s) if s.text == "on" => opts.pruning = Some(true),
                OptionValue::Symbol(s) if s.text == "off" => opts.pruning = Some(false),
                v => return Err(JgError::new("`pruning` expects `on` or `off`", v.span())),
            },
            "trace" => match &o.value {
                OptionValue::Symbol(s) if s.text == "on" => opts.trace = Some(true),
                OptionValue::Symbol(s) if s.text == "off" => opts.trace = Some(false),
                v => return Err(JgError::new("`trace` expects `on` or `off`", v.span())),
            },
            "sample_rate" => {
                // 0 is meaningful (sampling off for this query), so the minimum is 0.
                opts.sample_rate = Some(option_usize(&o.value, 0, "sample_rate")? as u64);
            }
            other => {
                return Err(JgError::new(
                    format!(
                        "unknown option `{other}` (expected one of: ccp_budget, \
                         idp_block_size, time_budget_ms, cost_model, idp_strategy, \
                         parallelism, pruning, trace, sample_rate)"
                    ),
                    o.key.span,
                ))
            }
        }
    }
    Ok(opts)
}

fn option_usize(value: &OptionValue, min: usize, key: &str) -> Result<usize, JgError> {
    match value {
        OptionValue::Number(n)
            if n.value.is_finite() && n.value.fract() == 0.0 && n.value >= min as f64 =>
        {
            Ok(n.value as usize)
        }
        v => Err(JgError::new(
            format!("`{key}` expects an integer ≥ {min}"),
            v.span(),
        )),
    }
}

/// The `.jg` names of the join operators, paired with the planner's [`JoinOp`]s.
pub const OP_NAMES: [(&str, JoinOp); 11] = [
    ("inner", JoinOp::Inner),
    ("left_outer", JoinOp::LeftOuter),
    ("full_outer", JoinOp::FullOuter),
    ("left_semi", JoinOp::LeftSemi),
    ("left_anti", JoinOp::LeftAnti),
    ("left_nest", JoinOp::LeftNest),
    ("dep_join", JoinOp::DepJoin),
    ("dep_left_outer", JoinOp::DepLeftOuter),
    ("dep_left_semi", JoinOp::DepLeftSemi),
    ("dep_left_anti", JoinOp::DepLeftAnti),
    ("dep_left_nest", JoinOp::DepLeftNest),
];

/// The planner operator for a `.jg` operator name.
pub fn op_from_name(name: &str) -> Option<JoinOp> {
    OP_NAMES.iter().find(|(n, _)| *n == name).map(|&(_, op)| op)
}

/// The `.jg` name of a planner operator (total: every [`JoinOp`] has one).
pub fn op_name(op: JoinOp) -> &'static str {
    OP_NAMES
        .iter()
        .find(|&&(_, o)| o == op)
        .map(|&(n, _)| n)
        .expect("OP_NAMES covers every JoinOp")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(body: &str) -> Result<Vec<IngestQuery>, JgError> {
        parse_queries(&format!("query t {{\n{body}\n}}"))
    }

    #[test]
    fn lowers_a_small_star_end_to_end() {
        let queries = q("
            relation fact cardinality=1000000
            relation d1 cardinality=100
            relation d2 cardinality=50
            join fact -- d1 selectivity=0.01
            join fact -- d2 selectivity=0.02
            option ccp_budget = 777
        ")
        .unwrap();
        assert_eq!(queries.len(), 1);
        let iq = &queries[0];
        assert_eq!(iq.relation_count(), 3);
        assert_eq!(iq.relation_id("d2"), Some(2));
        assert_eq!(iq.spec.edge_count(), 2);
        assert_eq!(iq.spec.cardinality(0), 1_000_000.0);
        assert_eq!(iq.options.ccp_budget, Some(777));
        assert_eq!(iq.adaptive_options().ccp_budget, 777);
        let r = iq.plan().unwrap();
        assert_eq!(r.plan.scan_count(), 3);
    }

    #[test]
    fn unknown_relation_is_spanned() {
        let src = "query t {\n  relation a cardinality=1\n  join a -- ghost selectivity=0.5\n}";
        let err = parse_queries(src).unwrap_err();
        assert!(err.message.contains("`ghost` is not declared"));
        assert_eq!(&src[err.span.start..err.span.end], "ghost");
    }

    #[test]
    fn invalid_statistics_are_rejected_with_spans() {
        let err =
            q("relation a cardinality=0\nrelation b cardinality=1\njoin a -- b selectivity=0.5")
                .unwrap_err();
        assert!(err.message.contains("positive finite"), "{}", err.message);

        let err =
            q("relation a cardinality=-3\nrelation b cardinality=1\njoin a -- b selectivity=0.5")
                .unwrap_err();
        assert!(err.message.contains("positive finite"));

        let err =
            q("relation a cardinality=5\nrelation b cardinality=1\njoin a -- b selectivity=1.5")
                .unwrap_err();
        assert!(err.message.contains("(0, 1]"));

        let err =
            q("relation a cardinality=5\nrelation b cardinality=1\njoin a -- b selectivity=0")
                .unwrap_err();
        assert!(err.message.contains("(0, 1]"));
    }

    #[test]
    fn missing_required_attributes_are_errors() {
        let err = q("relation a").unwrap_err();
        assert!(err.message.contains("missing the required `cardinality`"));
        let err = q("relation a cardinality=1\nrelation b cardinality=1\njoin a -- b").unwrap_err();
        assert!(err.message.contains("missing the required `selectivity`"));
    }

    #[test]
    fn overlap_and_duplicates_are_errors() {
        let err = q("relation a cardinality=1\nrelation a cardinality=2").unwrap_err();
        assert!(err.message.contains("declared twice"));
        let err = q(
            "relation a cardinality=1\nrelation b cardinality=1\njoin {a, b} -- b selectivity=0.5",
        )
        .unwrap_err();
        assert!(err.message.contains("both sides"));
        let err = q(
            "relation a cardinality=1\nrelation b cardinality=1\njoin {a, a} -- b selectivity=0.5",
        )
        .unwrap_err();
        assert!(err.message.contains("appears twice"));
    }

    #[test]
    fn lateral_refs_lower_to_dependent_joins() {
        let iq = &q("
            relation a cardinality=100
            relation f cardinality=5 lateral=(a)
            join a -- f selectivity=1.0
        ")
        .unwrap()[0];
        assert_eq!(iq.spec.lateral_refs(1), &[0]);
        let r = iq.plan().unwrap();
        assert_eq!(r.plan.operators(), vec![JoinOp::DepJoin]);
    }

    #[test]
    fn self_lateral_is_an_error() {
        let err = q("relation a cardinality=1 lateral=(a)").unwrap_err();
        assert!(err.message.contains("itself"));
    }

    #[test]
    fn options_validate_types_and_keys() {
        let err = q("relation a cardinality=1\noption ccp_budget = mixed").unwrap_err();
        assert!(err.message.contains("integer"));
        let err = q("relation a cardinality=1\noption cost_model = fancy").unwrap_err();
        assert!(err.message.contains("`cout` or `mixed`"));
        let err = q("relation a cardinality=1\noption warp_speed = 9").unwrap_err();
        assert!(err.message.contains("unknown option `warp_speed`"));
        let err = q("relation a cardinality=1\noption idp_strategy = sideways").unwrap_err();
        assert!(err.message.contains("`smallest` or `connected`"));
        let ok = &q("relation a cardinality=1\noption idp_strategy = connected").unwrap()[0];
        assert_eq!(
            ok.options.idp_strategy,
            Some(IdpStrategy::ConnectedSmallest)
        );
        assert_eq!(
            ok.adaptive_options().idp_strategy,
            IdpStrategy::ConnectedSmallest
        );
        let err = q("relation a cardinality=1\noption time_budget_ms = -5").unwrap_err();
        assert!(err.message.contains("positive number"));
        let src =
            "query t {\nrelation a cardinality=1\noption ccp_budget = 9\noption ccp_budget = 7\n}";
        let err = parse_queries(src).unwrap_err();
        assert!(err.message.contains("duplicate option `ccp_budget`"));
        assert_eq!(err.span.start, src.rfind("ccp_budget").unwrap());
        let ok = &q("relation a cardinality=1\noption time_budget_ms = 2.5").unwrap()[0];
        assert_eq!(ok.options.time_budget, Some(Duration::from_micros(2500)));
    }

    #[test]
    fn parallelism_option_lowers_including_the_auto_setting() {
        let ok = &q("relation a cardinality=1\noption parallelism = 4").unwrap()[0];
        assert_eq!(ok.options.parallelism, Some(4));
        assert_eq!(ok.adaptive_options().parallelism, Some(4));
        // 0 means "one worker per available core" and must be accepted.
        let ok = &q("relation a cardinality=1\noption parallelism = 0").unwrap()[0];
        assert_eq!(ok.options.parallelism, Some(0));
        let err = q("relation a cardinality=1\noption parallelism = 2.5").unwrap_err();
        assert!(err.message.contains("integer"));
        let src = "query t {\nrelation a cardinality=1\noption parallelism = 2\n\
                   option parallelism = 4\n}";
        let err = parse_queries(src).unwrap_err();
        assert!(err.message.contains("duplicate option `parallelism`"));
        // Unset leaves the driver default (sequential) in place.
        let ok = &q("relation a cardinality=1").unwrap()[0];
        assert_eq!(ok.adaptive_options().parallelism, None);
    }

    #[test]
    fn pruning_option_lowers_and_validates() {
        let ok = &q("relation a cardinality=1\noption pruning = on").unwrap()[0];
        assert_eq!(ok.options.pruning, Some(true));
        assert!(ok.adaptive_options().pruning);
        let ok = &q("relation a cardinality=1\noption pruning = off").unwrap()[0];
        assert_eq!(ok.options.pruning, Some(false));
        assert!(!ok.adaptive_options().pruning);
        let err = q("relation a cardinality=1\noption pruning = 1").unwrap_err();
        assert!(err.message.contains("`on` or `off`"));
        let err = q("relation a cardinality=1\noption pruning = maybe").unwrap_err();
        assert!(err.message.contains("`on` or `off`"));
        let src = "query t {\nrelation a cardinality=1\noption pruning = on\n\
                   option pruning = off\n}";
        let err = parse_queries(src).unwrap_err();
        assert!(err.message.contains("duplicate option `pruning`"));
        // Unset leaves the driver default (unpruned) in place.
        let ok = &q("relation a cardinality=1").unwrap()[0];
        assert!(!ok.adaptive_options().pruning);
    }

    #[test]
    fn trace_option_lowers_and_validates() {
        let ok = &q("relation a cardinality=1\noption trace = on").unwrap()[0];
        assert_eq!(ok.options.trace, Some(true));
        assert!(ok.adaptive_options().trace);
        let ok = &q("relation a cardinality=1\noption trace = off").unwrap()[0];
        assert_eq!(ok.options.trace, Some(false));
        assert!(!ok.adaptive_options().trace);
        let err = q("relation a cardinality=1\noption trace = 1").unwrap_err();
        assert!(err.message.contains("`on` or `off`"));
        let src = "query t {\nrelation a cardinality=1\noption trace = on\noption trace = off\n}";
        let err = parse_queries(src).unwrap_err();
        assert!(err.message.contains("duplicate option `trace`"));
        // Unset leaves the driver default (untraced) in place.
        let ok = &q("relation a cardinality=1").unwrap()[0];
        assert!(!ok.adaptive_options().trace);
    }

    #[test]
    fn sample_rate_option_lowers_and_validates() {
        let ok = &q("relation a cardinality=1\noption sample_rate = 512").unwrap()[0];
        assert_eq!(ok.options.sample_rate, Some(512));
        assert_eq!(ok.adaptive_options().sample_rate, Some(512));
        // 0 is valid and meaningful: sampling off for this query.
        let ok = &q("relation a cardinality=1\noption sample_rate = 0").unwrap()[0];
        assert_eq!(ok.options.sample_rate, Some(0));
        let err = q("relation a cardinality=1\noption sample_rate = 1.5").unwrap_err();
        assert!(err.message.contains("`sample_rate` expects an integer ≥ 0"));
        let err = q("relation a cardinality=1\noption sample_rate = fast").unwrap_err();
        assert!(err.message.contains("`sample_rate` expects an integer ≥ 0"));
        let src = "query t {\nrelation a cardinality=1\noption sample_rate = 1\n\
                   option sample_rate = 2\n}";
        let err = parse_queries(src).unwrap_err();
        assert!(err.message.contains("duplicate option `sample_rate`"));
        // Unset defers to the serving layer's configured rate.
        let ok = &q("relation a cardinality=1").unwrap()[0];
        assert_eq!(ok.adaptive_options().sample_rate, None);
    }

    #[test]
    fn rows_attribute_lowers_and_validates() {
        let iq = &q("
            relation a cardinality=1000000 rows=32
            relation b cardinality=50
            join a -- b selectivity=0.01
        ")
        .unwrap()[0];
        assert_eq!(iq.row_overrides, vec![Some(32), None]);
        // The planner spec is untouched by the override.
        assert_eq!(iq.spec.cardinality(0), 1_000_000.0);
        let err = q("relation a cardinality=1 rows=0").unwrap_err();
        assert!(err.message.contains("positive integer"));
        let err = q("relation a cardinality=1 rows=2.5").unwrap_err();
        assert!(err.message.contains("positive integer"));
        let err = q("relation a cardinality=1 rows=4 rows=5").unwrap_err();
        assert!(err.message.contains("duplicate `rows`"));
    }

    #[test]
    fn flex_requires_inner() {
        let err = q("
            relation a cardinality=1
            relation b cardinality=1
            relation c cardinality=1
            join a -- b selectivity=0.5 op=left_outer flex={c}
        ")
        .unwrap_err();
        assert!(err.message.contains("inner joins only"));
    }

    #[test]
    fn op_names_round_trip() {
        for (name, op) in OP_NAMES {
            assert_eq!(op_from_name(name), Some(op));
            assert_eq!(op_name(op), name);
        }
        assert_eq!(op_from_name("sideways"), None);
    }
}
