//! The parsed form of a `.jg` source, before lowering.
//!
//! Every node keeps the [`Span`]s of its semantically meaningful parts so the lowering pass
//! can report *validation* errors (unknown relation, selectivity out of range) with the same
//! source-anchored diagnostics as syntax errors.

use crate::span::Span;

/// A spanned identifier: the name plus where it was written.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Name {
    /// The identifier text.
    pub text: String,
    /// Its location in the source.
    pub span: Span,
}

/// A spanned numeric literal, kept as both the parsed value and the source span.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NumberLit {
    /// The parsed value.
    pub value: f64,
    /// Its location in the source.
    pub span: Span,
}

/// One `relation` declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct RelationDecl {
    /// The relation's name; declaration order defines the relation ids of the lowered query.
    pub name: Name,
    /// `cardinality=<number>` — required by the lowering pass, optional at parse time so the
    /// omission can be reported as a *spanned* validation error.
    pub cardinality: Option<NumberLit>,
    /// `rows=<integer>` — optional override of the synthetic table size the feedback
    /// experiments generate for this relation (the planner never reads it; `cardinality` stays
    /// the estimator's input).
    pub rows: Option<NumberLit>,
    /// `lateral=(r1, r2, …)` — relations this one references freely (table functions,
    /// dependent subqueries).
    pub lateral: Vec<Name>,
}

/// One side of a `join` statement: a single relation or a braced hypernode.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinSide {
    /// The relations named on this side (one for the simple-edge shorthand).
    pub relations: Vec<Name>,
    /// Span of the whole side (the identifier, or the braces and everything between).
    pub span: Span,
}

/// One `join` statement: `join <side> -- <side> selectivity=<num> [op=<name>] [flex={…}]`.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinDecl {
    /// Left hypernode.
    pub left: JoinSide,
    /// Right hypernode.
    pub right: JoinSide,
    /// Flexible relations of a generalized hyperedge (inner joins only).
    pub flex: Vec<Name>,
    /// `selectivity=<number>` — required by lowering, optional at parse time (see
    /// [`RelationDecl::cardinality`]).
    pub selectivity: Option<NumberLit>,
    /// `op=<name>` — the join operator; `None` means inner.
    pub op: Option<Name>,
    /// Span of the whole statement (from the `join` keyword to its last attribute).
    pub span: Span,
}

/// The value of an `option` statement: a number or a bare symbol (e.g. `cost_model = mixed`).
#[derive(Clone, Debug, PartialEq)]
pub enum OptionValue {
    /// A numeric value.
    Number(NumberLit),
    /// A symbolic value.
    Symbol(Name),
}

impl OptionValue {
    /// The span of the value.
    pub fn span(&self) -> Span {
        match self {
            OptionValue::Number(n) => n.span,
            OptionValue::Symbol(s) => s.span,
        }
    }
}

/// One `option <key> = <value>` statement.
#[derive(Clone, Debug, PartialEq)]
pub struct OptionDecl {
    /// The option key.
    pub key: Name,
    /// The option value.
    pub value: OptionValue,
}

/// One `query <name> { … }` block.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryDecl {
    /// The query's name.
    pub name: Name,
    /// Relation declarations, in source order.
    pub relations: Vec<RelationDecl>,
    /// Join statements, in source order (their order defines the lowered edge ids).
    pub joins: Vec<JoinDecl>,
    /// Per-query planner options.
    pub options: Vec<OptionDecl>,
}

/// A whole parsed `.jg` file: one or more query blocks.
#[derive(Clone, Debug, PartialEq)]
pub struct JgFile {
    /// The queries, in source order.
    pub queries: Vec<QueryDecl>,
}
