//! Property test: pretty-print a random valid query graph, parse it back, and require the
//! *identical* lowered query — same `QuerySpec` (bit-identical statistics), identical
//! instantiated `Hypergraph` and `Catalog`, same options.

use dphyp::{CostModelKind, IdpStrategy, QuerySpec};
use proptest::prelude::*;
use qo_ingest::{parse_queries, to_jg, IngestQuery, QueryOptions, OP_NAMES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Builds a random — but always *valid* — query from one seed: 2–12 relations, a spanning
/// set of simple edges plus random hyperedges (disjoint sides, occasional flex sets and
/// non-inner operators), arbitrary positive statistics and a random sprinkle of options.
fn random_query(seed: u64) -> IngestQuery {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.random_range(2usize..13);
    let relation_names: Vec<String> = (0..n).map(|i| format!("r{i}")).collect();

    let mut b = QuerySpec::builder(n);
    for i in 0..n {
        // Any positive finite f64 must survive the text round trip; mix integral
        // cardinalities with awkward fractional ones.
        let card = if rng.random_range(0u32..2) == 0 {
            rng.random_range(1u64..100_000_000) as f64
        } else {
            rng.random_range(0.001f64..1e9) + 1e-4
        };
        b.set_cardinality(i, card);
        if n > 1 && rng.random_range(0u32..8) == 0 {
            let other = (i + rng.random_range(1usize..n)) % n;
            b.set_lateral_refs(i, &[other]);
        }
    }
    // A spanning tree of simple edges keeps every relation mentioned at least once.
    for i in 1..n {
        let j = rng.random_range(0usize..i);
        b.add_simple_edge(j, i, sel(&mut rng));
    }
    // Random extra hyperedges with disjoint non-empty sides.
    for _ in 0..rng.random_range(0usize..4) {
        if n < 3 {
            break;
        }
        let mut ids: Vec<usize> = (0..n).collect();
        for k in (1..ids.len()).rev() {
            ids.swap(k, rng.random_range(0usize..k + 1));
        }
        let l = rng.random_range(1usize..(n - 1).min(3) + 1);
        let r = rng.random_range(1usize..(n - l).min(3) + 1);
        let (left, rest) = ids.split_at(l);
        let (right, rest) = rest.split_at(r);
        let use_flex = !rest.is_empty() && rng.random_range(0u32..3) == 0;
        if use_flex {
            let f = rng.random_range(1usize..rest.len().min(2) + 1);
            b.add_generalized_edge(left, right, &rest[..f], sel(&mut rng));
        } else {
            let op = OP_NAMES[rng.random_range(0usize..OP_NAMES.len())].1;
            b.add_edge(left, right, sel(&mut rng), op);
        }
    }

    let options = QueryOptions {
        ccp_budget: (rng.random_range(0u32..2) == 0).then(|| rng.random_range(1usize..10_000_000)),
        idp_block_size: (rng.random_range(0u32..2) == 0).then(|| rng.random_range(2usize..25)),
        time_budget: (rng.random_range(0u32..2) == 0)
            .then(|| Duration::from_millis(rng.random_range(1u64..100_000))),
        cost_model: match rng.random_range(0u32..3) {
            0 => None,
            1 => Some(CostModelKind::Cout),
            _ => Some(CostModelKind::Mixed),
        },
        idp_strategy: match rng.random_range(0u32..3) {
            0 => None,
            1 => Some(IdpStrategy::SmallestCardinality),
            _ => Some(IdpStrategy::ConnectedSmallest),
        },
        // Includes 0, the "one worker per core" auto setting.
        parallelism: (rng.random_range(0u32..2) == 0).then(|| rng.random_range(0usize..17)),
        pruning: match rng.random_range(0u32..3) {
            0 => None,
            1 => Some(false),
            _ => Some(true),
        },
        trace: match rng.random_range(0u32..3) {
            0 => None,
            1 => Some(false),
            _ => Some(true),
        },
        // Includes 0, the "sampling off for this query" setting.
        sample_rate: (rng.random_range(0u32..2) == 0).then(|| rng.random_range(0u64..100_000)),
    };

    let row_overrides = (0..n)
        .map(|_| (rng.random_range(0u32..4) == 0).then(|| rng.random_range(1usize..10_000)))
        .collect();

    IngestQuery {
        name: format!("prop_{seed}"),
        relation_names,
        spec: b.build(),
        options,
        row_overrides,
    }
}

fn sel(rng: &mut StdRng) -> f64 {
    // (0, 1], including the awkward boundaries.
    match rng.random_range(0u32..8) {
        0 => 1.0,
        _ => rng.random_range(1e-9f64..1.0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn pretty_printed_queries_reparse_to_identical_graphs(seed in any::<u64>()) {
        let original = random_query(seed);
        let printed = to_jg(&original);
        let reparsed = parse_queries(&printed)
            .unwrap_or_else(|e| panic!("reparse failed:\n{}", e.render(&printed)));
        prop_assert_eq!(reparsed.len(), 1);
        let got = &reparsed[0];

        // The lowered query — spec (bit-identical statistics), names, options — is equal...
        prop_assert_eq!(got, &original, "lowered query must round-trip losslessly");

        // ...and so are the instantiated planner inputs, via their canonical debug forms.
        let (g1, c1) = original.spec.instantiate::<1>();
        let (g2, c2) = got.spec.instantiate::<1>();
        prop_assert_eq!(
            format!("{:?}", g1),
            format!("{:?}", g2),
            "identical Hypergraph after round trip"
        );
        prop_assert_eq!(
            format!("{:?}", c1),
            format!("{:?}", c2),
            "identical Catalog after round trip"
        );

        // Printing is idempotent: the canonical form is a fixed point.
        prop_assert_eq!(to_jg(got), printed);
    }
}
