//! Neighborhood computation `N(S, X)` (Sec. 2.3 of the paper).
//!
//! The neighborhood of a connected set `S` under an exclusion set `X` is the set of
//! *representative* nodes through which `S` can be extended:
//!
//! 1. collect every hypernode `v` reachable over an edge `(u, v)` with `u ⊆ S` such that `v`
//!    touches neither `S` nor `X` (the set `E↓'(S, X)`),
//! 2. drop hypernodes that are subsumed by a smaller reachable hypernode (`E↓(S, X)`),
//! 3. take `min(v)` of each remaining hypernode (Eq. 1).
//!
//! Simple edges contribute their (singleton) endpoints directly via the precomputed per-node
//! neighbor masks; only the complex/generalized edges need to be scanned.

use crate::graph::Hypergraph;
use qo_bitset::NodeSet;

impl<const W: usize> Hypergraph<W> {
    /// Computes the neighborhood `N(S, X)` of `s` under the exclusion set `x`.
    ///
    /// The returned set contains only representative (minimum) nodes of reachable hypernodes;
    /// hypernodes with more than one element must be completed by the caller when it expands the
    /// set (the enumeration algorithms do this implicitly through the connectivity check against
    /// the DP table, exactly as described in the paper).
    pub fn neighborhood(&self, s: NodeSet<W>, x: NodeSet<W>) -> NodeSet<W> {
        let forbidden = s | x;
        // Simple edges: all endpoints adjacent to S that are not forbidden.
        let mut n = self.simple_neighbors_of_set(s) - forbidden;

        if !self.has_complex_edges() {
            return n;
        }

        // Complex and generalized edges: collect candidate hypernodes E↓'(S, X).
        let mut candidates: Vec<NodeSet<W>> = Vec::new();
        for &eid in self.complex_edge_ids() {
            let edge = self.edge(eid);
            let Some(target) = edge.target_from(s) else {
                continue;
            };
            if target.intersects(forbidden) {
                continue;
            }
            if target.is_singleton() {
                // A singleton hypernode behaves exactly like a simple-edge neighbor (and
                // subsumes every larger candidate containing it).
                n |= target;
            } else {
                candidates.push(target);
            }
        }

        // Subsumption elimination: keep only minimal hypernodes (E↓(S, X)), then add their
        // representatives min(v).
        'outer: for (i, &v) in candidates.iter().enumerate() {
            // Subsumed by a singleton neighbor already present?
            if v.intersects(n) {
                continue;
            }
            for (j, &u) in candidates.iter().enumerate() {
                if i == j {
                    continue;
                }
                if u.is_proper_subset_of(v) || (u == v && j < i) {
                    continue 'outer;
                }
            }
            n |= v.min_singleton();
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use crate::{Hyperedge, Hypergraph};
    use qo_bitset::NodeSet;

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    /// Fig. 2 of the paper, 0-based.
    fn fig2() -> Hypergraph {
        let mut b = Hypergraph::builder(6);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(1, 2);
        b.add_simple_edge(3, 4);
        b.add_simple_edge(4, 5);
        b.add_hyperedge(ns(&[0, 1, 2]), ns(&[3, 4, 5]));
        b.build()
    }

    #[test]
    fn paper_example_neighborhood() {
        // "For our hypergraph in Fig. 2 and with X = S = {R1,R2,R3}, we have N(S,X) = {R4}"
        // (1-based in the paper; {R0,R1,R2} → {R3} here).
        let g = fig2();
        let s = ns(&[0, 1, 2]);
        assert_eq!(g.neighborhood(s, s), NodeSet::single(3));
    }

    #[test]
    fn simple_neighbors_respect_exclusion() {
        let g = fig2();
        // N({R1}, {R0,R1}) = {R2}: R0 is excluded.
        assert_eq!(g.neighborhood(ns(&[1]), ns(&[0, 1])), ns(&[2]));
        // N({R1}, {R0,R1,R2}) = ∅.
        assert_eq!(g.neighborhood(ns(&[1]), ns(&[0, 1, 2])), NodeSet::EMPTY);
    }

    #[test]
    fn hyperedge_not_reachable_from_partial_hypernode() {
        let g = fig2();
        // From {R0,R1} the hyperedge cannot be traversed: its left hypernode {R0,R1,R2} is not
        // fully contained, and R2 is reachable only via the simple edge.
        assert_eq!(g.neighborhood(ns(&[0, 1]), ns(&[0, 1])), ns(&[2]));
    }

    #[test]
    fn hyperedge_target_excluded_when_it_touches_x() {
        let g = fig2();
        let s = ns(&[0, 1, 2]);
        // Excluding R4 (a non-representative member of the target hypernode) removes the whole
        // hypernode from the neighborhood.
        assert_eq!(g.neighborhood(s, s | NodeSet::single(4)), NodeSet::EMPTY);
    }

    #[test]
    fn subsumed_hypernodes_are_dropped() {
        // Two hyperedges from {0}: one to {2,3}, one to {2,3,4}. The latter is subsumed.
        let mut b = Hypergraph::builder(5);
        b.add_hyperedge(ns(&[0]), ns(&[2, 3]));
        b.add_hyperedge(ns(&[0]), ns(&[2, 3, 4]));
        b.add_simple_edge(0, 1);
        let g = b.build();
        // Neighborhood of {0}: R1 (simple) and R2 (representative of {2,3}); the hypernode
        // {2,3,4} is subsumed by {2,3} so R2 is not added twice and R4 never becomes a
        // representative.
        assert_eq!(g.neighborhood(ns(&[0]), ns(&[0])), ns(&[1, 2]));
    }

    #[test]
    fn singleton_hyperedge_target_subsumes_larger() {
        // Hyperedges from {0,1} to {3} and to {3,4}: the singleton {3} subsumes {3,4}.
        let mut b = Hypergraph::builder(5);
        b.add_simple_edge(0, 1);
        b.add_hyperedge(ns(&[0, 1]), ns(&[3, 4]));
        b.add_hyperedge(ns(&[0, 1]), ns(&[3]));
        let g = b.build();
        assert_eq!(g.neighborhood(ns(&[0, 1]), ns(&[0, 1])), ns(&[3]));
    }

    #[test]
    fn identical_hypernodes_counted_once() {
        let mut b = Hypergraph::builder(5);
        b.add_hyperedge(ns(&[0]), ns(&[2, 3]));
        b.add_hyperedge(ns(&[0]), ns(&[2, 3]));
        let g = b.build();
        assert_eq!(g.neighborhood(ns(&[0]), ns(&[0])), ns(&[2]));
    }

    #[test]
    fn generalized_edge_neighborhood_uses_remaining_flex() {
        // Edge ({0}, {3}, flex {1,2}).
        let mut b = Hypergraph::builder(4);
        b.add_edge(Hyperedge::generalized(ns(&[0]), ns(&[3]), ns(&[1, 2])));
        let g = b.build();
        // From {0}: target hypernode is {3} ∪ ({1,2} \ {0}) = {1,2,3}; representative is R1.
        assert_eq!(g.neighborhood(ns(&[0]), ns(&[0])), ns(&[1]));
        // From {0,1,2}: target is just {3}.
        assert_eq!(g.neighborhood(ns(&[0, 1, 2]), ns(&[0, 1, 2])), ns(&[3]));
        // From {0,1}: target is {2,3}, representative R2.
        assert_eq!(g.neighborhood(ns(&[0, 1]), ns(&[0, 1])), ns(&[2]));
    }

    #[test]
    fn edge_internal_to_s_contributes_nothing() {
        let g = fig2();
        let s = g.all_nodes();
        assert_eq!(g.neighborhood(s, s), NodeSet::EMPTY);
    }

    #[test]
    fn neighborhood_of_right_half_through_hyperedge() {
        let g = fig2();
        // From {R3,R4,R5} (the right hypernode) the hyperedge leads to {R0,R1,R2}, whose
        // representative is R0.
        let s = ns(&[3, 4, 5]);
        assert_eq!(g.neighborhood(s, s), ns(&[0]));
        // Excluding R0 (and everything below it, as Bmin does) removes it.
        assert_eq!(g.neighborhood(s, s | ns(&[0])), NodeSet::EMPTY);
    }
}
