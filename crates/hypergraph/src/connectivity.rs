//! Connectivity of (sub-)hypergraphs in the sense of Def. 3 of the paper.
//!
//! A node-induced subgraph `G|S` is connected iff `|S| = 1` or `S` can be partitioned into two
//! sets `S1, S2` that are themselves connected and are linked by a hyperedge `(u, v)` with
//! `u ⊆ S1` and `v ⊆ S2`. This recursive definition is exactly "the dynamic program can build a
//! plan for `S` without cross products", and it is *stricter* than plain reachability closure:
//! e.g. with the single hyperedge `({R0}, {R1, R2})` the full set `{R0, R1, R2}` is *not*
//! connected, because `{R1, R2}` has no internal edge.
//!
//! The functions here are oracles used by tests, baselines and graph-repair utilities; the
//! enumeration algorithms themselves never call them (their DP tables encode connectivity
//! implicitly).

use crate::graph::Hypergraph;
use qo_bitset::NodeSet;
use std::collections::HashMap;

/// Is the node-induced subgraph `G|s` connected (Def. 3)?
///
/// Runs a memoized recursion over the subsets of `s`; intended for moderate set sizes
/// (`|s| ≲ 20`), which covers every workload of the paper.
pub fn is_connected<const W: usize>(graph: &Hypergraph<W>, s: NodeSet<W>) -> bool {
    if s.is_empty() {
        return false;
    }
    let mut memo = HashMap::new();
    is_connected_memo(graph, s, &mut memo)
}

fn is_connected_memo<const W: usize>(
    graph: &Hypergraph<W>,
    s: NodeSet<W>,
    memo: &mut HashMap<NodeSet<W>, bool>,
) -> bool {
    if s.is_singleton() {
        return true;
    }
    if let Some(&known) = memo.get(&s) {
        return known;
    }
    // Only consider splits where S1 contains min(S); every partition is covered exactly once.
    let min = s.min_singleton();
    let rest = s - min;
    let mut connected = false;
    for sub in rest.subsets() {
        let s2 = sub;
        let s1 = s - s2;
        debug_assert!(s1.is_superset_of(min));
        if graph.has_connecting_edge(s1, s2)
            && is_connected_memo(graph, s1, memo)
            && is_connected_memo(graph, s2, memo)
        {
            connected = true;
            break;
        }
    }
    memo.insert(s, connected);
    connected
}

/// Is the whole graph connected?
pub fn is_graph_connected<const W: usize>(graph: &Hypergraph<W>) -> bool {
    is_connected(graph, graph.all_nodes())
}

/// Partitions the nodes into reachability components.
///
/// Two nodes are in the same component if they can be linked by a chain of hyperedges, where a
/// hyperedge may be traversed once all nodes of one of its hypernodes (plus its flexible nodes,
/// if any, on the combined side) have been reached. This is the weaker closure notion of
/// connectivity: every Def.-3-connected set lies within one component, but a single component is
/// not necessarily Def.-3 connected. Components are the right granularity for the cross-product
/// repair edges described in Sec. 2.1 of the paper.
pub fn components<const W: usize>(graph: &Hypergraph<W>) -> Vec<NodeSet<W>> {
    let all = graph.all_nodes();
    let mut unassigned = all;
    let mut out = Vec::new();
    while let Some(start) = unassigned.min_node() {
        let mut comp = NodeSet::single(start);
        loop {
            let mut grew = false;
            for (_, e) in graph.edges() {
                if !e.all_nodes().is_subset_of(comp) {
                    let touches = e.left().is_subset_of(comp) || e.right().is_subset_of(comp);
                    if touches {
                        comp |= e.all_nodes();
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        out.push(comp & all);
        unassigned -= comp;
    }
    out
}

/// Ensures the graph is connected by adding, if necessary, hyperedges between reachability
/// components (one edge per adjacent pair of components in order), as suggested in Sec. 2.1:
/// "for every pair of connected components, we can add a hyperedge whose hypernodes contain
/// exactly the relations of the connected components", interpreted as a cross product with
/// selectivity 1.
///
/// Returns the repaired graph and the ids of the added edges (empty if nothing had to change).
pub fn make_connected<const W: usize>(
    graph: &Hypergraph<W>,
) -> (Hypergraph<W>, Vec<crate::EdgeId>) {
    let comps = components(graph);
    if comps.len() <= 1 {
        return (graph.clone(), Vec::new());
    }
    let mut builder = Hypergraph::builder(graph.node_count());
    for (_, e) in graph.edges() {
        builder.add_edge(*e);
    }
    let mut added = Vec::new();
    for pair in comps.windows(2) {
        let id = builder.add_hyperedge(pair[0], pair[1]);
        added.push(id);
    }
    (builder.build(), added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Hyperedge;

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    fn chain(n: usize) -> Hypergraph {
        let mut b = Hypergraph::builder(n);
        for i in 0..n - 1 {
            b.add_simple_edge(i, i + 1);
        }
        b.build()
    }

    fn fig2() -> Hypergraph {
        let mut b = Hypergraph::builder(6);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(1, 2);
        b.add_simple_edge(3, 4);
        b.add_simple_edge(4, 5);
        b.add_hyperedge(ns(&[0, 1, 2]), ns(&[3, 4, 5]));
        b.build()
    }

    #[test]
    fn singletons_are_connected() {
        let g = chain(3);
        for i in 0..3 {
            assert!(is_connected(&g, NodeSet::single(i)));
        }
        assert!(!is_connected(&g, NodeSet::EMPTY));
    }

    #[test]
    fn chain_subsets() {
        let g = chain(5);
        assert!(is_connected(&g, ns(&[0, 1, 2])));
        assert!(is_connected(&g, g.all_nodes()));
        assert!(!is_connected(&g, ns(&[0, 2])));
        assert!(!is_connected(&g, ns(&[0, 1, 3])));
    }

    #[test]
    fn fig2_graph_connectivity() {
        let g = fig2();
        assert!(is_graph_connected(&g));
        assert!(is_connected(&g, ns(&[0, 1, 2])));
        assert!(is_connected(&g, ns(&[3, 4, 5])));
        // The two halves are connected only through the hyperedge, so a partial union is not
        // connected.
        assert!(!is_connected(&g, ns(&[0, 1, 2, 3])));
        assert!(!is_connected(&g, ns(&[2, 3])));
        assert!(is_connected(&g, g.all_nodes()));
    }

    #[test]
    fn hyperedge_needs_connected_target_side() {
        // Single edge ({R0}, {R1, R2}) — {R1,R2} has no internal edge, hence the full set is
        // NOT connected under Def. 3.
        let mut b = Hypergraph::builder(3);
        b.add_hyperedge(ns(&[0]), ns(&[1, 2]));
        let g = b.build();
        assert!(!is_connected(&g, g.all_nodes()));
        // Adding a simple edge inside {R1,R2} repairs it.
        let mut b = Hypergraph::builder(3);
        b.add_hyperedge(ns(&[0]), ns(&[1, 2]));
        b.add_simple_edge(1, 2);
        let g = b.build();
        assert!(is_connected(&g, g.all_nodes()));
    }

    #[test]
    fn generalized_edge_connectivity() {
        // ({0}, {2}, flex {1}) with a simple edge (1,2): {0,1,2} is connected because the flex
        // node can be placed with either side.
        let mut b = Hypergraph::builder(3);
        b.add_edge(Hyperedge::generalized(ns(&[0]), ns(&[2]), ns(&[1])));
        b.add_simple_edge(1, 2);
        let g = b.build();
        assert!(is_connected(&g, g.all_nodes()));
        assert!(is_connected(&g, ns(&[1, 2])));
        // {0,1} alone has no edge: the generalized edge needs node 2.
        assert!(!is_connected(&g, ns(&[0, 1])));
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut b = Hypergraph::<1>::builder(5);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(3, 4);
        let g = b.build();
        let comps = components(&g);
        assert_eq!(comps, vec![ns(&[0, 1]), ns(&[2]), ns(&[3, 4])]);
        assert!(!is_graph_connected(&g));
    }

    #[test]
    fn make_connected_adds_repair_edges() {
        let mut b = Hypergraph::<1>::builder(5);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(3, 4);
        let g = b.build();
        let (repaired, added) = make_connected(&g);
        assert_eq!(added.len(), 2);
        assert!(is_graph_connected(&repaired));
        // Existing edges are preserved.
        assert_eq!(repaired.edge_count(), g.edge_count() + 2);
    }

    #[test]
    fn make_connected_is_noop_for_connected_graph() {
        let g = fig2();
        let (repaired, added) = make_connected(&g);
        assert!(added.is_empty());
        assert_eq!(repaired.edge_count(), g.edge_count());
    }

    #[test]
    fn components_of_connected_graph() {
        let g = fig2();
        assert_eq!(components(&g), vec![g.all_nodes()]);
    }
}
