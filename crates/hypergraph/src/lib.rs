//! Query hypergraphs for join-order optimization.
//!
//! The DPhyp paper models a join query as a hypergraph `H = (V, E)`: the nodes `V` are the
//! relations of the query and every hyperedge `(u, v)` is an abstraction of a join predicate
//! whose left side references exactly the relations in `u` and whose right side references
//! exactly the relations in `v` (Def. 1). Simple (binary) predicates produce simple edges with
//! `|u| = |v| = 1`; complex predicates such as `R1.a + R2.b + R3.c = R4.d + R5.e + R6.f`
//! produce true hyperedges such as `({R1,R2,R3}, {R4,R5,R6})`.
//!
//! This crate also implements the *generalized* hyperedges of Sec. 6 — triples `(u, v, w)` where
//! the relations in `w` may appear on either side of the join — by giving every edge an optional
//! `flex` node set (empty for ordinary edges). As the paper notes, the enumeration algorithms
//! need no changes to support them.
//!
//! The crate provides:
//!
//! * [`Hyperedge`] and [`Hypergraph`] with a builder API,
//! * neighborhood computation `N(S, X)` (Sec. 2.3, Eq. 1) in [`Hypergraph::neighborhood`],
//! * connectivity in the sense of Def. 3 ([`connectivity`]),
//! * a brute-force oracle for connected subgraphs and csg-cmp-pairs ([`count_ccps`] and friends)
//!   used to validate the enumeration algorithms and to report the theoretical lower bound on
//!   cost-function calls.

mod count;
mod edge;
mod graph;
mod neighborhood;

pub mod connectivity;

pub use count::{
    count_ccps, count_connected_subgraphs, enumerate_ccps, enumerate_connected_subgraphs,
};
pub use edge::{EdgeId, Hyperedge};
pub use graph::{Hypergraph, HypergraphBuilder};

pub use qo_bitset::{NodeId, NodeSet};
