//! Hyperedges of the query graph.

use qo_bitset::NodeSet;
use std::fmt;

/// Index of a hyperedge in its [`Hypergraph`](crate::Hypergraph).
///
/// Edge ids are stable across the lifetime of a graph and are used by the catalog to attach
/// selectivities and by the algebra layer to attach operators and predicates.
pub type EdgeId = usize;

/// A (generalized) hyperedge `(u, v, w)` of the query hypergraph.
///
/// * `left` (`u`) and `right` (`v`) are non-empty, disjoint hypernodes: all relations in `u`
///   must end up on one side of the join and all relations in `v` on the other side.
/// * `flex` (`w`) is the — usually empty — set of relations that may appear on *either* side
///   (Def. 6 of the paper). A plain hyperedge in the sense of Def. 1 has `flex = ∅`; a simple
///   edge additionally has `|u| = |v| = 1`.
///
/// The edge is undirected: `(u, v, w)` and `(v, u, w)` describe the same predicate. The
/// [`Hypergraph`](crate::Hypergraph) takes care of traversing it in both directions.
///
/// The width parameter `W` (defaulting to the single-word [`qo_bitset::NodeSet64`]) matches the
/// width of the graph the edge belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hyperedge<const W: usize = 1> {
    left: NodeSet<W>,
    right: NodeSet<W>,
    flex: NodeSet<W>,
}

impl<const W: usize> Hyperedge<W> {
    /// Creates a new hyperedge `(left, right)` with no flexible nodes.
    ///
    /// # Panics
    /// Panics if either side is empty or the sides are not disjoint.
    pub fn new(left: NodeSet<W>, right: NodeSet<W>) -> Self {
        Self::generalized(left, right, NodeSet::EMPTY)
    }

    /// Creates a simple edge `({a}, {b})`.
    pub fn simple(a: usize, b: usize) -> Self {
        Self::new(NodeSet::single(a), NodeSet::single(b))
    }

    /// Creates a generalized hyperedge `(left, right, flex)` (Def. 6).
    ///
    /// # Panics
    /// Panics if `left` or `right` is empty, or if the three sets are not pairwise disjoint.
    pub fn generalized(left: NodeSet<W>, right: NodeSet<W>, flex: NodeSet<W>) -> Self {
        assert!(!left.is_empty(), "hyperedge with empty left hypernode");
        assert!(!right.is_empty(), "hyperedge with empty right hypernode");
        assert!(
            left.is_disjoint(right),
            "hypernodes of an edge must be disjoint"
        );
        assert!(
            flex.is_disjoint(left) && flex.is_disjoint(right),
            "flexible nodes must be disjoint from both hypernodes"
        );
        Hyperedge { left, right, flex }
    }

    /// The left hypernode `u`.
    #[inline]
    pub fn left(&self) -> NodeSet<W> {
        self.left
    }

    /// The right hypernode `v`.
    #[inline]
    pub fn right(&self) -> NodeSet<W> {
        self.right
    }

    /// The flexible node set `w` (empty for ordinary hyperedges).
    #[inline]
    pub fn flex(&self) -> NodeSet<W> {
        self.flex
    }

    /// All nodes referenced by the edge: `u ∪ v ∪ w`.
    #[inline]
    pub fn all_nodes(&self) -> NodeSet<W> {
        self.left | self.right | self.flex
    }

    /// Is this a simple edge (`|u| = |v| = 1`, `w = ∅`)?
    #[inline]
    pub fn is_simple(&self) -> bool {
        self.left.is_singleton() && self.right.is_singleton() && self.flex.is_empty()
    }

    /// Is this a generalized edge (non-empty `w`)?
    #[inline]
    pub fn is_generalized(&self) -> bool {
        !self.flex.is_empty()
    }

    /// Returns the edge with left and right hypernodes swapped.
    #[inline]
    pub fn reversed(&self) -> Hyperedge<W> {
        Hyperedge {
            left: self.right,
            right: self.left,
            flex: self.flex,
        }
    }

    /// Does this edge connect `s1` to `s2` in the sense of Def. 4 / Def. 7?
    ///
    /// That is: one hypernode is contained in `s1`, the other in `s2`, and all flexible nodes
    /// are contained in `s1 ∪ s2`.
    #[inline]
    pub fn connects(&self, s1: NodeSet<W>, s2: NodeSet<W>) -> bool {
        if !self.flex.is_subset_of(s1 | s2) {
            return false;
        }
        (self.left.is_subset_of(s1) && self.right.is_subset_of(s2))
            || (self.left.is_subset_of(s2) && self.right.is_subset_of(s1))
    }

    /// Given a set `origin` that fully contains one hypernode of the edge, returns the hypernode
    /// on the *other* side, with flexible nodes not already in `origin` attached to it
    /// (`v ∪ (w \ origin)`, cf. Sec. 6). Returns `None` if neither hypernode is contained in
    /// `origin`, or if the target side intersects `origin`.
    #[inline]
    pub fn target_from(&self, origin: NodeSet<W>) -> Option<NodeSet<W>> {
        let (from, to) = if self.left.is_subset_of(origin) {
            (self.left, self.right)
        } else if self.right.is_subset_of(origin) {
            (self.right, self.left)
        } else {
            return None;
        };
        debug_assert!(from.is_subset_of(origin));
        let target = to | (self.flex - origin);
        if target.intersects(origin) {
            return None;
        }
        Some(target)
    }
}

impl<const W: usize> fmt::Debug for Hyperedge<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.flex.is_empty() {
            write!(f, "({:?} — {:?})", self.left, self.right)
        } else {
            write!(
                f,
                "({:?} — {:?} | flex {:?})",
                self.left, self.right, self.flex
            )
        }
    }
}

impl<const W: usize> fmt::Display for Hyperedge<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qo_bitset::{NodeSet, NodeSet128};

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    #[test]
    fn simple_edge_properties() {
        let e = Hyperedge::<1>::simple(1, 2);
        assert!(e.is_simple());
        assert!(!e.is_generalized());
        assert_eq!(e.left(), NodeSet::single(1));
        assert_eq!(e.right(), NodeSet::single(2));
        assert_eq!(e.all_nodes(), ns(&[1, 2]));
    }

    #[test]
    fn paper_example_hyperedge() {
        // ({R1,R2,R3}, {R4,R5,R6}) from Fig. 2 (0-based: ({0,1,2},{3,4,5})).
        let e = Hyperedge::new(ns(&[0, 1, 2]), ns(&[3, 4, 5]));
        assert!(!e.is_simple());
        assert!(e.connects(ns(&[0, 1, 2]), ns(&[3, 4, 5])));
        assert!(e.connects(ns(&[3, 4, 5]), ns(&[0, 1, 2])));
        // Supersets on both sides still connect.
        assert!(e.connects(ns(&[0, 1, 2, 6]), ns(&[3, 4, 5, 7])));
        // A missing member of one hypernode breaks the connection.
        assert!(!e.connects(ns(&[0, 1]), ns(&[3, 4, 5])));
    }

    #[test]
    fn wide_edge_across_the_word_boundary() {
        let wns = |v: &[usize]| -> NodeSet128 { v.iter().copied().collect() };
        let e = Hyperedge::new(wns(&[60, 61]), wns(&[64, 100]));
        assert!(e.connects(wns(&[60, 61, 5]), wns(&[64, 100, 127])));
        assert!(!e.connects(wns(&[60]), wns(&[64, 100])));
        assert_eq!(e.target_from(wns(&[60, 61])), Some(wns(&[64, 100])));
        assert!(Hyperedge::<2>::simple(63, 64).is_simple());
    }

    #[test]
    fn reversed_edge_swaps_sides() {
        let e = Hyperedge::new(ns(&[0]), ns(&[1, 2]));
        let r = e.reversed();
        assert_eq!(r.left(), ns(&[1, 2]));
        assert_eq!(r.right(), ns(&[0]));
        assert_eq!(r.flex(), NodeSet::EMPTY);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_hypernodes_panic() {
        let _ = Hyperedge::new(ns(&[0, 1]), ns(&[1, 2]));
    }

    #[test]
    #[should_panic(expected = "empty left")]
    fn empty_left_hypernode_panics() {
        let _ = Hyperedge::new(NodeSet::<1>::EMPTY, ns(&[1]));
    }

    #[test]
    fn target_from_resolves_other_side() {
        let e = Hyperedge::new(ns(&[0, 1]), ns(&[3, 4]));
        assert_eq!(e.target_from(ns(&[0, 1, 2])), Some(ns(&[3, 4])));
        assert_eq!(e.target_from(ns(&[3, 4])), Some(ns(&[0, 1])));
        // Neither side contained.
        assert_eq!(e.target_from(ns(&[0, 3])), None);
        // Target intersecting the origin is rejected.
        assert_eq!(e.target_from(ns(&[0, 1, 3])), None);
    }

    #[test]
    fn generalized_edge_connectivity() {
        // (u={0}, v={3}, w={1,2}): 1 and 2 may go to either side.
        let e = Hyperedge::generalized(ns(&[0]), ns(&[3]), ns(&[1, 2]));
        assert!(e.is_generalized());
        assert!(e.connects(ns(&[0, 1]), ns(&[2, 3])));
        assert!(e.connects(ns(&[0, 1, 2]), ns(&[3])));
        // Flexible node missing from both sides: not connected.
        assert!(!e.connects(ns(&[0]), ns(&[3])));
    }

    #[test]
    fn generalized_target_includes_remaining_flex() {
        // Given V1 ⊇ u, the neighbouring hypernode must be v ∪ (w \ V1)  (Sec. 6).
        let e = Hyperedge::generalized(ns(&[0]), ns(&[3]), ns(&[1, 2]));
        assert_eq!(e.target_from(ns(&[0, 1])), Some(ns(&[2, 3])));
        assert_eq!(e.target_from(ns(&[0, 1, 2])), Some(ns(&[3])));
        assert_eq!(e.target_from(ns(&[0])), Some(ns(&[1, 2, 3])));
    }

    #[test]
    fn display_formats() {
        let e = Hyperedge::<1>::simple(0, 1);
        assert_eq!(format!("{e}"), "({R0} — {R1})");
        let g = Hyperedge::generalized(ns(&[0]), ns(&[2]), ns(&[1]));
        assert!(format!("{g}").contains("flex"));
    }
}
