//! Brute-force oracles for connected subgraphs (csg) and csg-cmp-pairs (ccp).
//!
//! The number of csg-cmp-pairs of a query graph is the minimal number of cost-function calls any
//! dynamic programming (or memoization) join-ordering algorithm must perform (Sec. 2.2). These
//! oracles compute the exact sets by exhaustive enumeration over all subsets; they are used
//!
//! * in tests, to validate that DPhyp emits *every* csg-cmp-pair *exactly once*, and
//! * in the ablation benchmarks, to relate the runtime of the algorithms to the search-space
//!   size of the workload.
//!
//! Complexity is `O(3^n)`-ish, so they are meant for `n ≲ 18`.

use crate::graph::Hypergraph;
use qo_bitset::NodeSet;

/// Enumerates all connected subsets (csgs) of the graph in ascending mask order.
pub fn enumerate_connected_subgraphs<const W: usize>(graph: &Hypergraph<W>) -> Vec<NodeSet<W>> {
    let all = graph.all_nodes();
    let n = graph.node_count();
    // connected[mask] for masks over the full node set; indexed by mask as usize.
    // For n <= 25 or so this table is fine; guard against absurd sizes.
    assert!(
        n <= 25,
        "oracle enumeration limited to 25 relations, got {n}"
    );
    let size = 1usize << n;
    let mut connected = vec![false; size];
    let mut out = Vec::new();
    for mask in 1..size {
        let s = NodeSet::from_mask(mask as u64);
        debug_assert!(s.is_subset_of(all));
        let conn = if s.is_singleton() {
            true
        } else {
            // S is connected iff it splits into two connected halves linked by an edge; only
            // splits where S1 contains min(S) need to be checked.
            let min = s.min_singleton();
            let rest = s - min;
            let mut found = false;
            for s2 in rest.subsets() {
                let s1 = s - s2;
                if connected[s1.mask() as usize]
                    && connected[s2.mask() as usize]
                    && graph.has_connecting_edge(s1, s2)
                {
                    found = true;
                    break;
                }
            }
            found
        };
        connected[mask] = conn;
        if conn {
            out.push(s);
        }
    }
    out
}

/// Number of connected subsets of the graph.
pub fn count_connected_subgraphs<const W: usize>(graph: &Hypergraph<W>) -> usize {
    enumerate_connected_subgraphs(graph).len()
}

/// Enumerates all csg-cmp-pairs `(S1, S2)` in canonical form, i.e. with
/// `min(S1) ≺ min(S2)` (Def. 4 together with the duplicate-avoidance convention of Sec. 2.2).
///
/// Each returned pair satisfies: `S1` and `S2` are disjoint, both induce connected subgraphs,
/// and at least one hyperedge connects them.
pub fn enumerate_ccps<const W: usize>(graph: &Hypergraph<W>) -> Vec<(NodeSet<W>, NodeSet<W>)> {
    let csgs = enumerate_connected_subgraphs(graph);
    let mut out = Vec::new();
    for &s1 in &csgs {
        for &s2 in &csgs {
            if !s1.is_disjoint(s2) {
                continue;
            }
            let (m1, m2) = (s1.min_node().unwrap(), s2.min_node().unwrap());
            if m1 >= m2 {
                continue;
            }
            if graph.has_connecting_edge(s1, s2) {
                out.push((s1, s2));
            }
        }
    }
    out.sort();
    out
}

/// Number of canonical csg-cmp-pairs — the lower bound on cost-function calls of any dynamic
/// programming join enumeration (each canonical pair corresponds to one commutative pair of
/// plans considered together, as done by `EmitCsgCmp`).
pub fn count_ccps<const W: usize>(graph: &Hypergraph<W>) -> usize {
    enumerate_ccps(graph).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Hypergraph;
    use qo_bitset::NodeSet;

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    fn chain(n: usize) -> Hypergraph {
        let mut b = Hypergraph::builder(n);
        for i in 0..n - 1 {
            b.add_simple_edge(i, i + 1);
        }
        b.build()
    }

    fn cycle(n: usize) -> Hypergraph {
        let mut b = Hypergraph::builder(n);
        for i in 0..n {
            b.add_simple_edge(i, (i + 1) % n);
        }
        b.build()
    }

    fn star(satellites: usize) -> Hypergraph {
        let mut b = Hypergraph::builder(satellites + 1);
        for i in 1..=satellites {
            b.add_simple_edge(0, i);
        }
        b.build()
    }

    fn clique(n: usize) -> Hypergraph {
        let mut b = Hypergraph::builder(n);
        for i in 0..n {
            for j in i + 1..n {
                b.add_simple_edge(i, j);
            }
        }
        b.build()
    }

    /// Closed-form csg/ccp counts for the standard graph shapes, from the DPccp paper
    /// (Moerkotte & Neumann, VLDB 2006).
    #[test]
    fn chain_counts_match_closed_form() {
        for n in 2..=8usize {
            let g = chain(n);
            // #csg of a chain: n(n+1)/2, #ccp: (n^3 - n)/6.
            assert_eq!(
                count_connected_subgraphs(&g),
                n * (n + 1) / 2,
                "csg chain {n}"
            );
            assert_eq!(count_ccps(&g), (n.pow(3) - n) / 6, "ccp chain {n}");
        }
    }

    #[test]
    fn star_counts_match_closed_form() {
        for sats in 1..=7usize {
            let n = sats + 1;
            let g = star(sats);
            // #csg of a star with n relations: 2^(n-1) + n - 1.
            assert_eq!(
                count_connected_subgraphs(&g),
                (1 << (n - 1)) + n - 1,
                "csg star {n}"
            );
            // #ccp of a star: (n-1) * 2^(n-2).
            assert_eq!(count_ccps(&g), (n - 1) * (1 << (n - 2)), "ccp star {n}");
        }
    }

    #[test]
    fn cycle_counts_match_closed_form() {
        for n in 3..=8usize {
            let g = cycle(n);
            // #csg of a cycle: n^2 - n + 1.
            assert_eq!(
                count_connected_subgraphs(&g),
                n * n - n + 1,
                "csg cycle {n}"
            );
            // #ccp of a cycle: (n^3 - 2n^2 + n) / 2.
            assert_eq!(
                count_ccps(&g),
                (n.pow(3) - 2 * n.pow(2) + n) / 2,
                "ccp cycle {n}"
            );
        }
    }

    #[test]
    fn clique_counts_match_closed_form() {
        for n in 2..=7usize {
            let g = clique(n);
            // #csg of a clique: 2^n - 1.
            assert_eq!(
                count_connected_subgraphs(&g),
                (1 << n) - 1,
                "csg clique {n}"
            );
            // #ccp of a clique: (3^n - 2^(n+1) + 1) / 2.
            let expected = (3usize.pow(n as u32) - (1 << (n + 1))).div_ceil(2);
            assert_eq!(count_ccps(&g), expected, "ccp clique {n}");
        }
    }

    #[test]
    fn hyperedge_reduces_search_space() {
        // Fig. 2 graph: the hyperedge glues the two simple chains; far fewer csgs than a chain
        // over 6 relations with the same number of edges.
        let mut b = Hypergraph::builder(6);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(1, 2);
        b.add_simple_edge(3, 4);
        b.add_simple_edge(4, 5);
        b.add_hyperedge(ns(&[0, 1, 2]), ns(&[3, 4, 5]));
        let g = b.build();
        let csgs = enumerate_connected_subgraphs(&g);
        // Connected sets: the 6 singletons, {0,1},{1,2},{0,1,2},{3,4},{4,5},{3,4,5}, and the
        // sets containing both full halves: {0..5}. Everything else is disconnected.
        assert_eq!(csgs.len(), 13);
        assert!(csgs.contains(&g.all_nodes()));
        assert!(!csgs.contains(&ns(&[2, 3])));
        // csg-cmp-pairs: within the left chain (4: ({0},{1}),({1},{2}),({0,1},{2}),({0},{1,2})),
        // within the right chain (4), plus the single pair across the hyperedge.
        let ccps = enumerate_ccps(&g);
        assert_eq!(ccps.len(), 9);
        assert!(ccps.contains(&(ns(&[0, 1, 2]), ns(&[3, 4, 5]))));
    }

    #[test]
    fn disconnected_graph_has_no_full_plan() {
        let mut b = Hypergraph::builder(4);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(2, 3);
        let g = b.build();
        let csgs = enumerate_connected_subgraphs(&g);
        assert!(!csgs.contains(&g.all_nodes()));
        // ccps exist only within each component.
        for (s1, s2) in enumerate_ccps(&g) {
            assert!((s1 | s2).is_subset_of(ns(&[0, 1])) || (s1 | s2).is_subset_of(ns(&[2, 3])));
        }
    }

    #[test]
    fn ccps_are_canonical_and_valid() {
        let g = cycle(6);
        for (s1, s2) in enumerate_ccps(&g) {
            assert!(s1.is_disjoint(s2));
            assert!(s1.min_node().unwrap() < s2.min_node().unwrap());
            assert!(graph_connected(&g, s1));
            assert!(graph_connected(&g, s2));
            assert!(g.has_connecting_edge(s1, s2));
        }
    }

    fn graph_connected(g: &Hypergraph, s: NodeSet) -> bool {
        crate::connectivity::is_connected(g, s)
    }
}
