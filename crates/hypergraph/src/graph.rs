//! The [`Hypergraph`] type and its builder.

use crate::edge::{EdgeId, Hyperedge};
use qo_bitset::{NodeId, NodeSet};
use std::fmt;

/// A query hypergraph: `n` relations (nodes `R0 .. R{n-1}`) plus a set of hyperedges.
///
/// Nodes are totally ordered by their index (`R_i ≺ R_j ⟺ i < j`), which is the ordering the
/// enumeration algorithms rely on. Simple edges are additionally indexed into per-node neighbor
/// masks so that the hot neighborhood computation does not have to scan them.
///
/// The const parameter `W` is the mask width in 64-bit words (default one word, up to 64
/// relations); a `Hypergraph<2>` holds up to 128 relations. The width is fixed when the builder
/// is created, so every mask operation inside the enumeration is monomorphized for it.
///
/// ```
/// use qo_hypergraph::{Hypergraph, Hyperedge};
/// use qo_bitset::NodeSet;
///
/// // The hypergraph of Fig. 2 of the paper (0-based relation indexes).
/// let mut b = Hypergraph::builder(6);
/// b.add_simple_edge(0, 1);
/// b.add_simple_edge(1, 2);
/// b.add_simple_edge(3, 4);
/// b.add_simple_edge(4, 5);
/// b.add_edge(Hyperedge::new(
///     NodeSet::from_iter([0, 1, 2]),
///     NodeSet::from_iter([3, 4, 5]),
/// ));
/// let g: Hypergraph = b.build();
/// assert_eq!(g.node_count(), 6);
/// assert_eq!(g.edge_count(), 5);
/// // Neighborhood of S = {R0,R1,R2} with X = S: only the representative R3 of {R3,R4,R5}.
/// let s = NodeSet::from_iter([0, 1, 2]);
/// assert_eq!(g.neighborhood(s, s), NodeSet::single(3));
/// ```
#[derive(Clone)]
pub struct Hypergraph<const W: usize = 1> {
    node_count: usize,
    edges: Vec<Hyperedge<W>>,
    /// For every node, the union of the opposite endpoints of all *simple* edges incident to it.
    simple_neighbors: Vec<NodeSet<W>>,
    /// Ids of all non-simple (complex or generalized) edges.
    complex_edges: Vec<EdgeId>,
    /// Ids of all simple edges, per node (used when collecting connecting edges / predicates).
    simple_edges_per_node: Vec<Vec<EdgeId>>,
}

impl<const W: usize> Hypergraph<W> {
    /// Starts building a hypergraph over `node_count` relations.
    pub fn builder(node_count: usize) -> HypergraphBuilder<W> {
        HypergraphBuilder::new(node_count)
    }

    /// Number of relations.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The set of all relations `V`.
    #[inline]
    pub fn all_nodes(&self) -> NodeSet<W> {
        NodeSet::first_n(self.node_count)
    }

    /// Number of hyperedges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All hyperedges with their ids.
    #[inline]
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Hyperedge<W>)> {
        self.edges.iter().enumerate()
    }

    /// The hyperedge with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Hyperedge<W> {
        &self.edges[id]
    }

    /// Ids of all non-simple edges.
    #[inline]
    pub fn complex_edge_ids(&self) -> &[EdgeId] {
        &self.complex_edges
    }

    /// Does the graph contain any non-simple edge?
    #[inline]
    pub fn has_complex_edges(&self) -> bool {
        !self.complex_edges.is_empty()
    }

    /// The union of simple-edge neighbors of a single node.
    #[inline]
    pub fn simple_neighbors(&self, node: NodeId) -> NodeSet<W> {
        self.simple_neighbors[node]
    }

    /// The union of simple-edge neighbors of all nodes in `s` (not yet filtered by any
    /// exclusion set).
    #[inline]
    pub fn simple_neighbors_of_set(&self, s: NodeSet<W>) -> NodeSet<W> {
        let mut n = NodeSet::EMPTY;
        for node in s {
            n |= self.simple_neighbors[node];
        }
        n - s
    }

    /// Is there at least one hyperedge connecting `s1` and `s2` (Def. 4 / Def. 7)?
    pub fn has_connecting_edge(&self, s1: NodeSet<W>, s2: NodeSet<W>) -> bool {
        // Fast path: any simple edge from s1 into s2.
        if self.simple_neighbors_of_set(s1).intersects(s2) {
            return true;
        }
        self.complex_edges
            .iter()
            .any(|&eid| self.edges[eid].connects(s1, s2))
    }

    /// All edge ids connecting `s1` and `s2`. These are the predicates that `EmitCsgCmp`
    /// conjoins into the join predicate of the new plan.
    pub fn connecting_edges(&self, s1: NodeSet<W>, s2: NodeSet<W>) -> Vec<EdgeId> {
        let mut out = Vec::new();
        self.connecting_edges_into(s1, s2, &mut out);
        out
    }

    /// Like [`Hypergraph::connecting_edges`], but clears and fills a caller-provided buffer so
    /// the planner's hot path (one call per emitted csg-cmp-pair) does not allocate.
    pub fn connecting_edges_into(&self, s1: NodeSet<W>, s2: NodeSet<W>, out: &mut Vec<EdgeId>) {
        out.clear();
        // Simple edges incident to the smaller side.
        let (probe, _other) = if s1.len() <= s2.len() {
            (s1, s2)
        } else {
            (s2, s1)
        };
        for node in probe {
            for &eid in &self.simple_edges_per_node[node] {
                if self.edges[eid].connects(s1, s2) && !out.contains(&eid) {
                    out.push(eid);
                }
            }
        }
        for &eid in &self.complex_edges {
            if self.edges[eid].connects(s1, s2) {
                out.push(eid);
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// All edge ids whose referenced nodes are fully contained in `s` (used by cardinality
    /// estimation: these are the predicates already applied within a plan class `s`).
    pub fn edges_within(&self, s: NodeSet<W>) -> Vec<EdgeId> {
        self.edges()
            .filter(|(_, e)| e.all_nodes().is_subset_of(s))
            .map(|(id, _)| id)
            .collect()
    }
}

impl<const W: usize> fmt::Debug for Hypergraph<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Hypergraph over {} relations:", self.node_count)?;
        for (id, e) in self.edges() {
            writeln!(f, "  e{id}: {e:?}")?;
        }
        Ok(())
    }
}

/// Builder for [`Hypergraph`].
pub struct HypergraphBuilder<const W: usize = 1> {
    node_count: usize,
    edges: Vec<Hyperedge<W>>,
}

impl<const W: usize> HypergraphBuilder<W> {
    /// Creates a builder for a graph over `node_count` relations.
    ///
    /// # Panics
    /// Panics if `node_count` is zero or exceeds the width's capacity
    /// ([`NodeSet::CAPACITY`] `= 64 * W` relations).
    pub fn new(node_count: usize) -> Self {
        assert!(node_count > 0, "a hypergraph needs at least one relation");
        assert!(
            node_count <= NodeSet::<W>::CAPACITY,
            "at most {} relations are supported at width {W} (got {node_count})",
            NodeSet::<W>::CAPACITY,
        );
        HypergraphBuilder {
            node_count,
            edges: Vec::new(),
        }
    }

    /// Adds a hyperedge; returns its id.
    ///
    /// # Panics
    /// Panics if the edge references nodes outside the graph.
    pub fn add_edge(&mut self, edge: Hyperedge<W>) -> EdgeId {
        assert!(
            edge.all_nodes()
                .is_subset_of(NodeSet::first_n(self.node_count)),
            "edge {edge:?} references nodes outside the graph"
        );
        let id = self.edges.len();
        self.edges.push(edge);
        id
    }

    /// Adds a simple edge `({a}, {b})`; returns its id.
    pub fn add_simple_edge(&mut self, a: NodeId, b: NodeId) -> EdgeId {
        self.add_edge(Hyperedge::simple(a, b))
    }

    /// Adds a hyperedge between two hypernodes; returns its id.
    pub fn add_hyperedge(&mut self, left: NodeSet<W>, right: NodeSet<W>) -> EdgeId {
        self.add_edge(Hyperedge::new(left, right))
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph, computing the per-node simple-edge indexes.
    pub fn build(self) -> Hypergraph<W> {
        let mut simple_neighbors = vec![NodeSet::EMPTY; self.node_count];
        let mut simple_edges_per_node = vec![Vec::new(); self.node_count];
        let mut complex_edges = Vec::new();
        for (id, e) in self.edges.iter().enumerate() {
            if e.is_simple() {
                let a = e.left().min_node().expect("non-empty");
                let b = e.right().min_node().expect("non-empty");
                simple_neighbors[a].insert(b);
                simple_neighbors[b].insert(a);
                simple_edges_per_node[a].push(id);
                simple_edges_per_node[b].push(id);
            } else {
                complex_edges.push(id);
            }
        }
        Hypergraph {
            node_count: self.node_count,
            edges: self.edges,
            simple_neighbors,
            complex_edges,
            simple_edges_per_node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qo_bitset::NodeSet128;

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    /// The example hypergraph of Fig. 2 (0-based).
    pub(crate) fn fig2_graph() -> Hypergraph {
        let mut b = Hypergraph::builder(6);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(1, 2);
        b.add_simple_edge(3, 4);
        b.add_simple_edge(4, 5);
        b.add_hyperedge(ns(&[0, 1, 2]), ns(&[3, 4, 5]));
        b.build()
    }

    #[test]
    fn builder_counts() {
        let g = fig2_graph();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.complex_edge_ids(), &[4]);
        assert!(g.has_complex_edges());
        assert_eq!(g.all_nodes(), NodeSet::first_n(6));
    }

    #[test]
    fn simple_neighbor_masks() {
        let g = fig2_graph();
        assert_eq!(g.simple_neighbors(0), ns(&[1]));
        assert_eq!(g.simple_neighbors(1), ns(&[0, 2]));
        assert_eq!(g.simple_neighbors(4), ns(&[3, 5]));
        assert_eq!(g.simple_neighbors_of_set(ns(&[0, 1])), ns(&[2]));
        assert_eq!(g.simple_neighbors_of_set(ns(&[3, 4, 5])), NodeSet::EMPTY);
    }

    #[test]
    fn connecting_edge_tests() {
        let g = fig2_graph();
        assert!(g.has_connecting_edge(ns(&[0]), ns(&[1])));
        assert!(!g.has_connecting_edge(ns(&[0]), ns(&[2])));
        // Hyperedge connects the two halves only when both hypernodes are covered.
        assert!(g.has_connecting_edge(ns(&[0, 1, 2]), ns(&[3, 4, 5])));
        assert!(!g.has_connecting_edge(ns(&[0, 1]), ns(&[3, 4, 5])));
        assert_eq!(g.connecting_edges(ns(&[0, 1, 2]), ns(&[3, 4, 5])), vec![4]);
        assert_eq!(g.connecting_edges(ns(&[1]), ns(&[0, 2])), vec![0, 1]);
    }

    #[test]
    fn edges_within_set() {
        let g = fig2_graph();
        assert_eq!(g.edges_within(ns(&[0, 1, 2])), vec![0, 1]);
        assert_eq!(g.edges_within(g.all_nodes()).len(), 5);
        assert!(g.edges_within(ns(&[0, 3])).is_empty());
    }

    #[test]
    fn wide_graphs_accept_more_than_64_relations() {
        // A 96-relation chain fits in a two-word graph; the 64-relation cap only applies to the
        // single-word width.
        let mut b = Hypergraph::<2>::builder(96);
        for i in 0..95 {
            b.add_simple_edge(i, i + 1);
        }
        let g = b.build();
        assert_eq!(g.node_count(), 96);
        assert_eq!(g.all_nodes().len(), 96);
        // Adjacency across the word boundary works like everywhere else.
        assert!(g.has_connecting_edge(NodeSet128::single(63), NodeSet128::single(64)));
        assert!(!g.has_connecting_edge(NodeSet128::single(63), NodeSet128::single(65)));
        assert_eq!(
            g.connecting_edges(NodeSet128::first_n(64), NodeSet128::range(64, 96)),
            vec![63]
        );
    }

    #[test]
    #[should_panic(expected = "at most 64 relations")]
    fn narrow_builder_rejects_more_than_64_nodes() {
        let _ = Hypergraph::<1>::builder(65);
    }

    #[test]
    #[should_panic(expected = "at most 128 relations")]
    fn wide_builder_rejects_more_than_128_nodes() {
        let _ = Hypergraph::<2>::builder(129);
    }

    #[test]
    #[should_panic(expected = "outside the graph")]
    fn edge_outside_graph_panics() {
        let mut b = Hypergraph::<1>::builder(2);
        b.add_simple_edge(0, 5);
    }

    #[test]
    #[should_panic(expected = "at least one relation")]
    fn zero_nodes_panics() {
        let _ = Hypergraph::<1>::builder(0);
    }

    #[test]
    fn debug_output_lists_edges() {
        let g = fig2_graph();
        let s = format!("{g:?}");
        assert!(s.contains("6 relations"));
        assert!(s.contains("e4"));
    }
}
