//! Width-agnostic [`QuerySpec`] families sized to exercise the adaptive optimization driver,
//! one per tier.
//!
//! The classic generators in [`graphs`](crate::graphs) produce a concrete
//! `(Hypergraph<W>, Catalog<W>)` pair; the adaptive driver instead consumes a width-agnostic
//! [`QuerySpec`] and picks node-set width *and* algorithm tier itself. This module provides the
//! same seeded families at the spec level — [`Workload::to_spec`] performs the conversion, so a
//! spec family has bit-identical statistics to its `Workload` twin — plus canonical "huge"
//! instances whose csg-cmp-pair counts land in each tier of the default
//! [`AdaptiveOptions`](dphyp::AdaptiveOptions) budget:
//!
//! | family | pairs | default tier |
//! |---|---|---|
//! | [`huge_chain_spec`] (chain-96) | `(96³−96)/6 ≈ 147k` | exact (fits the 1M budget) |
//! | [`huge_clique_spec`] (clique-40) | `≈ (3^40)/2 ≈ 6·10^18` | IDP fallback |
//! | [`huge_star_spec`] (star-96) | `95·2^94 ≈ 10^30` | IDP fallback |
//!
//! The star-96 family is the driver's motivating example: structurally out of reach of *any*
//! exact enumeration (PR 2 had to route it to GOO by hand), it now plans automatically — see
//! `examples/adaptive_budget.rs` and the `adaptive` experiment of the `reproduce` binary.

use crate::graphs::{chain_query_w, clique_query_w, cycle_query_w, star_query_w, Workload};
use dphyp::QuerySpec;

impl<const W: usize> Workload<W> {
    /// Converts the workload into a width-agnostic [`QuerySpec`] with identical topology and
    /// statistics: every hyperedge becomes a spec edge (in edge-id order, so selectivities and
    /// operators line up), and cardinalities and lateral references carry over unchanged.
    pub fn to_spec(&self) -> QuerySpec {
        let n = self.graph.node_count();
        let mut b = QuerySpec::builder(n);
        for r in 0..n {
            b.set_cardinality(r, self.catalog.cardinality(r));
            let refs: Vec<usize> = self.catalog.lateral_refs(r).iter().collect();
            if !refs.is_empty() {
                b.set_lateral_refs(r, &refs);
            }
        }
        for (e, edge) in self.graph.edges() {
            let ann = self.catalog.edge_annotation(e);
            let left: Vec<usize> = edge.left().iter().collect();
            let right: Vec<usize> = edge.right().iter().collect();
            if edge.is_generalized() {
                debug_assert!(
                    ann.op.is_inner(),
                    "QuerySpec carries generalized hyperedges for inner joins only"
                );
                let flex: Vec<usize> = edge.flex().iter().collect();
                b.add_generalized_edge(&left, &right, &flex, ann.selectivity);
            } else {
                b.add_edge(&left, &right, ann.selectivity, ann.op);
            }
        }
        b.build()
    }
}

/// Seeded chain query as a width-agnostic spec (`2 ≤ n ≤ 128`).
pub fn chain_spec(n: usize, seed: u64) -> QuerySpec {
    chain_query_w::<2>(n, seed).to_spec()
}

/// Seeded cycle query as a width-agnostic spec (`3 ≤ n ≤ 128`).
pub fn cycle_spec(n: usize, seed: u64) -> QuerySpec {
    cycle_query_w::<2>(n, seed).to_spec()
}

/// Seeded star query as a width-agnostic spec (`1 ≤ satellites ≤ 127`).
pub fn star_spec(satellites: usize, seed: u64) -> QuerySpec {
    star_query_w::<2>(satellites, seed).to_spec()
}

/// Seeded clique query as a width-agnostic spec (`2 ≤ n ≤ 128`).
pub fn clique_spec(n: usize, seed: u64) -> QuerySpec {
    clique_query_w::<2>(n, seed).to_spec()
}

/// The 96-relation chain: large, but with only ≈ 147k csg-cmp-pairs it stays in the **exact**
/// tier under the default budget.
pub fn huge_chain_spec(seed: u64) -> QuerySpec {
    chain_spec(96, seed)
}

/// The 40-relation clique: ≈ `6·10^18` csg-cmp-pairs force the **IDP** fallback tier.
pub fn huge_clique_spec(seed: u64) -> QuerySpec {
    clique_spec(40, seed)
}

/// The 96-relation star (95 satellites): `95·2^94` csg-cmp-pairs — the motivating example of
/// the adaptive driver, planned by the **IDP** tier under any realistic budget.
pub fn huge_star_spec(seed: u64) -> QuerySpec {
    star_spec(95, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::{chain_query, star_query};
    use dphyp::{optimize_adaptive, optimize_spec, AdaptiveOptimizer, AdaptiveOptions, PlanTier};

    #[test]
    fn to_spec_preserves_topology_and_statistics() {
        let w = star_query(8, 42);
        let spec = w.to_spec();
        assert_eq!(spec.node_count(), 9);
        assert_eq!(spec.edge_count(), 8);
        // Planning the spec and the original workload must agree exactly.
        let from_spec = optimize_spec(&spec).unwrap();
        let direct = dphyp::optimize(&w.graph, &w.catalog).unwrap();
        assert_eq!(from_spec.cost, direct.cost);
        assert_eq!(from_spec.ccp_count, direct.ccp_count);
    }

    #[test]
    fn spec_families_match_their_workload_twins() {
        let spec = chain_spec(12, 5);
        let w = chain_query(12, 5);
        let a = optimize_spec(&spec).unwrap();
        let b = dphyp::optimize(&w.graph, &w.catalog).unwrap();
        assert_eq!(a.cost, b.cost, "same seed, same statistics, same plan cost");
    }

    #[test]
    fn huge_families_have_the_advertised_shapes() {
        let chain = huge_chain_spec(1);
        assert_eq!((chain.node_count(), chain.edge_count()), (96, 95));
        let star = huge_star_spec(1);
        assert_eq!((star.node_count(), star.edge_count()), (96, 95));
        let clique = huge_clique_spec(1);
        assert_eq!(
            (clique.node_count(), clique.edge_count()),
            (40, 40 * 39 / 2)
        );
    }

    #[test]
    fn huge_clique_forces_the_idp_tier_under_a_small_budget() {
        // The full default budget (1M pairs in debug mode) makes this test slow; a 10k budget
        // exercises the identical abort + fallback path.
        let r = AdaptiveOptimizer::new(AdaptiveOptions {
            ccp_budget: 10_000,
            ..Default::default()
        })
        .optimize_spec(&huge_clique_spec(7))
        .unwrap();
        assert_eq!(r.tier, PlanTier::Idp);
        assert_eq!(r.plan.scan_count(), 40);
    }

    #[test]
    fn huge_chain_stays_exact_under_the_default_budget() {
        let r = optimize_adaptive(&huge_chain_spec(7)).unwrap();
        assert_eq!(r.tier, PlanTier::Exact);
        assert_eq!(r.telemetry.exact_ccps, (96 * 96 * 96 - 96) / 6);
    }
}
