//! Workload generators reproducing the experiments of the DPhyp paper (Sec. 4 and Sec. 5.8).
//!
//! The paper evaluates the algorithms on synthetic query graphs:
//!
//! * the classic simple-graph families — chain, cycle, star and clique queries
//!   ([`graphs`]),
//! * hypergraphs derived from cycle and star queries by adding one big hyperedge and then
//!   successively splitting it ([`splits`], Fig. 4),
//! * operator trees for the non-inner-join experiments — a left-deep star query with an
//!   increasing number of antijoins (Fig. 8a) and a cycle query with an increasing number of
//!   outer joins (Fig. 8b) ([`non_inner`]),
//! * random connected hypergraphs and operator trees used by the property-based tests
//!   ([`random`]),
//! * the >64-relation tier: 96- and 128-relation chain/star/cycle families over two-word node
//!   sets ([`wide`]),
//! * width-agnostic [`dphyp::QuerySpec`] families for the adaptive optimization driver,
//!   including the huge star/clique instances that force its fallback tiers ([`huge`]),
//! * the embedded `.jg` corpus: thirty JOB-style and TPC-DS-flavored join graphs written in
//!   the `qo-ingest` description language and compiled into the binary ([`mod@corpus`]) — the
//!   non-synthetic complement to the parametric families.
//!
//! All generators are deterministic: statistics are derived from a seeded RNG so that repeated
//! benchmark runs measure the same queries (and the corpus is fixed text):
//!
//! ```
//! use qo_workloads::{chain_query, huge::huge_star_spec};
//!
//! let w = chain_query(8, 42);
//! assert_eq!(w.name, "chain-8");
//! assert_eq!(dphyp::optimize(&w.graph, &w.catalog).unwrap().ccp_count, 84);
//!
//! // The 96-relation star feeds the adaptive driver's fallback tiers.
//! assert_eq!(huge_star_spec(42).node_count(), 96);
//! ```

pub mod corpus;
pub mod graphs;
pub mod huge;
pub mod non_inner;
pub mod random;
pub mod splits;
pub mod wide;

pub use corpus::{corpus, corpus_query, CorpusEntry, CORPUS};
pub use graphs::{
    chain_query, chain_query_w, clique_query, clique_query_w, cycle_query, cycle_query_w,
    star_query, star_query_w, Workload, Workload128,
};
pub use huge::{
    chain_spec, clique_spec, cycle_spec, huge_chain_spec, huge_clique_spec, huge_star_spec,
    star_spec,
};
pub use non_inner::{cycle_with_outer_joins, star_with_antijoins};
pub use random::{random_catalog, random_hypergraph, random_left_deep_tree};
pub use splits::{cycle_with_hyperedge_splits, max_splits, star_with_hyperedge_splits};
pub use wide::{wide_chain_query, wide_cycle_query, wide_star_query, WIDE_SIZES};

pub use qo_bitset::{NodeId, NodeSet, NodeSet128};
