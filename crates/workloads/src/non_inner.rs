//! Operator trees for the non-inner-join experiments (Sec. 5.8, Fig. 8).

use qo_algebra::{OpTree, Predicate};
use qo_bitset::NodeSet;
use qo_plan::JoinOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn seeded_cards(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5851_F42D_4C95_7F2D);
    (0..n)
        .map(|_| 10f64.powf(rng.random_range(2.0..5.0)).round())
        .collect()
}

/// The Fig. 8a workload: a left-deep star query over `1 + satellites` relations where the last
/// `antijoins` operators are left antijoins and the rest are inner joins. Every predicate is
/// between the hub `R0` and the satellite being added.
///
/// With `antijoins = 0` this is a plain star query; with `antijoins = satellites` the conflict
/// analysis pins the antijoin order and the explored search space collapses from exponential to
/// linear (Sec. 5.7).
#[allow(clippy::needless_range_loop)] // `i` is the relation id; cards[i] is incidental
pub fn star_with_antijoins(satellites: usize, antijoins: usize, seed: u64) -> OpTree {
    assert!(satellites >= 1);
    assert!(
        antijoins <= satellites,
        "cannot have more antijoins than satellites"
    );
    let cards = seeded_cards(satellites + 1, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x94D0_49BB_1331_11EB);
    let mut tree = OpTree::relation(0, cards[0]);
    for i in 1..=satellites {
        let op = if i > satellites - antijoins {
            JoinOp::LeftAnti
        } else {
            JoinOp::Inner
        };
        let sel = 10f64.powf(rng.random_range(-3.0..-1.0));
        tree = OpTree::op(
            op,
            Predicate::between(0, i, sel),
            tree,
            OpTree::relation(i, cards[i]),
        );
    }
    tree
}

/// The Fig. 8b workload: a cycle query over `n` relations given as a left-deep operator tree
/// whose last `outer_joins` operators are left outer joins and the rest inner joins. Operator
/// `i` carries the chain predicate between `R{i-1}` and `R{i}`; the topmost operator
/// additionally carries the cycle-closing predicate between `R{n-1}` and `R0` (merged into its
/// predicate's reference set).
#[allow(clippy::needless_range_loop)] // `i` is the relation id; cards[i] is incidental
pub fn cycle_with_outer_joins(n: usize, outer_joins: usize, seed: u64) -> OpTree {
    assert!(n >= 3);
    assert!(outer_joins < n, "at most n-1 operators exist");
    let cards = seeded_cards(n, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x2545_F491_4F6C_DD1D);
    let mut tree = OpTree::relation(0, cards[0]);
    for i in 1..n {
        let op = if i > n - 1 - outer_joins {
            JoinOp::LeftOuter
        } else {
            JoinOp::Inner
        };
        let sel = 10f64.powf(rng.random_range(-3.0..-1.0));
        let mut references = NodeSet::from_iter([i - 1, i]);
        if i == n - 1 {
            // Close the cycle: the final predicate also references the first relation.
            references.insert(0);
        }
        tree = OpTree::op(
            op,
            Predicate::new(references, sel),
            tree,
            OpTree::relation(i, cards[i]),
        );
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use qo_algebra::{derive_query, ConflictEncoding};

    #[test]
    fn star_workload_structure() {
        let tree = star_with_antijoins(8, 3, 1);
        assert!(tree.validate().is_ok());
        assert_eq!(tree.relation_count(), 9);
        let ops = tree.operators_postorder();
        assert_eq!(ops.len(), 8);
        assert!(ops[..5].iter().all(|(op, ..)| *op == JoinOp::Inner));
        assert!(ops[5..].iter().all(|(op, ..)| *op == JoinOp::LeftAnti));
        // Every predicate references the hub.
        for (_, p, _, _) in ops {
            assert!(p.references.contains(0));
        }
    }

    #[test]
    fn star_workload_extremes() {
        assert!(star_with_antijoins(16, 0, 7).validate().is_ok());
        assert!(star_with_antijoins(16, 16, 7).validate().is_ok());
    }

    #[test]
    fn full_antijoin_star_derives_growing_hyperedges() {
        let tree = star_with_antijoins(6, 6, 3);
        let q = derive_query(&tree, ConflictEncoding::Hyperedges).unwrap();
        // The last antijoin's edge must require every previously antijoined satellite.
        let last = q.graph.edge(5);
        assert_eq!(
            last.left().len(),
            6,
            "hub plus the five previous satellites"
        );
        assert_eq!(last.right(), NodeSet::single(6));
    }

    #[test]
    fn inner_star_derives_simple_star_edges() {
        let tree = star_with_antijoins(6, 0, 3);
        let q = derive_query(&tree, ConflictEncoding::Hyperedges).unwrap();
        assert!(!q.graph.has_complex_edges());
    }

    #[test]
    fn cycle_workload_structure() {
        let tree = cycle_with_outer_joins(8, 4, 11);
        assert!(tree.validate().is_ok());
        let ops = tree.operators_postorder();
        assert_eq!(ops.len(), 7);
        assert!(ops[..3].iter().all(|(op, ..)| *op == JoinOp::Inner));
        assert!(ops[3..].iter().all(|(op, ..)| *op == JoinOp::LeftOuter));
        // The topmost predicate closes the cycle.
        let (_, top_pred, _, _) = ops.last().unwrap();
        assert!(top_pred.references.contains(0));
        assert!(top_pred.references.contains(7));
    }

    #[test]
    fn cycle_workload_is_deterministic_per_seed() {
        let a = cycle_with_outer_joins(10, 5, 42);
        let b = cycle_with_outer_joins(10, 5, 42);
        assert_eq!(a, b);
        let c = cycle_with_outer_joins(10, 5, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn derived_cycle_query_is_optimizable_shape() {
        for outer in [0, 3, 7] {
            let tree = cycle_with_outer_joins(8, outer, 5);
            let q = derive_query(&tree, ConflictEncoding::Hyperedges).unwrap();
            assert_eq!(q.graph.node_count(), 8);
            assert_eq!(q.graph.edge_count(), 7);
        }
    }

    #[test]
    #[should_panic(expected = "more antijoins")]
    fn too_many_antijoins_panics() {
        let _ = star_with_antijoins(4, 5, 1);
    }
}
