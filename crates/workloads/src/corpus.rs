//! The embedded `.jg` workload corpus: JOB-style IMDB join graphs and TPC-DS-flavored
//! snowflakes, shipped inside the binary via `include_str!`.
//!
//! The paper's claim is that DPhyp wins on the *non-chain* query graphs real workloads
//! produce. The synthetic families in this crate approximate those shapes parametrically;
//! this module complements them with a corpus of thirty-six *described* queries in the
//! [`qo_ingest`] `.jg` language — stars and snowflakes over a fact table (5–72 relations,
//! including one query wide enough for the two-word node-set tier), complex-predicate
//! hyperedges, non-inner joins, a lateral table function and per-query planner options — each
//! planned end to end through the adaptive driver:
//!
//! ```
//! use qo_workloads::corpus::{corpus, corpus_query};
//!
//! assert_eq!(corpus().len(), 36);
//! let q = corpus_query("job_01a").unwrap();
//! let result = q.plan().unwrap();
//! assert_eq!(result.plan.scan_count(), q.relation_count());
//! ```
//!
//! The raw sources are available too ([`CORPUS`]), so tests can exercise the parser against
//! the exact bytes that ship.

use qo_ingest::parse_queries;
pub use qo_ingest::IngestQuery;

/// One embedded `.jg` file: its stem name and its full source text.
#[derive(Clone, Copy, Debug)]
pub struct CorpusEntry {
    /// File stem, equal to the name of the single query the file declares.
    pub name: &'static str,
    /// The `.jg` source text.
    pub source: &'static str,
}

macro_rules! corpus_entries {
    ($($name:literal),* $(,)?) => {
        &[$(CorpusEntry {
            name: $name,
            source: include_str!(concat!("../corpus/", $name, ".jg")),
        }),*]
    };
}

/// Every embedded corpus file, in lexicographic order. JOB-style queries carry the `job_`
/// prefix (including the two alias-heavy link queries and the 28-relation synthetic
/// snowflake); TPC-DS-flavored ones carry `dsb_`.
pub const CORPUS: &[CorpusEntry] = corpus_entries![
    "dsb_cross_channel",
    "dsb_grand_25",
    "dsb_inventory",
    "dsb_snow_34",
    "dsb_ss_snowflake",
    "dsb_store_returns",
    "dsb_wide_72",
    "job_01a",
    "job_02a",
    "job_03a",
    "job_04a",
    "job_05c",
    "job_06a",
    "job_07a",
    "job_08a",
    "job_10a",
    "job_11a",
    "job_12a",
    "job_13a",
    "job_14a",
    "job_15b",
    "job_16a",
    "job_17a",
    "job_18a",
    "job_19a",
    "job_20a",
    "job_21a",
    "job_22a",
    "job_23a",
    "job_24a",
    "job_25c",
    "job_26a",
    "job_28a",
    "job_29a",
    "job_33a",
    "job_syn_28",
];

/// Parses the whole embedded corpus into lowered queries, in [`CORPUS`] order.
///
/// # Panics
/// Panics with a rendered caret diagnostic if an embedded file fails to parse — the corpus
/// ships inside the crate and is validated by its tests, so a failure here is a build bug,
/// not an input error.
pub fn corpus() -> Vec<IngestQuery> {
    CORPUS
        .iter()
        .flat_map(|e| {
            parse_queries(e.source).unwrap_or_else(|err| {
                panic!(
                    "embedded corpus file {}.jg is invalid:\n{}",
                    e.name,
                    err.render(e.source)
                )
            })
        })
        .collect()
}

/// Parses one corpus query by name (`None` if no such entry).
pub fn corpus_query(name: &str) -> Option<IngestQuery> {
    let entry = CORPUS.iter().find(|e| e.name == name)?;
    let queries = parse_queries(entry.source).unwrap_or_else(|err| {
        panic!(
            "embedded corpus file {}.jg is invalid:\n{}",
            entry.name,
            err.render(entry.source)
        )
    });
    queries.into_iter().find(|q| q.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_entry_parses_and_matches_its_file_name() {
        for e in CORPUS {
            let queries = parse_queries(e.source)
                .unwrap_or_else(|err| panic!("{}.jg:\n{}", e.name, err.render(e.source)));
            assert_eq!(queries.len(), 1, "{}.jg declares exactly one query", e.name);
            assert_eq!(queries[0].name, e.name, "query name == file stem");
        }
    }

    #[test]
    fn corpus_spans_the_advertised_size_range() {
        let queries = corpus();
        assert_eq!(queries.len(), 36);
        let sizes: Vec<usize> = queries.iter().map(|q| q.relation_count()).collect();
        assert_eq!(*sizes.iter().min().unwrap(), 5, "smallest corpus query");
        assert_eq!(*sizes.iter().max().unwrap(), 72, "largest corpus query");
        // One query is wide enough for the two-word (W = 2) node-set tier…
        assert!(
            queries.iter().any(|q| q.relation_count() > 64),
            "the corpus must exercise the width-2 tier"
        );
        // …and there is a ≥32-relation TPC-DS-flavored snowflake below it.
        assert!(
            queries
                .iter()
                .any(|q| q.name.starts_with("dsb_") && (32..=64).contains(&q.relation_count())),
            "a ≥32-relation dsb snowflake is part of the corpus"
        );
        // Both workload flavors are represented.
        assert!(queries.iter().any(|q| q.name.starts_with("job_")));
        assert!(queries.iter().any(|q| q.name.starts_with("dsb_")));
    }

    #[test]
    fn corpus_exercises_the_language_beyond_simple_edges() {
        let queries = corpus();
        let has = |f: &dyn Fn(&IngestQuery) -> bool| queries.iter().any(f);
        assert!(
            has(&|q| q.spec.edges().any(|e| e.left().len() + e.right().len() > 2)),
            "some query carries a complex-predicate hyperedge"
        );
        assert!(
            has(&|q| q.spec.edges().any(|e| !e.op().is_inner())),
            "some query carries a non-inner join"
        );
        assert!(
            has(&|q| (0..q.relation_count()).any(|r| !q.spec.lateral_refs(r).is_empty())),
            "some query carries a lateral table function"
        );
        assert!(
            has(&|q| q.options.ccp_budget.is_some()),
            "some query pins a ccp budget"
        );
        assert!(
            has(&|q| q.options.time_budget.is_some()),
            "some query pins a wall-clock budget"
        );
        assert!(
            has(&|q| q.options.cost_model.is_some()),
            "some query picks a cost model"
        );
        assert!(
            has(&|q| q.options.idp_strategy.is_some()),
            "some query picks an IDP block-selection strategy"
        );
        assert!(
            has(&|q| q.row_overrides.iter().any(|r| r.is_some())),
            "some query pins a synthetic table size (`rows=`) for the feedback loop"
        );
    }

    #[test]
    fn corpus_query_finds_by_name() {
        let q = corpus_query("dsb_inventory").unwrap();
        assert_eq!(q.relation_count(), 6);
        assert!(corpus_query("job_99z").is_none());
    }
}
