//! The >64-relation workload tier: 96- and 128-relation chain, star and cycle families over
//! two-word node sets ([`Workload128`]).
//!
//! These are the first workloads that exercise the `W = 2` instantiation of the whole planner
//! stack (masks, subset walks, the DP-table slot map, the enumerators). The families mirror the
//! single-word generators exactly — same topology, same seeded statistics — just beyond the
//! 64-relation cap of the single-word [`qo_bitset::NodeSet64`].
//!
//! A note on feasibility: the chain and cycle families are fully plannable by the DP algorithms
//! at these sizes (a 96-relation chain has `(96³ − 96)/6 ≈ 147k` csg-cmp-pairs, a 96-cycle
//! ≈ 434k). The star families at 96+ relations are *structurally* out of reach of any exact DP
//! — a star with `n` relations has `(n−1)·2^(n−2)` csg-cmp-pairs, ≈ 10^30 at `n = 96` — the
//! same wall the paper hits at 20 relations, just further out. That makes the wide stars the
//! motivating workload of the adaptive driver (`dphyp::AdaptiveOptimizer`), which detects the
//! blow-up through its ccp budget and degrades to IDP/greedy automatically; see the
//! [`huge`](crate::huge) spec families that feed it.

use crate::graphs::{chain_query_w, cycle_query_w, star_query_w, Workload128};

/// The canonical sizes of the wide tier.
pub const WIDE_SIZES: [usize; 2] = [96, 128];

/// A wide chain query (`65 ≤ n ≤ 128` relations).
pub fn wide_chain_query(n: usize, seed: u64) -> Workload128 {
    assert!(
        (65..=128).contains(&n),
        "wide chains cover 65..=128 relations, got {n}"
    );
    chain_query_w::<2>(n, seed)
}

/// A wide cycle query (`65 ≤ n ≤ 128` relations).
pub fn wide_cycle_query(n: usize, seed: u64) -> Workload128 {
    assert!(
        (65..=128).contains(&n),
        "wide cycles cover 65..=128 relations, got {n}"
    );
    cycle_query_w::<2>(n, seed)
}

/// A wide star query (`64 ≤ satellites ≤ 127`, i.e. 65–128 relations).
///
/// Out of reach of exact DP (see the module docs); plan it through the adaptive driver or a
/// greedy/IDP baseline directly.
pub fn wide_star_query(satellites: usize, seed: u64) -> Workload128 {
    assert!(
        (64..=127).contains(&satellites),
        "wide stars cover 64..=127 satellites, got {satellites}"
    );
    star_query_w::<2>(satellites, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qo_hypergraph::connectivity;

    #[test]
    fn wide_families_cover_96_and_128_relations() {
        for n in WIDE_SIZES {
            let chain = wide_chain_query(n, 3);
            assert_eq!(chain.relations(), n);
            assert_eq!(chain.graph.edge_count(), n - 1);
            let cycle = wide_cycle_query(n, 3);
            assert_eq!(cycle.relations(), n);
            assert_eq!(cycle.graph.edge_count(), n);
            let star = wide_star_query(n - 1, 3);
            assert_eq!(star.relations(), n);
            assert_eq!(star.graph.edge_count(), n - 1);
            for w in [&chain, &cycle, &star] {
                assert!(w.catalog.validate_for(&w.graph).is_ok(), "{}", w.name);
                assert_eq!(w.graph.all_nodes().len(), n);
            }
        }
    }

    #[test]
    fn wide_chains_are_connected_in_the_def3_sense() {
        // The memoized Def.-3 oracle is exponential in general but linear on chains' connected
        // prefixes; keep it to a modest prefix of the 96-chain.
        let w = wide_chain_query(96, 9);
        let prefix: qo_bitset::NodeSet128 = (60..70).collect();
        assert!(connectivity::is_connected(&w.graph, prefix));
        let gap: qo_bitset::NodeSet128 = [60, 62].into_iter().collect();
        assert!(!connectivity::is_connected(&w.graph, gap));
    }

    #[test]
    fn bounds_are_enforced() {
        assert!(std::panic::catch_unwind(|| wide_chain_query(64, 1)).is_err());
        assert!(std::panic::catch_unwind(|| wide_chain_query(129, 1)).is_err());
        assert!(std::panic::catch_unwind(|| wide_star_query(16, 1)).is_err());
    }
}
