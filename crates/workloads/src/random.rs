//! Random workload generators for property-based testing.

use qo_algebra::{OpTree, Predicate};
use qo_bitset::NodeSet;
use qo_catalog::Catalog;
use qo_hypergraph::{Hyperedge, Hypergraph};
use qo_plan::JoinOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random *connected* hypergraph over `n` relations: a random spanning tree of
/// simple edges, plus `extra_simple` additional simple edges and `extra_hyper` hyperedges with
/// hypernode sizes up to 3.
pub fn random_hypergraph(
    n: usize,
    extra_simple: usize,
    extra_hyper: usize,
    seed: u64,
) -> Hypergraph {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Hypergraph::builder(n);
    // Random spanning tree: connect node i to a random earlier node.
    for i in 1..n {
        let j = rng.random_range(0..i);
        b.add_simple_edge(j, i);
    }
    for _ in 0..extra_simple {
        let a = rng.random_range(0..n);
        let c = rng.random_range(0..n);
        if a != c {
            b.add_simple_edge(a, c);
        }
    }
    for _ in 0..extra_hyper {
        let left: NodeSet = (0..rng.random_range(1..=3usize))
            .map(|_| rng.random_range(0..n))
            .collect();
        let mut right: NodeSet = (0..rng.random_range(1..=3usize))
            .map(|_| rng.random_range(0..n))
            .collect();
        right -= left;
        if !left.is_empty() && !right.is_empty() {
            b.add_edge(Hyperedge::new(left, right));
        }
    }
    b.build()
}

/// Generates random statistics matching `graph`.
pub fn random_catalog(graph: &Hypergraph, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA076_1D64_78BD_642F);
    let mut b = Catalog::builder(graph.node_count());
    for r in 0..graph.node_count() {
        b.set_cardinality(r, rng.random_range(1.0..100_000.0f64).round());
    }
    for (e, _) in graph.edges() {
        b.set_selectivity(e, rng.random_range(0.0001..1.0f64));
    }
    b.build()
}

/// Generates a random left-deep operator tree over `n` relations with a mix of inner joins,
/// outer joins, semijoins and antijoins. Every predicate connects the newly added relation to a
/// random already-present relation, so the tree always validates.
pub fn random_left_deep_tree(n: usize, seed: u64) -> OpTree {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let ops = [
        JoinOp::Inner,
        JoinOp::Inner,
        JoinOp::Inner,
        JoinOp::LeftOuter,
        JoinOp::LeftSemi,
        JoinOp::LeftAnti,
    ];
    let mut tree = OpTree::relation(0, rng.random_range(10.0..10_000.0f64).round());
    for i in 1..n {
        let partner = rng.random_range(0..i);
        let op = ops[rng.random_range(0..ops.len())];
        let sel = rng.random_range(0.001..0.5);
        tree = OpTree::op(
            op,
            Predicate::between(partner, i, sel),
            tree,
            OpTree::relation(i, rng.random_range(10.0..10_000.0f64).round()),
        );
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use qo_algebra::{derive_query, ConflictEncoding};
    use qo_hypergraph::connectivity;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_random_hypergraphs_are_connected_and_valid(
            n in 2usize..10,
            extra in 0usize..5,
            hyper in 0usize..3,
            seed in any::<u64>(),
        ) {
            let g = random_hypergraph(n, extra, hyper, seed);
            prop_assert_eq!(g.node_count(), n);
            prop_assert!(connectivity::is_graph_connected(&g));
            let c = random_catalog(&g, seed);
            prop_assert!(c.validate_for(&g).is_ok());
        }

        #[test]
        fn prop_random_trees_validate_and_derive(n in 2usize..10, seed in any::<u64>()) {
            let tree = random_left_deep_tree(n, seed);
            prop_assert!(tree.validate().is_ok());
            let q = derive_query(&tree, ConflictEncoding::Hyperedges).unwrap();
            prop_assert_eq!(q.graph.node_count(), n);
            prop_assert_eq!(q.graph.edge_count(), n - 1);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_hypergraph(8, 3, 2, 7);
        let b = random_hypergraph(8, 3, 2, 7);
        assert_eq!(a.edge_count(), b.edge_count());
        let ta = random_left_deep_tree(8, 7);
        let tb = random_left_deep_tree(8, 7);
        assert_eq!(ta, tb);
    }
}
