//! Hypergraphs derived from cycle and star queries by adding one big hyperedge and successively
//! splitting it (Fig. 4 and Sec. 4 of the paper).
//!
//! The generator starts from the simple graph (cycle or star), adds one hyperedge whose two
//! hypernodes each contain half of the relations, and then applies `splits` split operations.
//! A split replaces the oldest splittable hyperedge `(u, v)` by two hyperedges obtained by
//! halving both hypernodes; after the maximal number of splits only simple edges remain.

use crate::graphs::{seeded_catalog, Workload};
use qo_bitset::NodeSet;
use qo_hypergraph::{Hyperedge, Hypergraph};
use std::collections::VecDeque;

/// The maximal number of split operations for an initial hyperedge whose hypernodes contain
/// `half` relations each (i.e. until all derived edges are simple).
///
/// Each split turns one edge with hypernode size `k` into two edges of size `k/2`; an edge of
/// size 1 cannot be split. For `half = 2^m` the total is `2^m - 1`.
pub fn max_splits(half: usize) -> usize {
    assert!(
        half.is_power_of_two(),
        "hypernode size must be a power of two"
    );
    half - 1
}

/// Splits the hyperedge `(u, v)` into two hyperedges by halving both hypernodes.
fn split_edge(edge: &Hyperedge) -> Option<(Hyperedge, Hyperedge)> {
    let u: Vec<_> = edge.left().iter().collect();
    let v: Vec<_> = edge.right().iter().collect();
    if u.len() < 2 || v.len() < 2 {
        return None;
    }
    let (u1, u2) = u.split_at(u.len() / 2);
    let (v1, v2) = v.split_at(v.len() / 2);
    let to_set = |s: &[usize]| s.iter().copied().collect::<NodeSet>();
    Some((
        Hyperedge::new(to_set(u1), to_set(v1)),
        Hyperedge::new(to_set(u2), to_set(v2)),
    ))
}

fn apply_splits(initial: Hyperedge, splits: usize) -> Vec<Hyperedge> {
    let mut queue: VecDeque<Hyperedge> = VecDeque::from([initial]);
    let mut remaining = splits;
    while remaining > 0 {
        let Some(pos) = queue
            .iter()
            .position(|e| e.left().len() > 1 && e.right().len() > 1)
        else {
            panic!("more splits requested than the hyperedge supports");
        };
        let edge = queue.remove(pos).expect("position exists");
        let (a, b) = split_edge(&edge).expect("splittable by construction");
        queue.push_back(a);
        queue.push_back(b);
        remaining -= 1;
    }
    queue.into_iter().collect()
}

/// Cycle-based hypergraph (Fig. 4a): `n` relations in a cycle plus the hyperedge
/// `({R0..R{n/2-1}}, {R{n/2}..R{n-1}})`, split `splits` times.
///
/// `n` must be a power of two ≥ 4; `splits ≤ max_splits(n / 2)`.
pub fn cycle_with_hyperedge_splits(n: usize, splits: usize, seed: u64) -> Workload {
    assert!(
        n >= 4 && n.is_power_of_two(),
        "cycle workload needs a power-of-two size ≥ 4"
    );
    assert!(
        splits <= max_splits(n / 2),
        "too many splits for {n} relations"
    );
    let mut b = Hypergraph::builder(n);
    for i in 0..n {
        b.add_simple_edge(i, (i + 1) % n);
    }
    let initial = Hyperedge::new(NodeSet::range(0, n / 2), NodeSet::range(n / 2, n));
    for e in apply_splits(initial, splits) {
        b.add_edge(e);
    }
    let graph = b.build();
    let catalog = seeded_catalog(&graph, seed);
    Workload {
        name: format!("cycle-{n}-splits-{splits}"),
        graph,
        catalog,
    }
}

/// Star-based hypergraph (Fig. 4b): hub `R0`, `satellites` satellites, plus the hyperedge
/// `({R1..}, {..R{satellites}})` over the two satellite halves, split `splits` times.
///
/// `satellites` must be a power of two ≥ 2; `splits ≤ max_splits(satellites / 2)`.
pub fn star_with_hyperedge_splits(satellites: usize, splits: usize, seed: u64) -> Workload {
    assert!(
        satellites >= 2 && satellites.is_power_of_two(),
        "star workload needs a power-of-two satellite count ≥ 2"
    );
    assert!(
        splits <= max_splits(satellites / 2),
        "too many splits for {satellites} satellites"
    );
    let n = satellites + 1;
    let mut b = Hypergraph::builder(n);
    for i in 1..n {
        b.add_simple_edge(0, i);
    }
    let half = satellites / 2;
    let initial = Hyperedge::new(NodeSet::range(1, 1 + half), NodeSet::range(1 + half, n));
    for e in apply_splits(initial, splits) {
        b.add_edge(e);
    }
    let graph = b.build();
    let catalog = seeded_catalog(&graph, seed);
    Workload {
        name: format!("star-{satellites}-splits-{splits}"),
        graph,
        catalog,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qo_hypergraph::connectivity;

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    #[test]
    fn max_splits_values() {
        assert_eq!(max_splits(2), 1);
        assert_eq!(max_splits(4), 3);
        assert_eq!(max_splits(8), 7);
    }

    #[test]
    fn cycle8_g0_matches_figure_4a() {
        let w = cycle_with_hyperedge_splits(8, 0, 1);
        assert_eq!(w.graph.node_count(), 8);
        // 8 cycle edges + 1 hyperedge.
        assert_eq!(w.graph.edge_count(), 9);
        let hyper = w.graph.edge(8);
        assert_eq!(hyper.left(), ns(&[0, 1, 2, 3]));
        assert_eq!(hyper.right(), ns(&[4, 5, 6, 7]));
    }

    #[test]
    fn splitting_produces_one_more_edge_per_split() {
        for splits in 0..=3 {
            let w = cycle_with_hyperedge_splits(8, splits, 1);
            assert_eq!(w.graph.edge_count(), 8 + 1 + splits, "splits = {splits}");
            assert!(connectivity::is_graph_connected(&w.graph));
        }
        // After the maximal number of splits all derived edges are simple.
        let w = cycle_with_hyperedge_splits(8, 3, 1);
        assert!(!w.graph.has_complex_edges());
    }

    #[test]
    fn first_cycle_split_halves_both_hypernodes() {
        let w = cycle_with_hyperedge_splits(8, 1, 1);
        let derived: Vec<_> = w
            .graph
            .edges()
            .filter(|(id, _)| *id >= 8)
            .map(|(_, e)| (e.left(), e.right()))
            .collect();
        assert_eq!(derived.len(), 2);
        assert!(derived.contains(&(ns(&[0, 1]), ns(&[4, 5]))));
        assert!(derived.contains(&(ns(&[2, 3]), ns(&[6, 7]))));
    }

    #[test]
    fn star_splits_cover_the_paper_range() {
        // 8 satellites: splits 0..=3 (Fig. 6 left); 16 satellites: splits 0..=7 (Fig. 6 right).
        for splits in 0..=3 {
            let w = star_with_hyperedge_splits(8, splits, 2);
            assert_eq!(w.graph.node_count(), 9);
            assert_eq!(w.graph.edge_count(), 8 + 1 + splits);
            assert!(connectivity::is_graph_connected(&w.graph));
        }
        for splits in 0..=7 {
            let w = star_with_hyperedge_splits(16, splits, 2);
            assert_eq!(w.graph.node_count(), 17);
            assert_eq!(w.graph.edge_count(), 16 + 1 + splits);
        }
    }

    #[test]
    fn star_initial_hyperedge_spans_the_satellite_halves() {
        let w = star_with_hyperedge_splits(8, 0, 3);
        let hyper = w.graph.edge(8);
        assert_eq!(hyper.left(), ns(&[1, 2, 3, 4]));
        assert_eq!(hyper.right(), ns(&[5, 6, 7, 8]));
    }

    #[test]
    #[should_panic(expected = "too many splits")]
    fn too_many_splits_panics() {
        let _ = cycle_with_hyperedge_splits(8, 4, 1);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_panics() {
        let _ = cycle_with_hyperedge_splits(6, 0, 1);
    }
}
