//! The classic simple query-graph families: chain, cycle, star and clique.

use qo_catalog::Catalog;
use qo_hypergraph::Hypergraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named query-optimization workload: a hypergraph plus matching statistics.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Human-readable name, e.g. `"star-16"`.
    pub name: String,
    /// The query graph.
    pub graph: Hypergraph,
    /// Relation cardinalities and edge selectivities.
    pub catalog: Catalog,
}

impl Workload {
    /// Number of relations.
    pub fn relations(&self) -> usize {
        self.graph.node_count()
    }
}

/// Deterministic pseudo-random statistics for a graph: cardinalities in `[100, 100_000]`,
/// selectivities in `[0.001, 0.1]`.
pub(crate) fn seeded_catalog(graph: &Hypergraph, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1B5_4A32_D192_ED03);
    let mut b = Catalog::builder(graph.node_count());
    for r in 0..graph.node_count() {
        let card = 10f64.powf(rng.random_range(2.0..5.0));
        b.set_cardinality(r, card.round());
    }
    for (e, _) in graph.edges() {
        let sel = 10f64.powf(rng.random_range(-3.0..-1.0));
        b.set_selectivity(e, sel);
    }
    b.build()
}

/// Chain query: `R0 — R1 — … — R{n-1}`.
pub fn chain_query(n: usize, seed: u64) -> Workload {
    assert!(n >= 2, "a chain needs at least two relations");
    let mut b = Hypergraph::builder(n);
    for i in 0..n - 1 {
        b.add_simple_edge(i, i + 1);
    }
    let graph = b.build();
    let catalog = seeded_catalog(&graph, seed);
    Workload {
        name: format!("chain-{n}"),
        graph,
        catalog,
    }
}

/// Cycle query: a chain plus the closing edge `R{n-1} — R0`.
pub fn cycle_query(n: usize, seed: u64) -> Workload {
    assert!(n >= 3, "a cycle needs at least three relations");
    let mut b = Hypergraph::builder(n);
    for i in 0..n {
        b.add_simple_edge(i, (i + 1) % n);
    }
    let graph = b.build();
    let catalog = seeded_catalog(&graph, seed);
    Workload {
        name: format!("cycle-{n}"),
        graph,
        catalog,
    }
}

/// Star query: hub `R0` connected to `satellites` satellite relations `R1 .. R{satellites}`.
pub fn star_query(satellites: usize, seed: u64) -> Workload {
    assert!(satellites >= 1, "a star needs at least one satellite");
    let n = satellites + 1;
    let mut b = Hypergraph::builder(n);
    for i in 1..n {
        b.add_simple_edge(0, i);
    }
    let graph = b.build();
    let catalog = seeded_catalog(&graph, seed);
    Workload {
        name: format!("star-{n}"),
        graph,
        catalog,
    }
}

/// Clique query: every pair of relations is connected.
pub fn clique_query(n: usize, seed: u64) -> Workload {
    assert!(n >= 2, "a clique needs at least two relations");
    let mut b = Hypergraph::builder(n);
    for i in 0..n {
        for j in i + 1..n {
            b.add_simple_edge(i, j);
        }
    }
    let graph = b.build();
    let catalog = seeded_catalog(&graph, seed);
    Workload {
        name: format!("clique-{n}"),
        graph,
        catalog,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qo_hypergraph::connectivity;

    #[test]
    fn graph_shapes_have_expected_edge_counts() {
        assert_eq!(chain_query(5, 1).graph.edge_count(), 4);
        assert_eq!(cycle_query(5, 1).graph.edge_count(), 5);
        assert_eq!(star_query(5, 1).graph.edge_count(), 5);
        assert_eq!(clique_query(5, 1).graph.edge_count(), 10);
        assert_eq!(star_query(5, 1).relations(), 6);
    }

    #[test]
    fn all_families_are_connected_and_validated() {
        for w in [
            chain_query(6, 7),
            cycle_query(6, 7),
            star_query(6, 7),
            clique_query(6, 7),
        ] {
            assert!(connectivity::is_graph_connected(&w.graph), "{}", w.name);
            assert!(w.catalog.validate_for(&w.graph).is_ok(), "{}", w.name);
        }
    }

    #[test]
    fn same_seed_gives_identical_statistics() {
        let a = star_query(8, 42);
        let b = star_query(8, 42);
        for r in 0..a.relations() {
            assert_eq!(a.catalog.cardinality(r), b.catalog.cardinality(r));
        }
        let c = star_query(8, 43);
        let any_diff =
            (0..a.relations()).any(|r| a.catalog.cardinality(r) != c.catalog.cardinality(r));
        assert!(any_diff, "different seeds should give different statistics");
    }

    #[test]
    fn statistics_are_in_documented_ranges() {
        let w = clique_query(8, 99);
        for r in 0..8 {
            let c = w.catalog.cardinality(r);
            assert!((100.0..=100_000.0).contains(&c), "cardinality {c}");
        }
        for (e, _) in w.graph.edges() {
            let s = w.catalog.edge_annotation(e).selectivity;
            assert!((0.001..=0.1).contains(&s), "selectivity {s}");
        }
    }
}
