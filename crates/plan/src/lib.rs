//! Join operators, predicates and plan trees.
//!
//! The DPhyp paper considers the regular inner join plus the non-inner operators of Sec. 5.1:
//! left/full outer join, left semi- and antijoin, the nestjoin (binary grouping), and the
//! dependent ("apply") variants of all left-handed operators. This crate defines
//!
//! * [`JoinOp`]: the operator enumeration with its reorderability metadata (commutativity,
//!   left/right linearity per Def. 5, dependent counterparts per Sec. 5.6),
//! * [`PlanNode`]: bushy operator trees produced by the optimizers, annotated with the relation
//!   set, estimated cardinality, cost and the predicate (edge) ids applied at each join,
//! * [`PlanShape`] helpers and a pretty printer for plans.
//!
//! The crate deliberately knows nothing about hypergraphs or statistics; those live in
//! `qo-hypergraph` and `qo-catalog`.

mod operator;
mod tree;

pub use operator::JoinOp;
pub use tree::{PlanNode, PlanShape, PredicateId};

pub use qo_bitset::{NodeId, NodeSet};
