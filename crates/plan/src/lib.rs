//! Join operators, predicates and plan trees.
//!
//! The DPhyp paper considers the regular inner join plus the non-inner operators of Sec. 5.1:
//! left/full outer join, left semi- and antijoin, the nestjoin (binary grouping), and the
//! dependent ("apply") variants of all left-handed operators. This crate defines
//!
//! * [`JoinOp`]: the operator enumeration with its reorderability metadata (commutativity,
//!   left/right linearity per Def. 5, dependent counterparts per Sec. 5.6),
//! * [`PlanNode`]: bushy operator trees produced by the optimizers, annotated with the relation
//!   set, estimated cardinality, cost and the predicate (edge) ids applied at each join,
//! * [`PlanShape`] helpers and a pretty printer for plans.
//!
//! The crate deliberately knows nothing about hypergraphs or statistics; those live in
//! `qo-hypergraph` and `qo-catalog`. Plans are plain trees that every enumeration algorithm in
//! the workspace (exact, iterative and greedy alike) produces through the shared
//! reconstruction machinery, and that `qo-exec` can run over synthetic data:
//!
//! ```
//! use qo_plan::{JoinOp, PlanNode, PlanShape};
//!
//! // (R0 ⋈ R1) ⟕ R2, assembled the way the DP-table reconstruction does.
//! let base = PlanNode::join(
//!     JoinOp::Inner,
//!     PlanNode::scan(0, 1_000.0),
//!     PlanNode::scan(1, 50.0),
//!     vec![0],   // predicate (hyperedge) ids applied at this join
//!     500.0,     // estimated output cardinality
//!     500.0,     // cost
//! );
//! let plan = PlanNode::join(JoinOp::LeftOuter, base, PlanNode::scan(2, 10.0), vec![1], 500.0, 1_000.0);
//! assert_eq!(plan.scan_count(), 3);
//! assert_eq!(plan.shape(), PlanShape::LeftDeep);
//! assert_eq!(plan.operators(), vec![JoinOp::LeftOuter, JoinOp::Inner]); // pre-order
//! assert!(plan.pretty().contains("scan R2"));
//! ```

mod operator;
mod tree;

pub use operator::JoinOp;
pub use tree::{ExplainAnnotation, PlanNode, PlanShape, PredicateId};

pub use qo_bitset::{NodeId, NodeSet};
