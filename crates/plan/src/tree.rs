//! Plan trees produced by the join-ordering algorithms.

use crate::operator::JoinOp;
use qo_bitset::{NodeId, NodeSet};
use std::fmt;

/// Identifier of a join predicate. Predicate ids coincide with the hyperedge ids of the query
/// hypergraph the plan was built for.
pub type PredicateId = usize;

/// Execution feedback for one join node of a plan, consumed by
/// [`PlanNode::explain_annotated`] in post-order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExplainAnnotation {
    /// Rows the join actually produced when the plan was executed.
    pub actual: f64,
    /// q-error of the estimate: `max(est, actual) / min(est, actual)`, floored at 1.
    pub q_error: f64,
}

/// A bushy join plan.
///
/// Every node is annotated with the set of relations it produces, its estimated output
/// cardinality and its accumulated cost under the cost model that built it. Join nodes
/// additionally record the operator and the predicates (hyperedge ids) evaluated at that join —
/// the conjunction `⋀ P(u, v)` that `EmitCsgCmp` assembles.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanNode {
    /// A base-relation scan.
    Scan {
        /// The relation this scan produces.
        relation: NodeId,
        /// Estimated cardinality of the relation.
        cardinality: f64,
    },
    /// A binary join.
    Join {
        /// The join operator.
        op: JoinOp,
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Predicates (hyperedge ids) applied at this join.
        predicates: Vec<PredicateId>,
        /// Estimated output cardinality.
        cardinality: f64,
        /// Accumulated cost of the subtree under the cost model that produced the plan.
        cost: f64,
    },
}

impl PlanNode {
    /// Creates a scan node.
    pub fn scan(relation: NodeId, cardinality: f64) -> PlanNode {
        PlanNode::Scan {
            relation,
            cardinality,
        }
    }

    /// Creates a join node.
    pub fn join(
        op: JoinOp,
        left: PlanNode,
        right: PlanNode,
        predicates: Vec<PredicateId>,
        cardinality: f64,
        cost: f64,
    ) -> PlanNode {
        PlanNode::Join {
            op,
            left: Box::new(left),
            right: Box::new(right),
            predicates,
            cardinality,
            cost,
        }
    }

    /// The set of relations produced by this plan (single-word view, up to 64 relations).
    ///
    /// Plans over wider node sets must use [`PlanNode::relations_wide`] with a sufficient `W`;
    /// this method panics if the plan references a relation beyond node 63.
    pub fn relations(&self) -> NodeSet {
        self.relations_wide::<1>()
    }

    /// The set of relations produced by this plan, at an arbitrary mask width.
    ///
    /// The plan tree itself is width-agnostic (it stores plain relation ids), so the caller
    /// picks the width its query tier needs: `relations_wide::<2>()` covers 128 relations.
    ///
    /// # Panics
    /// Panics if a relation id does not fit the requested width.
    pub fn relations_wide<const W: usize>(&self) -> NodeSet<W> {
        match self {
            PlanNode::Scan { relation, .. } => NodeSet::single(*relation),
            PlanNode::Join { left, right, .. } => {
                left.relations_wide::<W>() | right.relations_wide::<W>()
            }
        }
    }

    /// Estimated output cardinality.
    pub fn cardinality(&self) -> f64 {
        match self {
            PlanNode::Scan { cardinality, .. } => *cardinality,
            PlanNode::Join { cardinality, .. } => *cardinality,
        }
    }

    /// Accumulated cost (scans are free, matching the C_out convention of the paper's
    /// experimental setting).
    pub fn cost(&self) -> f64 {
        match self {
            PlanNode::Scan { .. } => 0.0,
            PlanNode::Join { cost, .. } => *cost,
        }
    }

    /// Number of join operators in the plan.
    pub fn join_count(&self) -> usize {
        match self {
            PlanNode::Scan { .. } => 0,
            PlanNode::Join { left, right, .. } => 1 + left.join_count() + right.join_count(),
        }
    }

    /// Number of base-relation scans in the plan.
    pub fn scan_count(&self) -> usize {
        match self {
            PlanNode::Scan { .. } => 1,
            PlanNode::Join { left, right, .. } => left.scan_count() + right.scan_count(),
        }
    }

    /// A 64-bit structural digest of the join order: tree shape, operators, relation ids and
    /// predicate sets — deliberately ignoring the cardinality and cost annotations. Two plans
    /// with equal digests prescribe the identical execution, so re-costing a plan under new
    /// statistics preserves its digest; the serving layer's regret ledger uses it as plan
    /// identity when linking measured true costs back to served join orders.
    pub fn order_digest(&self) -> u64 {
        // FNV-1a folding over a pre-order walk, with distinct tags per node kind so that
        // tree shape (not just the leaf sequence) feeds the digest.
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn fold(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(PRIME)
        }
        fn walk(node: &PlanNode, mut h: u64) -> u64 {
            match node {
                PlanNode::Scan { relation, .. } => fold(fold(h, 1), *relation as u64),
                PlanNode::Join {
                    op,
                    left,
                    right,
                    predicates,
                    ..
                } => {
                    h = fold(fold(h, 2), *op as u64);
                    h = walk(left, h);
                    h = walk(right, h);
                    h = fold(h, predicates.len() as u64);
                    for &p in predicates {
                        h = fold(h, p as u64);
                    }
                    h
                }
            }
        }
        walk(self, 0xcbf2_9ce4_8422_2325)
    }

    /// Visits every node of the plan, parents before children.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a PlanNode)) {
        f(self);
        if let PlanNode::Join { left, right, .. } = self {
            left.visit(f);
            right.visit(f);
        }
    }

    /// All join operators appearing in the plan, in pre-order.
    pub fn operators(&self) -> Vec<JoinOp> {
        let mut ops = Vec::new();
        self.visit(&mut |n| {
            if let PlanNode::Join { op, .. } = n {
                ops.push(*op);
            }
        });
        ops
    }

    /// All predicate ids applied somewhere in the plan (sorted, deduplicated).
    pub fn applied_predicates(&self) -> Vec<PredicateId> {
        let mut preds = Vec::new();
        self.visit(&mut |n| {
            if let PlanNode::Join { predicates, .. } = n {
                preds.extend_from_slice(predicates);
            }
        });
        preds.sort_unstable();
        preds.dedup();
        preds
    }

    /// Classifies the shape of the plan.
    pub fn shape(&self) -> PlanShape {
        fn classify(node: &PlanNode) -> (bool, bool) {
            // returns (is_left_deep, is_right_deep)
            match node {
                PlanNode::Scan { .. } => (true, true),
                PlanNode::Join { left, right, .. } => {
                    let left_ok = classify(left).0 && matches!(**right, PlanNode::Scan { .. });
                    let right_ok = classify(right).1 && matches!(**left, PlanNode::Scan { .. });
                    (left_ok, right_ok)
                }
            }
        }
        let (l, r) = classify(self);
        match (l, r) {
            (true, true) => PlanShape::Linear, // at most one join
            (true, false) => PlanShape::LeftDeep,
            (false, true) => PlanShape::RightDeep,
            (false, false) => {
                // zigzag: every join has at least one scan child; otherwise bushy
                fn zigzag(node: &PlanNode) -> bool {
                    match node {
                        PlanNode::Scan { .. } => true,
                        PlanNode::Join { left, right, .. } => {
                            (matches!(**left, PlanNode::Scan { .. }) && zigzag(right))
                                || (matches!(**right, PlanNode::Scan { .. }) && zigzag(left))
                        }
                    }
                }
                if zigzag(self) {
                    PlanShape::ZigZag
                } else {
                    PlanShape::Bushy
                }
            }
        }
    }

    /// The sorted relation ids of this plan. Width-free (plain ids, no mask), so it works for
    /// plans of any query-size tier.
    pub fn relation_ids(&self) -> Vec<NodeId> {
        fn collect(node: &PlanNode, out: &mut Vec<NodeId>) {
            match node {
                PlanNode::Scan { relation, .. } => out.push(*relation),
                PlanNode::Join { left, right, .. } => {
                    collect(left, out);
                    collect(right, out);
                }
            }
        }
        let mut ids = Vec::new();
        collect(self, &mut ids);
        ids.sort_unstable();
        ids
    }

    /// Renders the plan as an EXPLAIN tree: one operator per line, each join annotated with
    /// its estimated output cardinality, cumulative cost and *cost contribution* (this
    /// join's share of the cumulative cost — `cost − left cost − right cost`).
    ///
    /// Shorthand for [`PlanNode::explain_annotated`] with no observations; supply per-join
    /// [`ExplainAnnotation`]s (e.g. from an executed `ObservedExecution`) to additionally
    /// print actual cardinalities and q-errors.
    pub fn explain(&self) -> String {
        self.explain_annotated(&[])
    }

    /// [`PlanNode::explain`] with execution feedback: `annotations` holds one entry per
    /// join node **in post-order** (left subtree, right subtree, then the join — the order
    /// `qo-exec`'s `ObservedExecution::joins` uses), and each annotated join line gains its
    /// actual cardinality and q-error. A short slice annotates the first joins in
    /// post-order and leaves the rest estimate-only, so a partially observed execution
    /// still explains.
    pub fn explain_annotated(&self, annotations: &[ExplainAnnotation]) -> String {
        // Width-free rendering, exactly like `pretty`: wide-tier plans must explain too.
        fn relation_set(node: &PlanNode) -> String {
            let ids: Vec<String> = node
                .relation_ids()
                .iter()
                .map(|r| format!("R{r}"))
                .collect();
            format!("{{{}}}", ids.join(", "))
        }
        fn rec(
            node: &PlanNode,
            depth: usize,
            annotations: &[ExplainAnnotation],
            next_join: &mut usize,
            out: &mut String,
        ) {
            let indent = "  ".repeat(depth);
            match node {
                PlanNode::Scan {
                    relation,
                    cardinality,
                } => {
                    out.push_str(&format!(
                        "{indent}scan R{relation} (est {cardinality:.0})\n"
                    ));
                }
                PlanNode::Join {
                    op,
                    left,
                    right,
                    predicates,
                    cardinality,
                    cost,
                } => {
                    // Render the subtrees into their own buffer first: the display stays
                    // preorder (parent above children) while the annotation cursor advances
                    // in post-order (both subtrees consume their join indices before this
                    // node claims the next one).
                    let mut children = String::new();
                    rec(left, depth + 1, annotations, next_join, &mut children);
                    rec(right, depth + 1, annotations, next_join, &mut children);
                    let annotation = annotations.get(*next_join);
                    *next_join += 1;
                    let contribution = cost - left.cost() - right.cost();
                    out.push_str(&format!(
                        "{indent}{} {} preds {:?} (est {:.1}, cost {:.1}, contrib {:.1})",
                        op.symbol(),
                        relation_set(node),
                        predicates,
                        cardinality,
                        cost,
                        contribution,
                    ));
                    if let Some(a) = annotation {
                        out.push_str(&format!(
                            " [actual {:.0}, q-error {:.2}]",
                            a.actual, a.q_error
                        ));
                    }
                    out.push('\n');
                    out.push_str(&children);
                }
            }
        }
        let mut out = String::new();
        let mut next_join = 0;
        rec(self, 0, annotations, &mut next_join, &mut out);
        out
    }

    /// Renders the plan as an indented tree, one operator per line.
    pub fn pretty(&self) -> String {
        // Width-free `{R0, R1, ..}` rendering of a join's relation set: plans from the wide
        // (>64-relation) tier must pretty-print too, so masks are avoided here.
        fn relation_set(node: &PlanNode) -> String {
            let ids: Vec<String> = node
                .relation_ids()
                .iter()
                .map(|r| format!("R{r}"))
                .collect();
            format!("{{{}}}", ids.join(", "))
        }
        fn rec(node: &PlanNode, depth: usize, out: &mut String) {
            let indent = "  ".repeat(depth);
            match node {
                PlanNode::Scan {
                    relation,
                    cardinality,
                } => {
                    out.push_str(&format!(
                        "{indent}scan R{relation} (card {cardinality:.0})\n"
                    ));
                }
                PlanNode::Join {
                    op,
                    left,
                    right,
                    predicates,
                    cardinality,
                    cost,
                } => {
                    out.push_str(&format!(
                        "{indent}{} {} preds {:?} (card {:.1}, cost {:.1})\n",
                        op.symbol(),
                        relation_set(node),
                        predicates,
                        cardinality,
                        cost
                    ));
                    rec(left, depth + 1, out);
                    rec(right, depth + 1, out);
                }
            }
        }
        let mut s = String::new();
        rec(self, 0, &mut s);
        s
    }

    /// Rebuilds the plan with every relation id and predicate id passed through the given
    /// mappings, preserving operators, cardinalities and costs.
    ///
    /// This is the bridge between id spaces: the plan-service subsystem optimizes queries in a
    /// *canonical* relabeling (so structurally equal queries share one cache entry) and uses
    /// this to translate the resulting plan back into the caller's original relation and edge
    /// ids. The mappings must be injective over the ids appearing in the plan; statistics are
    /// untouched because a relabeling does not change them.
    pub fn map_ids(
        &self,
        relation: &impl Fn(NodeId) -> NodeId,
        predicate: &impl Fn(PredicateId) -> PredicateId,
    ) -> PlanNode {
        match self {
            PlanNode::Scan {
                relation: r,
                cardinality,
            } => PlanNode::scan(relation(*r), *cardinality),
            PlanNode::Join {
                op,
                left,
                right,
                predicates,
                cardinality,
                cost,
            } => {
                let mut preds: Vec<PredicateId> =
                    predicates.iter().map(|&p| predicate(p)).collect();
                preds.sort_unstable();
                PlanNode::join(
                    *op,
                    left.map_ids(relation, predicate),
                    right.map_ids(relation, predicate),
                    preds,
                    *cardinality,
                    *cost,
                )
            }
        }
    }

    /// Renders the plan on a single line, e.g. `((R0 ⋈ R1) ⟕ R2)`.
    pub fn compact(&self) -> String {
        match self {
            PlanNode::Scan { relation, .. } => format!("R{relation}"),
            PlanNode::Join {
                op, left, right, ..
            } => format!("({} {} {})", left.compact(), op.symbol(), right.compact()),
        }
    }
}

impl fmt::Display for PlanNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.compact())
    }
}

/// The gross shape of a plan tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanShape {
    /// At most one join.
    Linear,
    /// Every right child is a base relation.
    LeftDeep,
    /// Every left child is a base relation.
    RightDeep,
    /// Every join has at least one base-relation child, but sides alternate.
    ZigZag,
    /// At least one join joins two composite inputs.
    Bushy,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(r: NodeId) -> PlanNode {
        PlanNode::scan(r, 100.0)
    }

    fn ijoin(l: PlanNode, r: PlanNode) -> PlanNode {
        let card = l.cardinality() * r.cardinality() * 0.01;
        let cost = card + l.cost() + r.cost();
        PlanNode::join(JoinOp::Inner, l, r, vec![], card, cost)
    }

    #[test]
    fn order_digest_tracks_structure_and_ignores_annotations() {
        let plan = ijoin(ijoin(scan(0), scan(1)), scan(2));
        // Re-annotating with different cardinalities/costs preserves the digest…
        let reannotated = PlanNode::join(
            JoinOp::Inner,
            PlanNode::join(
                JoinOp::Inner,
                PlanNode::scan(0, 7.0),
                PlanNode::scan(1, 8.0),
                vec![],
                9.0,
                9.0,
            ),
            PlanNode::scan(2, 10.0),
            vec![],
            11.0,
            20.0,
        );
        assert_eq!(plan.order_digest(), reannotated.order_digest());
        // …while any structural change — order, tree shape, operator, predicates — breaks it.
        let reordered = ijoin(ijoin(scan(1), scan(0)), scan(2));
        let reshaped = ijoin(scan(0), ijoin(scan(1), scan(2)));
        let other_op = PlanNode::join(
            JoinOp::LeftSemi,
            ijoin(scan(0), scan(1)),
            scan(2),
            vec![],
            1.0,
            1.0,
        );
        let with_pred = PlanNode::join(
            JoinOp::Inner,
            ijoin(scan(0), scan(1)),
            scan(2),
            vec![3],
            1.0,
            1.0,
        );
        for variant in [&reordered, &reshaped, &other_op, &with_pred] {
            assert_ne!(plan.order_digest(), variant.order_digest());
        }
    }

    #[test]
    fn scan_properties() {
        let s = scan(3);
        assert_eq!(s.relations(), NodeSet::single(3));
        assert_eq!(s.cardinality(), 100.0);
        assert_eq!(s.cost(), 0.0);
        assert_eq!(s.join_count(), 0);
        assert_eq!(s.scan_count(), 1);
        assert_eq!(s.shape(), PlanShape::Linear);
        assert_eq!(s.compact(), "R3");
    }

    #[test]
    fn join_aggregates_relations_and_counts() {
        let p = ijoin(ijoin(scan(0), scan(1)), scan(2));
        assert_eq!(p.relations(), NodeSet::from_iter([0, 1, 2]));
        assert_eq!(p.join_count(), 2);
        assert_eq!(p.scan_count(), 3);
        assert_eq!(p.operators(), vec![JoinOp::Inner, JoinOp::Inner]);
    }

    #[test]
    fn shapes_are_classified() {
        // left deep: ((0 ⋈ 1) ⋈ 2) ⋈ 3
        let ld = ijoin(ijoin(ijoin(scan(0), scan(1)), scan(2)), scan(3));
        assert_eq!(ld.shape(), PlanShape::LeftDeep);
        // right deep: 0 ⋈ (1 ⋈ (2 ⋈ 3))
        let rd = ijoin(scan(0), ijoin(scan(1), ijoin(scan(2), scan(3))));
        assert_eq!(rd.shape(), PlanShape::RightDeep);
        // zig-zag: (0 ⋈ (1 ⋈ 2)) ⋈ 3 — composite always paired with a scan, but sides mix
        let zz = ijoin(ijoin(scan(0), ijoin(scan(1), scan(2))), scan(3));
        assert_eq!(zz.shape(), PlanShape::ZigZag);
        // bushy: (0 ⋈ 1) ⋈ (2 ⋈ 3)
        let bushy = ijoin(ijoin(scan(0), scan(1)), ijoin(scan(2), scan(3)));
        assert_eq!(bushy.shape(), PlanShape::Bushy);
        // single join is linear
        assert_eq!(ijoin(scan(0), scan(1)).shape(), PlanShape::Linear);
    }

    #[test]
    fn explain_renders_contributions_and_postorder_annotations() {
        // ((0 ⋈ 1) ⋈ 2): post-order join indices are 0 for the inner join, 1 for the outer.
        let p = ijoin(ijoin(scan(0), scan(1)), scan(2));
        let plain = p.explain();
        let lines: Vec<&str> = plain.lines().collect();
        assert_eq!(lines.len(), 5, "one line per node:\n{plain}");
        assert!(lines[0].starts_with("⋈ {R0, R1, R2}"), "{plain}");
        // Outer join: cost 200, children cost 100 + 0 → contribution 100.
        assert!(lines[0].contains("cost 200.0, contrib 100.0"), "{plain}");
        assert!(lines[1].starts_with("  ⋈ {R0, R1}"), "{plain}");
        assert!(lines[1].contains("contrib 100.0"), "{plain}");
        assert!(lines[2].starts_with("    scan R0 (est 100)"), "{plain}");
        assert!(!plain.contains("actual"), "no annotations requested");

        // Annotating only the first post-order join (the inner one) leaves the root plain.
        let annotated = p.explain_annotated(&[ExplainAnnotation {
            actual: 50.0,
            q_error: 2.0,
        }]);
        let lines: Vec<&str> = annotated.lines().collect();
        assert!(
            lines[1].contains("[actual 50, q-error 2.00]"),
            "{annotated}"
        );
        assert!(!lines[0].contains("actual"), "{annotated}");
    }

    #[test]
    fn applied_predicates_are_sorted_and_deduped() {
        let inner = PlanNode::join(JoinOp::Inner, scan(0), scan(1), vec![3, 1], 10.0, 10.0);
        let outer = PlanNode::join(JoinOp::LeftOuter, inner, scan(2), vec![1, 0], 10.0, 20.0);
        assert_eq!(outer.applied_predicates(), vec![0, 1, 3]);
    }

    #[test]
    fn pretty_and_compact_render() {
        let p = PlanNode::join(
            JoinOp::LeftOuter,
            ijoin(scan(0), scan(1)),
            scan(2),
            vec![7],
            42.0,
            99.0,
        );
        let pretty = p.pretty();
        assert!(pretty.contains("⟕"));
        assert!(pretty.contains("{R0, R1, R2}"));
        assert!(pretty.contains("scan R2"));
        assert!(pretty.contains("preds [7]"));
        assert_eq!(p.compact(), "((R0 ⋈ R1) ⟕ R2)");
        assert_eq!(format!("{p}"), p.compact());
    }

    #[test]
    fn pretty_renders_plans_beyond_the_single_word_tier() {
        // Plans of the >64-relation tier store plain relation ids; every rendering path must be
        // width-free (a mask-based one would panic on ids >= 64).
        let p = ijoin(ijoin(scan(63), scan(64)), scan(100));
        assert_eq!(p.relation_ids(), vec![63, 64, 100]);
        let pretty = p.pretty();
        assert!(pretty.contains("{R63, R64, R100}"));
        assert!(pretty.contains("scan R100"));
        assert_eq!(p.compact(), "((R63 ⋈ R64) ⋈ R100)");
        assert_eq!(p.relations_wide::<2>().len(), 3);
    }

    #[test]
    fn visit_is_preorder() {
        let p = ijoin(scan(0), ijoin(scan(1), scan(2)));
        let mut sets = Vec::new();
        p.visit(&mut |n| sets.push(n.relations()));
        assert_eq!(sets[0], NodeSet::from_iter([0, 1, 2]));
        assert_eq!(sets[1], NodeSet::single(0));
        assert_eq!(sets[2], NodeSet::from_iter([1, 2]));
    }

    #[test]
    fn cost_accumulates() {
        let p = ijoin(ijoin(scan(0), scan(1)), scan(2));
        // inner: 100*100*0.01 = 100; outer: 100*100*0.01 = 100 + inner cost 100 = 200
        assert_eq!(p.cost(), 200.0);
        assert_eq!(p.cardinality(), 100.0);
    }
}
