//! The binary join operators handled by the optimizer (Sec. 5.1 of the paper).

use std::fmt;

/// A binary join operator.
///
/// Besides the fully reorderable inner join, the paper considers the following operators with
/// limited reorderability: full outer join, left outer join, left antijoin, left semijoin and
/// left nestjoin (binary grouping / MD-join), plus the *dependent* counterpart of every
/// left-handed operator — the d-join / cross apply, outer apply and so on — where the evaluation
/// of the right side depends on the current tuple of the left side.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum JoinOp {
    /// Inner join `B` — freely reorderable, commutative.
    Inner,
    /// Left outer join `P` (⟕).
    LeftOuter,
    /// Full outer join `M` (⟗) — commutative, but neither left- nor right-linear.
    FullOuter,
    /// Left semijoin `G` (⋉).
    LeftSemi,
    /// Left antijoin `I` (▷).
    LeftAnti,
    /// Left nestjoin `T` (binary grouping / MD-join).
    LeftNest,
    /// Dependent join `C` (d-join / cross apply).
    DepJoin,
    /// Dependent left outer join `Q` (outer apply).
    DepLeftOuter,
    /// Dependent left semijoin `H`.
    DepLeftSemi,
    /// Dependent left antijoin `J`.
    DepLeftAnti,
    /// Dependent left nestjoin `U`.
    DepLeftNest,
}

impl JoinOp {
    /// All operators, in a fixed order (useful for exhaustive tests over the conflict matrix).
    pub const ALL: [JoinOp; 11] = [
        JoinOp::Inner,
        JoinOp::LeftOuter,
        JoinOp::FullOuter,
        JoinOp::LeftSemi,
        JoinOp::LeftAnti,
        JoinOp::LeftNest,
        JoinOp::DepJoin,
        JoinOp::DepLeftOuter,
        JoinOp::DepLeftSemi,
        JoinOp::DepLeftAnti,
        JoinOp::DepLeftNest,
    ];

    /// The non-dependent operators (those that may appear in the user's query before dependent
    /// rewriting).
    pub const REGULAR: [JoinOp; 6] = [
        JoinOp::Inner,
        JoinOp::LeftOuter,
        JoinOp::FullOuter,
        JoinOp::LeftSemi,
        JoinOp::LeftAnti,
        JoinOp::LeftNest,
    ];

    /// Is this the plain inner join?
    #[inline]
    pub fn is_inner(self) -> bool {
        matches!(self, JoinOp::Inner | JoinOp::DepJoin)
    }

    /// Is the operator commutative? Only the (inner) join and the full outer join are
    /// (Sec. 5.4).
    #[inline]
    pub fn is_commutative(self) -> bool {
        matches!(self, JoinOp::Inner | JoinOp::FullOuter)
    }

    /// Is the operator a dependent ("apply") operator (Sec. 5.6)?
    #[inline]
    pub fn is_dependent(self) -> bool {
        matches!(
            self,
            JoinOp::DepJoin
                | JoinOp::DepLeftOuter
                | JoinOp::DepLeftSemi
                | JoinOp::DepLeftAnti
                | JoinOp::DepLeftNest
        )
    }

    /// Left linearity in the sense of Def. 5. All operators in `LOP` are left-linear; the inner
    /// join is both left- and right-linear; the full outer join is neither.
    #[inline]
    pub fn is_left_linear(self) -> bool {
        !matches!(self, JoinOp::FullOuter)
    }

    /// Right linearity in the sense of Def. 5 (only the inner join / d-join).
    #[inline]
    pub fn is_right_linear(self) -> bool {
        self.is_inner()
    }

    /// Does the operator preserve every left-side tuple at least once (used by cardinality
    /// estimation)?
    #[inline]
    pub fn preserves_left(self) -> bool {
        matches!(
            self,
            JoinOp::LeftOuter
                | JoinOp::FullOuter
                | JoinOp::LeftNest
                | JoinOp::DepLeftOuter
                | JoinOp::DepLeftNest
        )
    }

    /// The dependent counterpart of a regular operator (Sec. 5.6). Dependent operators map to
    /// themselves.
    #[inline]
    pub fn dependent_counterpart(self) -> JoinOp {
        match self {
            JoinOp::Inner => JoinOp::DepJoin,
            JoinOp::LeftOuter => JoinOp::DepLeftOuter,
            JoinOp::LeftSemi => JoinOp::DepLeftSemi,
            JoinOp::LeftAnti => JoinOp::DepLeftAnti,
            JoinOp::LeftNest => JoinOp::DepLeftNest,
            // The paper defines no dependent full outer join; a full outer join whose right side
            // references the left is not valid SQL either. Keep it as-is.
            JoinOp::FullOuter => JoinOp::FullOuter,
            dep => dep,
        }
    }

    /// The regular counterpart of a dependent operator. Regular operators map to themselves.
    #[inline]
    pub fn regular_counterpart(self) -> JoinOp {
        match self {
            JoinOp::DepJoin => JoinOp::Inner,
            JoinOp::DepLeftOuter => JoinOp::LeftOuter,
            JoinOp::DepLeftSemi => JoinOp::LeftSemi,
            JoinOp::DepLeftAnti => JoinOp::LeftAnti,
            JoinOp::DepLeftNest => JoinOp::LeftNest,
            reg => reg,
        }
    }

    /// Operator conflict predicate `OC(∘1, ∘2)` from Sec. 5.5 / Appendix A.3 of the paper,
    /// where `∘2` is (a descendant of) an argument of `∘1` and each dependent operator stands
    /// for its regular counterpart:
    ///
    /// ```text
    /// OC(∘1, ∘2) =  (∘1 = B ∧ ∘2 = M)
    ///            ∨ (∘1 ≠ B ∧ ¬(∘1 = ∘2 = P) ∧ ¬(∘1 = M ∧ ∘2 ∈ {P, M}))
    /// ```
    ///
    /// If `OC` holds (together with the syntactic condition `LC`/`RC`), the two operators must
    /// not be reordered, which the TES computation records by merging their TESs.
    pub fn operator_conflict(op1: JoinOp, op2: JoinOp) -> bool {
        use JoinOp::{FullOuter, Inner, LeftOuter};
        let o1 = op1.regular_counterpart();
        let o2 = op2.regular_counterpart();
        if o1 == Inner {
            return o2 == FullOuter;
        }
        // o1 != Inner:
        let both_left_outer = o1 == LeftOuter && o2 == LeftOuter;
        let full_outer_pair = o1 == FullOuter && (o2 == LeftOuter || o2 == FullOuter);
        !(both_left_outer || full_outer_pair)
    }

    /// A short algebraic symbol for display purposes.
    pub fn symbol(self) -> &'static str {
        match self {
            JoinOp::Inner => "⋈",
            JoinOp::LeftOuter => "⟕",
            JoinOp::FullOuter => "⟗",
            JoinOp::LeftSemi => "⋉",
            JoinOp::LeftAnti => "▷",
            JoinOp::LeftNest => "Δ",
            JoinOp::DepJoin => "⋈d",
            JoinOp::DepLeftOuter => "⟕d",
            JoinOp::DepLeftSemi => "⋉d",
            JoinOp::DepLeftAnti => "▷d",
            JoinOp::DepLeftNest => "Δd",
        }
    }

    /// A plain-ASCII name.
    pub fn name(self) -> &'static str {
        match self {
            JoinOp::Inner => "inner join",
            JoinOp::LeftOuter => "left outer join",
            JoinOp::FullOuter => "full outer join",
            JoinOp::LeftSemi => "left semijoin",
            JoinOp::LeftAnti => "left antijoin",
            JoinOp::LeftNest => "nestjoin",
            JoinOp::DepJoin => "dependent join",
            JoinOp::DepLeftOuter => "dependent left outer join",
            JoinOp::DepLeftSemi => "dependent left semijoin",
            JoinOp::DepLeftAnti => "dependent left antijoin",
            JoinOp::DepLeftNest => "dependent nestjoin",
        }
    }
}

impl fmt::Display for JoinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commutativity_matches_paper() {
        // "Only the join and the full outer join are commutative; all other operators are not."
        for op in JoinOp::ALL {
            let expected = matches!(op, JoinOp::Inner | JoinOp::FullOuter);
            assert_eq!(op.is_commutative(), expected, "{op:?}");
        }
    }

    #[test]
    fn linearity_matches_observation_1() {
        // "All operators in LOP are left-linear, and B is left- and right-linear. The full outer
        //  join is neither left- nor right-linear."
        for op in JoinOp::ALL {
            match op {
                JoinOp::FullOuter => {
                    assert!(!op.is_left_linear());
                    assert!(!op.is_right_linear());
                }
                JoinOp::Inner | JoinOp::DepJoin => {
                    assert!(op.is_left_linear());
                    assert!(op.is_right_linear());
                }
                _ => {
                    assert!(op.is_left_linear(), "{op:?} must be left-linear");
                    assert!(!op.is_right_linear(), "{op:?} must not be right-linear");
                }
            }
        }
    }

    #[test]
    fn dependent_round_trip() {
        for op in JoinOp::REGULAR {
            let dep = op.dependent_counterpart();
            if op == JoinOp::FullOuter {
                assert_eq!(dep, JoinOp::FullOuter);
                continue;
            }
            assert!(dep.is_dependent(), "{op:?} → {dep:?}");
            assert_eq!(dep.regular_counterpart(), op);
        }
        for op in JoinOp::ALL.into_iter().filter(|o| o.is_dependent()) {
            assert_eq!(op.dependent_counterpart(), op);
            assert!(!op.regular_counterpart().is_dependent());
        }
    }

    #[test]
    fn operator_conflict_inner_only_with_full_outer() {
        use JoinOp::*;
        // ∘1 = B: conflict exactly when ∘2 = M.
        for op2 in JoinOp::REGULAR {
            let expected = op2 == FullOuter;
            assert_eq!(JoinOp::operator_conflict(Inner, op2), expected, "{op2:?}");
        }
    }

    #[test]
    fn operator_conflict_left_outer_pairs_are_free() {
        use JoinOp::*;
        // ¬(∘1 = ∘2 = P): two left outer joins reorder freely (if pST is strong, which the paper
        // assumes after simplification).
        assert!(!JoinOp::operator_conflict(LeftOuter, LeftOuter));
        // but a left outer join over anything else conflicts
        assert!(JoinOp::operator_conflict(LeftOuter, Inner));
        assert!(JoinOp::operator_conflict(LeftOuter, LeftAnti));
        assert!(JoinOp::operator_conflict(LeftOuter, FullOuter));
    }

    #[test]
    fn operator_conflict_full_outer_rules() {
        use JoinOp::*;
        // ¬(∘1 = M ∧ ∘2 ∈ {P, M})
        assert!(!JoinOp::operator_conflict(FullOuter, LeftOuter));
        assert!(!JoinOp::operator_conflict(FullOuter, FullOuter));
        assert!(JoinOp::operator_conflict(FullOuter, Inner));
        assert!(JoinOp::operator_conflict(FullOuter, LeftSemi));
    }

    #[test]
    fn operator_conflict_restrictive_ops_conflict_with_everything() {
        use JoinOp::*;
        for op1 in [LeftSemi, LeftAnti, LeftNest] {
            for op2 in JoinOp::REGULAR {
                assert!(
                    JoinOp::operator_conflict(op1, op2),
                    "{op1:?} vs {op2:?} should conflict"
                );
            }
        }
    }

    #[test]
    fn operator_conflict_treats_dependent_ops_like_regular_ones() {
        use JoinOp::*;
        // "each operator also stands for its dependent counterpart"
        assert_eq!(
            JoinOp::operator_conflict(DepJoin, FullOuter),
            JoinOp::operator_conflict(Inner, FullOuter)
        );
        assert_eq!(
            JoinOp::operator_conflict(DepLeftOuter, DepLeftOuter),
            JoinOp::operator_conflict(LeftOuter, LeftOuter)
        );
        assert_eq!(
            JoinOp::operator_conflict(DepLeftAnti, Inner),
            JoinOp::operator_conflict(LeftAnti, Inner)
        );
    }

    #[test]
    fn preserves_left_side() {
        assert!(JoinOp::LeftOuter.preserves_left());
        assert!(JoinOp::FullOuter.preserves_left());
        assert!(JoinOp::LeftNest.preserves_left());
        assert!(!JoinOp::Inner.preserves_left());
        assert!(!JoinOp::LeftSemi.preserves_left());
        assert!(!JoinOp::LeftAnti.preserves_left());
    }

    #[test]
    fn symbols_and_names_are_distinct() {
        use std::collections::BTreeSet;
        let symbols: BTreeSet<_> = JoinOp::ALL.iter().map(|o| o.symbol()).collect();
        assert_eq!(symbols.len(), JoinOp::ALL.len());
        let names: BTreeSet<_> = JoinOp::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(names.len(), JoinOp::ALL.len());
        assert_eq!(format!("{}", JoinOp::Inner), "⋈");
    }
}
