//! DPsize: size-driven dynamic programming (Fig. 1 of the paper), hypergraph-aware.

use crate::result::{BaselineError, BaselineResult};
use qo_bitset::NodeSet;
use qo_catalog::{Catalog, CostModel, DpTable, JoinCombiner, PruneCounters};
use qo_hypergraph::{EdgeId, Hypergraph};

/// Runs DPsize over the hypergraph.
///
/// Plans are generated in the order of increasing size: for every target size `s` and every
/// split `s = s1 + s2`, all pairs of memoized plan classes of sizes `s1` and `s2` are inspected.
/// A pair contributes a plan only if the two sets are disjoint and connected by a hyperedge —
/// the two tests marked `(*)` in the paper's pseudocode, which are exactly what makes DPsize
/// slow: the number of inspected pairs grows with the square of the table size regardless of the
/// graph structure.
///
/// Generic over the cost model so that concrete instantiations inline the cost function, the
/// same way the DPhyp handler does.
pub fn dpsize<M: CostModel<W> + ?Sized, const W: usize>(
    graph: &Hypergraph<W>,
    catalog: &Catalog<W>,
    cost_model: &M,
) -> Result<BaselineResult, BaselineError> {
    dpsize_bounded(graph, catalog, cost_model, f64::INFINITY).map(|(r, _)| r)
}

/// DPsize with a branch-and-bound upper `bound` — the cost of some known complete plan (or
/// `f64::INFINITY` to disable pruning, which makes this identical to [`dpsize`]).
///
/// Candidates whose accumulated cost strictly exceeds the bound are discarded instead of
/// memoized; a set all of whose candidates were discarded never enters the size lists, so no
/// later pair is built from it at all. Under a monotone, non-negative cost model
/// ([`CostModel::supports_pruning`]) the surviving optimum — plan, cost *and* join order — is
/// identical to the unpruned run; the savings appear directly in the returned
/// [`BaselineResult::pairs_tested`] / [`BaselineResult::cost_calls`] (so
/// [`PruneCounters::pruned_pairs`] stays `0` here, unlike the enumerators that must visit the
/// pair to discover a pruned input).
pub fn dpsize_bounded<M: CostModel<W> + ?Sized, const W: usize>(
    graph: &Hypergraph<W>,
    catalog: &Catalog<W>,
    cost_model: &M,
    bound: f64,
) -> Result<(BaselineResult, PruneCounters), BaselineError> {
    catalog
        .validate_for(graph)
        .map_err(BaselineError::InvalidCatalog)?;
    let n = graph.node_count();
    let combiner = JoinCombiner::new(graph, catalog, cost_model);
    let mut table = DpTable::new();
    // classes_by_size[s] lists the sets of size s present in the table.
    let mut classes_by_size: Vec<Vec<NodeSet<W>>> = vec![Vec::new(); n + 1];
    for v in 0..n {
        table.insert_leaf(v, catalog.cardinality(v));
        classes_by_size[1].push(NodeSet::single(v));
    }

    let mut pairs_tested = 0usize;
    let mut cost_calls = 0usize;
    let mut prune = PruneCounters::default();
    let mut edge_buf: Vec<EdgeId> = Vec::new();

    for size in 2..=n {
        let mut new_sets: Vec<NodeSet<W>> = Vec::new();
        for s1 in 1..size {
            let s2 = size - s1;
            if s1 > s2 {
                // Each unordered pair is handled once; the combiner considers both operand
                // orders internally (commutativity).
                continue;
            }
            // Iterate over index pairs; when both sides have equal size avoid (i, j)/(j, i)
            // duplicates.
            for (i, &left_set) in classes_by_size[s1].iter().enumerate() {
                let start = if s1 == s2 { i + 1 } else { 0 };
                for &right_set in classes_by_size[s2][start..].iter() {
                    pairs_tested += 1;
                    if !left_set.is_disjoint(right_set) {
                        continue; // test (*) 1: overlapping sets
                    }
                    if !graph.has_connecting_edge(left_set, right_set) {
                        continue; // test (*) 2: not connected
                    }
                    let a = table
                        .get(left_set)
                        .expect("listed class must exist")
                        .stats();
                    let b = table
                        .get(right_set)
                        .expect("listed class must exist")
                        .stats();
                    graph.connecting_edges_into(left_set, right_set, &mut edge_buf);
                    if let Some(candidate) = combiner.combine(&a, &b, &edge_buf) {
                        cost_calls += 1;
                        // Strictly over the bound: no completion of this sub-plan can beat the
                        // plan the bound came from (monotone model). Ties survive, keeping the
                        // winner identical to the unpruned run.
                        if candidate.cost > bound {
                            prune.pruned_classes += 1;
                            continue;
                        }
                        let set = candidate.set;
                        let was_new = !table.contains(set);
                        table.offer(candidate);
                        if was_new {
                            new_sets.push(set);
                        }
                    }
                }
            }
        }
        classes_by_size[size] = new_sets;
    }

    let all = graph.all_nodes();
    let Some(class) = table.get(all) else {
        return Err(BaselineError::NoCompletePlan);
    };
    let plan = table.reconstruct(all).expect("complete class reconstructs");
    Ok((
        BaselineResult {
            cost: class.cost,
            cardinality: class.cardinality,
            plan,
            cost_calls,
            pairs_tested,
            dp_entries: table.len(),
        },
        prune,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qo_catalog::CoutCost;

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    fn chain(n: usize, card: f64, sel: f64) -> (Hypergraph, Catalog) {
        let mut b = Hypergraph::builder(n);
        for i in 0..n - 1 {
            b.add_simple_edge(i, i + 1);
        }
        (b.build(), Catalog::uniform(n, card, n - 1, sel))
    }

    #[test]
    fn solves_a_chain() {
        let (g, c) = chain(5, 100.0, 0.1);
        let r = dpsize(&g, &c, &CoutCost).unwrap();
        assert_eq!(r.plan.relations(), g.all_nodes());
        assert_eq!(r.plan.join_count(), 4);
        // A chain of 5 relations has 20 csg-cmp-pairs; DPsize must have called the cost function
        // exactly once per canonical pair.
        assert_eq!(r.cost_calls, 20);
        assert!(r.pairs_tested >= r.cost_calls);
        assert_eq!(r.dp_entries, 5 + 10); // singletons + connected sub-chains
    }

    #[test]
    fn wasted_tests_exceed_useful_ones_on_larger_chains() {
        // The motivation for DPccp/DPhyp: DPsize inspects far more pairs than it keeps.
        let (g, c) = chain(10, 100.0, 0.1);
        let r = dpsize(&g, &c, &CoutCost).unwrap();
        assert!(
            r.pairs_tested > 3 * r.cost_calls,
            "expected most inspected pairs to fail ({} tested, {} kept)",
            r.pairs_tested,
            r.cost_calls
        );
    }

    #[test]
    fn handles_hyperedges() {
        // Fig. 2 graph: only the full halves can be joined across the hyperedge.
        let mut b = Hypergraph::builder(6);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(1, 2);
        b.add_simple_edge(3, 4);
        b.add_simple_edge(4, 5);
        b.add_hyperedge(ns(&[0, 1, 2]), ns(&[3, 4, 5]));
        let g = b.build();
        let c = Catalog::uniform(6, 10.0, 5, 0.5);
        let r = dpsize(&g, &c, &CoutCost).unwrap();
        assert_eq!(r.plan.relations(), g.all_nodes());
        assert_eq!(r.cost_calls, 9, "9 csg-cmp-pairs in the Fig. 2 hypergraph");
    }

    #[test]
    fn detects_disconnected_graphs() {
        let mut b = Hypergraph::<1>::builder(4);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(2, 3);
        let g = b.build();
        let c = Catalog::uniform(4, 10.0, 2, 0.5);
        assert!(matches!(
            dpsize(&g, &c, &CoutCost),
            Err(BaselineError::NoCompletePlan)
        ));
    }

    #[test]
    fn bounded_run_matches_the_unpruned_optimum() {
        let (g, c) = chain(8, 500.0, 0.01);
        let free = dpsize(&g, &c, &CoutCost).unwrap();
        // Seed the bound the way the adaptive driver does: from a heuristic complete plan.
        let seed = crate::goo(&g, &c, &CoutCost).unwrap().cost;
        let (pruned, counters) = dpsize_bounded(&g, &c, &CoutCost, seed).unwrap();
        assert_eq!(pruned.cost, free.cost, "bit-identical optimal cost");
        assert_eq!(pruned.plan, free.plan, "bit-identical join order");
        assert!(pruned.pairs_tested <= free.pairs_tested);
        assert!(pruned.dp_entries <= free.dp_entries);
        assert_eq!(counters.bound_updates, 0, "the bound stays static here");
        // The exact optimum itself as the bound is the tightest sound setting (ties survive).
        let (tight, _) = dpsize_bounded(&g, &c, &CoutCost, free.cost).unwrap();
        assert_eq!(tight.cost, free.cost);
        assert_eq!(tight.plan, free.plan);
        // An infinite bound degenerates to the plain algorithm, counter-free.
        let (infinite, c0) = dpsize_bounded(&g, &c, &CoutCost, f64::INFINITY).unwrap();
        assert_eq!(infinite, free);
        assert_eq!(c0, PruneCounters::default());
    }

    #[test]
    fn rejects_bad_catalog() {
        let (g, _) = chain(3, 10.0, 0.5);
        let bad = Catalog::uniform(7, 10.0, 2, 0.5);
        assert!(matches!(
            dpsize(&g, &bad, &CoutCost),
            Err(BaselineError::InvalidCatalog(_))
        ));
    }
}
