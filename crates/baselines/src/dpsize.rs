//! DPsize: size-driven dynamic programming (Fig. 1 of the paper), hypergraph-aware.

use crate::result::{BaselineError, BaselineResult};
use qo_bitset::NodeSet;
use qo_catalog::{Catalog, CostModel, DpTable, JoinCombiner};
use qo_hypergraph::{EdgeId, Hypergraph};

/// Runs DPsize over the hypergraph.
///
/// Plans are generated in the order of increasing size: for every target size `s` and every
/// split `s = s1 + s2`, all pairs of memoized plan classes of sizes `s1` and `s2` are inspected.
/// A pair contributes a plan only if the two sets are disjoint and connected by a hyperedge —
/// the two tests marked `(*)` in the paper's pseudocode, which are exactly what makes DPsize
/// slow: the number of inspected pairs grows with the square of the table size regardless of the
/// graph structure.
///
/// Generic over the cost model so that concrete instantiations inline the cost function, the
/// same way the DPhyp handler does.
pub fn dpsize<M: CostModel<W> + ?Sized, const W: usize>(
    graph: &Hypergraph<W>,
    catalog: &Catalog<W>,
    cost_model: &M,
) -> Result<BaselineResult, BaselineError> {
    catalog
        .validate_for(graph)
        .map_err(BaselineError::InvalidCatalog)?;
    let n = graph.node_count();
    let combiner = JoinCombiner::new(graph, catalog, cost_model);
    let mut table = DpTable::new();
    // classes_by_size[s] lists the sets of size s present in the table.
    let mut classes_by_size: Vec<Vec<NodeSet<W>>> = vec![Vec::new(); n + 1];
    for v in 0..n {
        table.insert_leaf(v, catalog.cardinality(v));
        classes_by_size[1].push(NodeSet::single(v));
    }

    let mut pairs_tested = 0usize;
    let mut cost_calls = 0usize;
    let mut edge_buf: Vec<EdgeId> = Vec::new();

    for size in 2..=n {
        let mut new_sets: Vec<NodeSet<W>> = Vec::new();
        for s1 in 1..size {
            let s2 = size - s1;
            if s1 > s2 {
                // Each unordered pair is handled once; the combiner considers both operand
                // orders internally (commutativity).
                continue;
            }
            // Iterate over index pairs; when both sides have equal size avoid (i, j)/(j, i)
            // duplicates.
            for (i, &left_set) in classes_by_size[s1].iter().enumerate() {
                let start = if s1 == s2 { i + 1 } else { 0 };
                for &right_set in classes_by_size[s2][start..].iter() {
                    pairs_tested += 1;
                    if !left_set.is_disjoint(right_set) {
                        continue; // test (*) 1: overlapping sets
                    }
                    if !graph.has_connecting_edge(left_set, right_set) {
                        continue; // test (*) 2: not connected
                    }
                    let a = table
                        .get(left_set)
                        .expect("listed class must exist")
                        .stats();
                    let b = table
                        .get(right_set)
                        .expect("listed class must exist")
                        .stats();
                    graph.connecting_edges_into(left_set, right_set, &mut edge_buf);
                    if let Some(candidate) = combiner.combine(&a, &b, &edge_buf) {
                        cost_calls += 1;
                        let set = candidate.set;
                        let was_new = !table.contains(set);
                        table.offer(candidate);
                        if was_new {
                            new_sets.push(set);
                        }
                    }
                }
            }
        }
        classes_by_size[size] = new_sets;
    }

    let all = graph.all_nodes();
    let Some(class) = table.get(all) else {
        return Err(BaselineError::NoCompletePlan);
    };
    let plan = table.reconstruct(all).expect("complete class reconstructs");
    Ok(BaselineResult {
        cost: class.cost,
        cardinality: class.cardinality,
        plan,
        cost_calls,
        pairs_tested,
        dp_entries: table.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qo_catalog::CoutCost;

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    fn chain(n: usize, card: f64, sel: f64) -> (Hypergraph, Catalog) {
        let mut b = Hypergraph::builder(n);
        for i in 0..n - 1 {
            b.add_simple_edge(i, i + 1);
        }
        (b.build(), Catalog::uniform(n, card, n - 1, sel))
    }

    #[test]
    fn solves_a_chain() {
        let (g, c) = chain(5, 100.0, 0.1);
        let r = dpsize(&g, &c, &CoutCost).unwrap();
        assert_eq!(r.plan.relations(), g.all_nodes());
        assert_eq!(r.plan.join_count(), 4);
        // A chain of 5 relations has 20 csg-cmp-pairs; DPsize must have called the cost function
        // exactly once per canonical pair.
        assert_eq!(r.cost_calls, 20);
        assert!(r.pairs_tested >= r.cost_calls);
        assert_eq!(r.dp_entries, 5 + 10); // singletons + connected sub-chains
    }

    #[test]
    fn wasted_tests_exceed_useful_ones_on_larger_chains() {
        // The motivation for DPccp/DPhyp: DPsize inspects far more pairs than it keeps.
        let (g, c) = chain(10, 100.0, 0.1);
        let r = dpsize(&g, &c, &CoutCost).unwrap();
        assert!(
            r.pairs_tested > 3 * r.cost_calls,
            "expected most inspected pairs to fail ({} tested, {} kept)",
            r.pairs_tested,
            r.cost_calls
        );
    }

    #[test]
    fn handles_hyperedges() {
        // Fig. 2 graph: only the full halves can be joined across the hyperedge.
        let mut b = Hypergraph::builder(6);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(1, 2);
        b.add_simple_edge(3, 4);
        b.add_simple_edge(4, 5);
        b.add_hyperedge(ns(&[0, 1, 2]), ns(&[3, 4, 5]));
        let g = b.build();
        let c = Catalog::uniform(6, 10.0, 5, 0.5);
        let r = dpsize(&g, &c, &CoutCost).unwrap();
        assert_eq!(r.plan.relations(), g.all_nodes());
        assert_eq!(r.cost_calls, 9, "9 csg-cmp-pairs in the Fig. 2 hypergraph");
    }

    #[test]
    fn detects_disconnected_graphs() {
        let mut b = Hypergraph::<1>::builder(4);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(2, 3);
        let g = b.build();
        let c = Catalog::uniform(4, 10.0, 2, 0.5);
        assert!(matches!(
            dpsize(&g, &c, &CoutCost),
            Err(BaselineError::NoCompletePlan)
        ));
    }

    #[test]
    fn rejects_bad_catalog() {
        let (g, _) = chain(3, 10.0, 0.5);
        let bad = Catalog::uniform(7, 10.0, 2, 0.5);
        assert!(matches!(
            dpsize(&g, &bad, &CoutCost),
            Err(BaselineError::InvalidCatalog(_))
        ));
    }
}
