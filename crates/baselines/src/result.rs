//! Common result/error types for the baseline enumerators.

use qo_plan::PlanNode;
use std::fmt;

/// Result of a baseline enumeration run.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineResult {
    /// The best plan found.
    pub plan: PlanNode,
    /// Its cost under the shared cost model.
    pub cost: f64,
    /// Its estimated output cardinality.
    pub cardinality: f64,
    /// Number of candidate pairs for which the algorithm invoked the cost function (i.e. both
    /// inputs existed and were connected).
    pub cost_calls: usize,
    /// Number of candidate pairs *inspected*, including the ones that failed the disjointness
    /// or connectivity tests. The gap between `pairs_tested` and `cost_calls` is exactly the
    /// wasted work the paper attributes to DPsize/DPsub.
    pub pairs_tested: usize,
    /// Number of DP-table entries (connected subgraphs memoized). Greedy algorithms report the
    /// number of intermediate classes they materialize instead.
    pub dp_entries: usize,
}

/// Errors shared by the baseline enumerators.
#[derive(Clone, Debug, PartialEq)]
pub enum BaselineError {
    /// The catalog does not match the hypergraph.
    InvalidCatalog(String),
    /// No cross-product-free plan covering every relation exists.
    NoCompletePlan,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::InvalidCatalog(m) => write!(f, "invalid catalog: {m}"),
            BaselineError::NoCompletePlan => {
                write!(f, "no cross-product-free plan covers all relations")
            }
        }
    }
}

impl std::error::Error for BaselineError {}
