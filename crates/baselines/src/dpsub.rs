//! DPsub: subset-driven dynamic programming, hypergraph-aware (Sec. 4.1 of the paper).

use crate::result::{BaselineError, BaselineResult};
use qo_catalog::{Catalog, CostModel, DpTable, JoinCombiner, NodeSetSet, PruneCounters};
use qo_hypergraph::{EdgeId, Hypergraph};

/// Runs DPsub over the hypergraph.
///
/// Every subset `S` of the relations is visited in increasing mask order (so all subsets of `S`
/// are visited before `S`); for each, every split `S = S1 ∪ S2` with `min(S) ∈ S1` is tested.
/// The tests — do plans for both halves exist, and are the halves connected by a hyperedge —
/// fail for the vast majority of the `2^|S|` splits on sparse query graphs, which is why DPsub
/// loses against DPhyp everywhere and against DPsize on large low-density graphs (cycles).
pub fn dpsub<M: CostModel<W> + ?Sized, const W: usize>(
    graph: &Hypergraph<W>,
    catalog: &Catalog<W>,
    cost_model: &M,
) -> Result<BaselineResult, BaselineError> {
    dpsub_bounded(graph, catalog, cost_model, f64::INFINITY).map(|(r, _)| r)
}

/// DPsub with a branch-and-bound upper `bound` — the cost of some known complete plan (or
/// `f64::INFINITY` to disable pruning, which makes this identical to [`dpsub`]).
///
/// Candidates strictly over the bound are discarded instead of memoized
/// ([`PruneCounters::pruned_classes`]); splits one of whose halves only ever produced discarded
/// candidates skip their cost evaluation entirely ([`PruneCounters::pruned_pairs`]). Under a
/// monotone, non-negative cost model ([`CostModel::supports_pruning`]) the optimum — plan, cost
/// *and* join order — is identical to the unpruned run: every subset's candidates are all
/// offered before the subset is ever used as an input (increasing mask order), and removing
/// only strictly-over-bound candidates never changes a class's first-arriving minimum when that
/// minimum is within the bound, which it is for every class on the optimal plan's path.
pub fn dpsub_bounded<M: CostModel<W> + ?Sized, const W: usize>(
    graph: &Hypergraph<W>,
    catalog: &Catalog<W>,
    cost_model: &M,
    bound: f64,
) -> Result<(BaselineResult, PruneCounters), BaselineError> {
    catalog
        .validate_for(graph)
        .map_err(BaselineError::InvalidCatalog)?;
    let n = graph.node_count();
    let combiner = JoinCombiner::new(graph, catalog, cost_model);
    let mut table = DpTable::new();
    for v in 0..n {
        table.insert_leaf(v, catalog.cardinality(v));
    }

    let mut pairs_tested = 0usize;
    let mut cost_calls = 0usize;
    let mut prune = PruneCounters::default();
    // Sets every candidate of which was over the bound; their absence from the table is a
    // pruning effect, not a connectivity miss, and is counted separately.
    let mut pruned_sets = NodeSetSet::new();
    let mut edge_buf: Vec<EdgeId> = Vec::new();
    let all = graph.all_nodes();

    for set in all.subsets() {
        if set.is_singleton() {
            continue;
        }
        // Split canonically: S1 always contains min(S), S2 the rest. Every unordered split is
        // inspected exactly once; the combiner handles commutativity internally.
        let min = set.min_singleton();
        let rest = set - min;
        for s2 in rest.subsets() {
            // When s2 == rest, S1 is the bare minimum element — still a valid split (S1 = {min}).
            let s1 = set - s2;
            debug_assert!(s1.is_superset_of(min));
            pairs_tested += 1;
            let (Some(a), Some(b)) = (table.get(s1), table.get(s2)) else {
                if pruned_sets.contains(s1) || pruned_sets.contains(s2) {
                    prune.pruned_pairs += 1;
                }
                continue;
            };
            if !graph.has_connecting_edge(s1, s2) {
                continue;
            }
            let (a, b) = (a.stats(), b.stats());
            graph.connecting_edges_into(s1, s2, &mut edge_buf);
            if let Some(candidate) = combiner.combine(&a, &b, &edge_buf) {
                cost_calls += 1;
                // Strictly over the bound: discard (ties survive, keeping the winner
                // identical to the unpruned run).
                if candidate.cost > bound {
                    prune.pruned_classes += 1;
                    if !table.contains(candidate.set) {
                        pruned_sets.insert(candidate.set);
                    }
                    continue;
                }
                table.offer(candidate);
            }
        }
    }

    let Some(class) = table.get(all) else {
        return Err(BaselineError::NoCompletePlan);
    };
    let plan = table.reconstruct(all).expect("complete class reconstructs");
    Ok((
        BaselineResult {
            cost: class.cost,
            cardinality: class.cardinality,
            plan,
            cost_calls,
            pairs_tested,
            dp_entries: table.len(),
        },
        prune,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpsize::dpsize;
    use qo_bitset::NodeSet;
    use qo_catalog::CoutCost;

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    fn star(satellites: usize, card: f64, sel: f64) -> (Hypergraph, Catalog) {
        let mut b = Hypergraph::builder(satellites + 1);
        for i in 1..=satellites {
            b.add_simple_edge(0, i);
        }
        (
            b.build(),
            Catalog::uniform(satellites + 1, card, satellites, sel),
        )
    }

    #[test]
    fn solves_a_star_and_counts_cost_calls() {
        let (g, c) = star(4, 100.0, 0.05);
        let r = dpsub(&g, &c, &CoutCost).unwrap();
        assert_eq!(r.plan.relations(), g.all_nodes());
        // Star with n = 5 relations: (n-1) * 2^(n-2) = 32 csg-cmp-pairs.
        assert_eq!(r.cost_calls, 32);
        // DPsub inspects every split of every subset: sum over subsets of 2^(|S|-1)-ish, far
        // more than the useful pairs.
        assert!(r.pairs_tested > r.cost_calls);
        assert_eq!(r.dp_entries, (1 << 4) + 4); // 2^(n-1) + n - 1 connected sets
    }

    #[test]
    fn agrees_with_dpsize_on_cost_and_cost_calls() {
        for (g, c) in [star(5, 250.0, 0.02), {
            let mut b = Hypergraph::builder(6);
            for i in 0..6 {
                b.add_simple_edge(i, (i + 1) % 6);
            }
            b.add_hyperedge(ns(&[0, 1, 2]), ns(&[3, 4, 5]));
            (b.build(), Catalog::uniform(6, 80.0, 7, 0.1))
        }] {
            let a = dpsub(&g, &c, &CoutCost).unwrap();
            let b = dpsize(&g, &c, &CoutCost).unwrap();
            assert!(
                (a.cost - b.cost).abs() < 1e-9 * a.cost.max(1.0),
                "optimal costs must agree"
            );
            assert_eq!(
                a.cost_calls, b.cost_calls,
                "both enumerate exactly the csg-cmp-pairs"
            );
            assert_eq!(a.dp_entries, b.dp_entries);
        }
    }

    #[test]
    fn detects_disconnected_graphs() {
        let mut b = Hypergraph::<1>::builder(3);
        b.add_simple_edge(0, 1);
        let g = b.build();
        let c = Catalog::uniform(3, 10.0, 1, 0.5);
        assert!(matches!(
            dpsub(&g, &c, &CoutCost),
            Err(BaselineError::NoCompletePlan)
        ));
    }

    #[test]
    fn bounded_run_matches_the_unpruned_optimum() {
        // A clique collapses hard under pruning: every size-k subset multiplies k(k-1)/2
        // selectivities, so most partial plans already exceed a heuristic full-plan cost.
        let mut b = Hypergraph::<1>::builder(8);
        for i in 0..8 {
            for j in (i + 1)..8 {
                b.add_simple_edge(i, j);
            }
        }
        let g = b.build();
        let c = Catalog::uniform(8, 1000.0, 28, 0.01);
        let free = dpsub(&g, &c, &CoutCost).unwrap();
        let seed = crate::goo(&g, &c, &CoutCost).unwrap().cost;
        let (pruned, counters) = dpsub_bounded(&g, &c, &CoutCost, seed).unwrap();
        assert_eq!(pruned.cost, free.cost, "bit-identical optimal cost");
        assert_eq!(pruned.plan, free.plan, "bit-identical join order");
        assert!(pruned.cost_calls <= free.cost_calls);
        assert!(pruned.dp_entries <= free.dp_entries);
        assert_eq!(counters.bound_updates, 0, "the bound stays static here");
        // An infinite bound degenerates to the plain algorithm, counter-free.
        let (infinite, c0) = dpsub_bounded(&g, &c, &CoutCost, f64::INFINITY).unwrap();
        assert_eq!(infinite, free);
        assert_eq!(c0, qo_catalog::PruneCounters::default());
    }

    #[test]
    fn hyperedge_only_connections_require_complete_hypernodes() {
        let mut b = Hypergraph::builder(4);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(2, 3);
        b.add_hyperedge(ns(&[0, 1]), ns(&[2, 3]));
        let g = b.build();
        let c = Catalog::uniform(4, 10.0, 3, 0.5);
        let r = dpsub(&g, &c, &CoutCost).unwrap();
        assert_eq!(r.plan.relations(), g.all_nodes());
        // {0,1}, {2,3} and the final pair: 1 + 1 + 1 = 3 cost calls.
        assert_eq!(r.cost_calls, 3);
    }
}
