//! DPsub: subset-driven dynamic programming, hypergraph-aware (Sec. 4.1 of the paper).

use crate::result::{BaselineError, BaselineResult};
use qo_catalog::{Catalog, CostModel, DpTable, JoinCombiner};
use qo_hypergraph::{EdgeId, Hypergraph};

/// Runs DPsub over the hypergraph.
///
/// Every subset `S` of the relations is visited in increasing mask order (so all subsets of `S`
/// are visited before `S`); for each, every split `S = S1 ∪ S2` with `min(S) ∈ S1` is tested.
/// The tests — do plans for both halves exist, and are the halves connected by a hyperedge —
/// fail for the vast majority of the `2^|S|` splits on sparse query graphs, which is why DPsub
/// loses against DPhyp everywhere and against DPsize on large low-density graphs (cycles).
pub fn dpsub<M: CostModel<W> + ?Sized, const W: usize>(
    graph: &Hypergraph<W>,
    catalog: &Catalog<W>,
    cost_model: &M,
) -> Result<BaselineResult, BaselineError> {
    catalog
        .validate_for(graph)
        .map_err(BaselineError::InvalidCatalog)?;
    let n = graph.node_count();
    let combiner = JoinCombiner::new(graph, catalog, cost_model);
    let mut table = DpTable::new();
    for v in 0..n {
        table.insert_leaf(v, catalog.cardinality(v));
    }

    let mut pairs_tested = 0usize;
    let mut cost_calls = 0usize;
    let mut edge_buf: Vec<EdgeId> = Vec::new();
    let all = graph.all_nodes();

    for set in all.subsets() {
        if set.is_singleton() {
            continue;
        }
        // Split canonically: S1 always contains min(S), S2 the rest. Every unordered split is
        // inspected exactly once; the combiner handles commutativity internally.
        let min = set.min_singleton();
        let rest = set - min;
        for s2 in rest.subsets() {
            // When s2 == rest, S1 is the bare minimum element — still a valid split (S1 = {min}).
            let s1 = set - s2;
            debug_assert!(s1.is_superset_of(min));
            pairs_tested += 1;
            let (Some(a), Some(b)) = (table.get(s1), table.get(s2)) else {
                continue;
            };
            if !graph.has_connecting_edge(s1, s2) {
                continue;
            }
            let (a, b) = (a.stats(), b.stats());
            graph.connecting_edges_into(s1, s2, &mut edge_buf);
            if let Some(candidate) = combiner.combine(&a, &b, &edge_buf) {
                cost_calls += 1;
                table.offer(candidate);
            }
        }
    }

    let Some(class) = table.get(all) else {
        return Err(BaselineError::NoCompletePlan);
    };
    let plan = table.reconstruct(all).expect("complete class reconstructs");
    Ok(BaselineResult {
        cost: class.cost,
        cardinality: class.cardinality,
        plan,
        cost_calls,
        pairs_tested,
        dp_entries: table.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpsize::dpsize;
    use qo_bitset::NodeSet;
    use qo_catalog::CoutCost;

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    fn star(satellites: usize, card: f64, sel: f64) -> (Hypergraph, Catalog) {
        let mut b = Hypergraph::builder(satellites + 1);
        for i in 1..=satellites {
            b.add_simple_edge(0, i);
        }
        (
            b.build(),
            Catalog::uniform(satellites + 1, card, satellites, sel),
        )
    }

    #[test]
    fn solves_a_star_and_counts_cost_calls() {
        let (g, c) = star(4, 100.0, 0.05);
        let r = dpsub(&g, &c, &CoutCost).unwrap();
        assert_eq!(r.plan.relations(), g.all_nodes());
        // Star with n = 5 relations: (n-1) * 2^(n-2) = 32 csg-cmp-pairs.
        assert_eq!(r.cost_calls, 32);
        // DPsub inspects every split of every subset: sum over subsets of 2^(|S|-1)-ish, far
        // more than the useful pairs.
        assert!(r.pairs_tested > r.cost_calls);
        assert_eq!(r.dp_entries, (1 << 4) + 4); // 2^(n-1) + n - 1 connected sets
    }

    #[test]
    fn agrees_with_dpsize_on_cost_and_cost_calls() {
        for (g, c) in [star(5, 250.0, 0.02), {
            let mut b = Hypergraph::builder(6);
            for i in 0..6 {
                b.add_simple_edge(i, (i + 1) % 6);
            }
            b.add_hyperedge(ns(&[0, 1, 2]), ns(&[3, 4, 5]));
            (b.build(), Catalog::uniform(6, 80.0, 7, 0.1))
        }] {
            let a = dpsub(&g, &c, &CoutCost).unwrap();
            let b = dpsize(&g, &c, &CoutCost).unwrap();
            assert!(
                (a.cost - b.cost).abs() < 1e-9 * a.cost.max(1.0),
                "optimal costs must agree"
            );
            assert_eq!(
                a.cost_calls, b.cost_calls,
                "both enumerate exactly the csg-cmp-pairs"
            );
            assert_eq!(a.dp_entries, b.dp_entries);
        }
    }

    #[test]
    fn detects_disconnected_graphs() {
        let mut b = Hypergraph::<1>::builder(3);
        b.add_simple_edge(0, 1);
        let g = b.build();
        let c = Catalog::uniform(3, 10.0, 1, 0.5);
        assert!(matches!(
            dpsub(&g, &c, &CoutCost),
            Err(BaselineError::NoCompletePlan)
        ));
    }

    #[test]
    fn hyperedge_only_connections_require_complete_hypernodes() {
        let mut b = Hypergraph::builder(4);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(2, 3);
        b.add_hyperedge(ns(&[0, 1]), ns(&[2, 3]));
        let g = b.build();
        let c = Catalog::uniform(4, 10.0, 3, 0.5);
        let r = dpsub(&g, &c, &CoutCost).unwrap();
        assert_eq!(r.plan.relations(), g.all_nodes());
        // {0,1}, {2,3} and the final pair: 1 + 1 + 1 = 3 cost calls.
        assert_eq!(r.cost_calls, 3);
    }
}
