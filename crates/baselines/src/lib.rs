//! Baseline join-enumeration algorithms the paper compares DPhyp against.
//!
//! * [`dpsize`]: the size-driven dynamic programming of Selinger-style optimizers (Fig. 1 of the
//!   paper), extended to hypergraphs by making the connectivity test hyperedge-aware — exactly
//!   as described in Sec. 4.1. Its weakness is that the two inner tests ("disjoint?" and
//!   "connected?") fail far more often than they succeed.
//! * [`dpsub`]: subset-driven dynamic programming; enumerates every subset of the relations in
//!   increasing (mask) order and every split of it, again with hyperedge-aware connectivity
//!   tests.
//! * [`goo`]: greedy operator ordering — not part of the paper's evaluation, but a useful
//!   sanity baseline that shows how far greedy plans are from the DP optimum.
//! * [`idp`]: iterative dynamic programming with bounded block size (IDP-k, after Kossmann &
//!   Stocker) — the middle ground between the exact algorithms and GOO, used by the adaptive
//!   optimization driver of the `dphyp` crate when a query's csg-cmp-pair count exceeds its
//!   budget.
//!
//! [`dpsize_bounded`] and [`dpsub_bounded`] are branch-and-bound variants of the two exact
//! baselines: given an upper bound (the cost of any known complete plan, e.g. a [`goo`] run),
//! they discard every candidate whose accumulated cost strictly exceeds it. Under the monotone,
//! non-negative cost models used throughout ([`qo_catalog::CostModel::supports_pruning`]) the
//! returned optimum — plan, cost and join order — is identical to the unpruned run, while the
//! suppressed classes shrink the search the later sizes/subsets have to grind through.
//!
//! [`dpsize_parallel`] and [`dpsub_parallel`] are level-parallel variants of the two exact
//! baselines: both algorithms build a class of `s` relations only from classes of strictly
//! fewer relations, so a barrier between size levels seals every input a level reads and the
//! per-level work fans out across `std::thread::scope` workers. A deterministic merge replays
//! the sequential inspection order, making plans, costs and all counters bit-identical to the
//! sequential runs at every thread count (see the [`parallel`]-module docs).
//!
//! DPccp (the paper's predecessor algorithm for simple graphs) is not implemented separately:
//! as the paper notes in Sec. 4.4, "DPhyp performs exactly like DPccp on regular graphs", so the
//! regular-graph experiments use DPhyp directly.
//!
//! All algorithms share the plan-construction machinery of `qo-catalog` (the same
//! [`JoinCombiner`](qo_catalog::JoinCombiner) and cost models), so their plan *quality* is
//! identical by construction and only their enumeration strategy — the thing the paper measures
//! — differs.

mod dpsize;
mod dpsub;
mod goo;
mod idp;
pub mod parallel;
mod result;

pub use dpsize::{dpsize, dpsize_bounded};
pub use dpsub::{dpsub, dpsub_bounded};
pub use goo::goo;
pub use idp::{idp, idp_with_strategy, IdpStrategy, MAX_IDP_BLOCK_SIZE};
pub use parallel::{dpsize_parallel, dpsub_parallel};
pub use qo_catalog::PruneCounters;
pub use result::{BaselineError, BaselineResult};

pub use qo_bitset::{NodeId, NodeSet};
