//! GOO: greedy operator ordering.
//!
//! Not part of the paper's evaluation, but a convenient sanity baseline: it produces a valid
//! (cross-product-free) plan in `O(n²)` merges and shows how far greedy plans can be from the
//! dynamic-programming optimum that DPhyp/DPsize/DPsub all reach.

use crate::result::{BaselineError, BaselineResult};
use qo_catalog::{
    Candidate, CandidateJoin, Catalog, CostModel, DpTable, JoinCombiner, SubPlanStats,
};
use qo_hypergraph::{EdgeId, Hypergraph};

/// Runs greedy operator ordering: repeatedly merges the connected pair of classes whose join has
/// the smallest estimated output cardinality until a single class covering all relations
/// remains.
pub fn goo<M: CostModel<W> + ?Sized, const W: usize>(
    graph: &Hypergraph<W>,
    catalog: &Catalog<W>,
    cost_model: &M,
) -> Result<BaselineResult, BaselineError> {
    catalog
        .validate_for(graph)
        .map_err(BaselineError::InvalidCatalog)?;
    let n = graph.node_count();
    let combiner = JoinCombiner::new(graph, catalog, cost_model);
    // The DpTable doubles as the plan store for reconstruction.
    let mut table = DpTable::new();
    let mut live: Vec<SubPlanStats<W>> = Vec::with_capacity(n);
    for v in 0..n {
        table.insert_leaf(v, catalog.cardinality(v));
        live.push(SubPlanStats::leaf(v, catalog.cardinality(v)));
    }

    let mut pairs_tested = 0usize;
    let mut cost_calls = 0usize;
    let mut edge_buf: Vec<EdgeId> = Vec::new();
    // Connecting edges of the current best pair; swapped (not cloned) with `edge_buf` whenever
    // the best changes, so the winner can be offered without re-running the combiner.
    let mut best_edges: Vec<EdgeId> = Vec::new();

    while live.len() > 1 {
        let mut best: Option<(usize, usize, Candidate<'static, W>)> = None;
        for i in 0..live.len() {
            for j in i + 1..live.len() {
                pairs_tested += 1;
                if !graph.has_connecting_edge(live[i].set, live[j].set) {
                    continue;
                }
                graph.connecting_edges_into(live[i].set, live[j].set, &mut edge_buf);
                if let Some(candidate) = combiner.combine(&live[i], &live[j], &edge_buf) {
                    cost_calls += 1;
                    let better = match &best {
                        Some((_, _, b)) => candidate.cardinality < b.cardinality,
                        None => true,
                    };
                    if better {
                        // Detach the candidate from `edge_buf` (which later pairs overwrite) by
                        // keeping its edges in `best_edges`; the join's predicate slice is
                        // re-attached when the winner is offered below.
                        let detached = Candidate {
                            join: candidate.join.map(|join| CandidateJoin {
                                predicates: &[],
                                ..join
                            }),
                            ..candidate
                        };
                        best = Some((i, j, detached));
                        std::mem::swap(&mut best_edges, &mut edge_buf);
                    }
                }
            }
        }
        let Some((i, j, winner)) = best else {
            return Err(BaselineError::NoCompletePlan);
        };
        let merged = winner.stats();
        table.offer(Candidate {
            join: winner.join.map(|join| CandidateJoin {
                predicates: &best_edges,
                ..join
            }),
            ..winner
        });
        // Remove the higher index first to keep the lower one valid.
        live.remove(j);
        live.remove(i);
        live.push(merged);
    }

    let class = live.pop().expect("one class remains");
    let plan = table
        .reconstruct(class.set)
        .expect("greedy classes are reconstructible");
    Ok(BaselineResult {
        cost: class.cost,
        cardinality: class.cardinality,
        plan,
        cost_calls,
        pairs_tested,
        dp_entries: table.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpsize::dpsize;
    use qo_catalog::CoutCost;

    fn chain(n: usize, cards: &[f64], sel: f64) -> (Hypergraph, Catalog) {
        let mut b = Hypergraph::builder(n);
        for i in 0..n - 1 {
            b.add_simple_edge(i, i + 1);
        }
        let g = b.build();
        let mut cb = Catalog::builder(n);
        for (i, &c) in cards.iter().enumerate() {
            cb.set_cardinality(i, c);
        }
        for e in 0..n - 1 {
            cb.set_selectivity(e, sel);
        }
        (g, cb.build())
    }

    #[test]
    fn produces_a_complete_valid_plan() {
        let (g, c) = chain(6, &[10.0, 500.0, 20.0, 8000.0, 50.0, 5.0], 0.01);
        let r = goo(&g, &c, &CoutCost).unwrap();
        assert_eq!(r.plan.relations(), g.all_nodes());
        assert_eq!(r.plan.join_count(), 5);
    }

    #[test]
    fn greedy_is_never_better_than_the_dp_optimum() {
        let (g, c) = chain(7, &[10.0, 500.0, 20.0, 8000.0, 50.0, 5.0, 900.0], 0.01);
        let greedy = goo(&g, &c, &CoutCost).unwrap();
        let optimal = dpsize(&g, &c, &CoutCost).unwrap();
        assert!(greedy.cost >= optimal.cost - 1e-9);
    }

    #[test]
    fn fails_on_disconnected_graphs() {
        let mut b = Hypergraph::<1>::builder(4);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(2, 3);
        let g = b.build();
        let c = Catalog::uniform(4, 10.0, 2, 0.5);
        assert!(matches!(
            goo(&g, &c, &CoutCost),
            Err(BaselineError::NoCompletePlan)
        ));
    }
}
