//! IDP-k: iterative dynamic programming with bounded block size.
//!
//! When a query's csg-cmp-pair count is too large for exact enumeration (a 96-relation star has
//! `95·2^94` pairs), iterative dynamic programming in the style of Kossmann & Stocker trades
//! optimality for a hard bound on the work: it repeatedly
//!
//! 1. **selects** up to `k` of the current blocks (initially one block per relation) greedily —
//!    a small-cardinality seed block grown by connected small-cardinality neighbors,
//! 2. **solves** the join order *within* the selection exactly, by subset-split dynamic
//!    programming over the blocks (the same [`JoinCombiner`] and arena [`DpTable`] the exact
//!    algorithms use, so plan construction and costing are shared),
//! 3. **collapses** the best solved set into a single block,
//!
//! until one block covering every relation remains. Each round inspects at most `3^k`
//! subset-splits, so the total work is `O((n/k)·3^k + n²)` regardless of the query shape — the
//! blow-up that kills exact DP on stars and cliques cannot happen. Plan quality degrades
//! gracefully: with `k ≥ n` the first round *is* exact DP (the result is optimal), and the
//! thinning/synthesis analysis of bounded-subproblem DP (Ji et al., arXiv:2202.12208) explains
//! why moderate `k` stays near-optimal in practice.
//!
//! This is the middle tier of the adaptive optimization driver in the `dphyp` crate, between
//! budgeted exact DPhyp and [`goo`](crate::goo).

use crate::result::{BaselineError, BaselineResult};
use qo_catalog::{Catalog, CostModel, DpTable, JoinCombiner, SubPlanStats};
use qo_hypergraph::{EdgeId, Hypergraph};

/// Largest supported block size: a round materializes a `2^k`-entry local memo, so `k` beyond
/// this would exhaust memory long before the `3^k` splits finish anyway.
pub const MAX_IDP_BLOCK_SIZE: usize = 24;

/// How a round's blocks are selected before the exact within-selection DP.
///
/// Both strategies only ever select mutually reachable blocks (a selection that cannot merge
/// would waste the round); they differ in *which* connected block joins the selection next.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum IdpStrategy {
    /// Grow the selection by the smallest-cardinality block connected to it — GOO's
    /// smallest-output-first intuition, one level coarser. The original (default) strategy.
    #[default]
    SmallestCardinality,
    /// Connectivity-aware growth: prefer the candidate with the most hyperedges connecting it
    /// to the selection (densely connected selections give the block DP more predicates to
    /// exploit and keep intermediate results selective), tie-breaking by smallest cardinality.
    /// On shapes where every candidate is equally connected — stars, chains — the tie-break
    /// makes this identical to [`IdpStrategy::SmallestCardinality`], so it can only change
    /// plans where real connectivity differences exist.
    ConnectedSmallest,
}

/// Runs IDP-k over the hypergraph: greedy block selection, exact DP inside each block.
///
/// `k` is the block size — the maximum number of blocks merged per round; it must be in
/// `2..=`[`MAX_IDP_BLOCK_SIZE`]. `k ≥ n` degenerates to a single exact DP over all relations
/// (the plan is optimal); small `k` approaches greedy behavior. Block selection uses the
/// default [`IdpStrategy::SmallestCardinality`]; see [`idp_with_strategy`].
///
/// In [`BaselineResult`], `cost_calls` counts combiner invocations inside the block DPs and
/// `pairs_tested` additionally counts the (cheap) connectivity probes of the selection phase.
///
/// # Panics
/// Panics if `k` is outside `2..=`[`MAX_IDP_BLOCK_SIZE`].
pub fn idp<M: CostModel<W> + ?Sized, const W: usize>(
    graph: &Hypergraph<W>,
    catalog: &Catalog<W>,
    cost_model: &M,
    k: usize,
) -> Result<BaselineResult, BaselineError> {
    idp_with_strategy(graph, catalog, cost_model, k, IdpStrategy::default())
}

/// [`idp`] with an explicit block-selection strategy.
///
/// # Panics
/// Panics if `k` is outside `2..=`[`MAX_IDP_BLOCK_SIZE`].
pub fn idp_with_strategy<M: CostModel<W> + ?Sized, const W: usize>(
    graph: &Hypergraph<W>,
    catalog: &Catalog<W>,
    cost_model: &M,
    k: usize,
    strategy: IdpStrategy,
) -> Result<BaselineResult, BaselineError> {
    assert!(
        (2..=MAX_IDP_BLOCK_SIZE).contains(&k),
        "IDP block size must be in 2..={MAX_IDP_BLOCK_SIZE}, got {k}"
    );
    catalog
        .validate_for(graph)
        .map_err(BaselineError::InvalidCatalog)?;
    let n = graph.node_count();
    let combiner = JoinCombiner::new(graph, catalog, cost_model);
    // The DpTable doubles as the plan store for reconstruction, exactly as in GOO: every
    // candidate accepted by a block DP is offered to it, so the final block reconstructs.
    let mut table = DpTable::new();
    let mut blocks: Vec<SubPlanStats<W>> = Vec::with_capacity(n);
    for v in 0..n {
        table.insert_leaf(v, catalog.cardinality(v));
        blocks.push(SubPlanStats::leaf(v, catalog.cardinality(v)));
    }

    let mut pairs_tested = 0usize;
    let mut cost_calls = 0usize;
    let mut edge_buf: Vec<EdgeId> = Vec::new();

    while blocks.len() > 1 {
        let selected = select_blocks(graph, &blocks, k, strategy, &mut pairs_tested)
            .ok_or(BaselineError::NoCompletePlan)?;
        let merged = solve_block(
            &combiner,
            &blocks,
            &selected,
            &mut table,
            &mut edge_buf,
            &mut cost_calls,
        )
        .ok_or(BaselineError::NoCompletePlan)?;
        // Collapse the merged blocks (descending index order keeps the indexes valid); the
        // winner's relation set tells which of the selected blocks it actually covers — the
        // block DP may have had to settle for a subset of the selection.
        for &i in selected.iter().rev() {
            if blocks[i].set.is_subset_of(merged.set) {
                blocks.swap_remove(i);
            }
        }
        blocks.push(merged);
    }

    let class = *table
        .get(blocks[0].set)
        .expect("final block was offered to the table");
    let plan = table
        .reconstruct(class.set)
        .expect("merged blocks are reconstructible");
    Ok(BaselineResult {
        cost: class.cost,
        cardinality: class.cardinality,
        plan,
        cost_calls,
        pairs_tested,
        dp_entries: table.len(),
    })
}

/// Greedy selection of up to `k` mutually reachable blocks: the smallest-cardinality block that
/// has at least one connected partner seeds the selection, which then grows by repeatedly
/// adding one block connected to the selection's union — the cheapest one under
/// [`IdpStrategy::SmallestCardinality`], the most-connected one (cheapest among equals) under
/// [`IdpStrategy::ConnectedSmallest`]. Returns ascending block indexes, or `None` if no two
/// blocks are connected (the graph has collapsed into disconnected components).
fn select_blocks<const W: usize>(
    graph: &Hypergraph<W>,
    blocks: &[SubPlanStats<W>],
    k: usize,
    strategy: IdpStrategy,
    pairs_tested: &mut usize,
) -> Option<Vec<usize>> {
    // Candidate seeds, cheapest first: preferring small blocks keeps intermediate results small
    // — the same intuition as GOO's smallest-output-first rule, one level coarser.
    let mut by_card: Vec<usize> = (0..blocks.len()).collect();
    by_card.sort_by(|&a, &b| {
        blocks[a]
            .cardinality
            .total_cmp(&blocks[b].cardinality)
            .then(a.cmp(&b))
    });

    let mut edge_buf = Vec::new();
    for &seed in &by_card {
        let mut selected = vec![seed];
        let mut union = blocks[seed].set;
        while selected.len() < k {
            let mut best: Option<usize> = None;
            let mut best_edges = 0usize;
            for &i in &by_card {
                if selected.contains(&i) {
                    continue;
                }
                *pairs_tested += 1;
                match strategy {
                    IdpStrategy::SmallestCardinality => {
                        if graph.has_connecting_edge(union, blocks[i].set) {
                            best = Some(i);
                            break; // by_card is sorted: the first connected block is the cheapest
                        }
                    }
                    IdpStrategy::ConnectedSmallest => {
                        graph.connecting_edges_into(union, blocks[i].set, &mut edge_buf);
                        // Strictly more connecting edges wins; by_card order makes "first seen
                        // at this edge count" the cardinality tie-break.
                        if edge_buf.len() > best_edges {
                            best_edges = edge_buf.len();
                            best = Some(i);
                        }
                    }
                }
            }
            match best {
                Some(i) => {
                    union |= blocks[i].set;
                    selected.push(i);
                }
                None => break,
            }
        }
        if selected.len() >= 2 {
            selected.sort_unstable();
            return Some(selected);
        }
        // The seed is isolated from every other block; try the next seed — another component
        // may still have mergeable blocks.
    }
    None
}

/// Exact subset-split DP over the selected blocks, shared-machinery edition: every split is
/// costed by the [`JoinCombiner`] and accepted candidates are offered to the global [`DpTable`]
/// so the winner reconstructs later. Returns the stats of the best multi-block set found
/// (preferring full coverage of the selection), or `None` if no two selected blocks combine.
fn solve_block<M: CostModel<W> + ?Sized, const W: usize>(
    combiner: &JoinCombiner<'_, M, W>,
    blocks: &[SubPlanStats<W>],
    selected: &[usize],
    table: &mut DpTable<W>,
    edge_buf: &mut Vec<EdgeId>,
    cost_calls: &mut usize,
) -> Option<SubPlanStats<W>> {
    let m = selected.len();
    debug_assert!(m >= 2);
    let graph = combiner.graph();
    // Local memo indexed by block-subset mask; the global table cannot serve here because it is
    // keyed by relation sets and may hold entries from earlier rounds.
    let mut memo: Vec<Option<SubPlanStats<W>>> = vec![None; 1usize << m];
    for (bit, &block) in selected.iter().enumerate() {
        memo[1 << bit] = Some(blocks[block]);
    }

    // Ascending mask order: every proper submask precedes its supersets.
    for mask in 3usize..(1 << m) {
        if mask.is_power_of_two() {
            continue;
        }
        let mut best: Option<SubPlanStats<W>> = None;
        // Walk the proper submasks; `s1 < s2` visits each unordered split once (the combiner
        // tries both orientations itself).
        let mut s1 = (mask - 1) & mask;
        while s1 != 0 {
            let s2 = mask ^ s1;
            if s1 < s2 {
                if let (Some(a), Some(b)) = (&memo[s1], &memo[s2]) {
                    if graph.has_connecting_edge(a.set, b.set) {
                        graph.connecting_edges_into(a.set, b.set, edge_buf);
                        if let Some(candidate) = combiner.combine(a, b, edge_buf) {
                            *cost_calls += 1;
                            if best.is_none_or(|c| candidate.cost < c.cost) {
                                // Memoize the *table's* class for the set, not the raw
                                // candidate: an earlier round may have stored a cheaper plan
                                // for the same relations (the offer is then rejected), and
                                // reconstruction follows the table — costing parents from the
                                // candidate would overstate the cost of the tree actually
                                // returned.
                                table.offer(candidate);
                                let class = table
                                    .get(candidate.set)
                                    .expect("offered set is present")
                                    .stats();
                                best = Some(class);
                            }
                        }
                    }
                }
            }
            s1 = (s1 - 1) & mask;
        }
        memo[mask] = best;
    }

    // Prefer the plan covering the whole selection; with hyperedge-induced connectivity gaps
    // fall back to the largest (then cheapest) multi-block set so the round still progresses.
    let full = (1usize << m) - 1;
    let winner = memo[full].or_else(|| {
        memo.iter()
            .enumerate()
            .filter(|(mask, _)| mask.count_ones() >= 2)
            .filter_map(|(_, stats)| *stats)
            .max_by(|a, b| {
                a.set
                    .len()
                    .cmp(&b.set.len())
                    .then(b.cost.total_cmp(&a.cost))
            })
    })?;
    // Re-read the stats from the global table: it may know a cheaper plan for the same set from
    // an earlier round, and reconstruction follows the table's choice.
    Some(
        table
            .get(winner.set)
            .expect("winner was offered to the table")
            .stats(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpsize::dpsize;
    use crate::goo::goo;
    use qo_catalog::CoutCost;

    fn chain(n: usize, cards: &[f64], sel: f64) -> (Hypergraph, Catalog) {
        let mut b = Hypergraph::builder(n);
        for i in 0..n - 1 {
            b.add_simple_edge(i, i + 1);
        }
        let g = b.build();
        let mut cb = Catalog::builder(n);
        for (i, &c) in cards.iter().enumerate() {
            cb.set_cardinality(i, c);
        }
        for e in 0..n - 1 {
            cb.set_selectivity(e, sel);
        }
        (g, cb.build())
    }

    fn star(satellites: usize) -> (Hypergraph, Catalog) {
        let mut b = Hypergraph::builder(satellites + 1);
        for i in 1..=satellites {
            b.add_simple_edge(0, i);
        }
        let g = b.build();
        let mut cb = Catalog::builder(satellites + 1);
        cb.set_cardinality(0, 100_000.0);
        for i in 1..=satellites {
            cb.set_cardinality(i, 10.0 * i as f64);
            cb.set_selectivity(i - 1, 0.002 * i as f64);
        }
        (g, cb.build())
    }

    #[test]
    fn produces_complete_valid_plans_for_every_k() {
        let cards = [10.0, 500.0, 20.0, 8000.0, 50.0, 5.0, 900.0];
        let (g, c) = chain(7, &cards, 0.01);
        for k in 2..=8 {
            let r = idp(&g, &c, &CoutCost, k).unwrap();
            assert_eq!(r.plan.relations(), g.all_nodes(), "k = {k}");
            assert_eq!(r.plan.join_count(), 6, "k = {k}");
            assert!(r.cost.is_finite() && r.cost > 0.0);
        }
    }

    #[test]
    fn k_at_least_n_is_exact() {
        // One round covering every relation is plain subset DP — the optimum.
        let cards = [10.0, 500.0, 20.0, 8000.0, 50.0, 5.0];
        let (g, c) = chain(6, &cards, 0.01);
        let exact = dpsize(&g, &c, &CoutCost).unwrap();
        let r = idp(&g, &c, &CoutCost, 6).unwrap();
        assert_eq!(r.cost, exact.cost, "k = n must reproduce the DP optimum");
        let (g, c) = star(6);
        let exact = dpsize(&g, &c, &CoutCost).unwrap();
        let r = idp(&g, &c, &CoutCost, 8).unwrap();
        assert_eq!(r.cost, exact.cost);
    }

    #[test]
    fn idp_is_never_better_than_exact_dp() {
        let (g, c) = star(9);
        let exact = dpsize(&g, &c, &CoutCost).unwrap();
        for k in [2, 3, 4, 5] {
            let r = idp(&g, &c, &CoutCost, k).unwrap();
            assert!(
                r.cost >= exact.cost - 1e-9,
                "k = {k}: IDP cost {} below optimum {}",
                r.cost,
                exact.cost
            );
        }
    }

    #[test]
    fn larger_blocks_beat_greedy_on_a_skewed_star() {
        // With k covering the whole star the result is optimal, so it can only improve on (or
        // tie) both GOO and small-k IDP.
        let (g, c) = star(8);
        let greedy = goo(&g, &c, &CoutCost).unwrap();
        let r = idp(&g, &c, &CoutCost, 10).unwrap();
        assert!(r.cost <= greedy.cost + 1e-9);
    }

    #[test]
    fn bounded_work_on_a_wide_star() {
        // A 40-satellite star is far beyond exact DP (39·2^38 pairs); IDP-6 must finish with
        // work bounded by rounds · 3^6.
        let (g, c) = star(40);
        let r = idp(&g, &c, &CoutCost, 6).unwrap();
        assert_eq!(r.plan.relations(), g.all_nodes());
        assert_eq!(r.plan.join_count(), 40);
        assert!(
            r.cost_calls < 20_000,
            "block DP must stay bounded, made {} cost calls",
            r.cost_calls
        );
    }

    #[test]
    fn fails_on_disconnected_graphs() {
        let mut b = Hypergraph::<1>::builder(4);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(2, 3);
        let g = b.build();
        let c = Catalog::uniform(4, 10.0, 2, 0.5);
        assert!(matches!(
            idp(&g, &c, &CoutCost, 3),
            Err(BaselineError::NoCompletePlan)
        ));
    }

    #[test]
    fn hyperedge_gaps_fall_back_to_partial_blocks() {
        // Fig. 2-style graph: {0,1,2} and {3,4,5} only join as whole halves. Small k forces
        // rounds whose selection cannot fully merge; the fallback keeps making progress.
        let mut b = Hypergraph::builder(6);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(1, 2);
        b.add_simple_edge(3, 4);
        b.add_simple_edge(4, 5);
        b.add_hyperedge(
            [0, 1, 2].into_iter().collect(),
            [3, 4, 5].into_iter().collect(),
        );
        let g = b.build();
        let c = Catalog::uniform(6, 100.0, 5, 0.1);
        for k in 2..=6 {
            let r = idp(&g, &c, &CoutCost, k).unwrap();
            assert_eq!(r.plan.relations(), g.all_nodes(), "k = {k}");
        }
    }

    #[test]
    #[should_panic(expected = "IDP block size")]
    fn rejects_block_size_below_two() {
        let (g, c) = chain(3, &[1.0, 2.0, 3.0], 0.1);
        let _ = idp(&g, &c, &CoutCost, 1);
    }

    #[test]
    fn connected_strategy_produces_complete_valid_plans() {
        let cards = [10.0, 500.0, 20.0, 8000.0, 50.0, 5.0, 900.0];
        let (g, c) = chain(7, &cards, 0.01);
        for k in 2..=8 {
            let r =
                idp_with_strategy(&g, &c, &CoutCost, k, IdpStrategy::ConnectedSmallest).unwrap();
            assert_eq!(r.plan.relations(), g.all_nodes(), "k = {k}");
            assert!(r.cost.is_finite() && r.cost > 0.0);
        }
    }

    #[test]
    fn connected_strategy_matches_the_default_on_uniformly_connected_shapes() {
        // On a star every candidate block has exactly one edge to the hub, so the cardinality
        // tie-break makes both strategies pick identical selections — the "never degrades a
        // star" guarantee in miniature (the driver-level test covers the 96-relation star).
        for satellites in [8usize, 20, 40] {
            let (g, c) = star(satellites);
            for k in [3usize, 5, 6] {
                let default = idp(&g, &c, &CoutCost, k).unwrap();
                let connected =
                    idp_with_strategy(&g, &c, &CoutCost, k, IdpStrategy::ConnectedSmallest)
                        .unwrap();
                assert_eq!(
                    connected.cost, default.cost,
                    "satellites = {satellites}, k = {k}"
                );
            }
        }
    }

    #[test]
    fn connected_strategy_prefers_densely_connected_blocks() {
        // R3 connects to both R0 and R1 (two edges once {R0, R1, R2} is selected), R4 only to
        // R0. The connectivity-aware growth must absorb R3 before R4 even though R4 is cheaper.
        let mut b = Hypergraph::builder(5);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(1, 2);
        b.add_simple_edge(0, 3);
        b.add_simple_edge(1, 3);
        b.add_simple_edge(0, 4);
        let g = b.build();
        let mut cb = Catalog::builder(5);
        cb.set_cardinality(0, 10.0)
            .set_cardinality(1, 12.0)
            .set_cardinality(2, 14.0)
            .set_cardinality(3, 5_000.0)
            .set_cardinality(4, 20.0);
        for e in 0..5 {
            cb.set_selectivity(e, 0.01);
        }
        let c = cb.build();
        // k = 4 selects {0,1,2} + one more block. Both strategies must produce complete plans;
        // the connected one gets the extra predicate of R3 into its block DP.
        let default = idp(&g, &c, &CoutCost, 4).unwrap();
        let connected =
            idp_with_strategy(&g, &c, &CoutCost, 4, IdpStrategy::ConnectedSmallest).unwrap();
        assert_eq!(default.plan.relations(), g.all_nodes());
        assert_eq!(connected.plan.relations(), g.all_nodes());
        // Exact DP over the same 5 relations bounds both from below.
        let exact = dpsize(&g, &c, &CoutCost).unwrap();
        assert!(connected.cost >= exact.cost - 1e-9);
        assert!(default.cost >= exact.cost - 1e-9);
    }

    #[test]
    fn connected_strategy_handles_hyperedge_gaps() {
        let mut b = Hypergraph::builder(6);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(1, 2);
        b.add_simple_edge(3, 4);
        b.add_simple_edge(4, 5);
        b.add_hyperedge(
            [0, 1, 2].into_iter().collect(),
            [3, 4, 5].into_iter().collect(),
        );
        let g = b.build();
        let c = Catalog::uniform(6, 100.0, 5, 0.1);
        for k in 2..=6 {
            let r =
                idp_with_strategy(&g, &c, &CoutCost, k, IdpStrategy::ConnectedSmallest).unwrap();
            assert_eq!(r.plan.relations(), g.all_nodes(), "k = {k}");
        }
    }
}
