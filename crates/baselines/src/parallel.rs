//! Level-parallel variants of DPsize and DPsub, bit-identical to the sequential runs.
//!
//! Both classic algorithms are *size-driven at heart*: a class of `s` relations is built only
//! from classes of strictly fewer relations, so a barrier between sizes seals every input a
//! level reads. Within a level the workers compute candidates against the sealed table
//! concurrently, record them in the sequential inspection order, and a deterministic merge
//! replays that exact order into the table — plans, costs, `cost_calls`, `pairs_tested` and
//! `dp_entries` all match the sequential run at every thread count.
//!
//! * [`dpsize_parallel`] parallelizes the paper's Fig. 1 loop by *rows*: one row is one left
//!   class `(s1, i)` with its full scan over the size-`s2` partners. Rows are dealt round-robin
//!   to the workers; the merge consumes them sorted back into row order, reproducing the
//!   sequential `(s1, i, j)` offer sequence including the `new_sets` bookkeeping that drives
//!   the next level.
//! * [`dpsub_parallel`] reorders DPsub's ascending-mask subset walk into a by-size schedule
//!   (valid because every proper subset is both a smaller mask *and* a smaller size) using
//!   [`CombinationIter`], which yields each level in exactly the relative order the sequential
//!   walk visits it. One worker owns one subset outright — all of its splits — and folds them
//!   to a local winner under the table's own strictly-cheaper-replaces rule, so the merge
//!   installs one pre-folded candidate per subset.

use crate::dpsize::dpsize;
use crate::dpsub::dpsub;
use crate::result::{BaselineError, BaselineResult};
use qo_bitset::{CombinationIter, NodeSet};
use qo_catalog::{Candidate, CandidateJoin, Catalog, CostModel, DpTable, JoinCombiner};
use qo_hypergraph::{EdgeId, Hypergraph};
use qo_plan::JoinOp;

/// A worker-side candidate that owns its predicate list (the shared read phase cannot hand out
/// borrows into a per-worker edge buffer).
struct OwnedCandidate<const W: usize> {
    set: NodeSet<W>,
    cardinality: f64,
    cost: f64,
    left: NodeSet<W>,
    right: NodeSet<W>,
    op: JoinOp,
    predicates: Vec<EdgeId>,
}

impl<const W: usize> OwnedCandidate<W> {
    fn from_candidate(c: Candidate<'_, W>) -> Self {
        let join = c.join.expect("combined candidates always carry a join");
        OwnedCandidate {
            set: c.set,
            cardinality: c.cardinality,
            cost: c.cost,
            left: join.left,
            right: join.right,
            op: join.op,
            predicates: join.predicates.to_vec(),
        }
    }

    fn as_candidate(&self) -> Candidate<'_, W> {
        Candidate {
            set: self.set,
            cardinality: self.cardinality,
            cost: self.cost,
            join: Some(CandidateJoin {
                left: self.left,
                right: self.right,
                op: self.op,
                predicates: &self.predicates,
            }),
        }
    }
}

/// Runs [`dpsize`] with `threads` workers per size level; `threads ≤ 1` delegates to the
/// sequential run. Results (plan, cost, all counters) are identical to [`dpsize`] at every
/// thread count.
pub fn dpsize_parallel<M: CostModel<W> + Sync + ?Sized, const W: usize>(
    graph: &Hypergraph<W>,
    catalog: &Catalog<W>,
    cost_model: &M,
    threads: usize,
) -> Result<BaselineResult, BaselineError> {
    if threads <= 1 {
        return dpsize(graph, catalog, cost_model);
    }
    catalog
        .validate_for(graph)
        .map_err(BaselineError::InvalidCatalog)?;
    let n = graph.node_count();
    let combiner = JoinCombiner::new(graph, catalog, cost_model);
    let mut table = DpTable::new();
    let mut classes_by_size: Vec<Vec<NodeSet<W>>> = vec![Vec::new(); n + 1];
    for v in 0..n {
        table.insert_leaf(v, catalog.cardinality(v));
        classes_by_size[1].push(NodeSet::single(v));
    }

    let mut pairs_tested = 0usize;
    let mut cost_calls = 0usize;

    for size in 2..=n {
        // The level's rows — one per left class, in the sequential (s1, i) order.
        let mut rows: Vec<(usize, usize)> = Vec::new();
        for (s1, lefts) in classes_by_size.iter().enumerate().take(size).skip(1) {
            if s1 > size - s1 {
                continue;
            }
            for i in 0..lefts.len() {
                rows.push((s1, i));
            }
        }
        // Read phase: workers scan their rows against the sealed smaller-size classes. The
        // table is borrowed immutably by every worker; offers happen only in the merge below.
        type RowResult<const W: usize> = (usize, usize, Vec<OwnedCandidate<W>>);
        let results: Vec<Vec<RowResult<W>>> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|t| {
                    let (rows, table, combiner, classes_by_size) =
                        (&rows, &table, &combiner, &classes_by_size);
                    scope.spawn(move || {
                        let mut edge_buf: Vec<EdgeId> = Vec::new();
                        let mut out: Vec<RowResult<W>> = Vec::new();
                        for (row_idx, &(s1, i)) in rows.iter().enumerate() {
                            if row_idx % threads != t {
                                continue;
                            }
                            let s2 = size - s1;
                            let left_set = classes_by_size[s1][i];
                            let start = if s1 == s2 { i + 1 } else { 0 };
                            let mut row_pairs = 0usize;
                            let mut candidates = Vec::new();
                            for &right_set in classes_by_size[s2][start..].iter() {
                                row_pairs += 1;
                                if !left_set.is_disjoint(right_set) {
                                    continue;
                                }
                                if !graph.has_connecting_edge(left_set, right_set) {
                                    continue;
                                }
                                let a = table
                                    .get(left_set)
                                    .expect("listed class must exist")
                                    .stats();
                                let b = table
                                    .get(right_set)
                                    .expect("listed class must exist")
                                    .stats();
                                graph.connecting_edges_into(left_set, right_set, &mut edge_buf);
                                if let Some(c) = combiner.combine(&a, &b, &edge_buf) {
                                    candidates.push(OwnedCandidate::from_candidate(c));
                                }
                            }
                            out.push((row_idx, row_pairs, candidates));
                        }
                        out
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("dpsize worker panicked"))
                .collect()
        });
        // Merge phase: replay the sequential (s1, i, j) offer order, including the was-new
        // bookkeeping that determines the next level's row order.
        let mut merged: Vec<RowResult<W>> = results.into_iter().flatten().collect();
        merged.sort_by_key(|&(row_idx, _, _)| row_idx);
        let mut new_sets: Vec<NodeSet<W>> = Vec::new();
        for (_, row_pairs, candidates) in merged {
            pairs_tested += row_pairs;
            for c in candidates {
                cost_calls += 1;
                let was_new = !table.contains(c.set);
                table.offer(c.as_candidate());
                if was_new {
                    new_sets.push(c.set);
                }
            }
        }
        classes_by_size[size] = new_sets;
    }

    finish(&table, graph, cost_calls, pairs_tested)
}

/// Runs [`dpsub`] with `threads` workers per subset-size level; `threads ≤ 1` delegates to the
/// sequential run. Results (plan, cost, all counters) are identical to [`dpsub`] at every
/// thread count.
pub fn dpsub_parallel<M: CostModel<W> + Sync + ?Sized, const W: usize>(
    graph: &Hypergraph<W>,
    catalog: &Catalog<W>,
    cost_model: &M,
    threads: usize,
) -> Result<BaselineResult, BaselineError> {
    if threads <= 1 {
        return dpsub(graph, catalog, cost_model);
    }
    catalog
        .validate_for(graph)
        .map_err(BaselineError::InvalidCatalog)?;
    let n = graph.node_count();
    let combiner = JoinCombiner::new(graph, catalog, cost_model);
    let mut table = DpTable::new();
    for v in 0..n {
        table.insert_leaf(v, catalog.cardinality(v));
    }

    let mut pairs_tested = 0usize;
    let mut cost_calls = 0usize;

    for k in 2..=n {
        // The size-k subsets in ascending mask order — the sequential walk's relative order.
        let sets: Vec<NodeSet<W>> = CombinationIter::new(n, k).collect();
        type SetResult<const W: usize> = (usize, usize, usize, Option<OwnedCandidate<W>>);
        let results: Vec<Vec<SetResult<W>>> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|t| {
                    let (sets, table, combiner) = (&sets, &table, &combiner);
                    scope.spawn(move || {
                        let mut edge_buf: Vec<EdgeId> = Vec::new();
                        let mut out: Vec<SetResult<W>> = Vec::new();
                        for (idx, &set) in sets.iter().enumerate() {
                            if idx % threads != t {
                                continue;
                            }
                            let min = set.min_singleton();
                            let rest = set - min;
                            let mut splits = 0usize;
                            let mut calls = 0usize;
                            // One worker owns all splits of one subset: fold them locally
                            // under the table's offer rule (strictly cheaper replaces, first
                            // candidate wins ties) in the sequential split order.
                            let mut best: Option<OwnedCandidate<W>> = None;
                            for s2 in rest.subsets() {
                                let s1 = set - s2;
                                splits += 1;
                                let (Some(a), Some(b)) = (table.get(s1), table.get(s2)) else {
                                    continue;
                                };
                                if !graph.has_connecting_edge(s1, s2) {
                                    continue;
                                }
                                let (a, b) = (a.stats(), b.stats());
                                graph.connecting_edges_into(s1, s2, &mut edge_buf);
                                if let Some(c) = combiner.combine(&a, &b, &edge_buf) {
                                    calls += 1;
                                    if best.as_ref().is_none_or(|inc| c.cost < inc.cost) {
                                        best = Some(OwnedCandidate::from_candidate(c));
                                    }
                                }
                            }
                            out.push((idx, splits, calls, best));
                        }
                        out
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("dpsub worker panicked"))
                .collect()
        });
        let mut merged: Vec<SetResult<W>> = results.into_iter().flatten().collect();
        merged.sort_by_key(|&(idx, _, _, _)| idx);
        for (_, splits, calls, best) in merged {
            pairs_tested += splits;
            cost_calls += calls;
            if let Some(c) = best {
                table.offer(c.as_candidate());
            }
        }
    }

    finish(&table, graph, cost_calls, pairs_tested)
}

fn finish<const W: usize>(
    table: &DpTable<W>,
    graph: &Hypergraph<W>,
    cost_calls: usize,
    pairs_tested: usize,
) -> Result<BaselineResult, BaselineError> {
    let all = graph.all_nodes();
    let Some(class) = table.get(all) else {
        return Err(BaselineError::NoCompletePlan);
    };
    let plan = table.reconstruct(all).expect("complete class reconstructs");
    Ok(BaselineResult {
        cost: class.cost,
        cardinality: class.cardinality,
        plan,
        cost_calls,
        pairs_tested,
        dp_entries: table.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qo_catalog::{CoutCost, MixedCost};

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    /// Chain, star, cycle and a hyperedge-bridged shape — the sequential tests' menagerie.
    fn shapes() -> Vec<(Hypergraph, Catalog)> {
        let mut out = Vec::new();
        let mut b = Hypergraph::builder(8);
        for i in 0..7 {
            b.add_simple_edge(i, i + 1);
        }
        out.push((b.build(), Catalog::uniform(8, 100.0, 7, 0.05)));
        let mut b = Hypergraph::builder(7);
        for i in 1..7 {
            b.add_simple_edge(0, i);
        }
        out.push((b.build(), Catalog::uniform(7, 250.0, 6, 0.02)));
        let mut b = Hypergraph::builder(6);
        for i in 0..6 {
            b.add_simple_edge(i, (i + 1) % 6);
        }
        b.add_hyperedge(ns(&[0, 1, 2]), ns(&[3, 4, 5]));
        out.push((b.build(), Catalog::uniform(6, 80.0, 7, 0.1)));
        out
    }

    #[test]
    fn parallel_dpsize_is_bit_identical_to_sequential() {
        for (g, c) in shapes() {
            let seq = dpsize(&g, &c, &CoutCost).unwrap();
            for threads in [2usize, 4, 8] {
                let par = dpsize_parallel(&g, &c, &CoutCost, threads).unwrap();
                assert_eq!(par.cost, seq.cost, "{threads} threads");
                assert_eq!(par.cardinality, seq.cardinality);
                assert_eq!(par.plan, seq.plan, "{threads} threads");
                assert_eq!(par.cost_calls, seq.cost_calls);
                assert_eq!(par.pairs_tested, seq.pairs_tested);
                assert_eq!(par.dp_entries, seq.dp_entries);
            }
        }
    }

    #[test]
    fn parallel_dpsub_is_bit_identical_to_sequential() {
        for (g, c) in shapes() {
            let seq = dpsub(&g, &c, &CoutCost).unwrap();
            for threads in [2usize, 4, 8] {
                let par = dpsub_parallel(&g, &c, &CoutCost, threads).unwrap();
                assert_eq!(par.cost, seq.cost, "{threads} threads");
                assert_eq!(par.cardinality, seq.cardinality);
                assert_eq!(par.plan, seq.plan, "{threads} threads");
                assert_eq!(par.cost_calls, seq.cost_calls);
                assert_eq!(par.pairs_tested, seq.pairs_tested);
                assert_eq!(par.dp_entries, seq.dp_entries);
            }
        }
    }

    #[test]
    fn parallel_variants_honor_the_cost_model() {
        let (g, c) = &shapes()[0];
        let seq = dpsize(g, c, &MixedCost).unwrap();
        let par = dpsize_parallel(g, c, &MixedCost, 4).unwrap();
        assert_eq!(par.cost, seq.cost);
        let seq = dpsub(g, c, &MixedCost).unwrap();
        let par = dpsub_parallel(g, c, &MixedCost, 4).unwrap();
        assert_eq!(par.cost, seq.cost);
    }

    #[test]
    fn one_thread_delegates_to_the_sequential_run() {
        let (g, c) = &shapes()[1];
        let seq = dpsize(g, c, &CoutCost).unwrap();
        for threads in [0usize, 1] {
            let del = dpsize_parallel(g, c, &CoutCost, threads).unwrap();
            assert_eq!(del.cost, seq.cost);
            assert_eq!(del.pairs_tested, seq.pairs_tested);
        }
    }

    #[test]
    fn parallel_variants_surface_sequential_errors() {
        let mut b = Hypergraph::<1>::builder(4);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(2, 3);
        let g = b.build();
        let c = Catalog::uniform(4, 10.0, 2, 0.5);
        assert!(matches!(
            dpsize_parallel(&g, &c, &CoutCost, 4),
            Err(BaselineError::NoCompletePlan)
        ));
        assert!(matches!(
            dpsub_parallel(&g, &c, &CoutCost, 4),
            Err(BaselineError::NoCompletePlan)
        ));
        let bad = Catalog::uniform(9, 10.0, 2, 0.5);
        assert!(matches!(
            dpsub_parallel(&g, &bad, &CoutCost, 2),
            Err(BaselineError::InvalidCatalog(_))
        ));
    }
}
