//! Hand-computed results for the executor's non-inner operators over a fixed two-relation
//! database, pinning the exact semantics — NULL padding, right-side preservation, group
//! counts — that the plan-equivalence and feedback tests rely on.
//!
//! Data: `R0 = {1, 2, 3}`, `R1 = {1, 1, 4}`, joined on key equality (simple edge 0 –– 1).
//! Key 1 matches twice; keys 2 and 3 are left-dangling; key 4 is right-dangling.

use qo_exec::{execute_plan, Database, Row};
use qo_hypergraph::Hypergraph;
use qo_plan::{JoinOp, PlanNode};

fn setup() -> (Hypergraph, Database) {
    let mut b = Hypergraph::builder(2);
    b.add_simple_edge(0, 1);
    (b.build(), Database::new(vec![vec![1, 2, 3], vec![1, 1, 4]]))
}

fn run(op: JoinOp) -> Vec<Row> {
    let (graph, db) = setup();
    let plan = PlanNode::join(
        op,
        PlanNode::scan(0, 3.0),
        PlanNode::scan(1, 3.0),
        vec![0],
        0.0,
        0.0,
    );
    execute_plan(&plan, &graph, &db)
}

/// The multiset of `(left key, right key)` pairs of a result.
fn pairs(rows: &[Row]) -> Vec<(Option<i64>, Option<i64>)> {
    let mut v: Vec<_> = rows.iter().map(|r| (r.key(0), r.key(1))).collect();
    v.sort_unstable();
    v
}

#[test]
fn left_outer_pads_dangling_left_rows() {
    let rows = run(JoinOp::LeftOuter);
    assert_eq!(
        pairs(&rows),
        vec![
            (Some(1), Some(1)), // key 1 matches both R1 rows with key 1
            (Some(1), Some(1)),
            (Some(2), None), // keys 2 and 3 survive NULL-padded
            (Some(3), None),
        ]
    );
}

#[test]
fn full_outer_additionally_preserves_dangling_right_rows() {
    let rows = run(JoinOp::FullOuter);
    assert_eq!(
        pairs(&rows),
        vec![
            (None, Some(4)), // the unmatched right row survives too
            (Some(1), Some(1)),
            (Some(1), Some(1)),
            (Some(2), None),
            (Some(3), None),
        ]
    );
}

#[test]
fn left_semi_keeps_matching_left_rows_exactly_once() {
    let rows = run(JoinOp::LeftSemi);
    // Key 1 matches twice on the right but is emitted once, without right-side columns.
    assert_eq!(pairs(&rows), vec![(Some(1), None)]);
}

#[test]
fn left_anti_keeps_exactly_the_non_matching_left_rows() {
    let rows = run(JoinOp::LeftAnti);
    assert_eq!(pairs(&rows), vec![(Some(2), None), (Some(3), None)]);
}

#[test]
fn left_nest_counts_each_left_rows_group() {
    let rows = run(JoinOp::LeftNest);
    // Every left row survives, annotated with (group relation, match count).
    assert_eq!(
        pairs(&rows),
        vec![(Some(1), None), (Some(2), None), (Some(3), None)]
    );
    type KeyedGroups = Vec<(Option<i64>, Vec<(usize, i64)>)>;
    let mut groups: KeyedGroups = rows
        .iter()
        .map(|r| (r.key(0), r.groups().to_vec()))
        .collect();
    groups.sort_unstable();
    assert_eq!(
        groups,
        vec![
            (Some(1), vec![(1, 2)]), // two matches for key 1
            (Some(2), vec![(1, 0)]), // empty groups are kept, count 0
            (Some(3), vec![(1, 0)]),
        ]
    );
}

#[test]
fn dependent_operators_execute_as_their_regular_counterparts() {
    for (dep, regular) in [
        (JoinOp::DepJoin, JoinOp::Inner),
        (JoinOp::DepLeftOuter, JoinOp::LeftOuter),
        (JoinOp::DepLeftSemi, JoinOp::LeftSemi),
        (JoinOp::DepLeftAnti, JoinOp::LeftAnti),
        (JoinOp::DepLeftNest, JoinOp::LeftNest),
    ] {
        assert_eq!(
            pairs(&run(dep)),
            pairs(&run(regular)),
            "{dep:?} must execute like {regular:?}"
        );
    }
}
