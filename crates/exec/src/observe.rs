//! Instrumented execution: record *true* intermediate cardinalities, compare them with the
//! estimator's predictions (q-error), and derive an [`ObservedStats`] overlay the planner can
//! be re-run under.
//!
//! This is the measurement half of the feedback loop. [`execute_plan_observed`] runs a plan
//! exactly like [`execute_plan`](crate::execute_plan) but records one [`JoinObservation`] per
//! join node: the estimated output cardinality the plan was costed with and the actual row
//! count the executor produced. From those observations [`ObservedExecution`] computes
//!
//! * the plan's **true cost** (the `C_out` sum over actual intermediate cardinalities — the
//!   same functional the optimizer minimizes, evaluated on reality instead of estimates),
//! * the estimator's **q-error** per join (`max(e, a) / min(e, a)`, both floored at one row,
//!   so over- and under-estimation count symmetrically and empty results stay finite), and
//! * an [`ObservedStats`] overlay: true base-relation cardinalities plus per-edge
//!   selectivities *inverted* from the estimator's own formulas, so that re-estimating each
//!   observed join under the overlay reproduces the actual cardinality.
//!
//! Execution is guarded by a row limit: nested-loop execution of a badly mis-ordered plan can
//! explode combinatorially, and a feedback experiment would rather record "infeasible" than
//! hang. [`execute_plan_observed`] returns `None` the moment any intermediate result exceeds
//! the limit.

use crate::database::{Database, Row};
use crate::executor::join;
use qo_catalog::{ExecutionFeedback, ObservedStats};
use qo_hypergraph::{EdgeId, Hypergraph};
use qo_plan::{ExplainAnnotation, JoinOp, PlanNode};

/// Selectivities inverted from observations are clamped below by this value, keeping them
/// inside the `(0, 1]` range every catalog validation demands even when a join produced zero
/// rows. (Matches the clamp in [`ObservedStats::observe_selectivity`].)
const MIN_OBSERVED_SELECTIVITY: f64 = 1e-12;

/// The q-error of one cardinality estimate: `max(e, a) / min(e, a)` with both sides floored at
/// one row. Always ≥ 1; equal to 1 iff the (floored) estimate was exact.
pub fn q_error(estimated: f64, actual: f64) -> f64 {
    let e = estimated.max(1.0);
    let a = actual.max(1.0);
    (e / a).max(a / e)
}

/// What one join node of an executed plan actually did.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinObservation {
    /// The operator (as written in the plan; dependent operators execute as their regular
    /// counterpart).
    pub op: JoinOp,
    /// The output cardinality the plan was costed with.
    pub estimated: f64,
    /// The row count the executor actually produced.
    pub actual: f64,
    /// Actual row count of the left input.
    pub left_actual: f64,
    /// Actual row count of the right input.
    pub right_actual: f64,
    /// The hyperedges whose predicates were applied at this join.
    pub predicates: Vec<EdgeId>,
}

impl JoinObservation {
    /// The q-error of this join's estimate.
    pub fn q_error(&self) -> f64 {
        q_error(self.estimated, self.actual)
    }

    /// The combined selectivity of this join's predicates, inverted from the estimator's
    /// output-cardinality formula for the operator, clamped into `(0, 1]`. `None` when the
    /// inversion is undefined: an empty input (nothing was observed) or a nestjoin (its output
    /// cardinality is the left input regardless of selectivity).
    pub fn observed_selectivity(&self) -> Option<f64> {
        let (l, r, out) = (self.left_actual, self.right_actual, self.actual);
        if l <= 0.0 || r <= 0.0 {
            return None;
        }
        // Invert qo_catalog::join_cardinality per operator. The outer joins keep the plain
        // inner inversion: where the estimator's padding floor (`max(·, |L|)` resp.
        // `max(·, |L| + |R|)`) lies below the observed output the re-estimate is exact, and
        // where the floor binds it is the closest value the estimator can represent at any
        // selectivity.
        let sel = match self.op.regular_counterpart() {
            JoinOp::Inner | JoinOp::LeftOuter | JoinOp::FullOuter => out / (l * r),
            // semi: out = l · min(sel·r, 1)  ⇒  sel = (out/l) / r
            JoinOp::LeftSemi => (out / l) / r,
            // anti: out = l − l · min(sel·r, 1)  ⇒  sel = (1 − out/l) / r
            JoinOp::LeftAnti => (1.0 - out / l) / r,
            JoinOp::LeftNest => return None,
            _ => unreachable!("regular_counterpart never returns a dependent operator"),
        };
        Some(sel.clamp(MIN_OBSERVED_SELECTIVITY, 1.0))
    }
}

/// The result of one instrumented execution: the final rows plus one observation per join
/// node, in post-order (the order the executor produced them).
#[derive(Clone, Debug)]
pub struct ObservedExecution {
    /// The multiset of result rows.
    pub rows: Vec<Row>,
    /// One observation per join node of the plan, post-order.
    pub joins: Vec<JoinObservation>,
}

impl ObservedExecution {
    /// The plan's true cost: the sum of the *actual* intermediate cardinalities over all join
    /// nodes — `C_out` evaluated on observed reality instead of estimates.
    pub fn true_cost(&self) -> f64 {
        self.joins.iter().map(|j| j.actual).sum()
    }

    /// The largest per-join q-error of the execution (1.0 for a plan with no joins).
    pub fn max_q_error(&self) -> f64 {
        self.joins
            .iter()
            .map(|j| j.q_error())
            .fold(1.0, |a, b| a.max(b))
    }

    /// The median per-join q-error (mean of the two middle values for even join counts; 1.0
    /// for a plan with no joins).
    pub fn median_q_error(&self) -> f64 {
        if self.joins.is_empty() {
            return 1.0;
        }
        let mut q: Vec<f64> = self.joins.iter().map(|j| j.q_error()).collect();
        q.sort_by(|a, b| a.total_cmp(b));
        let n = q.len();
        if n % 2 == 1 {
            q[n / 2]
        } else {
            (q[n / 2 - 1] + q[n / 2]) / 2.0
        }
    }

    /// Distills this execution into the [`ExecutionFeedback`] a serving layer consumes:
    /// true cost plus the q-error spread. This is the payload of
    /// `qo_service::Service::observe_execution` — the hook that feeds the flight recorder
    /// and the regret ledger.
    pub fn feedback(&self) -> ExecutionFeedback {
        ExecutionFeedback {
            true_cost: self.true_cost(),
            max_q_error: self.max_q_error(),
            median_q_error: self.median_q_error(),
        }
    }

    /// The per-join [`ExplainAnnotation`]s of this execution, in the post-order
    /// [`PlanNode::explain_annotated`] consumes — actual cardinality and q-error per join.
    pub fn explain_annotations(&self) -> Vec<ExplainAnnotation> {
        self.joins
            .iter()
            .map(|j| ExplainAnnotation {
                actual: j.actual,
                q_error: j.q_error(),
            })
            .collect()
    }

    /// Renders `plan`'s EXPLAIN tree annotated with this execution's actual cardinalities
    /// and q-errors. `plan` must be the plan this execution ran (`self.joins` is matched to
    /// its join nodes in post-order).
    pub fn explain(&self, plan: &PlanNode) -> String {
        plan.explain_annotated(&self.explain_annotations())
    }

    /// Derives the statistics overlay this execution supports: the database's true base
    /// cardinalities plus, for every predicate edge applied by some join, the observed
    /// selectivity (split geometrically when a join applied several edges at once, so their
    /// product reproduces the joint observation).
    pub fn observed_stats(&self, db: &Database) -> ObservedStats {
        let mut stats = ObservedStats::new();
        for r in 0..db.relation_count() {
            stats.observe_cardinality(r, db.table(r).len() as f64);
        }
        for j in &self.joins {
            let Some(sel) = j.observed_selectivity() else {
                continue;
            };
            let per_edge = sel.powf(1.0 / j.predicates.len().max(1) as f64);
            for &e in &j.predicates {
                stats.observe_selectivity(e, per_edge);
            }
        }
        stats
    }
}

/// Executes a plan like [`execute_plan`](crate::execute_plan) while recording a
/// [`JoinObservation`] per join node. Returns `None` if any intermediate result exceeds
/// `row_limit` rows (the plan is infeasible to execute at this scale, not wrong).
pub fn execute_plan_observed<const W: usize>(
    plan: &PlanNode,
    graph: &Hypergraph<W>,
    db: &Database,
    row_limit: usize,
) -> Option<ObservedExecution> {
    let mut joins = Vec::with_capacity(plan.join_count());
    let rows = run(plan, graph, db, row_limit, &mut joins)?;
    Some(ObservedExecution { rows, joins })
}

fn run<const W: usize>(
    plan: &PlanNode,
    graph: &Hypergraph<W>,
    db: &Database,
    row_limit: usize,
    joins: &mut Vec<JoinObservation>,
) -> Option<Vec<Row>> {
    match plan {
        PlanNode::Scan { relation, .. } => Some(db.scan(*relation)),
        PlanNode::Join {
            op,
            left,
            right,
            predicates,
            cardinality,
            ..
        } => {
            let lrows = run(left, graph, db, row_limit, joins)?;
            let rrows = run(right, graph, db, row_limit, joins)?;
            let out = join(
                graph,
                *op,
                &lrows,
                &rrows,
                predicates,
                right.relations_wide::<W>(),
            );
            if out.len() > row_limit {
                return None;
            }
            joins.push(JoinObservation {
                op: *op,
                estimated: *cardinality,
                actual: out.len() as f64,
                left_actual: lrows.len() as f64,
                right_actual: rrows.len() as f64,
                predicates: predicates.clone(),
            });
            Some(out)
        }
    }
}

/// The synthetic table size a catalog cardinality scales down to: `log2(cardinality)` rounded,
/// clamped into `[2, cap]`. Logarithmic scaling preserves the catalog's *relative* size order
/// (facts stay bigger than dimensions) while keeping nested-loop execution feasible; the cap is
/// the knob a time-budgeted caller (CI quick mode) turns down.
pub fn scaled_table_size(cardinality: f64, cap: usize) -> usize {
    let cap = cap.max(2);
    (cardinality.max(2.0).log2().round() as usize).clamp(2, cap)
}

/// Synthetic table sizes for a whole query: each relation's cardinality scaled by
/// [`scaled_table_size`], except where `overrides` pins an explicit row count (the `.jg`
/// `rows=` attribute), which is still capped at `cap`.
pub fn scaled_table_sizes(
    cardinalities: &[f64],
    overrides: &[Option<usize>],
    cap: usize,
) -> Vec<usize> {
    cardinalities
        .iter()
        .enumerate()
        .map(|(r, &c)| match overrides.get(r).copied().flatten() {
            Some(rows) => rows.clamp(1, cap.max(2)),
            None => scaled_table_size(c, cap),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(r: usize) -> PlanNode {
        PlanNode::scan(r, 0.0)
    }

    /// Graph R0 -e0- R1 with known keys: R0 = {1,2,3}, R1 = {1,1,4}.
    fn setup() -> (Hypergraph, Database) {
        let mut b = Hypergraph::builder(2);
        b.add_simple_edge(0, 1);
        (b.build(), Database::new(vec![vec![1, 2, 3], vec![1, 1, 4]]))
    }

    #[test]
    fn q_error_floors_and_symmetry() {
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(10.0, 100.0), 10.0);
        // Zero rows floor to one: no infinities, no division by zero.
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert_eq!(q_error(5.0, 0.0), 5.0);
        assert_eq!(q_error(0.5, 0.25), 1.0);
    }

    #[test]
    fn observed_execution_records_joins_and_true_cost() {
        let (g, db) = setup();
        let plan = PlanNode::join(JoinOp::Inner, scan(0), scan(1), vec![0], 6.0, 6.0);
        let obs = execute_plan_observed(&plan, &g, &db, 1000).unwrap();
        assert_eq!(obs.rows.len(), 2); // key 1 matches the two R1 rows with key 1
        assert_eq!(obs.joins.len(), 1);
        let j = &obs.joins[0];
        assert_eq!(j.actual, 2.0);
        assert_eq!(j.estimated, 6.0);
        assert_eq!(j.left_actual, 3.0);
        assert_eq!(j.right_actual, 3.0);
        assert_eq!(obs.true_cost(), 2.0);
        assert_eq!(obs.max_q_error(), 3.0);
        assert_eq!(obs.median_q_error(), 3.0);
    }

    #[test]
    fn row_limit_aborts_explosive_plans() {
        let (g, db) = setup();
        let plan = PlanNode::join(JoinOp::Inner, scan(0), scan(1), vec![0], 0.0, 0.0);
        assert!(execute_plan_observed(&plan, &g, &db, 1).is_none());
        assert!(execute_plan_observed(&plan, &g, &db, 2).is_some());
    }

    #[test]
    fn inner_selectivity_inversion_reproduces_the_observation() {
        let (g, db) = setup();
        let plan = PlanNode::join(JoinOp::Inner, scan(0), scan(1), vec![0], 6.0, 6.0);
        let obs = execute_plan_observed(&plan, &g, &db, 1000).unwrap();
        let sel = obs.joins[0].observed_selectivity().unwrap();
        // 2 actual rows out of 3 × 3: sel = 2/9, and re-estimating reproduces the actual.
        assert!((sel - 2.0 / 9.0).abs() < 1e-12);
        assert!((3.0 * 3.0 * sel - 2.0).abs() < 1e-12);
    }

    #[test]
    fn non_inner_selectivity_inversions_match_the_estimator() {
        use qo_catalog::CardinalityEstimator;
        let (g, db) = setup();
        for op in [
            JoinOp::LeftOuter,
            JoinOp::FullOuter,
            JoinOp::LeftSemi,
            JoinOp::LeftAnti,
        ] {
            let plan = PlanNode::join(op, scan(0), scan(1), vec![0], 0.0, 0.0);
            let obs = execute_plan_observed(&plan, &g, &db, 1000).unwrap();
            let j = &obs.joins[0];
            let sel = j.observed_selectivity().unwrap();
            let est = CardinalityEstimator::<1>::join_with_selectivity(
                op,
                j.left_actual,
                j.right_actual,
                sel,
            );
            // The outer joins carry a padding floor (|L| resp. |L| + |R|) no selectivity can
            // go below; the inversion is exact except where that floor binds.
            let floor = match op {
                JoinOp::LeftOuter => j.left_actual,
                JoinOp::FullOuter => j.left_actual + j.right_actual,
                _ => 0.0,
            };
            assert!(
                (est - j.actual.max(floor)).abs() < 1e-9,
                "{op:?}: inverted sel {sel} re-estimates {est}, actual {} (floor {floor})",
                j.actual
            );
        }
        // The nestjoin's output is its left input regardless of selectivity: no inversion.
        let plan = PlanNode::join(JoinOp::LeftNest, scan(0), scan(1), vec![0], 0.0, 0.0);
        let obs = execute_plan_observed(&plan, &g, &db, 1000).unwrap();
        assert_eq!(obs.joins[0].observed_selectivity(), None);
    }

    #[test]
    fn observed_stats_cover_base_cards_and_split_shared_edges() {
        let (g, db) = setup();
        let plan = PlanNode::join(JoinOp::Inner, scan(0), scan(1), vec![0], 6.0, 6.0);
        let obs = execute_plan_observed(&plan, &g, &db, 1000).unwrap();
        let stats = obs.observed_stats(&db);
        assert_eq!(stats.cardinality(0), Some(3.0));
        assert_eq!(stats.cardinality(1), Some(3.0));
        let sel = stats.selectivity(0).unwrap();
        assert!((sel - 2.0 / 9.0).abs() < 1e-12);
        assert_eq!(stats.selectivity(1), None, "unobserved edges stay unset");
    }

    #[test]
    fn scaled_sizes_track_relative_order_and_honor_caps() {
        assert_eq!(scaled_table_size(4.0, 16), 2);
        assert_eq!(scaled_table_size(1000.0, 16), 10);
        assert_eq!(scaled_table_size(2.6e6, 16), 16, "cap engages");
        assert_eq!(scaled_table_size(2.6e6, 8), 8, "quick cap engages earlier");
        assert_eq!(scaled_table_size(0.5, 16), 2, "floor of two rows");
        let sizes = scaled_table_sizes(&[2.6e6, 100.0, 4.0], &[None, Some(3), Some(40)], 8);
        assert_eq!(sizes, vec![8, 3, 8], "overrides honored but still capped");
    }
}
