//! Plan execution and result comparison.

use crate::database::{Database, Row, KEY_DOMAIN};
use qo_algebra::OpTree;
use qo_bitset::NodeSet;
use qo_hypergraph::{EdgeId, Hyperedge, Hypergraph};
use qo_plan::{JoinOp, PlanNode};

/// Evaluates the predicate of a hyperedge on a (merged) row.
///
/// The predicate of edge `(u, v, w)` holds iff the key sums of `u` and of `v ∪ w` are congruent
/// modulo the key domain; for a simple edge this is plain key equality. Rows with a NULL key in
/// any referenced relation fail the predicate (SQL three-valued logic collapsed to "false").
fn eval_edge<const W: usize>(edge: &Hyperedge<W>, row: &Row) -> bool {
    let side_sum = |s: NodeSet<W>| -> Option<i64> {
        let mut sum = 0;
        for r in s {
            sum += row.key(r)?;
        }
        Some(sum.rem_euclid(KEY_DOMAIN))
    };
    match (side_sum(edge.left()), side_sum(edge.right() | edge.flex())) {
        (Some(a), Some(b)) => a == b,
        _ => false,
    }
}

fn eval_all<const W: usize>(graph: &Hypergraph<W>, predicates: &[EdgeId], row: &Row) -> bool {
    predicates.iter().all(|&e| eval_edge(graph.edge(e), row))
}

/// Executes a plan over the database, returning the multiset of result rows.
///
/// Generic over the node-set width `W` (like the planner itself), so plans over more than 64
/// relations — the two-word tier — execute through exactly the same code path.
pub fn execute_plan<const W: usize>(
    plan: &PlanNode,
    graph: &Hypergraph<W>,
    db: &Database,
) -> Vec<Row> {
    match plan {
        PlanNode::Scan { relation, .. } => db.scan(*relation),
        PlanNode::Join {
            op,
            left,
            right,
            predicates,
            ..
        } => {
            let lrows = execute_plan(left, graph, db);
            let rrows = execute_plan(right, graph, db);
            join(
                graph,
                *op,
                &lrows,
                &rrows,
                predicates,
                right.relations_wide::<W>(),
            )
        }
    }
}

pub(crate) fn join<const W: usize>(
    graph: &Hypergraph<W>,
    op: JoinOp,
    lrows: &[Row],
    rrows: &[Row],
    predicates: &[EdgeId],
    right_relations: NodeSet<W>,
) -> Vec<Row> {
    let mut out = Vec::new();
    match op.regular_counterpart() {
        JoinOp::Inner => {
            for l in lrows {
                for r in rrows {
                    let merged = l.merge(r);
                    if eval_all(graph, predicates, &merged) {
                        out.push(merged);
                    }
                }
            }
        }
        JoinOp::LeftOuter | JoinOp::FullOuter => {
            let mut right_matched = vec![false; rrows.len()];
            for l in lrows {
                let mut matched = false;
                for (ri, r) in rrows.iter().enumerate() {
                    let merged = l.merge(r);
                    if eval_all(graph, predicates, &merged) {
                        right_matched[ri] = true;
                        matched = true;
                        out.push(merged);
                    }
                }
                if !matched {
                    out.push(l.pad(right_relations));
                }
            }
            if op.regular_counterpart() == JoinOp::FullOuter {
                for (ri, r) in rrows.iter().enumerate() {
                    if !right_matched[ri] {
                        out.push(r.clone());
                    }
                }
            }
        }
        JoinOp::LeftSemi | JoinOp::LeftAnti => {
            let want_match = op.regular_counterpart() == JoinOp::LeftSemi;
            for l in lrows {
                let has_match = rrows
                    .iter()
                    .any(|r| eval_all(graph, predicates, &l.merge(r)));
                if has_match == want_match {
                    out.push(l.clone());
                }
            }
        }
        JoinOp::LeftNest => {
            let group_id = right_relations.min_node().unwrap_or(0);
            for l in lrows {
                let count = rrows
                    .iter()
                    .filter(|r| eval_all(graph, predicates, &l.merge(r)))
                    .count() as i64;
                let mut row = l.clone();
                row.groups.push((group_id, count));
                out.push(row);
            }
        }
        _ => unreachable!("regular_counterpart never returns a dependent operator"),
    }
    out
}

/// Executes the *initial operator tree* directly (predicate `i` of the `i`-th operator in
/// post-order corresponds to hyperedge `i` of the graph derived by
/// [`qo_algebra::derive_query`]).
pub fn execute_optree(tree: &OpTree, graph: &Hypergraph, db: &Database) -> Vec<Row> {
    fn convert(tree: &OpTree, next_edge: &mut EdgeId) -> PlanNode {
        match tree {
            OpTree::Relation {
                id, cardinality, ..
            } => PlanNode::scan(*id, *cardinality),
            OpTree::Op {
                op, left, right, ..
            } => {
                let l = convert(left, next_edge);
                let r = convert(right, next_edge);
                let edge = *next_edge;
                *next_edge += 1;
                PlanNode::join(*op, l, r, vec![edge], 0.0, 0.0)
            }
        }
    }
    let mut next = 0;
    let plan = convert(tree, &mut next);
    debug_assert_eq!(next, graph.edge_count().min(next.max(graph.edge_count())));
    execute_plan(&plan, graph, db)
}

/// Compares two results as multisets (row order and nest-group order are irrelevant).
pub fn results_equal(a: &[Row], b: &[Row]) -> bool {
    fn normalize(rows: &[Row]) -> Vec<Row> {
        let mut v: Vec<Row> = rows
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.groups.sort_unstable();
                r
            })
            .collect();
        v.sort();
        v
    }
    normalize(a) == normalize(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qo_algebra::Predicate;

    /// Graph R0 -e0- R1 -e1- R2 and a small hand-built database.
    fn setup() -> (Hypergraph, Database) {
        let mut b = Hypergraph::builder(3);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(1, 2);
        (
            b.build(),
            Database::new(vec![vec![1, 2, 3], vec![1, 1, 4], vec![1, 5]]),
        )
    }

    fn scan(r: usize) -> PlanNode {
        PlanNode::scan(r, 0.0)
    }

    fn j(op: JoinOp, l: PlanNode, r: PlanNode, preds: &[usize]) -> PlanNode {
        PlanNode::join(op, l, r, preds.to_vec(), 0.0, 0.0)
    }

    #[test]
    fn inner_join_matches_keys() {
        let (g, db) = setup();
        let plan = j(JoinOp::Inner, scan(0), scan(1), &[0]);
        let rows = execute_plan(&plan, &g, &db);
        // R0 keys {1,2,3}, R1 keys {1,1,4}: matches are 1-1 (twice).
        assert_eq!(rows.len(), 2);
        assert!(rows
            .iter()
            .all(|r| r.key(0) == Some(1) && r.key(1) == Some(1)));
    }

    #[test]
    fn join_order_does_not_change_inner_results() {
        let (g, db) = setup();
        let left_deep = j(
            JoinOp::Inner,
            j(JoinOp::Inner, scan(0), scan(1), &[0]),
            scan(2),
            &[1],
        );
        let right_deep = j(
            JoinOp::Inner,
            scan(0),
            j(JoinOp::Inner, scan(1), scan(2), &[1]),
            &[0],
        );
        let a = execute_plan(&left_deep, &g, &db);
        let b = execute_plan(&right_deep, &g, &db);
        assert!(results_equal(&a, &b));
        assert!(!a.is_empty());
    }

    #[test]
    fn left_outer_join_preserves_unmatched_left_rows() {
        let (g, db) = setup();
        let plan = j(JoinOp::LeftOuter, scan(0), scan(1), &[0]);
        let rows = execute_plan(&plan, &g, &db);
        // Two matches for key 1, plus NULL-padded rows for keys 2 and 3.
        assert_eq!(rows.len(), 4);
        assert_eq!(rows.iter().filter(|r| r.key(1).is_none()).count(), 2);
    }

    #[test]
    fn full_outer_join_preserves_both_sides() {
        let (g, db) = setup();
        let plan = j(JoinOp::FullOuter, scan(0), scan(1), &[0]);
        let rows = execute_plan(&plan, &g, &db);
        // 2 matches + 2 unmatched left (keys 2,3) + 1 unmatched right (key 4).
        assert_eq!(rows.len(), 5);
        assert_eq!(rows.iter().filter(|r| r.key(0).is_none()).count(), 1);
    }

    #[test]
    fn semi_and_anti_join_partition_the_left_side() {
        let (g, db) = setup();
        let semi = execute_plan(&j(JoinOp::LeftSemi, scan(0), scan(1), &[0]), &g, &db);
        let anti = execute_plan(&j(JoinOp::LeftAnti, scan(0), scan(1), &[0]), &g, &db);
        assert_eq!(semi.len() + anti.len(), db.table(0).len());
        assert_eq!(semi.len(), 1); // only key 1 has a partner
        assert!(anti.iter().all(|r| r.key(0) != Some(1)));
    }

    #[test]
    fn nestjoin_counts_groups() {
        let (g, db) = setup();
        let rows = execute_plan(&j(JoinOp::LeftNest, scan(0), scan(1), &[0]), &g, &db);
        assert_eq!(rows.len(), 3, "one output row per left tuple");
        let counts: Vec<i64> = rows.iter().map(|r| r.groups[0].1).collect();
        assert!(counts.contains(&2)); // key 1 matches both R1 rows with key 1
        assert!(counts.contains(&0));
    }

    #[test]
    fn dependent_ops_behave_like_their_regular_counterpart() {
        let (g, db) = setup();
        let a = execute_plan(&j(JoinOp::DepJoin, scan(0), scan(1), &[0]), &g, &db);
        let b = execute_plan(&j(JoinOp::Inner, scan(0), scan(1), &[0]), &g, &db);
        assert!(results_equal(&a, &b));
    }

    #[test]
    fn hyperedge_predicates_use_modular_sums() {
        let mut b = Hypergraph::<1>::builder(3);
        b.add_simple_edge(0, 1);
        b.add_hyperedge(NodeSet::from_iter([0, 1]), NodeSet::from_iter([2]));
        let g = b.build();
        let db = Database::new(vec![vec![2], vec![3], vec![5, 6]]);
        // Predicate of edge 1: (k0 + k1) mod 7 == k2 mod 7 ⇒ 5 == 5 matches, 6 does not.
        let plan = j(
            JoinOp::Inner,
            j(JoinOp::Inner, scan(0), scan(1), &[]),
            scan(2),
            &[1],
        );
        let rows = execute_plan(&plan, &g, &db);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key(2), Some(5));
    }

    #[test]
    fn execute_optree_matches_equivalent_plan() {
        let (g, db) = setup();
        let tree = OpTree::op(
            JoinOp::LeftOuter,
            Predicate::between(1, 2, 0.1),
            OpTree::join(
                Predicate::between(0, 1, 0.1),
                OpTree::relation(0, 3.0),
                OpTree::relation(1, 3.0),
            ),
            OpTree::relation(2, 2.0),
        );
        let via_tree = execute_optree(&tree, &g, &db);
        let via_plan = execute_plan(
            &j(
                JoinOp::LeftOuter,
                j(JoinOp::Inner, scan(0), scan(1), &[0]),
                scan(2),
                &[1],
            ),
            &g,
            &db,
        );
        assert!(results_equal(&via_tree, &via_plan));
    }

    #[test]
    fn results_equal_detects_differences() {
        let (g, db) = setup();
        let inner = execute_plan(&j(JoinOp::Inner, scan(0), scan(1), &[0]), &g, &db);
        let outer = execute_plan(&j(JoinOp::LeftOuter, scan(0), scan(1), &[0]), &g, &db);
        assert!(!results_equal(&inner, &outer));
        assert!(results_equal(&inner, &inner));
    }
}
