//! Synthetic data and the row representation.

use qo_bitset::{NodeId, NodeSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The key domain used by the generator and the modular predicate semantics.
pub(crate) const KEY_DOMAIN: i64 = 7;

/// A row of an intermediate result: one optional key value per relation of the query.
///
/// `values[r] == None` means relation `r` is either not part of the row's plan subtree or was
/// NULL-padded by an outer join.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Row {
    pub(crate) values: Vec<Option<i64>>,
    /// Nestjoin group counts appended by nest operators (kept so that different groupings do not
    /// accidentally compare equal).
    pub(crate) groups: Vec<(NodeId, i64)>,
}

impl Row {
    /// A row covering `width` relations with only `relation` set.
    pub fn single(width: usize, relation: NodeId, key: i64) -> Self {
        let mut values = vec![None; width];
        values[relation] = Some(key);
        Row {
            values,
            groups: Vec::new(),
        }
    }

    /// The key of `relation` in this row, if present and non-NULL.
    pub fn key(&self, relation: NodeId) -> Option<i64> {
        self.values.get(relation).copied().flatten()
    }

    /// The nestjoin group counts carried by this row, as `(group relation, match count)`
    /// pairs in the order the nest operators appended them.
    pub fn groups(&self) -> &[(NodeId, i64)] {
        &self.groups
    }

    /// Merges two rows with disjoint relation coverage.
    pub fn merge(&self, other: &Row) -> Row {
        let mut values = self.values.clone();
        for (i, v) in other.values.iter().enumerate() {
            if v.is_some() {
                debug_assert!(values[i].is_none(), "rows overlap on relation {i}");
                values[i] = *v;
            }
        }
        let mut groups = self.groups.clone();
        groups.extend_from_slice(&other.groups);
        Row { values, groups }
    }

    /// NULL-pads the row so that the relations in `relations` are present (as NULL) — used by
    /// outer joins.
    pub fn pad<const W: usize>(&self, _relations: NodeSet<W>) -> Row {
        // Slots already exist (fixed width); padding is a no-op kept for readability at call
        // sites.
        self.clone()
    }
}

/// A tiny database: one single-column table per relation.
#[derive(Clone, Debug)]
pub struct Database {
    tables: Vec<Vec<i64>>,
}

impl Database {
    /// Creates a database from explicit tables.
    pub fn new(tables: Vec<Vec<i64>>) -> Self {
        Database { tables }
    }

    /// Generates random tables: relation `r` gets `sizes[r]` rows with keys drawn uniformly from
    /// the key domain, so that joins have plenty of matches and misses.
    pub fn generate(sizes: &[usize], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x853C_49E6_748F_EA9B);
        let tables = sizes
            .iter()
            .map(|&s| (0..s).map(|_| rng.random_range(0..KEY_DOMAIN)).collect())
            .collect();
        Database { tables }
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.tables.len()
    }

    /// The rows of one relation.
    pub fn table(&self, relation: NodeId) -> &[i64] {
        &self.tables[relation]
    }

    /// The scan of `relation` as rows of width `relation_count()`.
    pub fn scan(&self, relation: NodeId) -> Vec<Row> {
        let width = self.relation_count();
        self.tables[relation]
            .iter()
            .map(|&k| Row::single(width, relation, k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_and_sized() {
        let a = Database::generate(&[3, 5, 2], 9);
        let b = Database::generate(&[3, 5, 2], 9);
        assert_eq!(a.table(1), b.table(1));
        assert_eq!(a.relation_count(), 3);
        assert_eq!(a.table(0).len(), 3);
        assert_eq!(a.table(2).len(), 2);
        assert!(a.table(1).iter().all(|k| (0..KEY_DOMAIN).contains(k)));
    }

    #[test]
    fn scan_produces_single_relation_rows() {
        let db = Database::new(vec![vec![1, 2], vec![5]]);
        let rows = db.scan(1);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key(1), Some(5));
        assert_eq!(rows[0].key(0), None);
    }

    #[test]
    fn merge_combines_disjoint_rows() {
        let a = Row::single(3, 0, 4);
        let b = Row::single(3, 2, 6);
        let m = a.merge(&b);
        assert_eq!(m.key(0), Some(4));
        assert_eq!(m.key(1), None);
        assert_eq!(m.key(2), Some(6));
    }
}
