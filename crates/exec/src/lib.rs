//! A small in-memory execution engine used to *validate* reordered join plans and to *measure*
//! the estimator against reality.
//!
//! The DPhyp paper measures optimization time only; correctness of the reorderings rests on the
//! conflict rules of Sec. 5. This crate closes the loop for the reproduction: plans produced by
//! the optimizers can be executed over synthetic data and their results compared with the result
//! of the original operator tree. Inner-join-only queries must give identical results for every
//! valid ordering; queries with non-inner operators must give the same result as the initial
//! operator tree.
//!
//! On top of plain execution, the [`observe`-layer](execute_plan_observed) records the *actual*
//! cardinality of every intermediate result, computes per-join [`q_error`]s against the plan's
//! estimates, and derives an [`ObservedStats`] overlay (true base cardinalities, inverted
//! per-edge selectivities) the planner can be re-run under — the measurement half of the
//! cardinality-feedback loop (`qo-service::Service::plan_observed` is the planning half).
//!
//! The data model is deliberately tiny: every relation has a single integer join-key column, a
//! row of an intermediate result is a vector of `Option<i64>` (one slot per relation, `None`
//! meaning "NULL / not present"), and the predicate of hyperedge `(u, v)` holds iff the sum of
//! the keys of `u` equals the sum of the keys of `v` modulo a small domain — which degenerates
//! to plain key equality for simple edges. Dependent operators are executed like their regular
//! counterparts (the data model has no correlated expressions), and the nestjoin outputs its
//! left row together with the group count. These simplifications are documented substitutions;
//! they preserve exactly the property the tests need: two plans are equivalent iff they compute
//! the same multiset of rows.
//!
//! ```
//! use qo_exec::{execute_plan, results_equal, Database};
//! use qo_catalog::Catalog;
//! use qo_hypergraph::Hypergraph;
//!
//! // Plan a 3-relation chain, then execute the optimized plan over synthetic data.
//! let mut b = Hypergraph::<1>::builder(3);
//! b.add_simple_edge(0, 1);
//! b.add_simple_edge(1, 2);
//! let graph = b.build();
//! let catalog = Catalog::uniform(3, 100.0, 2, 0.1);
//! let plan = dphyp::optimize(&graph, &catalog).unwrap().plan;
//!
//! let db = Database::generate(&[30, 40, 50], 42);
//! let rows = execute_plan(&plan, &graph, &db);
//! // Every row binds a key for each of the three relations.
//! assert!(rows.iter().all(|r| (0..3).all(|rel| r.key(rel).is_some())));
//! assert!(results_equal(&rows, &rows));
//! ```

mod database;
mod executor;
mod observe;

pub use database::{Database, Row};
pub use executor::{execute_optree, execute_plan, results_equal};
pub use observe::{
    execute_plan_observed, q_error, scaled_table_size, scaled_table_sizes, JoinObservation,
    ObservedExecution,
};

pub use qo_bitset::{NodeId, NodeSet};
pub use qo_catalog::{ExecutionFeedback, ObservedStats};
