//! A small in-memory execution engine used to *validate* reordered join plans.
//!
//! The DPhyp paper measures optimization time only; correctness of the reorderings rests on the
//! conflict rules of Sec. 5. This crate closes the loop for the reproduction: plans produced by
//! the optimizers can be executed over synthetic data and their results compared with the result
//! of the original operator tree. Inner-join-only queries must give identical results for every
//! valid ordering; queries with non-inner operators must give the same result as the initial
//! operator tree.
//!
//! The data model is deliberately tiny: every relation has a single integer join-key column, a
//! row of an intermediate result is a vector of `Option<i64>` (one slot per relation, `None`
//! meaning "NULL / not present"), and the predicate of hyperedge `(u, v)` holds iff the sum of
//! the keys of `u` equals the sum of the keys of `v` modulo a small domain — which degenerates
//! to plain key equality for simple edges. Dependent operators are executed like their regular
//! counterparts (the data model has no correlated expressions), and the nestjoin outputs its
//! left row together with the group count. These simplifications are documented substitutions;
//! they preserve exactly the property the tests need: two plans are equivalent iff they compute
//! the same multiset of rows.

mod database;
mod executor;

pub use database::{Database, Row};
pub use executor::{execute_optree, execute_plan, results_equal};

pub use qo_bitset::{NodeId, NodeSet};
