//! The regret ledger: longitudinal accounting of plan quality over repeated serve cycles —
//! and the serving-side brake that keeps that regret from growing.
//!
//! Per-serve observability answers "what did this serve cost"; the ledger answers the
//! *online* question — over repeated servings of the same query shape, how much worse were
//! the plans we served than the best plan we have ever seen for that shape, measured in
//! *true* cost (`C_out` over actual cardinalities, reported by instrumented execution)?
//! Each observation's **regret** is
//!
//! ```text
//! regret_c = true_cost_c − min(true_cost_1 … true_cost_c)
//! ```
//!
//! — served cost minus best-known-in-hindsight, so the first observation of a shape and
//! every new best have regret 0, and the feedback loop converging shows up as the per-cycle
//! regret falling to 0 and staying there.
//!
//! # Pinning: how the non-increase guarantee is earned
//!
//! The model-level "feedback never worsens cost" guarantee speaks about *modeled* cost;
//! executed cost can regress when the estimator's independence assumptions miss. The ledger
//! therefore retains, per shape, every join order whose execution has been measured
//! (identified by [`qo_plan::PlanNode::order_digest`]) with its best observed true cost. At
//! serve time the service consults [`RegretLedger::pin`]:
//!
//! * a candidate **measured worse** than the best-known order is vetoed — the proven best
//!   is re-costed under the current statistics and served instead
//!   ([`PlanSource::Pinned`](crate::PlanSource::Pinned));
//! * an **unmeasured** candidate is served (explored) only while the shape has at most one
//!   measured order; after that first exploration, novel candidates are pinned too.
//!
//! One exploration is exactly the slack the non-increase theorem needs: per shape, cycle 1
//! is regret-free by definition, cycle 2 may pay once for exploring the model's candidate,
//! and from cycle 3 on every serve is either the proven best (regret 0 on stable data) or a
//! candidate that already *is* the best. Callers who never report execution feedback
//! ([`crate::Service::observe_execution`]) keep an empty ledger and are completely
//! untouched.
//!
//! Plans are stored in the ids of the query that served them, together with a *layout*
//! digest of its canonical-to-original id mapping: two queries can share a canonical shape
//! while labeling their relations differently, and a pinned order is only ever handed to a
//! serve whose layout matches — cross-layout serves fall back to the model's candidate.

use dphyp::PlanTier;
use qo_plan::PlanNode;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Relative margin a measured candidate must exceed the best-known true cost by before it is
/// vetoed — ties and float noise must not cause churn between equivalent plans.
const PIN_MARGIN: f64 = 1e-9;

/// Measured join orders retained per shape. Feedback converges after a handful of distinct
/// orders; the cap only bounds pathological callers.
const MAX_PLANS_PER_SHAPE: usize = 16;

/// Cumulative regret state of one query shape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShapeRegret {
    /// The shape fingerprint this entry tracks.
    pub shape: u64,
    /// Observations (serve-execute-report cycles) recorded for this shape.
    pub cycles: u64,
    /// Distinct join orders measured for this shape.
    pub plans: u64,
    /// True cost of the most recent observation.
    pub last_true_cost: f64,
    /// Best (lowest) true cost ever observed for this shape.
    pub best_true_cost: f64,
    /// Regret of the most recent observation: `last_true_cost − best_true_cost`.
    pub last_regret: f64,
    /// Sum of per-cycle regrets over all observations.
    pub cumulative_regret: f64,
}

/// What the ledger knows about one measured join order of a shape.
struct PlanRecord {
    /// The order itself, in the serving query's original relation/edge ids.
    plan: PlanNode,
    /// Digest of the serving query's canonical-to-original id mapping.
    layout: u64,
    /// The tier that originally produced it.
    tier: PlanTier,
    /// Best true cost measured for this order.
    true_cost: f64,
}

/// Per-shape ledger state: the public regret counters plus the measured-plan registry
/// backing the pinning decision.
struct ShapeState {
    regret: ShapeRegret,
    /// Measured orders by [`PlanNode::order_digest`].
    plans: BTreeMap<u64, PlanRecord>,
    /// Digest of the measured order with the lowest true cost.
    best_digest: Option<u64>,
}

/// The serving decision [`RegretLedger::pin`] hands back: serve this proven order instead of
/// the candidate.
pub(crate) struct PinnedPlan {
    /// The proven-best order, in the requesting layout's original ids (re-cost it under the
    /// current statistics before serving).
    pub plan: PlanNode,
    /// Its [`PlanNode::order_digest`].
    pub digest: u64,
    /// The tier that originally produced it.
    pub tier: PlanTier,
}

/// Thread-safe per-shape regret accounting. One instance lives in the service; every
/// `observe` call (driven by `Service::observe_execution`) corresponds to one
/// executed-and-reported serve.
#[derive(Default)]
pub struct RegretLedger {
    shapes: Mutex<BTreeMap<u64, ShapeState>>,
    pins: AtomicU64,
}

impl RegretLedger {
    /// An empty ledger.
    pub fn new() -> RegretLedger {
        RegretLedger::default()
    }

    /// The pinning decision for one about-to-be-served candidate (see the module docs):
    /// `Some` when the candidate must be replaced by the proven-best order. Only orders
    /// measured under the same `layout` are ever handed out.
    pub(crate) fn pin(&self, shape: u64, layout: u64, candidate_digest: u64) -> Option<PinnedPlan> {
        let shapes = self.shapes.lock().expect("regret ledger poisoned");
        let state = shapes.get(&shape)?;
        let best_digest = state.best_digest?;
        if best_digest == candidate_digest {
            return None;
        }
        let best = &state.plans[&best_digest];
        if best.layout != layout {
            return None;
        }
        let veto = match state.plans.get(&candidate_digest) {
            // Measured worse than the proven best: never serve it again.
            Some(measured) => measured.true_cost > best.true_cost * (1.0 + PIN_MARGIN),
            // Unmeasured: explore only while at most one order has been measured.
            None => state.plans.len() >= 2,
        };
        if !veto {
            return None;
        }
        self.pins.fetch_add(1, Ordering::Relaxed);
        Some(PinnedPlan {
            plan: best.plan.clone(),
            digest: best_digest,
            tier: best.tier,
        })
    }

    /// Serves answered by pinning the proven-best order over the model's candidate.
    pub fn pins(&self) -> u64 {
        self.pins.load(Ordering::Relaxed)
    }

    /// Records one observed execution of shape `shape` with the given true cost, linking the
    /// measured cost to the served order (`digest`, `plan`, `layout`, `tier`). Returns this
    /// observation's regret (0 for a first observation or a new best).
    pub(crate) fn observe(
        &self,
        shape: u64,
        layout: u64,
        digest: u64,
        tier: PlanTier,
        plan: &PlanNode,
        true_cost: f64,
    ) -> f64 {
        let mut shapes = self.shapes.lock().expect("regret ledger poisoned");
        let state = shapes.entry(shape).or_insert_with(|| ShapeState {
            regret: ShapeRegret {
                shape,
                cycles: 0,
                plans: 0,
                last_true_cost: true_cost,
                best_true_cost: true_cost,
                last_regret: 0.0,
                cumulative_regret: 0.0,
            },
            plans: BTreeMap::new(),
            best_digest: None,
        });
        if state.plans.len() < MAX_PLANS_PER_SHAPE || state.plans.contains_key(&digest) {
            let record = state.plans.entry(digest).or_insert_with(|| PlanRecord {
                plan: plan.clone(),
                layout,
                tier,
                true_cost,
            });
            record.true_cost = record.true_cost.min(true_cost);
            let measured = record.true_cost;
            let best_cost = state.best_digest.map(|d| state.plans[&d].true_cost);
            if best_cost.is_none_or(|c| measured < c) {
                state.best_digest = Some(digest);
            }
        }
        let entry = &mut state.regret;
        entry.cycles += 1;
        entry.plans = state.plans.len() as u64;
        entry.best_true_cost = entry.best_true_cost.min(true_cost);
        let regret = true_cost - entry.best_true_cost;
        entry.last_true_cost = true_cost;
        entry.last_regret = regret;
        entry.cumulative_regret += regret;
        regret
    }

    /// The per-shape entries, ordered by shape fingerprint.
    pub fn shapes(&self) -> Vec<ShapeRegret> {
        self.shapes
            .lock()
            .expect("regret ledger poisoned")
            .values()
            .map(|s| s.regret)
            .collect()
    }

    /// The entry for one shape, if observed.
    pub fn shape(&self, shape: u64) -> Option<ShapeRegret> {
        self.shapes
            .lock()
            .expect("regret ledger poisoned")
            .get(&shape)
            .map(|s| s.regret)
    }

    /// Total observations across all shapes.
    pub fn cycles(&self) -> u64 {
        self.shapes
            .lock()
            .expect("regret ledger poisoned")
            .values()
            .map(|s| s.regret.cycles)
            .sum()
    }

    /// Sum of cumulative regrets across all shapes.
    pub fn total_regret(&self) -> f64 {
        self.shapes
            .lock()
            .expect("regret ledger poisoned")
            .values()
            .map(|s| s.regret.cumulative_regret)
            .sum()
    }

    /// Sum of the most recent per-shape regrets — "how far from best-known is the fleet
    /// right now".
    pub fn last_cycle_regret(&self) -> f64 {
        self.shapes
            .lock()
            .expect("regret ledger poisoned")
            .values()
            .map(|s| s.regret.last_regret)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAYOUT: u64 = 0xABCD;

    fn plan(relation: usize) -> PlanNode {
        PlanNode::scan(relation, 10.0)
    }

    fn observe(ledger: &RegretLedger, shape: u64, relation: usize, true_cost: f64) -> f64 {
        let p = plan(relation);
        ledger.observe(
            shape,
            LAYOUT,
            p.order_digest(),
            PlanTier::Exact,
            &p,
            true_cost,
        )
    }

    #[test]
    fn first_observation_and_new_bests_have_zero_regret() {
        let ledger = RegretLedger::new();
        assert_eq!(
            observe(&ledger, 7, 0, 100.0),
            0.0,
            "first sight: no hindsight yet"
        );
        assert_eq!(
            observe(&ledger, 7, 1, 80.0),
            0.0,
            "a new best is regret-free"
        );
        let s = ledger.shape(7).unwrap();
        assert_eq!(s.best_true_cost, 80.0);
        assert_eq!(s.cycles, 2);
        assert_eq!(s.plans, 2);
        assert_eq!(s.cumulative_regret, 0.0);
    }

    #[test]
    fn regret_is_excess_over_best_known_and_accumulates() {
        let ledger = RegretLedger::new();
        observe(&ledger, 1, 0, 50.0);
        assert_eq!(observe(&ledger, 1, 1, 90.0), 40.0);
        assert_eq!(observe(&ledger, 1, 2, 60.0), 10.0);
        let s = ledger.shape(1).unwrap();
        assert_eq!(s.last_true_cost, 60.0);
        assert_eq!(s.last_regret, 10.0);
        assert_eq!(s.cumulative_regret, 50.0);
        assert_eq!(s.best_true_cost, 50.0);
    }

    #[test]
    fn shapes_are_independent_and_aggregates_sum_over_them() {
        let ledger = RegretLedger::new();
        observe(&ledger, 1, 0, 10.0);
        observe(&ledger, 1, 1, 14.0);
        observe(&ledger, 2, 0, 5.0);
        observe(&ledger, 2, 0, 5.0);
        assert_eq!(ledger.shapes().len(), 2);
        assert_eq!(ledger.cycles(), 4);
        assert_eq!(ledger.total_regret(), 4.0);
        assert_eq!(ledger.last_cycle_regret(), 4.0);
        assert_eq!(ledger.shape(2).unwrap().cumulative_regret, 0.0);
        assert_eq!(ledger.shape(3), None);
    }

    #[test]
    fn pin_vetoes_measured_worse_candidates_and_serves_the_proven_best() {
        let ledger = RegretLedger::new();
        let (best, worse) = (plan(0), plan(1));
        observe(&ledger, 9, 0, 50.0);
        // One measured order: an unmeasured candidate may still explore.
        assert!(ledger.pin(9, LAYOUT, plan(2).order_digest()).is_none());
        observe(&ledger, 9, 1, 90.0);
        // The measured-worse order is vetoed in favor of the best…
        let pinned = ledger
            .pin(9, LAYOUT, worse.order_digest())
            .expect("measured-worse candidate must be vetoed");
        assert_eq!(pinned.digest, best.order_digest());
        assert_eq!(pinned.plan, best);
        // …the best itself is never vetoed…
        assert!(ledger.pin(9, LAYOUT, best.order_digest()).is_none());
        // …and after that first failed exploration, novel candidates are pinned too.
        assert!(ledger.pin(9, LAYOUT, plan(2).order_digest()).is_some());
        assert_eq!(ledger.pins(), 2);
        // Other shapes and other layouts are untouched.
        assert!(ledger.pin(8, LAYOUT, worse.order_digest()).is_none());
        assert!(
            ledger.pin(9, LAYOUT ^ 1, worse.order_digest()).is_none(),
            "a pinned order is never handed to a different relation layout"
        );
    }

    #[test]
    fn a_measured_improvement_takes_over_as_the_pin_target() {
        let ledger = RegretLedger::new();
        observe(&ledger, 4, 0, 50.0);
        observe(&ledger, 4, 1, 30.0);
        let pinned = ledger
            .pin(4, LAYOUT, plan(0).order_digest())
            .expect("the old best is now measured-worse");
        assert_eq!(pinned.digest, plan(1).order_digest());
        assert_eq!(ledger.shape(4).unwrap().best_true_cost, 30.0);
    }
}
