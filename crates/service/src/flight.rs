//! The serve flight recorder: a bounded ring of structured [`ServeRecord`]s — one per
//! serve, always on — for post-mortem debugging.
//!
//! Where the metrics registry aggregates (counters, histograms) and the sampling sink keeps
//! a handful of full span trees, the flight recorder sits in between: it remembers *which*
//! recent serves happened, in order, with enough per-serve structure (fingerprint, cache
//! path, tier, latency, modeled cost, execution feedback when observed, sampled trace id)
//! to reconstruct an incident after the fact. Recording is one short `Mutex`-guarded ring
//! push per serve — microseconds-scale serves dominate it by orders of magnitude — and the
//! ring is bounded, so an unattended service never grows.

use crate::fingerprint::Fingerprint;
use crate::service::PlanSource;
use dphyp::{ExecutionFeedback, PlanTier};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One serve, as the flight recorder remembers it.
#[derive(Clone, Copy, Debug)]
pub struct ServeRecord {
    /// The serve's sequence number (shared with the sampler's [`qo_obsv::SampledTrace`]).
    pub seq: u64,
    /// The served query's fingerprint (shape / stats).
    pub fingerprint: Fingerprint,
    /// The adaptive tier that produced the join order.
    pub tier: PlanTier,
    /// Which serving path answered (hit / re-cost / miss / re-cost fallback).
    pub source: PlanSource,
    /// End-to-end serve latency in nanoseconds.
    pub latency_ns: u64,
    /// The served plan's modeled cost.
    pub cost: f64,
    /// The plan's true cost, once [`Service::observe_execution`](crate::Service) reported
    /// it. `None` until (unless) the caller executes the plan instrumented.
    pub true_cost: Option<f64>,
    /// Largest per-join q-error of the observed execution, when observed.
    pub max_q_error: Option<f64>,
    /// Id of the sampled trace covering this serve, when the sampler selected it.
    pub trace_id: Option<u64>,
}

/// A bounded, thread-safe ring of the most recent [`ServeRecord`]s.
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<ServeRecord>>,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining the most recent `capacity` serves (zero is bumped to 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends one serve, evicting the oldest record when full.
    pub(crate) fn record(&self, record: ServeRecord) {
        let mut ring = self.ring.lock().expect("flight recorder poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }

    /// Attaches execution feedback to the retained record of serve `seq` (a no-op when the
    /// record has already been evicted). Returns whether a record was annotated.
    pub(crate) fn annotate(&self, seq: u64, feedback: &ExecutionFeedback) -> bool {
        let mut ring = self.ring.lock().expect("flight recorder poisoned");
        // Newest-first: feedback almost always concerns a very recent serve.
        for r in ring.iter_mut().rev() {
            if r.seq == seq {
                r.true_cost = Some(feedback.true_cost);
                r.max_q_error = Some(feedback.max_q_error);
                return true;
            }
        }
        false
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<ServeRecord> {
        self.ring
            .lock()
            .expect("flight recorder poisoned")
            .iter()
            .copied()
            .collect()
    }

    /// The most recent record, if any.
    pub fn last(&self) -> Option<ServeRecord> {
        self.ring
            .lock()
            .expect("flight recorder poisoned")
            .back()
            .copied()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight recorder poisoned").len()
    }

    /// Whether nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Renders the retained records as a fixed-width text table, oldest first — the
    /// post-mortem view. Unobserved serves show `-` in the execution columns; untraced
    /// serves show `-` for the trace id.
    pub fn dump(&self) -> String {
        let records = self.records();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight recorder: {} serve(s) retained, {} evicted",
            records.len(),
            self.dropped()
        );
        let _ = writeln!(
            out,
            "{:>6}  {:<33}  {:<6}  {:<15}  {:>12}  {:>14}  {:>14}  {:>8}  {:>5}",
            "seq",
            "fingerprint",
            "tier",
            "source",
            "latency_ns",
            "cost",
            "true_cost",
            "max_q",
            "trace"
        );
        for r in &records {
            let true_cost = r
                .true_cost
                .map_or_else(|| "-".to_owned(), |c| format!("{c:.1}"));
            let max_q = r
                .max_q_error
                .map_or_else(|| "-".to_owned(), |q| format!("{q:.2}"));
            let trace = r
                .trace_id
                .map_or_else(|| "-".to_owned(), |id| id.to_string());
            let _ = writeln!(
                out,
                "{:>6}  {:<33}  {:<6}  {:<15}  {:>12}  {:>14.1}  {:>14}  {:>8}  {:>5}",
                r.seq,
                r.fingerprint,
                r.tier,
                r.source,
                r.latency_ns,
                r.cost,
                true_cost,
                max_q,
                trace
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64) -> ServeRecord {
        ServeRecord {
            seq,
            fingerprint: Fingerprint {
                shape: 0xABC,
                stats: 0xDEF,
            },
            tier: PlanTier::Exact,
            source: PlanSource::Miss,
            latency_ns: 1000 + seq,
            cost: 42.5,
            true_cost: None,
            max_q_error: None,
            trace_id: seq.is_multiple_of(2).then_some(seq + 1),
        }
    }

    #[test]
    fn ring_is_bounded_fifo_with_eviction_accounting() {
        let fr = FlightRecorder::new(3);
        assert!(fr.is_empty());
        for seq in 0..5 {
            fr.record(record(seq));
        }
        let records = fr.records();
        assert_eq!(records.iter().map(|r| r.seq).collect::<Vec<_>>(), [2, 3, 4]);
        assert_eq!(fr.dropped(), 2);
        assert_eq!(fr.last().unwrap().seq, 4);
        assert_eq!(fr.len(), 3);
    }

    #[test]
    fn annotate_fills_execution_columns_and_tolerates_evicted_seqs() {
        let fr = FlightRecorder::new(2);
        fr.record(record(0));
        fr.record(record(1));
        let feedback = ExecutionFeedback {
            true_cost: 99.0,
            max_q_error: 3.5,
            median_q_error: 1.2,
        };
        assert!(fr.annotate(1, &feedback));
        let r = fr.last().unwrap();
        assert_eq!(r.true_cost, Some(99.0));
        assert_eq!(r.max_q_error, Some(3.5));
        fr.record(record(2)); // evicts seq 0
        assert!(
            !fr.annotate(0, &feedback),
            "evicted serves annotate nothing"
        );
    }

    #[test]
    fn dump_renders_every_record_with_placeholders() {
        let fr = FlightRecorder::new(4);
        fr.record(record(0));
        fr.record(record(1));
        fr.annotate(
            0,
            &ExecutionFeedback {
                true_cost: 7.0,
                max_q_error: 2.0,
                median_q_error: 1.5,
            },
        );
        let dump = fr.dump();
        assert!(dump.contains("2 serve(s) retained, 0 evicted"));
        assert!(dump.contains("0000000000000abc/0000000000000def"));
        assert!(dump.contains("7.0"), "observed true cost rendered:\n{dump}");
        assert!(dump.contains("2.00"), "observed q-error rendered:\n{dump}");
        // Serve 1 is unobserved and untraced: placeholder columns.
        let line1 = dump.lines().last().unwrap();
        assert!(line1.contains(" - "), "placeholders rendered:\n{dump}");
    }
}
