//! Query fingerprints: the plan cache's two-part key, plus the optimizer-options key.
//!
//! A fingerprint separates *what the query is* from *what the statistics currently say*:
//!
//! * [`Fingerprint::shape`] — the relation-order-invariant 64-bit digest of the canonical
//!   hypergraph shape ([`dphyp::canonicalize`]). Renaming or reordering relations, reordering
//!   edges, or swapping the sides of a commutative join all preserve it; adding/removing an
//!   edge, growing a hypernode, changing an operator or a lateral reference all change it.
//! * [`Fingerprint::stats`] — a digest of the statistics alone: the catalog's
//!   [`qo_catalog::StatsEpoch`] over the canonical instantiation. Nothing but cardinalities,
//!   selectivities, operators and lateral sets feeds it.
//!
//! The cache keys entries by `shape` and compares `stats` on lookup, so the three outcomes a
//! serving layer needs are distinguishable by construction: full hit (both equal), stats drift
//! (shape equal, stats changed → incremental re-cost), and miss.
//!
//! Orthogonal to both halves, [`options_key`] digests every [`AdaptiveOptions`] field that can
//! change the *produced plan* (cost model, budgets, IDP configuration). A cached plan is only
//! reused — verbatim *or* as a re-cost seed — by requests with the identical options key: a
//! plan produced under a 1-pair budget must never satisfy a caller paying for exact
//! enumeration, and an options change is neither a hit nor a drift but a fresh optimization.
//! [`AdaptiveOptions::parallelism`] and [`AdaptiveOptions::pruning`] are deliberately
//! *excluded*: the parallel exact tier is bit-identical to the sequential one at every thread
//! count, and cost-bounded pruning changes only how much work the exact tier performs — never
//! the produced plan, its cost, or the tier the driver lands in. A plan produced at one
//! setting is exactly the plan every other setting would produce — callers with different
//! thread or pruning preferences share one cache entry.

use dphyp::{AdaptiveOptions, CanonicalQuery, CostModelKind, IdpStrategy, QuerySpec};
use qo_catalog::StatsEpoch;
use std::fmt;

/// The two-part cache key of one canonicalized query: a shape digest and a stats digest
/// (see the crate docs for how the serving layer distinguishes hit / drift / miss).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// Relation-order-invariant digest of the hypergraph shape (no statistics).
    pub shape: u64,
    /// Digest of the statistics epoch (no structure, no options).
    pub stats: u64,
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}/{:016x}", self.shape, self.stats)
    }
}

impl Fingerprint {
    /// Fingerprints a canonicalized query.
    pub fn of(canonical: &CanonicalQuery) -> Fingerprint {
        Fingerprint {
            shape: canonical.shape_hash,
            stats: stats_hash(&canonical.spec),
        }
    }
}

/// Digests the canonical spec's statistics through the catalog's stats-epoch view.
fn stats_hash(spec: &QuerySpec) -> u64 {
    let n = spec.node_count();
    let StatsEpoch(epoch) = if n <= 64 {
        spec.instantiate_catalog::<1>().stats_epoch()
    } else if n <= 128 {
        spec.instantiate_catalog::<2>().stats_epoch()
    } else {
        // Oversized specs fail planning before any cache interaction; the value is never used.
        StatsEpoch(0)
    };
    epoch
}

/// Digests every [`AdaptiveOptions`] field that can change which plan an optimization
/// produces. Entries are only reusable by requests with an equal key.
///
/// `parallelism`, `pruning`, `trace` and `sample_rate` are intentionally left out: plans
/// are bit-identical across thread counts, pruning settings, tracing settings and sampling
/// rates (see the crate docs), so keying on any of them would only fragment the cache.
pub fn options_key(options: &AdaptiveOptions) -> u64 {
    let model_rank = match options.cost_model {
        CostModelKind::Cout => 0u64,
        CostModelKind::Mixed => 1,
    };
    let strategy_rank = match options.idp_strategy {
        IdpStrategy::SmallestCardinality => 0u64,
        IdpStrategy::ConnectedSmallest => 1,
    };
    StatsEpoch::SEED
        .fold(model_rank)
        .fold(options.ccp_budget as u64)
        .fold(options.idp_block_size as u64)
        .fold(strategy_rank)
        .fold(
            options
                .time_budget
                .map_or(u64::MAX, |d| d.as_nanos() as u64),
        )
        .finalize()
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use dphyp::canonicalize;
    use std::time::Duration;

    fn star(cards: [f64; 4], sel: f64) -> CanonicalQuery {
        let mut b = QuerySpec::builder(4);
        for (i, c) in cards.into_iter().enumerate() {
            b.set_cardinality(i, c);
        }
        for i in 1..4 {
            b.add_simple_edge(0, i, sel);
        }
        canonicalize(&b.build())
    }

    #[test]
    fn stats_drift_changes_only_the_stats_half() {
        let a = Fingerprint::of(&star([1e6, 10.0, 20.0, 30.0], 0.01));
        let b = Fingerprint::of(&star([1e6, 10.0, 20.0, 31.0], 0.01));
        assert_eq!(a.shape, b.shape);
        assert_ne!(a.stats, b.stats);
        let c = Fingerprint::of(&star([1e6, 10.0, 20.0, 30.0], 0.02));
        assert_eq!(a.shape, c.shape);
        assert_ne!(a.stats, c.stats);
    }

    #[test]
    fn every_plan_affecting_option_changes_the_options_key() {
        let base = AdaptiveOptions::default();
        let key = options_key(&base);
        assert_eq!(key, options_key(&base.clone()), "deterministic");
        for changed in [
            AdaptiveOptions {
                cost_model: CostModelKind::Mixed,
                ..base
            },
            AdaptiveOptions {
                ccp_budget: base.ccp_budget - 1,
                ..base
            },
            AdaptiveOptions {
                idp_block_size: 4,
                ..base
            },
            AdaptiveOptions {
                idp_strategy: IdpStrategy::ConnectedSmallest,
                ..base
            },
            AdaptiveOptions {
                time_budget: Some(Duration::from_millis(5)),
                ..base
            },
        ] {
            assert_ne!(key, options_key(&changed), "{changed:?}");
        }
    }

    #[test]
    fn parallelism_never_fragments_the_options_key() {
        // The parallel exact tier is bit-identical to the sequential one, so every thread
        // setting must map onto the same cache entry.
        let base = AdaptiveOptions::default();
        let key = options_key(&base);
        for parallelism in [None, Some(0), Some(1), Some(2), Some(8)] {
            assert_eq!(
                key,
                options_key(&AdaptiveOptions {
                    parallelism,
                    ..base
                })
            );
        }
    }

    #[test]
    fn pruning_never_fragments_the_options_key() {
        // Pruned enumeration produces the identical plan, cost and tier — only fewer cost
        // evaluations — so both settings must map onto the same cache entry, mirroring the
        // parallelism exclusion above.
        let base = AdaptiveOptions::default();
        let key = options_key(&base);
        for pruning in [false, true] {
            assert_eq!(key, options_key(&AdaptiveOptions { pruning, ..base }));
        }
    }

    #[test]
    fn trace_never_fragments_the_options_key() {
        // Tracing only observes wall times — the produced plan is bit-identical with the
        // recorder on or off — so both settings must map onto the same cache entry.
        let base = AdaptiveOptions::default();
        let key = options_key(&base);
        for trace in [false, true] {
            assert_eq!(key, options_key(&AdaptiveOptions { trace, ..base }));
        }
    }

    #[test]
    fn sample_rate_never_fragments_the_options_key() {
        // The always-on sampler only decides which serves get a recording sink — plans,
        // costs and tiers are bit-identical at every rate — so, like `trace`, the knob must
        // map every setting onto the same cache entry.
        let base = AdaptiveOptions::default();
        let key = options_key(&base);
        for sample_rate in [None, Some(0), Some(1), Some(1024)] {
            assert_eq!(
                key,
                options_key(&AdaptiveOptions {
                    sample_rate,
                    ..base
                })
            );
        }
    }

    #[test]
    fn display_is_hex_pair() {
        let fp = Fingerprint {
            shape: 0xabc,
            stats: 0xdef,
        };
        assert_eq!(fp.to_string(), "0000000000000abc/0000000000000def");
    }
}
