//! The service's metrics registry: one place where the stack's scattered telemetry —
//! [`CacheStats`], `BudgetTelemetry`, `ParallelTelemetry`, sampler counters, the regret
//! ledger — unifies into named counters, gauges and latency histograms.
//!
//! Naming scheme: `qo_<subsystem>_<quantity>[_<unit|total>]`. Counters end in `_total`,
//! latency histograms in `_ns` (log2-bucketed nanoseconds, integer-only on the hot path).
//! Subsystems: `cache` (plan-cache outcomes, view-synced from [`CacheStats`] at snapshot
//! time), `serve` (end-to-end per-path latencies recorded live, plus sampler admission
//! counters), `optimizer` (budget and pruning telemetry accumulated across cold-path
//! optimizations), `parallel` (cost-pass work stealing), `trace` (sampled-recording ring
//! eviction), and `regret` (per-shape true-cost regret, view-synced from the
//! [`RegretLedger`] — including one labeled series per observed shape,
//! `qo_regret_last{shape="…"}` / `qo_regret_cumulative{shape="…"}`).

use crate::cache::CacheStats;
use crate::regret::RegretLedger;
use dphyp::OptimizeResult;
use dphyp::PlanTier;
use qo_obsv::{Counter, Histogram, MetricsRegistry, MetricsSnapshot, SamplerStats};
use std::sync::Arc;
use std::time::Duration;

/// Pre-registered handles into the service's [`MetricsRegistry`]. Everything static is
/// registered up front in [`ServiceMetrics::new`], so a snapshot of a fresh service already
/// exposes the full (all-zero) metric surface and the Prometheus rendering has a stable
/// shape; only the per-shape regret series appear dynamically, as shapes are observed.
pub(crate) struct ServiceMetrics {
    registry: MetricsRegistry,
    serve_hit_ns: Arc<Histogram>,
    serve_recost_ns: Arc<Histogram>,
    serve_miss_ns: Arc<Histogram>,
    optimizer_exact_ccps: Arc<Counter>,
    optimizer_pruned_pairs: Arc<Counter>,
    optimizer_pruned_classes: Arc<Counter>,
    optimizer_seed_bound_ns: Arc<Histogram>,
    optimizer_plans_exact: Arc<Counter>,
    optimizer_plans_idp: Arc<Counter>,
    optimizer_plans_greedy: Arc<Counter>,
    parallel_stolen_chunks: Arc<Counter>,
    trace_dropped_spans: Arc<Counter>,
    trace_dropped_events: Arc<Counter>,
}

impl ServiceMetrics {
    pub(crate) fn new() -> ServiceMetrics {
        let registry = MetricsRegistry::new();
        // Cache counters exist from the start too, even though their values are view-synced
        // from `CacheStats` only at snapshot time.
        for name in [
            "qo_cache_evictions_total",
            "qo_cache_hits_total",
            "qo_cache_misses_total",
            "qo_cache_recost_fallbacks_total",
            "qo_cache_shape_hits_total",
            "qo_regret_cycles_total",
            "qo_regret_pins_total",
            "qo_serve_sampled_total",
            "qo_serve_slow_total",
        ] {
            registry.counter(name);
        }
        for name in ["qo_cache_entries", "qo_regret_shapes", "qo_regret_total"] {
            registry.gauge(name);
        }
        for (family, help) in HELP {
            registry.describe(family, help);
        }
        ServiceMetrics {
            serve_hit_ns: registry.histogram("qo_serve_hit_ns"),
            serve_recost_ns: registry.histogram("qo_serve_recost_ns"),
            serve_miss_ns: registry.histogram("qo_serve_miss_ns"),
            optimizer_exact_ccps: registry.counter("qo_optimizer_exact_ccps_total"),
            optimizer_pruned_pairs: registry.counter("qo_optimizer_pruned_pairs_total"),
            optimizer_pruned_classes: registry.counter("qo_optimizer_pruned_classes_total"),
            optimizer_seed_bound_ns: registry.histogram("qo_optimizer_seed_bound_ns"),
            optimizer_plans_exact: registry.counter("qo_optimizer_plans_exact_total"),
            optimizer_plans_idp: registry.counter("qo_optimizer_plans_idp_total"),
            optimizer_plans_greedy: registry.counter("qo_optimizer_plans_greedy_total"),
            parallel_stolen_chunks: registry.counter("qo_parallel_stolen_chunks_total"),
            trace_dropped_spans: registry.counter("qo_trace_dropped_spans_total"),
            trace_dropped_events: registry.counter("qo_trace_dropped_events_total"),
            registry,
        }
    }

    /// A full-hit serve completed in `elapsed`.
    pub(crate) fn observe_hit(&self, elapsed: Duration) {
        self.serve_hit_ns.observe(elapsed.as_nanos() as u64);
    }

    /// An accepted-re-cost serve completed in `elapsed`.
    pub(crate) fn observe_recost(&self, elapsed: Duration) {
        self.serve_recost_ns.observe(elapsed.as_nanos() as u64);
    }

    /// A full-optimization serve (miss or re-cost fallback — the pooling mirrors
    /// [`CacheStats::miss_ns`]) completed in `elapsed`.
    pub(crate) fn observe_miss(&self, elapsed: Duration) {
        self.serve_miss_ns.observe(elapsed.as_nanos() as u64);
    }

    /// A bounded trace recording evicted `spans` spans and `events` events — silent ring
    /// eviction made visible. Fed by both the sampler's per-serve recordings and
    /// per-optimization `trace = on` recordings.
    pub(crate) fn record_trace_drops(&self, spans: u64, events: u64) {
        if spans > 0 {
            self.trace_dropped_spans.add(spans);
        }
        if events > 0 {
            self.trace_dropped_events.add(events);
        }
    }

    /// Absorbs one cold-path optimization's `BudgetTelemetry` / `ParallelTelemetry` into
    /// the unified registry.
    pub(crate) fn record_optimize(&self, result: &OptimizeResult) {
        let t = &result.telemetry;
        self.optimizer_exact_ccps.add(t.exact_ccps as u64);
        self.optimizer_pruned_pairs.add(t.pruned_pairs as u64);
        self.optimizer_pruned_classes.add(t.pruned_classes as u64);
        if t.seed_bound_time > Duration::ZERO {
            self.optimizer_seed_bound_ns
                .observe(t.seed_bound_time.as_nanos() as u64);
        }
        match result.tier {
            PlanTier::Exact => self.optimizer_plans_exact.inc(),
            PlanTier::Idp => self.optimizer_plans_idp.inc(),
            PlanTier::Greedy => self.optimizer_plans_greedy.inc(),
        }
        if let Some(p) = &result.parallel {
            self.parallel_stolen_chunks.add(p.stolen_chunks as u64);
        }
        if let Some(trace) = &result.trace {
            self.record_trace_drops(trace.dropped_spans, trace.dropped_events);
        }
    }

    /// View-syncs the cache counters from `stats`, the sampler admission counters from
    /// `sampler`, and the regret gauges (aggregate and one labeled series per observed
    /// shape) from `regret`, then snapshots the whole registry. Regret values are `C_out`
    /// cardinality sums; they are rendered rounded to integer gauges.
    pub(crate) fn snapshot(
        &self,
        stats: CacheStats,
        sampler: SamplerStats,
        regret: &RegretLedger,
    ) -> MetricsSnapshot {
        self.registry
            .counter("qo_cache_evictions_total")
            .store(stats.evictions);
        self.registry
            .counter("qo_cache_hits_total")
            .store(stats.hits);
        self.registry
            .counter("qo_cache_misses_total")
            .store(stats.misses);
        self.registry
            .counter("qo_cache_recost_fallbacks_total")
            .store(stats.recost_fallbacks);
        self.registry
            .counter("qo_cache_shape_hits_total")
            .store(stats.shape_hits);
        self.registry.gauge("qo_cache_entries").set(stats.entries);
        self.registry
            .counter("qo_serve_sampled_total")
            .store(sampler.sampled);
        self.registry
            .counter("qo_serve_slow_total")
            .store(sampler.slow_serves);
        let shapes = regret.shapes();
        self.registry
            .gauge("qo_regret_shapes")
            .set(shapes.len() as u64);
        self.registry
            .counter("qo_regret_pins_total")
            .store(regret.pins());
        self.registry
            .counter("qo_regret_cycles_total")
            .store(shapes.iter().map(|s| s.cycles).sum());
        self.registry.gauge("qo_regret_total").set(
            shapes
                .iter()
                .map(|s| s.cumulative_regret)
                .sum::<f64>()
                .round() as u64,
        );
        for s in &shapes {
            self.registry
                .gauge(&format!("qo_regret_last{{shape=\"{:016x}\"}}", s.shape))
                .set(s.last_regret.round() as u64);
            self.registry
                .gauge(&format!(
                    "qo_regret_cumulative{{shape=\"{:016x}\"}}",
                    s.shape
                ))
                .set(s.cumulative_regret.round() as u64);
        }
        self.registry.snapshot()
    }
}

/// `# HELP` text per metric family (see `MetricsRegistry::describe`).
const HELP: &[(&str, &str)] = &[
    (
        "qo_cache_entries",
        "Plans currently held by the sharded LRU plan cache.",
    ),
    (
        "qo_cache_evictions_total",
        "Cache entries evicted by LRU capacity pressure.",
    ),
    (
        "qo_cache_hits_total",
        "Serves answered verbatim from the plan cache (shape and stats matched).",
    ),
    (
        "qo_cache_misses_total",
        "Serves that optimized from scratch (first sight of the query shape).",
    ),
    (
        "qo_cache_recost_fallbacks_total",
        "Stats-drift serves whose re-costed cached order failed the staleness probe.",
    ),
    (
        "qo_cache_shape_hits_total",
        "Stats-drift serves answered by re-costing the cached join order.",
    ),
    (
        "qo_optimizer_exact_ccps_total",
        "Csg-cmp-pairs processed by the exact DPhyp tier across cold optimizations.",
    ),
    (
        "qo_optimizer_plans_exact_total",
        "Cold optimizations answered by the exact tier.",
    ),
    (
        "qo_optimizer_plans_greedy_total",
        "Cold optimizations that fell back to greedy ordering.",
    ),
    (
        "qo_optimizer_plans_idp_total",
        "Cold optimizations that fell back to iterative dynamic programming.",
    ),
    (
        "qo_optimizer_pruned_classes_total",
        "Plan classes discarded by cost-bounded branch-and-bound pruning.",
    ),
    (
        "qo_optimizer_pruned_pairs_total",
        "Csg-cmp-pairs whose costing was skipped by branch-and-bound pruning.",
    ),
    (
        "qo_optimizer_seed_bound_ns",
        "Wall time spent seeding the branch-and-bound upper bound.",
    ),
    (
        "qo_parallel_stolen_chunks_total",
        "Work chunks stolen across workers by the parallel cost pass.",
    ),
    (
        "qo_regret_cumulative",
        "Per-shape cumulative true-cost regret over all observed serve cycles.",
    ),
    (
        "qo_regret_cycles_total",
        "Observed execution reports absorbed by the regret ledger.",
    ),
    (
        "qo_regret_last",
        "Per-shape true-cost regret of the most recent observed cycle.",
    ),
    (
        "qo_regret_pins_total",
        "Serves answered by pinning the proven-best order over the model's candidate.",
    ),
    (
        "qo_regret_shapes",
        "Distinct query shapes tracked by the regret ledger.",
    ),
    (
        "qo_regret_total",
        "Cumulative true-cost regret summed over all shapes.",
    ),
    ("qo_serve_hit_ns", "End-to-end latency of cache-hit serves."),
    (
        "qo_serve_miss_ns",
        "End-to-end latency of full-optimization serves (miss or re-cost fallback).",
    ),
    (
        "qo_serve_recost_ns",
        "End-to-end latency of accepted re-cost serves.",
    ),
    (
        "qo_serve_sampled_total",
        "Serves traced by the always-on sampler (rate-selected or slow-armed).",
    ),
    (
        "qo_serve_slow_total",
        "Serves slower than the sampler's adaptive latency threshold.",
    ),
    (
        "qo_trace_dropped_events_total",
        "Events evicted from bounded trace recording rings.",
    ),
    (
        "qo_trace_dropped_spans_total",
        "Spans evicted from bounded trace recording rings.",
    ),
];
