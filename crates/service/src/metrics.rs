//! The service's metrics registry: one place where the stack's scattered telemetry —
//! [`CacheStats`], `BudgetTelemetry`, `ParallelTelemetry` — unifies into named counters,
//! gauges and latency histograms.
//!
//! Naming scheme: `qo_<subsystem>_<quantity>[_<unit|total>]`. Counters end in `_total`,
//! latency histograms in `_ns` (log2-bucketed nanoseconds, integer-only on the hot path).
//! Subsystems: `cache` (plan-cache outcomes, view-synced from [`CacheStats`] at snapshot
//! time), `serve` (end-to-end per-path latencies, recorded live), `optimizer` (budget and
//! pruning telemetry accumulated across cold-path optimizations) and `parallel` (cost-pass
//! work stealing).

use crate::cache::CacheStats;
use dphyp::OptimizeResult;
use dphyp::PlanTier;
use qo_obsv::{Counter, Histogram, MetricsRegistry, MetricsSnapshot};
use std::sync::Arc;
use std::time::Duration;

/// Pre-registered handles into the service's [`MetricsRegistry`]. Everything is registered
/// up front in [`ServiceMetrics::new`], so a snapshot of a fresh service already exposes
/// the full (all-zero) metric surface and the Prometheus rendering has a stable shape.
pub(crate) struct ServiceMetrics {
    registry: MetricsRegistry,
    serve_hit_ns: Arc<Histogram>,
    serve_recost_ns: Arc<Histogram>,
    serve_miss_ns: Arc<Histogram>,
    optimizer_exact_ccps: Arc<Counter>,
    optimizer_pruned_pairs: Arc<Counter>,
    optimizer_pruned_classes: Arc<Counter>,
    optimizer_seed_bound_ns: Arc<Histogram>,
    optimizer_plans_exact: Arc<Counter>,
    optimizer_plans_idp: Arc<Counter>,
    optimizer_plans_greedy: Arc<Counter>,
    parallel_stolen_chunks: Arc<Counter>,
}

impl ServiceMetrics {
    pub(crate) fn new() -> ServiceMetrics {
        let registry = MetricsRegistry::new();
        // Cache counters exist from the start too, even though their values are view-synced
        // from `CacheStats` only at snapshot time.
        for name in [
            "qo_cache_evictions_total",
            "qo_cache_hits_total",
            "qo_cache_misses_total",
            "qo_cache_recost_fallbacks_total",
            "qo_cache_shape_hits_total",
        ] {
            registry.counter(name);
        }
        registry.gauge("qo_cache_entries");
        ServiceMetrics {
            serve_hit_ns: registry.histogram("qo_serve_hit_ns"),
            serve_recost_ns: registry.histogram("qo_serve_recost_ns"),
            serve_miss_ns: registry.histogram("qo_serve_miss_ns"),
            optimizer_exact_ccps: registry.counter("qo_optimizer_exact_ccps_total"),
            optimizer_pruned_pairs: registry.counter("qo_optimizer_pruned_pairs_total"),
            optimizer_pruned_classes: registry.counter("qo_optimizer_pruned_classes_total"),
            optimizer_seed_bound_ns: registry.histogram("qo_optimizer_seed_bound_ns"),
            optimizer_plans_exact: registry.counter("qo_optimizer_plans_exact_total"),
            optimizer_plans_idp: registry.counter("qo_optimizer_plans_idp_total"),
            optimizer_plans_greedy: registry.counter("qo_optimizer_plans_greedy_total"),
            parallel_stolen_chunks: registry.counter("qo_parallel_stolen_chunks_total"),
            registry,
        }
    }

    /// A full-hit serve completed in `elapsed`.
    pub(crate) fn observe_hit(&self, elapsed: Duration) {
        self.serve_hit_ns.observe(elapsed.as_nanos() as u64);
    }

    /// An accepted-re-cost serve completed in `elapsed`.
    pub(crate) fn observe_recost(&self, elapsed: Duration) {
        self.serve_recost_ns.observe(elapsed.as_nanos() as u64);
    }

    /// A full-optimization serve (miss or re-cost fallback — the pooling mirrors
    /// [`CacheStats::miss_ns`]) completed in `elapsed`.
    pub(crate) fn observe_miss(&self, elapsed: Duration) {
        self.serve_miss_ns.observe(elapsed.as_nanos() as u64);
    }

    /// Absorbs one cold-path optimization's `BudgetTelemetry` / `ParallelTelemetry` into
    /// the unified registry.
    pub(crate) fn record_optimize(&self, result: &OptimizeResult) {
        let t = &result.telemetry;
        self.optimizer_exact_ccps.add(t.exact_ccps as u64);
        self.optimizer_pruned_pairs.add(t.pruned_pairs as u64);
        self.optimizer_pruned_classes.add(t.pruned_classes as u64);
        if t.seed_bound_time > Duration::ZERO {
            self.optimizer_seed_bound_ns
                .observe(t.seed_bound_time.as_nanos() as u64);
        }
        match result.tier {
            PlanTier::Exact => self.optimizer_plans_exact.inc(),
            PlanTier::Idp => self.optimizer_plans_idp.inc(),
            PlanTier::Greedy => self.optimizer_plans_greedy.inc(),
        }
        if let Some(p) = &result.parallel {
            self.parallel_stolen_chunks.add(p.stolen_chunks as u64);
        }
    }

    /// View-syncs the cache counters from `stats` and snapshots the whole registry.
    pub(crate) fn snapshot(&self, stats: CacheStats) -> MetricsSnapshot {
        self.registry
            .counter("qo_cache_evictions_total")
            .store(stats.evictions);
        self.registry
            .counter("qo_cache_hits_total")
            .store(stats.hits);
        self.registry
            .counter("qo_cache_misses_total")
            .store(stats.misses);
        self.registry
            .counter("qo_cache_recost_fallbacks_total")
            .store(stats.recost_fallbacks);
        self.registry
            .counter("qo_cache_shape_hits_total")
            .store(stats.shape_hits);
        self.registry.gauge("qo_cache_entries").set(stats.entries);
        self.registry.snapshot()
    }
}
