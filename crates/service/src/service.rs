//! The optimization service: canonicalize → fingerprint → cache → (re-cost | optimize).

use crate::cache::{CacheOptions, CacheStats, Entry, Lookup, PlanCache};
use crate::fingerprint::{options_key, Fingerprint};
use crate::metrics::ServiceMetrics;
use dphyp::{
    canonicalize, recost_spec, AdaptiveOptimizer, AdaptiveOptions, CachedTable, CanonicalQuery,
    ObservedStats, OptimizeError, PlanTier, QuerySpec,
};
use qo_ingest::{parse_queries, IngestQuery, JgError};
use qo_obsv::{MetricsSnapshot, Span};
use qo_plan::PlanNode;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Configuration of a [`Service`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceOptions {
    /// Plan-cache sizing (capacity, shard count).
    pub cache: CacheOptions,
    /// Base adaptive-driver options; `.jg` queries overlay their own `option` statements on
    /// top of these ([`Service::plan_ingest`]).
    pub adaptive: AdaptiveOptions,
    /// Staleness tolerance of the incremental re-cost path: a re-costed cached join order is
    /// served only while `recost_cost ≤ greedy_cost × (1 + tolerance)` — the moment a mere
    /// greedy ordering beats the cached order by more than this margin under the new
    /// statistics, the order has demonstrably gone stale and the service re-optimizes in full.
    /// `0.0` re-optimizes on any greedy win; larger values trade plan quality for fewer
    /// re-optimizations.
    pub recost_tolerance: f64,
    /// Worker threads of [`Service::plan_batch`]; `0` (the default) means one per available
    /// CPU, capped by the batch size. When the batch's queries additionally request
    /// intra-query parallelism ([`AdaptiveOptions::parallelism`]), the fan-out is further
    /// capped so that `batch threads × per-query threads` stays within the machine's available
    /// parallelism (see [`effective_batch_threads`]).
    pub batch_threads: usize,
}

/// The worker count [`Service::plan_batch`] uses: the configured count (`0` = `available`),
/// divided down when per-query parallelism would oversubscribe the machine, and capped by the
/// number of shape groups. `per_query` is the largest intra-query worker count any batch item
/// requests (`1` = sequential queries, which impose no cap). Always ≥ 1.
pub fn effective_batch_threads(
    configured: usize,
    available: usize,
    per_query: usize,
    groups: usize,
) -> usize {
    let base = if configured == 0 {
        available
    } else {
        configured
    };
    let capped = if per_query > 1 {
        // batch fan-out × per-query threads ≤ available parallelism.
        base.min((available / per_query).max(1))
    } else {
        base
    };
    capped.min(groups.max(1)).max(1)
}

/// The intra-query worker count an options value resolves to on this machine.
fn resolved_parallelism(options: &AdaptiveOptions, available: usize) -> usize {
    match options.parallelism {
        None | Some(1) => 1,
        Some(0) => available,
        Some(k) => k,
    }
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            cache: CacheOptions::default(),
            adaptive: AdaptiveOptions::default(),
            recost_tolerance: 0.0,
            batch_threads: 0,
        }
    }
}

/// Which serving path produced a [`ServedPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanSource {
    /// Full optimization: first sight of this query shape.
    Miss,
    /// Served verbatim from the cache (shape and statistics matched).
    CacheHit,
    /// Same shape with drifted statistics: the cached join order was re-costed bottom-up and
    /// passed the staleness probe.
    Recost,
    /// Same shape with drifted statistics, but the re-costed order failed the staleness probe
    /// (or could not be re-costed): answered by a full re-optimization.
    RecostFallback,
}

impl fmt::Display for PlanSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlanSource::Miss => "miss",
            PlanSource::CacheHit => "hit",
            PlanSource::Recost => "recost",
            PlanSource::RecostFallback => "recost_fallback",
        })
    }
}

/// One answered query: the plan in the caller's original relation/edge ids, plus serving
/// telemetry.
#[derive(Clone, Debug)]
pub struct ServedPlan {
    /// The plan, translated back into the ids of the submitted spec.
    pub plan: PlanNode,
    /// Its cost under the configured cost model.
    pub cost: f64,
    /// Its estimated output cardinality.
    pub cardinality: f64,
    /// The adaptive tier that produced the join order (for cache hits and re-costs: the tier
    /// that produced it originally).
    pub tier: PlanTier,
    /// Which serving path answered.
    pub source: PlanSource,
    /// The query's fingerprint (shape / stats).
    pub fingerprint: Fingerprint,
}

/// Errors of the `.jg` text entry point.
#[derive(Clone, Debug)]
pub enum ServiceError {
    /// The source failed to parse or lower; render with [`JgError::render`] for a caret
    /// diagnostic.
    Parse(JgError),
    /// A query parsed but could not be planned.
    Optimize {
        /// Name of the failing query block.
        query: String,
        /// The planner error.
        error: OptimizeError,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Parse(e) => write!(f, "parse error: {}", e.message),
            ServiceError::Optimize { query, error } => {
                write!(f, "query `{query}` failed to plan: {error}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// The concurrent plan-cache + optimization service.
///
/// All entry points take `&self` and the service is `Sync`: clone-free sharing across the
/// threads of [`Service::plan_batch`] (or an embedding server) is the intended mode of use.
/// See the crate docs for the serving pipeline.
pub struct Service {
    options: ServiceOptions,
    cache: PlanCache,
    metrics: ServiceMetrics,
}

impl Default for Service {
    fn default() -> Self {
        Service::new(ServiceOptions::default())
    }
}

impl Service {
    /// Creates a service with the given options.
    pub fn new(options: ServiceOptions) -> Service {
        Service {
            cache: PlanCache::new(options.cache),
            metrics: ServiceMetrics::new(),
            options,
        }
    }

    /// The options this service runs with.
    pub fn options(&self) -> &ServiceOptions {
        &self.options
    }

    /// Cache telemetry: hits, shape hits (re-costs), misses, evictions, per-path latencies.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// A point-in-time copy of the unified metrics registry: cache outcome counters
    /// (view-synced from [`CacheStats`]), per-path serve latency histograms, and the
    /// optimizer/parallel telemetry accumulated across cold-path optimizations. Render it
    /// with [`MetricsSnapshot::render_prometheus`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self.cache.stats())
    }

    /// [`Service::metrics_snapshot`] rendered in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.metrics_snapshot().render_prometheus()
    }

    /// Plans a width-agnostic spec under the service's base adaptive options.
    pub fn plan_spec(&self, spec: &QuerySpec) -> Result<ServedPlan, OptimizeError> {
        self.plan_spec_with(spec, self.options.adaptive)
    }

    /// Plans a lowered `.jg` query, overlaying its own `option` statements on the service's
    /// base adaptive options.
    pub fn plan_ingest(&self, query: &IngestQuery) -> Result<ServedPlan, OptimizeError> {
        self.plan_spec_with(&query.spec, query.options.apply(self.options.adaptive))
    }

    /// Parses `.jg` source text and plans every query block it declares, in order.
    pub fn plan_jg(&self, source: &str) -> Result<Vec<ServedPlan>, ServiceError> {
        let queries = parse_queries(source).map_err(ServiceError::Parse)?;
        queries
            .iter()
            .map(|q| {
                self.plan_ingest(q).map_err(|error| ServiceError::Optimize {
                    query: q.name.clone(),
                    error,
                })
            })
            .collect()
    }

    /// Plans a batch of specs concurrently over `std::thread::scope`, preserving input order
    /// in the result. Worker count is [`ServiceOptions::batch_threads`] (0 = one per CPU),
    /// capped by the number of distinct shapes.
    ///
    /// The fan-out is *shape-grouped* for determinism: queries with the same shape fingerprint
    /// interact through the same cache bucket (the second one is served from the first one's
    /// entry), so they are planned in input order relative to each other, while distinct
    /// shapes — which never interact, barring capacity evictions — run concurrently. A batch
    /// therefore produces exactly the plans sequential serving produces, regardless of thread
    /// interleaving.
    pub fn plan_batch(&self, specs: &[QuerySpec]) -> Vec<Result<ServedPlan, OptimizeError>> {
        self.batch_with(specs, |spec| (spec, self.options.adaptive))
    }

    /// [`Service::plan_batch`] for lowered `.jg` queries: each query's own `option`
    /// statements are overlaid on the service's base options, exactly as in
    /// [`Service::plan_ingest`].
    pub fn plan_batch_ingest(
        &self,
        queries: &[IngestQuery],
    ) -> Vec<Result<ServedPlan, OptimizeError>> {
        self.batch_with(queries, |query| {
            (&query.spec, query.options.apply(self.options.adaptive))
        })
    }

    /// The shared batch machinery: work-stealing over shape groups (see [`Service::plan_batch`]
    /// for the determinism argument). Canonicalization happens once per item, up front — the
    /// grouping needs the shape hash anyway, and the workers serve the prepared canonical form
    /// directly.
    fn batch_with<T: Sync>(
        &self,
        items: &[T],
        prepare: impl Fn(&T) -> (&QuerySpec, AdaptiveOptions),
    ) -> Vec<Result<ServedPlan, OptimizeError>> {
        let prepared: Vec<(CanonicalQuery, AdaptiveOptions)> = items
            .iter()
            .map(|item| {
                let (spec, adaptive) = prepare(item);
                (canonicalize(spec), adaptive)
            })
            .collect();
        // Group item indexes by shape, preserving input order within each group.
        let mut group_of: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, (canonical, _)) in prepared.iter().enumerate() {
            match group_of.get(&canonical.shape_hash) {
                Some(&g) => groups[g].push(i),
                None => {
                    group_of.insert(canonical.shape_hash, groups.len());
                    groups.push(vec![i]);
                }
            }
        }
        let available = std::thread::available_parallelism().map_or(1, |p| p.get());
        let per_query = prepared
            .iter()
            .map(|(_, adaptive)| resolved_parallelism(adaptive, available))
            .max()
            .unwrap_or(1);
        let threads = effective_batch_threads(
            self.options.batch_threads,
            available,
            per_query,
            groups.len(),
        );
        if threads <= 1 || items.len() <= 1 {
            return prepared
                .iter()
                .map(|(canonical, adaptive)| self.serve(canonical, *adaptive))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<Result<ServedPlan, OptimizeError>>>> =
            Mutex::new((0..items.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let g = next.fetch_add(1, Ordering::Relaxed);
                    let Some(group) = groups.get(g) else { break };
                    for &i in group {
                        let (canonical, adaptive) = &prepared[i];
                        let r = self.serve(canonical, *adaptive);
                        results.lock().expect("batch results poisoned")[i] = Some(r);
                    }
                });
            }
        });
        results
            .into_inner()
            .expect("batch results poisoned")
            .into_iter()
            .map(|r| r.expect("every index was planned"))
            .collect()
    }

    /// The serving pipeline for one spec under explicit adaptive options.
    pub fn plan_spec_with(
        &self,
        spec: &QuerySpec,
        adaptive: AdaptiveOptions,
    ) -> Result<ServedPlan, OptimizeError> {
        self.serve(&canonicalize(spec), adaptive)
    }

    /// Re-plans a spec under statistics observed from executing its previous plan — the
    /// feedback half of the loop (`qo-exec::ObservedExecution::observed_stats` produces the
    /// overlay).
    ///
    /// The observed overlay changes only statistics, never shape, so this lands on the same
    /// cache bucket as the original query and flows through the drift path: identical stats
    /// are a [`PlanSource::CacheHit`], drifted stats re-cost the cached join order and either
    /// serve it ([`PlanSource::Recost`]) or re-optimize in full
    /// ([`PlanSource::RecostFallback`]).
    pub fn plan_observed(
        &self,
        spec: &QuerySpec,
        observed: &ObservedStats,
    ) -> Result<ServedPlan, OptimizeError> {
        self.plan_observed_with(spec, observed, self.options.adaptive)
    }

    /// [`Service::plan_observed`] under explicit adaptive options.
    pub fn plan_observed_with(
        &self,
        spec: &QuerySpec,
        observed: &ObservedStats,
        adaptive: AdaptiveOptions,
    ) -> Result<ServedPlan, OptimizeError> {
        let _span = Span::enter("feedback");
        self.plan_spec_with(&spec.apply_observed(observed), adaptive)
    }

    /// Serves one already-canonicalized query: fingerprint, cache lookup, then hit / re-cost /
    /// full optimization.
    fn serve(
        &self,
        canonical: &CanonicalQuery,
        adaptive: AdaptiveOptions,
    ) -> Result<ServedPlan, OptimizeError> {
        let _span = Span::enter("serve");
        let start = Instant::now();
        let fp = Fingerprint::of(canonical);
        let opts_key = options_key(&adaptive);

        match self.cache.lookup(fp, opts_key, &canonical.spec) {
            Lookup::Hit {
                plan,
                cost,
                cardinality,
                tier,
            } => {
                let served = ServedPlan {
                    plan: canonical.plan_to_original(&plan),
                    cost,
                    cardinality,
                    tier,
                    source: PlanSource::CacheHit,
                    fingerprint: fp,
                };
                let elapsed = start.elapsed();
                self.cache.record_hit(elapsed);
                self.metrics.observe_hit(elapsed);
                Ok(served)
            }
            Lookup::Shape { table, tier } => {
                if let Some(r) = recost_spec(&canonical.spec, &table, &adaptive)? {
                    if r.cost <= r.greedy_cost * (1.0 + self.options.recost_tolerance) {
                        let served = ServedPlan {
                            plan: canonical.plan_to_original(&r.plan),
                            cost: r.cost,
                            cardinality: r.cardinality,
                            tier,
                            source: PlanSource::Recost,
                            fingerprint: fp,
                        };
                        self.cache.insert(
                            fp.shape,
                            Entry {
                                spec: canonical.spec.clone(),
                                stats: fp.stats,
                                options: opts_key,
                                table: r.table,
                                plan: r.plan,
                                cost: r.cost,
                                cardinality: r.cardinality,
                                tier,
                            },
                        );
                        let elapsed = start.elapsed();
                        self.cache.record_shape_hit(elapsed);
                        self.metrics.observe_recost(elapsed);
                        return Ok(served);
                    }
                }
                let served = self.optimize_and_insert(canonical, fp, opts_key, adaptive)?;
                let elapsed = start.elapsed();
                self.cache.record_recost_fallback(elapsed);
                self.metrics.observe_miss(elapsed);
                Ok(ServedPlan {
                    source: PlanSource::RecostFallback,
                    ..served
                })
            }
            Lookup::Miss => {
                let served = self.optimize_and_insert(canonical, fp, opts_key, adaptive)?;
                let elapsed = start.elapsed();
                self.cache.record_miss(elapsed);
                self.metrics.observe_miss(elapsed);
                Ok(served)
            }
        }
    }

    /// The cold path: full adaptive optimization of the canonical spec, then cache insert.
    fn optimize_and_insert(
        &self,
        canonical: &CanonicalQuery,
        fp: Fingerprint,
        opts_key: u64,
        adaptive: AdaptiveOptions,
    ) -> Result<ServedPlan, OptimizeError> {
        let result = AdaptiveOptimizer::new(adaptive).optimize_spec(&canonical.spec)?;
        self.metrics.record_optimize(&result);
        let table = CachedTable::from_plan(&result.plan, canonical.spec.node_count())?;
        let served = ServedPlan {
            plan: canonical.plan_to_original(&result.plan),
            cost: result.cost,
            cardinality: result.cardinality,
            tier: result.tier,
            source: PlanSource::Miss,
            fingerprint: fp,
        };
        self.cache.insert(
            fp.shape,
            Entry {
                spec: canonical.spec.clone(),
                stats: fp.stats,
                options: opts_key,
                table,
                plan: result.plan,
                cost: result.cost,
                cardinality: result.cardinality,
                tier: result.tier,
            },
        );
        Ok(served)
    }
}
