//! The optimization service: canonicalize → fingerprint → cache → (re-cost | optimize).

use crate::cache::{CacheOptions, CacheStats, Entry, Lookup, PlanCache};
use crate::fingerprint::{options_key, Fingerprint};
use crate::flight::{FlightRecorder, ServeRecord};
use crate::metrics::ServiceMetrics;
use crate::regret::{PinnedPlan, RegretLedger};
use dphyp::{
    canonicalize, recost_spec, AdaptiveOptimizer, AdaptiveOptions, CachedTable, CanonicalQuery,
    ExecutionFeedback, ObservedStats, OptimizeError, PlanTier, QuerySpec,
};
use qo_ingest::{parse_queries, IngestQuery, JgError};
use qo_obsv::{MetricsSnapshot, SamplerOptions, SamplingSink, Span};
use qo_plan::PlanNode;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Configuration of a [`Service`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceOptions {
    /// Plan-cache sizing (capacity, shard count).
    pub cache: CacheOptions,
    /// Base adaptive-driver options; `.jg` queries overlay their own `option` statements on
    /// top of these ([`Service::plan_ingest`]).
    pub adaptive: AdaptiveOptions,
    /// Staleness tolerance of the incremental re-cost path: a re-costed cached join order is
    /// served only while `recost_cost ≤ greedy_cost × (1 + tolerance)` — the moment a mere
    /// greedy ordering beats the cached order by more than this margin under the new
    /// statistics, the order has demonstrably gone stale and the service re-optimizes in full.
    /// `0.0` re-optimizes on any greedy win; larger values trade plan quality for fewer
    /// re-optimizations.
    pub recost_tolerance: f64,
    /// Worker threads of [`Service::plan_batch`]; `0` (the default) means one per available
    /// CPU, capped by the batch size. When the batch's queries additionally request
    /// intra-query parallelism ([`AdaptiveOptions::parallelism`]), the fan-out is further
    /// capped so that `batch threads × per-query threads` stays within the machine's available
    /// parallelism (see [`effective_batch_threads`]).
    pub batch_threads: usize,
    /// The always-on trace sampler's configuration: rate (default 1-in-1024, overridable
    /// per query via [`AdaptiveOptions::sample_rate`]), exemplar reservoir, slow-serve
    /// threshold. Sampling is pure observation — plans, costs and tiers are bit-identical
    /// with any setting — and the unsampled fast path costs two relaxed atomics per serve.
    pub sampling: SamplerOptions,
    /// Capacity of the serve flight recorder's ring ([`Service::flight_recorder`]): how
    /// many recent serves stay reconstructible post-mortem.
    pub flight_capacity: usize,
}

/// The worker count [`Service::plan_batch`] uses: the configured count (`0` = `available`),
/// divided down when per-query parallelism would oversubscribe the machine, and capped by the
/// number of shape groups. `per_query` is the largest intra-query worker count any batch item
/// requests (`1` = sequential queries, which impose no cap). Always ≥ 1.
pub fn effective_batch_threads(
    configured: usize,
    available: usize,
    per_query: usize,
    groups: usize,
) -> usize {
    let base = if configured == 0 {
        available
    } else {
        configured
    };
    let capped = if per_query > 1 {
        // batch fan-out × per-query threads ≤ available parallelism.
        base.min((available / per_query).max(1))
    } else {
        base
    };
    capped.min(groups.max(1)).max(1)
}

/// The intra-query worker count an options value resolves to on this machine.
fn resolved_parallelism(options: &AdaptiveOptions, available: usize) -> usize {
    match options.parallelism {
        None | Some(1) => 1,
        Some(0) => available,
        Some(k) => k,
    }
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            cache: CacheOptions::default(),
            adaptive: AdaptiveOptions::default(),
            recost_tolerance: 0.0,
            batch_threads: 0,
            sampling: SamplerOptions::default(),
            flight_capacity: 256,
        }
    }
}

/// Which serving path produced a [`ServedPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanSource {
    /// Full optimization: first sight of this query shape.
    Miss,
    /// Served verbatim from the cache (shape and statistics matched).
    CacheHit,
    /// Same shape with drifted statistics: the cached join order was re-costed bottom-up and
    /// passed the staleness probe.
    Recost,
    /// Same shape with drifted statistics, but the re-costed order failed the staleness probe
    /// (or could not be re-costed): answered by a full re-optimization.
    RecostFallback,
    /// The regret ledger vetoed the model's candidate: execution feedback had measured it
    /// worse than the best-known order for this shape (or the shape's exploration budget
    /// was spent), so the proven-best order was re-costed under the current statistics and
    /// served instead. Only shapes reported through [`Service::observe_execution`] can take
    /// this path.
    Pinned,
}

impl fmt::Display for PlanSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlanSource::Miss => "miss",
            PlanSource::CacheHit => "hit",
            PlanSource::Recost => "recost",
            PlanSource::RecostFallback => "recost_fallback",
            PlanSource::Pinned => "pinned",
        })
    }
}

/// One answered query: the plan in the caller's original relation/edge ids, plus serving
/// telemetry.
#[derive(Clone, Debug)]
pub struct ServedPlan {
    /// The plan, translated back into the ids of the submitted spec.
    pub plan: PlanNode,
    /// Its cost under the configured cost model.
    pub cost: f64,
    /// Its estimated output cardinality.
    pub cardinality: f64,
    /// The adaptive tier that produced the join order (for cache hits and re-costs: the tier
    /// that produced it originally).
    pub tier: PlanTier,
    /// Which serving path answered.
    pub source: PlanSource,
    /// The query's fingerprint (shape / stats).
    pub fingerprint: Fingerprint,
    /// This serve's sequence number — its identity in the flight recorder, and the handle
    /// [`Service::observe_execution`] links execution feedback back through.
    pub serve_seq: u64,
    /// Id of the sampled trace covering this serve, when the always-on sampler selected it
    /// (look it up in [`Service::sampler`]'s exemplars).
    pub trace_id: Option<u64>,
    /// Structural digest of `plan` ([`qo_plan::PlanNode::order_digest`]) — the identity the
    /// regret ledger links execution feedback back to.
    pub order_digest: u64,
    /// Digest of the query's canonical-to-original id mapping; guards the regret ledger
    /// against handing a stored order to a query that labels its relations differently.
    pub(crate) layout: u64,
}

/// Errors of the `.jg` text entry point.
#[derive(Clone, Debug)]
pub enum ServiceError {
    /// The source failed to parse or lower; render with [`JgError::render`] for a caret
    /// diagnostic.
    Parse(JgError),
    /// A query parsed but could not be planned.
    Optimize {
        /// Name of the failing query block.
        query: String,
        /// The planner error.
        error: OptimizeError,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Parse(e) => write!(f, "parse error: {}", e.message),
            ServiceError::Optimize { query, error } => {
                write!(f, "query `{query}` failed to plan: {error}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// The concurrent plan-cache + optimization service.
///
/// All entry points take `&self` and the service is `Sync`: clone-free sharing across the
/// threads of [`Service::plan_batch`] (or an embedding server) is the intended mode of use.
/// See the crate docs for the serving pipeline.
pub struct Service {
    options: ServiceOptions,
    cache: PlanCache,
    metrics: ServiceMetrics,
    sampler: SamplingSink,
    flight: FlightRecorder,
    regret: RegretLedger,
}

impl Default for Service {
    fn default() -> Self {
        Service::new(ServiceOptions::default())
    }
}

impl Service {
    /// Creates a service with the given options.
    pub fn new(options: ServiceOptions) -> Service {
        Service {
            cache: PlanCache::new(options.cache),
            metrics: ServiceMetrics::new(),
            sampler: SamplingSink::new(options.sampling),
            flight: FlightRecorder::new(options.flight_capacity),
            regret: RegretLedger::new(),
            options,
        }
    }

    /// The options this service runs with.
    pub fn options(&self) -> &ServiceOptions {
        &self.options
    }

    /// Cache telemetry: hits, shape hits (re-costs), misses, evictions, per-path latencies.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The always-on trace sampler: exemplar span trees of the 1-in-N sampled serves (plus
    /// serves following a detected slow one) and the sampler's admission counters.
    pub fn sampler(&self) -> &SamplingSink {
        &self.sampler
    }

    /// The serve flight recorder: a bounded ring of structured per-serve records for
    /// post-mortem queries ([`FlightRecorder::records`]) and text dumps
    /// ([`FlightRecorder::dump`]).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The regret ledger: per-shape cumulative excess of served true cost over the
    /// best-known true cost, accumulated across [`Service::observe_execution`] reports.
    pub fn regret_ledger(&self) -> &RegretLedger {
        &self.regret
    }

    /// Reports one instrumented execution of a served plan back to the service: the flight
    /// recorder's entry for that serve gains the true cost and q-error, and the regret
    /// ledger charges the shape with this cycle's regret (which is returned — 0.0 for a
    /// first observation or a new best-known cost). The measured order also joins the
    /// ledger's plan registry, arming the pinning veto for future serves of this shape
    /// (see [`PlanSource::Pinned`]). Pair with [`Service::plan_observed`] to close the
    /// feedback loop *and* account for it.
    pub fn observe_execution(&self, served: &ServedPlan, feedback: &ExecutionFeedback) -> f64 {
        self.flight.annotate(served.serve_seq, feedback);
        self.regret.observe(
            served.fingerprint.shape,
            served.layout,
            served.order_digest,
            served.tier,
            &served.plan,
            feedback.true_cost,
        )
    }

    /// A point-in-time copy of the unified metrics registry: cache outcome counters
    /// (view-synced from [`CacheStats`]), per-path serve latency histograms, the
    /// optimizer/parallel telemetry accumulated across cold-path optimizations, trace-ring
    /// eviction counters, sampler admission counters, and the regret ledger's per-shape
    /// gauges. Render it with [`MetricsSnapshot::render_prometheus`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics
            .snapshot(self.cache.stats(), self.sampler.stats(), &self.regret)
    }

    /// [`Service::metrics_snapshot`] rendered in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.metrics_snapshot().render_prometheus()
    }

    /// Plans a width-agnostic spec under the service's base adaptive options.
    pub fn plan_spec(&self, spec: &QuerySpec) -> Result<ServedPlan, OptimizeError> {
        self.plan_spec_with(spec, self.options.adaptive)
    }

    /// Plans a lowered `.jg` query, overlaying its own `option` statements on the service's
    /// base adaptive options.
    pub fn plan_ingest(&self, query: &IngestQuery) -> Result<ServedPlan, OptimizeError> {
        self.plan_spec_with(&query.spec, query.options.apply(self.options.adaptive))
    }

    /// Parses `.jg` source text and plans every query block it declares, in order.
    pub fn plan_jg(&self, source: &str) -> Result<Vec<ServedPlan>, ServiceError> {
        let queries = parse_queries(source).map_err(ServiceError::Parse)?;
        queries
            .iter()
            .map(|q| {
                self.plan_ingest(q).map_err(|error| ServiceError::Optimize {
                    query: q.name.clone(),
                    error,
                })
            })
            .collect()
    }

    /// Plans a batch of specs concurrently over `std::thread::scope`, preserving input order
    /// in the result. Worker count is [`ServiceOptions::batch_threads`] (0 = one per CPU),
    /// capped by the number of distinct shapes.
    ///
    /// The fan-out is *shape-grouped* for determinism: queries with the same shape fingerprint
    /// interact through the same cache bucket (the second one is served from the first one's
    /// entry), so they are planned in input order relative to each other, while distinct
    /// shapes — which never interact, barring capacity evictions — run concurrently. A batch
    /// therefore produces exactly the plans sequential serving produces, regardless of thread
    /// interleaving.
    pub fn plan_batch(&self, specs: &[QuerySpec]) -> Vec<Result<ServedPlan, OptimizeError>> {
        self.batch_with(specs, |spec| (spec, self.options.adaptive))
    }

    /// [`Service::plan_batch`] for lowered `.jg` queries: each query's own `option`
    /// statements are overlaid on the service's base options, exactly as in
    /// [`Service::plan_ingest`].
    pub fn plan_batch_ingest(
        &self,
        queries: &[IngestQuery],
    ) -> Vec<Result<ServedPlan, OptimizeError>> {
        self.batch_with(queries, |query| {
            (&query.spec, query.options.apply(self.options.adaptive))
        })
    }

    /// The shared batch machinery: work-stealing over shape groups (see [`Service::plan_batch`]
    /// for the determinism argument). Canonicalization happens once per item, up front — the
    /// grouping needs the shape hash anyway, and the workers serve the prepared canonical form
    /// directly.
    fn batch_with<T: Sync>(
        &self,
        items: &[T],
        prepare: impl Fn(&T) -> (&QuerySpec, AdaptiveOptions),
    ) -> Vec<Result<ServedPlan, OptimizeError>> {
        let prepared: Vec<(CanonicalQuery, AdaptiveOptions)> = items
            .iter()
            .map(|item| {
                let (spec, adaptive) = prepare(item);
                (canonicalize(spec), adaptive)
            })
            .collect();
        // Group item indexes by shape, preserving input order within each group.
        let mut group_of: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, (canonical, _)) in prepared.iter().enumerate() {
            match group_of.get(&canonical.shape_hash) {
                Some(&g) => groups[g].push(i),
                None => {
                    group_of.insert(canonical.shape_hash, groups.len());
                    groups.push(vec![i]);
                }
            }
        }
        let available = std::thread::available_parallelism().map_or(1, |p| p.get());
        let per_query = prepared
            .iter()
            .map(|(_, adaptive)| resolved_parallelism(adaptive, available))
            .max()
            .unwrap_or(1);
        let threads = effective_batch_threads(
            self.options.batch_threads,
            available,
            per_query,
            groups.len(),
        );
        if threads <= 1 || items.len() <= 1 {
            return prepared
                .iter()
                .map(|(canonical, adaptive)| self.serve(canonical, *adaptive))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<Result<ServedPlan, OptimizeError>>>> =
            Mutex::new((0..items.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let g = next.fetch_add(1, Ordering::Relaxed);
                    let Some(group) = groups.get(g) else { break };
                    for &i in group {
                        let (canonical, adaptive) = &prepared[i];
                        let r = self.serve(canonical, *adaptive);
                        results.lock().expect("batch results poisoned")[i] = Some(r);
                    }
                });
            }
        });
        results
            .into_inner()
            .expect("batch results poisoned")
            .into_iter()
            .map(|r| r.expect("every index was planned"))
            .collect()
    }

    /// The serving pipeline for one spec under explicit adaptive options.
    pub fn plan_spec_with(
        &self,
        spec: &QuerySpec,
        adaptive: AdaptiveOptions,
    ) -> Result<ServedPlan, OptimizeError> {
        self.serve(&canonicalize(spec), adaptive)
    }

    /// Re-plans a spec under statistics observed from executing its previous plan — the
    /// feedback half of the loop (`qo-exec::ObservedExecution::observed_stats` produces the
    /// overlay).
    ///
    /// The observed overlay changes only statistics, never shape, so this lands on the same
    /// cache bucket as the original query and flows through the drift path: identical stats
    /// are a [`PlanSource::CacheHit`], drifted stats re-cost the cached join order and either
    /// serve it ([`PlanSource::Recost`]) or re-optimize in full
    /// ([`PlanSource::RecostFallback`]).
    pub fn plan_observed(
        &self,
        spec: &QuerySpec,
        observed: &ObservedStats,
    ) -> Result<ServedPlan, OptimizeError> {
        self.plan_observed_with(spec, observed, self.options.adaptive)
    }

    /// [`Service::plan_observed`] under explicit adaptive options.
    pub fn plan_observed_with(
        &self,
        spec: &QuerySpec,
        observed: &ObservedStats,
        adaptive: AdaptiveOptions,
    ) -> Result<ServedPlan, OptimizeError> {
        let _span = Span::enter("feedback");
        self.plan_spec_with(&spec.apply_observed(observed), adaptive)
    }

    /// Serves one already-canonicalized query through the always-on observability shell:
    /// the sampler admits the serve (installing a per-serve recording sink for the decided
    /// 1-in-N, teeing into any ambient sink), [`serve_inner`](Self::serve_inner) does the
    /// actual work, and the completed serve lands in the flight recorder. The unsampled
    /// path adds two relaxed atomics and one ring push — sampling never changes the answer.
    fn serve(
        &self,
        canonical: &CanonicalQuery,
        adaptive: AdaptiveOptions,
    ) -> Result<ServedPlan, OptimizeError> {
        let start = Instant::now();
        let rate = adaptive
            .sample_rate
            .unwrap_or(self.options.sampling.sample_rate);
        let ticket = self.sampler.begin_serve(rate);
        let seq = ticket.seq;
        let result = match &ticket.sample {
            Some(sample) => {
                // The guard drops before the harvest below, so the root `serve` span has
                // closed into the recording.
                let _guard = sample.install();
                self.serve_inner(canonical, adaptive)
            }
            None => self.serve_inner(canonical, adaptive),
        };
        let latency_ns = start.elapsed().as_nanos() as u64;
        let outcome = self.sampler.finish_serve(ticket, latency_ns);
        if let Some(o) = &outcome {
            self.metrics
                .record_trace_drops(o.dropped_spans, o.dropped_events);
        }
        result.map(|mut served| {
            served.serve_seq = seq;
            served.trace_id = outcome.map(|o| o.trace_id);
            served.order_digest = served.plan.order_digest();
            served.layout = layout_digest(canonical);
            // Regret shell: if execution feedback has measured this candidate worse than the
            // best-known order for the shape (or spent the exploration budget), serve the
            // proven best instead. Shapes never reported through `observe_execution` have no
            // ledger state and skip this entirely.
            if let Some(pin) =
                self.regret
                    .pin(served.fingerprint.shape, served.layout, served.order_digest)
            {
                if let Some(pinned) = self.serve_pinned(canonical, &adaptive, &served, pin) {
                    served = pinned;
                }
            }
            self.flight.record(ServeRecord {
                seq,
                fingerprint: served.fingerprint,
                tier: served.tier,
                source: served.source,
                latency_ns,
                cost: served.cost,
                true_cost: None,
                max_q_error: None,
                trace_id: served.trace_id,
            });
            served
        })
    }

    /// The serving pipeline proper: fingerprint, cache lookup, then hit / re-cost / full
    /// optimization.
    fn serve_inner(
        &self,
        canonical: &CanonicalQuery,
        adaptive: AdaptiveOptions,
    ) -> Result<ServedPlan, OptimizeError> {
        let _span = Span::enter("serve");
        let start = Instant::now();
        let fp = Fingerprint::of(canonical);
        let opts_key = options_key(&adaptive);

        match self.cache.lookup(fp, opts_key, &canonical.spec) {
            Lookup::Hit {
                plan,
                cost,
                cardinality,
                tier,
            } => {
                let served = ServedPlan {
                    plan: canonical.plan_to_original(&plan),
                    cost,
                    cardinality,
                    tier,
                    source: PlanSource::CacheHit,
                    fingerprint: fp,
                    serve_seq: 0,
                    trace_id: None,
                    order_digest: 0,
                    layout: 0,
                };
                let elapsed = start.elapsed();
                self.cache.record_hit(elapsed);
                self.metrics.observe_hit(elapsed);
                Ok(served)
            }
            Lookup::Shape { table, tier } => {
                if let Some(r) = recost_spec(&canonical.spec, &table, &adaptive)? {
                    if r.cost <= r.greedy_cost * (1.0 + self.options.recost_tolerance) {
                        let served = ServedPlan {
                            plan: canonical.plan_to_original(&r.plan),
                            cost: r.cost,
                            cardinality: r.cardinality,
                            tier,
                            source: PlanSource::Recost,
                            fingerprint: fp,
                            serve_seq: 0,
                            trace_id: None,
                            order_digest: 0,
                            layout: 0,
                        };
                        self.cache.insert(
                            fp.shape,
                            Entry {
                                spec: canonical.spec.clone(),
                                stats: fp.stats,
                                options: opts_key,
                                table: r.table,
                                plan: r.plan,
                                cost: r.cost,
                                cardinality: r.cardinality,
                                tier,
                            },
                        );
                        let elapsed = start.elapsed();
                        self.cache.record_shape_hit(elapsed);
                        self.metrics.observe_recost(elapsed);
                        return Ok(served);
                    }
                }
                let served = self.optimize_and_insert(canonical, fp, opts_key, adaptive)?;
                let elapsed = start.elapsed();
                self.cache.record_recost_fallback(elapsed);
                self.metrics.observe_miss(elapsed);
                Ok(ServedPlan {
                    source: PlanSource::RecostFallback,
                    ..served
                })
            }
            Lookup::Miss => {
                let served = self.optimize_and_insert(canonical, fp, opts_key, adaptive)?;
                let elapsed = start.elapsed();
                self.cache.record_miss(elapsed);
                self.metrics.observe_miss(elapsed);
                Ok(served)
            }
        }
    }

    /// The cold path: full adaptive optimization of the canonical spec, then cache insert.
    fn optimize_and_insert(
        &self,
        canonical: &CanonicalQuery,
        fp: Fingerprint,
        opts_key: u64,
        adaptive: AdaptiveOptions,
    ) -> Result<ServedPlan, OptimizeError> {
        let result = AdaptiveOptimizer::new(adaptive).optimize_spec(&canonical.spec)?;
        self.metrics.record_optimize(&result);
        let table = CachedTable::from_plan(&result.plan, canonical.spec.node_count())?;
        let served = ServedPlan {
            plan: canonical.plan_to_original(&result.plan),
            cost: result.cost,
            cardinality: result.cardinality,
            tier: result.tier,
            source: PlanSource::Miss,
            fingerprint: fp,
            serve_seq: 0,
            trace_id: None,
            order_digest: 0,
            layout: 0,
        };
        self.cache.insert(
            fp.shape,
            Entry {
                spec: canonical.spec.clone(),
                stats: fp.stats,
                options: opts_key,
                table,
                plan: result.plan,
                cost: result.cost,
                cardinality: result.cardinality,
                tier: result.tier,
            },
        );
        Ok(served)
    }

    /// Dresses the regret ledger's proven-best order as this serve's answer: the stored
    /// plan (original ids, layout-matched by [`RegretLedger::pin`]) is translated into
    /// canonical ids, re-costed bottom-up under the current statistics for honest cost and
    /// cardinality figures, and translated back. `None` keeps the model's candidate — the
    /// stored order failing to re-cost means it no longer covers the spec, and the veto is
    /// quietly waived rather than failing the serve.
    fn serve_pinned(
        &self,
        canonical: &CanonicalQuery,
        adaptive: &AdaptiveOptions,
        served: &ServedPlan,
        pin: PinnedPlan,
    ) -> Option<ServedPlan> {
        let n = canonical.spec.node_count();
        let mut node_inv = vec![0usize; n];
        for (c, &o) in canonical.to_original.iter().enumerate() {
            node_inv[o] = c;
        }
        let mut edge_inv = vec![0usize; canonical.edge_to_original.len()];
        for (c, &o) in canonical.edge_to_original.iter().enumerate() {
            edge_inv[o] = c;
        }
        let cplan = pin.plan.map_ids(&|r| node_inv[r], &|e| edge_inv[e]);
        let table = CachedTable::from_plan(&cplan, n).ok()?;
        let r = recost_spec(&canonical.spec, &table, adaptive).ok()??;
        Some(ServedPlan {
            plan: canonical.plan_to_original(&r.plan),
            cost: r.cost,
            cardinality: r.cardinality,
            tier: pin.tier,
            source: PlanSource::Pinned,
            fingerprint: served.fingerprint,
            serve_seq: served.serve_seq,
            trace_id: served.trace_id,
            order_digest: pin.digest,
            layout: served.layout,
        })
    }
}

/// Digest of a canonical query's id mappings: the regret ledger's guard that a stored
/// order's original ids name the same relations in the query being served.
fn layout_digest(canonical: &CanonicalQuery) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &r in &canonical.to_original {
        h = (h ^ r as u64).wrapping_mul(PRIME);
    }
    h = (h ^ u64::MAX).wrapping_mul(PRIME);
    for &e in &canonical.edge_to_original {
        h = (h ^ e as u64).wrapping_mul(PRIME);
    }
    h
}
