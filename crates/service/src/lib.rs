//! # qo-service — the concurrent plan-cache + optimization service
//!
//! Every other crate in this workspace optimizes one query at a time, from scratch. Real
//! deployments don't: the same join graph arrives thousands of times while only its
//! statistics drift, and a production optimizer amortizes — it canonicalizes, fingerprints,
//! caches, and re-optimizes *incrementally*. This crate is that front door:
//!
//! ```text
//!  QuerySpec / .jg text
//!        │
//!        ▼
//!  canonicalize (dphyp::canon) ──► Fingerprint { shape, stats }
//!        │                              │
//!        ▼                              ▼
//!  ┌───────────────────────────────────────────────┐
//!  │ sharded LRU plan cache (keyed on shape hash)  │
//!  └───────────────────────────────────────────────┘
//!     │ hit                │ shape hit               │ miss
//!     ▼                    ▼ (stats drifted)         ▼
//!  serve cached       re-cost cached DpTable     AdaptiveOptimizer
//!  plan verbatim      bottom-up + greedy probe   (budgeted DPhyp →
//!                       │ stale? ───────────────► IDP-k → GOO)
//!                       ▼ fresh enough                │
//!                     serve re-costed plan ◄──────────┘ (plan cached)
//! ```
//!
//! * **Fingerprinting** ([`Fingerprint`]): a relation-order-invariant 64-bit hash over the
//!   canonical hypergraph shape, with the statistics (and cost model) digested separately —
//!   so "same query, new stats" is distinguishable from "new query" by construction.
//! * **Plan cache** ([`CacheStats`], [`CacheOptions`]): sharded and thread-safe; lookups lock
//!   one shard briefly, optimizations never hold a lock. LRU eviction per shard.
//! * **Incremental re-optimization**: on a stats-only change the cached plan table is
//!   re-costed bottom-up ([`dphyp::recost_spec`]) instead of re-enumerating csg-cmp-pairs —
//!   bit-identical to a from-scratch optimization that picks the same join order — and a
//!   greedy probe with a configurable tolerance ([`ServiceOptions::recost_tolerance`])
//!   triggers a full re-optimization when the cached order has gone stale.
//! * **Batch driver** ([`Service::plan_batch`]): plans a workload concurrently over
//!   `std::thread::scope`, sharing one cache across the workers.
//!
//! ```
//! use dphyp::QuerySpec;
//! use qo_service::{PlanSource, Service};
//!
//! let service = Service::default();
//! let mut b = QuerySpec::builder(3);
//! b.set_cardinality(0, 1_000_000.0);
//! b.set_cardinality(1, 100.0);
//! b.set_cardinality(2, 50.0);
//! b.add_simple_edge(0, 1, 0.001);
//! b.add_simple_edge(0, 2, 0.01);
//! let star = b.build();
//!
//! let cold = service.plan_spec(&star).unwrap();
//! assert_eq!(cold.source, PlanSource::Miss);
//! let warm = service.plan_spec(&star).unwrap();
//! assert_eq!(warm.source, PlanSource::CacheHit);
//! assert_eq!(warm.cost, cold.cost); // bit-identical
//! assert_eq!(service.cache_stats().hits, 1);
//! ```

mod cache;
mod fingerprint;
mod flight;
mod metrics;
mod regret;
mod service;

pub use cache::{CacheOptions, CacheStats};
pub use dphyp::ExecutionFeedback;
pub use fingerprint::Fingerprint;
pub use flight::{FlightRecorder, ServeRecord};
pub use qo_obsv::{
    HistogramSnapshot, MetricsSnapshot, SampleTrigger, SampledTrace, SamplerOptions, SamplerStats,
    SamplingSink,
};
pub use regret::{RegretLedger, ShapeRegret};
pub use service::{
    effective_batch_threads, PlanSource, ServedPlan, Service, ServiceError, ServiceOptions,
};

#[cfg(test)]
mod tests {
    use super::*;
    use dphyp::{optimize_adaptive, AdaptiveOptions, IdpStrategy, PlanTier, QuerySpec};

    fn star_spec(hub: f64, sats: &[f64], sel: f64) -> QuerySpec {
        let n = sats.len() + 1;
        let mut b = QuerySpec::builder(n);
        b.set_cardinality(0, hub);
        for (i, &card) in sats.iter().enumerate() {
            b.set_cardinality(i + 1, card);
            b.add_simple_edge(0, i + 1, sel);
        }
        b.build()
    }

    fn chain_spec(cards: &[f64], sel: f64) -> QuerySpec {
        let mut b = QuerySpec::builder(cards.len());
        for (i, &c) in cards.iter().enumerate() {
            b.set_cardinality(i, c);
        }
        for i in 0..cards.len() - 1 {
            b.add_simple_edge(i, i + 1, sel);
        }
        b.build()
    }

    #[test]
    fn cold_warm_drift_walk_the_three_paths() {
        let service = Service::default();
        let spec = star_spec(1e6, &[10.0, 20.0, 30.0, 40.0], 0.001);

        let cold = service.plan_spec(&spec).unwrap();
        assert_eq!(cold.source, PlanSource::Miss);
        let direct = optimize_adaptive(&spec).unwrap();
        assert_eq!(
            cold.cost, direct.cost,
            "service cost == direct optimization"
        );
        assert_eq!(cold.plan.scan_count(), 5);

        let warm = service.plan_spec(&spec).unwrap();
        assert_eq!(warm.source, PlanSource::CacheHit);
        assert_eq!(warm.cost, cold.cost, "warm hit is bit-identical");
        assert_eq!(warm.plan, cold.plan);
        assert_eq!(warm.fingerprint, cold.fingerprint);

        // Mild drift: same shape fingerprint, new stats — the re-cost path.
        let drifted = star_spec(1e6, &[11.0, 21.0, 31.0, 41.0], 0.001);
        let served = service.plan_spec(&drifted).unwrap();
        assert_eq!(served.fingerprint.shape, cold.fingerprint.shape);
        assert_ne!(served.fingerprint.stats, cold.fingerprint.stats);
        assert_eq!(served.source, PlanSource::Recost);
        let fresh = optimize_adaptive(&drifted).unwrap();
        if fresh.plan == served.plan {
            assert_eq!(served.cost, fresh.cost, "stable order ⇒ bit-identical");
        }

        let stats = service.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.shape_hits, 1);
        assert_eq!(stats.misses, 1);
        // The drifted epoch is cached as its own variant next to the original.
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.lookups(), 3);
        assert!(stats.hit_ns > 0 && stats.miss_ns > 0 && stats.recost_ns > 0);
    }

    #[test]
    fn stale_orders_fall_back_to_full_reoptimization() {
        let service = Service::default();
        // Cache an order that hinges on satellite 1 being tiny…
        let spec = star_spec(1e6, &[2.0, 1_000.0, 1_000.0, 1_000.0, 1_000.0], 0.001);
        service.plan_spec(&spec).unwrap();
        // …then invert the statistics so that order loses even to greedy.
        let drifted = star_spec(1e6, &[5e7, 1_000.0, 1_000.0, 1_000.0, 1_000.0], 0.001);
        let served = service.plan_spec(&drifted).unwrap();
        assert_eq!(served.source, PlanSource::RecostFallback);
        let fresh = optimize_adaptive(&drifted).unwrap();
        assert_eq!(served.cost, fresh.cost, "fallback is a full optimization");
        assert_eq!(service.cache_stats().recost_fallbacks, 1);

        // The refreshed entry serves the new stats as a full hit now.
        let again = service.plan_spec(&drifted).unwrap();
        assert_eq!(again.source, PlanSource::CacheHit);
        assert_eq!(again.cost, fresh.cost);
    }

    /// A structurally asymmetric snowflake (spokes of lengths 1 and 2 off a hub), with the
    /// relation ids permuted by `perm`. WL colors fully separate such a tree, so any
    /// permutation canonicalizes identically.
    fn asymmetric_spec(perm: [usize; 4]) -> QuerySpec {
        let cards = [5_000.0, 42.0, 300.0, 10.0];
        let mut b = QuerySpec::builder(4);
        for (i, &c) in cards.iter().enumerate() {
            b.set_cardinality(perm[i], c);
        }
        b.add_simple_edge(perm[0], perm[1], 0.01); // hub — leaf spoke
        b.add_simple_edge(perm[0], perm[2], 0.02); // hub — chain spoke…
        b.add_simple_edge(perm[2], perm[3], 0.03); // …second hop
        b.build()
    }

    #[test]
    fn renamed_queries_share_one_entry_when_structure_discriminates() {
        let service = Service::default();
        let cold = service.plan_spec(&asymmetric_spec([0, 1, 2, 3])).unwrap();
        // The same query with every relation renamed/reordered.
        let renamed = asymmetric_spec([2, 0, 3, 1]);
        let warm = service.plan_spec(&renamed).unwrap();
        assert_eq!(warm.fingerprint, cold.fingerprint);
        assert_eq!(warm.source, PlanSource::CacheHit);
        assert_eq!(warm.cost, cold.cost);
        // The served plan is in the *caller's* id space.
        assert_eq!(warm.plan.relation_ids(), vec![0, 1, 2, 3]);
        assert_eq!(service.cache_stats().entries, 1);
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let service = Service::new(ServiceOptions {
            cache: CacheOptions {
                capacity: 2,
                shards: 1,
                ..Default::default()
            },
            ..Default::default()
        });
        let a = star_spec(1e6, &[10.0], 0.001);
        let b = star_spec(1e6, &[10.0, 20.0], 0.001);
        let c = star_spec(1e6, &[10.0, 20.0, 30.0], 0.001);
        service.plan_spec(&a).unwrap();
        service.plan_spec(&b).unwrap();
        service.plan_spec(&a).unwrap(); // refresh a's recency
        service.plan_spec(&c).unwrap(); // evicts b
        assert_eq!(service.cache_stats().evictions, 1);
        assert_eq!(service.cache_stats().entries, 2);
        assert_eq!(service.plan_spec(&a).unwrap().source, PlanSource::CacheHit);
        assert_eq!(service.plan_spec(&b).unwrap().source, PlanSource::Miss);
    }

    #[test]
    fn isomorphic_twins_coexist_as_variants_of_one_shape() {
        // JOB-style `a`/`b` variants: identical join graph, different constants. Both must
        // stay cached side by side so replaying either is an exact hit.
        let service = Service::default();
        let a = star_spec(1e6, &[10.0, 20.0, 30.0], 0.001);
        let b = star_spec(2e6, &[11.0, 22.0, 33.0], 0.002);
        let cold_a = service.plan_spec(&a).unwrap();
        let cold_b = service.plan_spec(&b).unwrap();
        assert_eq!(
            cold_a.fingerprint.shape, cold_b.fingerprint.shape,
            "isomorphic"
        );
        assert_ne!(cold_a.fingerprint.stats, cold_b.fingerprint.stats);
        assert_eq!(cold_a.source, PlanSource::Miss);
        // The twin warm-starts from a's entry through the re-cost path…
        assert!(matches!(
            cold_b.source,
            PlanSource::Recost | PlanSource::RecostFallback
        ));
        // …and both now hit exactly, with their own plans.
        assert_eq!(service.plan_spec(&a).unwrap().source, PlanSource::CacheHit);
        assert_eq!(service.plan_spec(&b).unwrap().source, PlanSource::CacheHit);
        assert_eq!(service.plan_spec(&a).unwrap().cost, cold_a.cost);
        assert_eq!(service.plan_spec(&b).unwrap().cost, cold_b.cost);
        assert_eq!(service.cache_stats().entries, 2);
        assert_eq!(service.cache_stats().evictions, 0);
    }

    #[test]
    fn batch_driver_matches_the_sequential_path() {
        let mut specs: Vec<QuerySpec> = (2..14)
            .map(|n| {
                let cards: Vec<f64> = (0..n).map(|i| 50.0 * (i as f64 + 1.0)).collect();
                chain_spec(&cards, 0.01)
            })
            .collect();
        // Isomorphic twins: same shape, different stats — the batch must order them like the
        // sequential path does (shape-grouped fan-out), or their serving sources would race.
        specs.push(star_spec(1e6, &[10.0, 20.0, 30.0], 0.001));
        specs.push(star_spec(2e6, &[11.0, 22.0, 33.0], 0.002));
        specs.push(star_spec(3e6, &[12.0, 24.0, 36.0], 0.003));
        let sequential = Service::default();
        let seq: Vec<_> = specs
            .iter()
            .map(|s| sequential.plan_spec(s).unwrap())
            .collect();
        let concurrent = Service::new(ServiceOptions {
            batch_threads: 4,
            ..Default::default()
        });
        let par = concurrent.plan_batch(&specs);
        assert_eq!(par.len(), specs.len());
        for (s, p) in seq.iter().zip(par) {
            let p = p.unwrap();
            assert_eq!(p.plan, s.plan, "same plan, any thread interleaving");
            assert_eq!(p.cost, s.cost);
        }
        // Re-running the batch is all hits, concurrently.
        let again = concurrent.plan_batch(&specs);
        for r in again {
            assert_eq!(r.unwrap().source, PlanSource::CacheHit);
        }
        assert_eq!(concurrent.cache_stats().hits, specs.len() as u64);
    }

    #[test]
    fn jg_text_plans_with_per_query_options() {
        let service = Service::default();
        let served = service
            .plan_jg(
                "
                query tiny {
                  relation fact cardinality=100000
                  relation d1   cardinality=100
                  relation d2   cardinality=50
                  join fact -- d1 selectivity=0.001
                  join fact -- d2 selectivity=0.01
                  option cost_model = mixed
                }
            ",
            )
            .unwrap();
        assert_eq!(served.len(), 1);
        assert_eq!(served[0].source, PlanSource::Miss);
        assert_eq!(served[0].plan.scan_count(), 3);
        // Same text again: a hit (the effective optimizer options — including the cost model —
        // form the entry's options key, which the identical resubmission matches).
        let again = service.plan_jg(
            "
                query tiny {
                  relation fact cardinality=100000
                  relation d1   cardinality=100
                  relation d2   cardinality=50
                  join fact -- d1 selectivity=0.001
                  join fact -- d2 selectivity=0.01
                  option cost_model = mixed
                }
            ",
        );
        assert_eq!(again.unwrap()[0].source, PlanSource::CacheHit);
        // Parse errors surface as ServiceError::Parse.
        assert!(matches!(
            service.plan_jg("query broken {"),
            Err(ServiceError::Parse(_))
        ));
        // Planner errors carry the query name.
        let err = service
            .plan_jg(
                "query disconnected {
                   relation a cardinality=10
                   relation b cardinality=10
                   relation c cardinality=10
                   relation d cardinality=10
                   join a -- b selectivity=0.5
                   join c -- d selectivity=0.5
                 }",
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::Optimize { ref query, .. } if query == "disconnected"));
        assert!(err.to_string().contains("disconnected"));
    }

    #[test]
    fn plans_from_weaker_options_are_never_served_to_stronger_requests() {
        let service = Service::default();
        let sats: Vec<f64> = (1..=16).map(|i| 10.0 * i as f64).collect();
        let spec = star_spec(5e4, &sats, 0.003);
        // A zero budget forces a greedy plan into the cache…
        let weak = service
            .plan_spec_with(
                &spec,
                AdaptiveOptions {
                    ccp_budget: 0,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(weak.tier, PlanTier::Greedy);
        // …which a default-budget request must NOT reuse (neither verbatim nor as a re-cost
        // seed): same shape, same stats, different options key ⇒ a fresh full optimization.
        let strong = service.plan_spec(&spec).unwrap();
        assert_eq!(strong.source, PlanSource::Miss);
        assert_eq!(strong.tier, PlanTier::Exact);
        assert!(strong.cost <= weak.cost, "exact can only improve on greedy");
        // Both variants now coexist and each replay hits its own.
        let weak_again = service
            .plan_spec_with(
                &spec,
                AdaptiveOptions {
                    ccp_budget: 0,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(weak_again.source, PlanSource::CacheHit);
        assert_eq!(weak_again.cost, weak.cost);
        let strong_again = service.plan_spec(&spec).unwrap();
        assert_eq!(strong_again.source, PlanSource::CacheHit);
        assert_eq!(strong_again.cost, strong.cost);
    }

    #[test]
    fn oversized_specs_error_without_touching_the_cache() {
        let service = Service::default();
        let cards: Vec<f64> = (0..130).map(|i| 100.0 + i as f64).collect();
        let err = service.plan_spec(&chain_spec(&cards, 0.01)).unwrap_err();
        assert!(matches!(err, dphyp::OptimizeError::TooManyRelations { .. }));
        assert_eq!(service.cache_stats().entries, 0);
    }

    #[test]
    fn service_options_flow_into_the_driver() {
        // A 17-satellite star under a tiny base budget lands in a fallback tier through the
        // service exactly as it does through the driver directly.
        let service = Service::new(ServiceOptions {
            adaptive: AdaptiveOptions {
                ccp_budget: 10_000,
                idp_strategy: IdpStrategy::ConnectedSmallest,
                ..Default::default()
            },
            ..Default::default()
        });
        let sats: Vec<f64> = (1..=16).map(|i| 10.0 * i as f64).collect();
        let served = service.plan_spec(&star_spec(5e4, &sats, 0.003)).unwrap();
        assert_eq!(served.tier, PlanTier::Idp);
        // And the tier is preserved on the warm path.
        let warm = service.plan_spec(&star_spec(5e4, &sats, 0.003)).unwrap();
        assert_eq!(warm.tier, PlanTier::Idp);
        assert_eq!(warm.source, PlanSource::CacheHit);
    }

    #[test]
    fn batch_fan_out_is_capped_against_oversubscription() {
        // Auto fan-out with sequential queries uses every core, bounded by the group count.
        assert_eq!(effective_batch_threads(0, 8, 1, 100), 8);
        assert_eq!(effective_batch_threads(0, 8, 1, 3), 3);
        // Intra-query parallelism divides the fan-out: 8 cores / 4 threads each → 2 groups
        // in flight, so batch × per-query never exceeds the machine.
        assert_eq!(effective_batch_threads(0, 8, 4, 100), 2);
        // An explicit fan-out is honored but still capped by the same product rule.
        assert_eq!(effective_batch_threads(6, 8, 1, 100), 6);
        assert_eq!(effective_batch_threads(6, 8, 2, 100), 4);
        // Per-query demand beyond the machine still leaves one batch worker running.
        assert_eq!(effective_batch_threads(0, 8, 16, 100), 1);
        // An empty batch resolves to the one-worker floor.
        assert_eq!(effective_batch_threads(0, 8, 1, 0), 1);
        // Sequential queries (per_query == 1) never shrink an explicit setting: the cap only
        // engages when the queries themselves spawn workers.
        assert_eq!(effective_batch_threads(16, 2, 1, 100), 16);
        assert_eq!(effective_batch_threads(16, 2, 2, 100), 1);
    }

    #[test]
    fn batched_parallel_queries_match_sequential_serving() {
        // Satellite of the parallel-enumeration work: a batch whose queries themselves run
        // the multi-threaded exact tier must produce exactly the plans the sequential
        // service produces, and the combined fan-out must not oversubscribe (exercised here
        // by construction: batch_threads=4 × parallelism=2 on any host hits the cap path).
        let parallel_opts = AdaptiveOptions {
            parallelism: Some(2),
            ..Default::default()
        };
        let specs: Vec<QuerySpec> = (2..12)
            .map(|n| {
                let cards: Vec<f64> = (0..n).map(|i| 40.0 * (i as f64 + 1.0)).collect();
                chain_spec(&cards, 0.02)
            })
            .collect();
        let sequential = Service::default();
        let seq: Vec<_> = specs
            .iter()
            .map(|s| sequential.plan_spec(s).unwrap())
            .collect();
        let concurrent = Service::new(ServiceOptions {
            batch_threads: 4,
            adaptive: parallel_opts,
            ..Default::default()
        });
        let par = concurrent.plan_batch(&specs);
        assert_eq!(par.len(), specs.len());
        for (s, p) in seq.iter().zip(par) {
            let p = p.unwrap();
            assert_eq!(p.plan, s.plan, "parallel batch serves the sequential plan");
            assert_eq!(p.cost, s.cost);
        }
    }
}
