//! The sharded, thread-safe LRU plan cache.
//!
//! Entries are keyed by the *shape* half of the [`Fingerprint`]; each shape holds a small
//! bucket of statistics *variants* (JOB-style workloads are full of isomorphic queries — the
//! `a`/`b`/`c` variants of one query differ only in constants — and they must coexist instead
//! of thrashing one slot). The stats half plus an exact canonical-spec comparison (a 64-bit
//! hash is a key, not a proof) decides between the three lookup outcomes a serving layer
//! distinguishes:
//!
//! * **Hit** — a variant matches shape and statistics exactly: its plan is returned as-is.
//! * **Shape** — same canonical skeleton, no exact-statistics variant: the caller re-costs the
//!   most recently used variant's plan table instead of re-optimizing (and then
//!   [`PlanCache::insert`]s the outcome as a new variant).
//! * **Miss** — nothing cached (or a hash collision / relabeling mismatch, detected by the
//!   structural comparison and treated as a miss for safety).
//!
//! Sharding keeps the lock granularity small under the concurrent batch driver: a lookup locks
//! one shard for a hash probe and a clone, never for the (comparatively long) optimization
//! itself. Recency is a relaxed global tick; eviction scans the one affected shard (shard
//! capacities are small) for the oldest variant.

use crate::fingerprint::Fingerprint;
use dphyp::{same_shape, CachedTable, PlanTier, QuerySpec};
use qo_plan::PlanNode;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Sizing of the plan cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheOptions {
    /// Maximum number of cached plans across all shards.
    pub capacity: usize,
    /// Number of independently locked shards. Clamped to at least 1; shard capacity is
    /// `capacity / shards`, rounded up.
    pub shards: usize,
    /// Maximum statistics variants kept per shape. Distinct queries with *isomorphic* join
    /// graphs (ubiquitous in JOB-style workloads: the `a`/`b`/`c` variants of a query differ
    /// only in constants, i.e. statistics) share a shape bucket; keeping several variants lets
    /// them all hit instead of thrashing one slot. Clamped to at least 1.
    pub variants_per_shape: usize,
}

impl Default for CacheOptions {
    /// 1024 plans over 8 shards, up to 8 statistics variants per shape.
    fn default() -> Self {
        CacheOptions {
            capacity: 1024,
            shards: 8,
            variants_per_shape: 8,
        }
    }
}

/// One cached optimization, everything in canonical id space.
#[derive(Clone, Debug)]
pub(crate) struct Entry {
    /// The canonical spec the entry was planned for (exact, including statistics).
    pub spec: QuerySpec,
    /// The stats half of the fingerprint the entry was costed under.
    pub stats: u64,
    /// The [`crate::fingerprint::options_key`] of the optimizer options the entry was planned
    /// under. Reuse — verbatim or as a re-cost seed — requires an exact match: a plan produced
    /// under weaker options must never satisfy a request paying for stronger ones.
    pub options: u64,
    /// The compact plan table (for incremental re-costing).
    pub table: CachedTable,
    /// The winning plan.
    pub plan: PlanNode,
    /// Its cost.
    pub cost: f64,
    /// Its estimated output cardinality.
    pub cardinality: f64,
    /// The tier that produced the join order.
    pub tier: PlanTier,
}

/// Outcome of a cache lookup.
pub(crate) enum Lookup {
    /// Shape and statistics match: the cached plan is current.
    Hit {
        plan: PlanNode,
        cost: f64,
        cardinality: f64,
        tier: PlanTier,
    },
    /// Same shape, drifted statistics: re-cost this table.
    Shape { table: CachedTable, tier: PlanTier },
    /// Nothing reusable.
    Miss,
}

/// Aggregated telemetry of the plan cache (all counters since construction).
///
/// Latency totals are wall-clock sums of the *whole* serving path per outcome — canonicalize,
/// fingerprint, lookup, plus the outcome's work (clone / re-cost / full optimization) — so
/// `miss_time / misses` vs `hit_time / hits` is the end-to-end speedup of warm serving.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Full hits (plan served from cache unchanged).
    pub hits: u64,
    /// Shape hits resolved by accepted incremental re-costs.
    pub shape_hits: u64,
    /// Shape hits whose re-cost was rejected (stale order or structural mismatch) and answered
    /// by a full re-optimization instead.
    pub recost_fallbacks: u64,
    /// Full misses (first sight of the shape, or a collision).
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Plans currently cached.
    pub entries: u64,
    /// Total nanoseconds spent serving full hits.
    pub hit_ns: u64,
    /// Total nanoseconds spent serving accepted re-costs.
    pub recost_ns: u64,
    /// Total nanoseconds spent serving misses and re-cost fallbacks (full optimizations).
    pub miss_ns: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.shape_hits + self.recost_fallbacks + self.misses
    }

    /// Total time spent serving full hits.
    pub fn hit_time(&self) -> Duration {
        Duration::from_nanos(self.hit_ns)
    }

    /// Total time spent serving accepted re-costs.
    pub fn recost_time(&self) -> Duration {
        Duration::from_nanos(self.recost_ns)
    }

    /// Total time spent serving misses (including re-cost fallbacks).
    pub fn miss_time(&self) -> Duration {
        Duration::from_nanos(self.miss_ns)
    }

    /// Count-weighted mean latency of a full hit, in nanoseconds (`hit_ns / hits`; 0 before
    /// the first hit). The raw totals stay available for callers aggregating across
    /// snapshots — dividing per snapshot and averaging the quotients would weight windows,
    /// not lookups.
    pub fn avg_hit_ns(&self) -> u64 {
        self.hit_ns.checked_div(self.hits).unwrap_or(0)
    }

    /// Count-weighted mean latency of an accepted re-cost, in nanoseconds
    /// (`recost_ns / shape_hits`; 0 before the first).
    pub fn avg_recost_ns(&self) -> u64 {
        self.recost_ns.checked_div(self.shape_hits).unwrap_or(0)
    }

    /// Count-weighted mean latency of a full optimization, in nanoseconds. `miss_ns` pools
    /// misses and re-cost fallbacks (both run the full optimizer), so the divisor is
    /// `misses + recost_fallbacks`; 0 before the first.
    pub fn avg_miss_ns(&self) -> u64 {
        self.miss_ns
            .checked_div(self.misses + self.recost_fallbacks)
            .unwrap_or(0)
    }
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    shape_hits: AtomicU64,
    recost_fallbacks: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    hit_ns: AtomicU64,
    recost_ns: AtomicU64,
    miss_ns: AtomicU64,
}

/// One statistics variant inside a shape bucket.
struct Slot {
    entry: Entry,
    last_used: u64,
}

type Shard = HashMap<u64, Vec<Slot>>;

/// The cache proper. All methods take `&self`; see the [module docs](self) for the protocol.
pub(crate) struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    variants_per_shape: usize,
    tick: AtomicU64,
    counters: Counters,
}

impl PlanCache {
    pub(crate) fn new(options: CacheOptions) -> PlanCache {
        let shards = options.shards.max(1);
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_capacity: options.capacity.div_ceil(shards).max(1),
            variants_per_shape: options.variants_per_shape.max(1),
            tick: AtomicU64::new(0),
            counters: Counters::default(),
        }
    }

    fn shard(&self, shape: u64) -> &Mutex<Shard> {
        &self.shards[(shape % self.shards.len() as u64) as usize]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up a canonicalized query. Outcome counters are recorded by the caller (which
    /// knows how a `Shape` outcome resolved), not here.
    ///
    /// An exact variant (same options, same stats, same spec) is a [`Lookup::Hit`]; otherwise
    /// the most recently used same-options variant with the same skeleton seeds a
    /// [`Lookup::Shape`] re-cost. Variants planned under different optimizer options are never
    /// reused, and a skeleton mismatch on every variant (hash collision, or an inconsistently
    /// relabeled symmetric query) is a safe [`Lookup::Miss`].
    pub(crate) fn lookup(
        &self,
        fp: Fingerprint,
        options_key: u64,
        canonical_spec: &QuerySpec,
    ) -> Lookup {
        let tick = self.next_tick();
        let mut shard = self.shard(fp.shape).lock().expect("cache shard poisoned");
        let Some(bucket) = shard.get_mut(&fp.shape) else {
            return Lookup::Miss;
        };
        if let Some(slot) = bucket.iter_mut().find(|s| {
            s.entry.options == options_key
                && s.entry.stats == fp.stats
                && s.entry.spec == *canonical_spec
        }) {
            slot.last_used = tick;
            return Lookup::Hit {
                plan: slot.entry.plan.clone(),
                cost: slot.entry.cost,
                cardinality: slot.entry.cardinality,
                tier: slot.entry.tier,
            };
        }
        if let Some(slot) = bucket
            .iter_mut()
            .filter(|s| s.entry.options == options_key && same_shape(&s.entry.spec, canonical_spec))
            .max_by_key(|s| s.last_used)
        {
            slot.last_used = tick;
            return Lookup::Shape {
                table: slot.entry.table.clone(),
                tier: slot.entry.tier,
            };
        }
        Lookup::Miss
    }

    /// Inserts a statistics variant for a shape: replaces the variant with the same stats key
    /// (the refreshed epoch of one logical query), otherwise appends — evicting the
    /// least-recently-used variant of the bucket, then of the shard, when caps are exceeded.
    pub(crate) fn insert(&self, shape: u64, entry: Entry) {
        let tick = self.next_tick();
        let mut shard = self.shard(shape).lock().expect("cache shard poisoned");
        let bucket = shard.entry(shape).or_default();
        let slot = Slot {
            last_used: tick,
            entry,
        };
        if let Some(existing) = bucket.iter_mut().find(|s| {
            s.entry.options == slot.entry.options
                && s.entry.stats == slot.entry.stats
                && same_shape(&s.entry.spec, &slot.entry.spec)
        }) {
            *existing = slot;
            return;
        }
        bucket.push(slot);
        if bucket.len() > self.variants_per_shape {
            if let Some(oldest) = bucket
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
            {
                bucket.swap_remove(oldest);
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Shard-level capacity: evict the globally least-recent slot of this shard.
        while shard.values().map(Vec::len).sum::<usize>() > self.shard_capacity {
            let Some((&victim_shape, oldest_idx)) = shard
                .iter()
                .filter_map(|(k, b)| {
                    b.iter()
                        .enumerate()
                        .min_by_key(|(_, s)| s.last_used)
                        .map(|(i, s)| (k, i, s.last_used))
                })
                .min_by_key(|&(_, _, used)| used)
                .map(|(k, i, _)| (k, i))
            else {
                break;
            };
            let bucket = shard.get_mut(&victim_shape).expect("victim bucket exists");
            bucket.swap_remove(oldest_idx);
            if bucket.is_empty() {
                shard.remove(&victim_shape);
            }
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_hit(&self, elapsed: Duration) {
        self.counters.hits.fetch_add(1, Ordering::Relaxed);
        self.counters
            .hit_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_shape_hit(&self, elapsed: Duration) {
        self.counters.shape_hits.fetch_add(1, Ordering::Relaxed);
        self.counters
            .recost_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_recost_fallback(&self, elapsed: Duration) {
        self.counters
            .recost_fallbacks
            .fetch_add(1, Ordering::Relaxed);
        self.counters
            .miss_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self, elapsed: Duration) {
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        self.counters
            .miss_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot of the counters (relaxed loads; exact when quiescent).
    pub(crate) fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("cache shard poisoned")
                    .values()
                    .map(|b| b.len() as u64)
                    .sum::<u64>()
            })
            .sum();
        let c = &self.counters;
        CacheStats {
            hits: c.hits.load(Ordering::Relaxed),
            shape_hits: c.shape_hits.load(Ordering::Relaxed),
            recost_fallbacks: c.recost_fallbacks.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            evictions: c.evictions.load(Ordering::Relaxed),
            entries,
            hit_ns: c.hit_ns.load(Ordering::Relaxed),
            recost_ns: c.recost_ns.load(Ordering::Relaxed),
            miss_ns: c.miss_ns.load(Ordering::Relaxed),
        }
    }
}
