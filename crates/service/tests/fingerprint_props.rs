//! Property tests for fingerprint soundness (the plan cache's key invariants):
//!
//! * renaming/reordering relations, reordering edges, and swapping commutative join sides all
//!   preserve the shape fingerprint;
//! * statistics drift changes the stats hash and *only* the stats hash;
//! * any structural change — an edge added or removed, a hypernode grown, an operator
//!   replaced, a relation added — changes the shape fingerprint.

use dphyp::{canonicalize, JoinOp, QuerySpec};
use proptest::prelude::*;
use qo_service::Fingerprint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random connected spec: a spanning tree plus a sprinkle of extra edges (some hypernodes,
/// some non-inner operators), arbitrary positive statistics.
fn random_spec(rng: &mut StdRng) -> QuerySpec {
    let n = rng.random_range(2usize..11);
    let mut b = QuerySpec::builder(n);
    for i in 0..n {
        b.set_cardinality(i, rng.random_range(1.0f64..1e7));
        if n > 1 && rng.random_range(0u32..10) == 0 {
            let other = (i + rng.random_range(1usize..n)) % n;
            b.set_lateral_refs(i, &[other]);
        }
    }
    for i in 1..n {
        let j = rng.random_range(0usize..i);
        b.add_simple_edge(j, i, sel(rng));
    }
    for _ in 0..rng.random_range(0usize..3) {
        if n < 4 {
            break;
        }
        let mut ids: Vec<usize> = (0..n).collect();
        for k in (1..ids.len()).rev() {
            ids.swap(k, rng.random_range(0usize..k + 1));
        }
        let l = rng.random_range(1usize..3);
        let r = rng.random_range(1usize..3);
        let (left, rest) = ids.split_at(l);
        let (right, _) = rest.split_at(r);
        let op = if rng.random_range(0u32..3) == 0 {
            JoinOp::LeftSemi
        } else {
            JoinOp::Inner
        };
        b.add_edge(left, right, sel(rng), op);
    }
    b.build()
}

fn sel(rng: &mut StdRng) -> f64 {
    rng.random_range(1e-9f64..1.0)
}

/// Rebuilds `spec` with relation `r` renamed to `perm[r]`, the edge list rotated, and the
/// sides of every other commutative edge swapped — a different description of the same query.
fn permuted(spec: &QuerySpec, perm: &[usize], rotate: usize) -> QuerySpec {
    let n = spec.node_count();
    let mut b = QuerySpec::builder(n);
    for r in 0..n {
        b.set_cardinality(perm[r], spec.cardinality(r));
        let refs: Vec<usize> = spec.lateral_refs(r).iter().map(|&t| perm[t]).collect();
        if !refs.is_empty() {
            b.set_lateral_refs(perm[r], &refs);
        }
    }
    let edges: Vec<_> = spec.edges().cloned().collect();
    for (i, e) in edges
        .iter()
        .cycle()
        .skip(rotate % edges.len().max(1))
        .take(edges.len())
        .enumerate()
    {
        let map = |ids: &[usize]| ids.iter().map(|&r| perm[r]).collect::<Vec<_>>();
        let (mut l, mut r) = (map(e.left()), map(e.right()));
        if e.op().is_commutative() && i % 2 == 1 {
            std::mem::swap(&mut l, &mut r);
        }
        if e.flex().is_empty() {
            b.add_edge(&l, &r, e.selectivity(), e.op());
        } else {
            b.add_generalized_edge(&l, &r, &map(e.flex()), e.selectivity());
        }
    }
    b.build()
}

/// Rebuilds `spec` with one mutation applied. Every variant is a *structural* change.
fn mutated(spec: &QuerySpec, rng: &mut StdRng) -> QuerySpec {
    let n = spec.node_count();
    let edges: Vec<_> = spec.edges().cloned().collect();
    loop {
        match rng.random_range(0u32..5) {
            // Add one more relation, attached anywhere.
            0 => {
                let mut b = QuerySpec::builder(n + 1);
                copy_into(spec, &mut b);
                b.add_simple_edge(rng.random_range(0usize..n), n, 0.5);
                return b.build();
            }
            // Drop the last edge (if that leaves at least one).
            1 if edges.len() >= 2 => {
                let mut b = QuerySpec::builder(n);
                copy_relations(spec, &mut b);
                for e in &edges[..edges.len() - 1] {
                    add_edge(
                        &mut b,
                        e.left(),
                        e.right(),
                        e.flex(),
                        e.selectivity(),
                        e.op(),
                    );
                }
                return b.build();
            }
            // Duplicate an edge (parallel predicate: the edge multiset changes).
            2 => {
                let mut b = QuerySpec::builder(n);
                copy_into(spec, &mut b);
                let e = &edges[rng.random_range(0usize..edges.len())];
                add_edge(
                    &mut b,
                    e.left(),
                    e.right(),
                    e.flex(),
                    e.selectivity(),
                    e.op(),
                );
                return b.build();
            }
            // Replace a simple edge's operator with a non-inner one.
            3 => {
                if let Some(pos) = edges
                    .iter()
                    .position(|e| e.op() == JoinOp::Inner && e.flex().is_empty())
                {
                    let mut b = QuerySpec::builder(n);
                    copy_relations(spec, &mut b);
                    for (i, e) in edges.iter().enumerate() {
                        let op = if i == pos { JoinOp::LeftAnti } else { e.op() };
                        add_edge(&mut b, e.left(), e.right(), e.flex(), e.selectivity(), op);
                    }
                    return b.build();
                }
            }
            // Grow a hypernode: pull one absent relation into an edge's left side.
            _ => {
                for (pos, e) in edges.iter().enumerate() {
                    if let Some(extra) = (0..n).find(|r| {
                        !e.left().contains(r) && !e.right().contains(r) && !e.flex().contains(r)
                    }) {
                        let mut b = QuerySpec::builder(n);
                        copy_relations(spec, &mut b);
                        for (i, e2) in edges.iter().enumerate() {
                            if i == pos {
                                let mut left = e2.left().to_vec();
                                left.push(extra);
                                add_edge(
                                    &mut b,
                                    &left,
                                    e2.right(),
                                    e2.flex(),
                                    e2.selectivity(),
                                    e2.op(),
                                );
                            } else {
                                add_edge(
                                    &mut b,
                                    e2.left(),
                                    e2.right(),
                                    e2.flex(),
                                    e2.selectivity(),
                                    e2.op(),
                                );
                            }
                        }
                        return b.build();
                    }
                }
            }
        }
    }
}

fn copy_relations(spec: &QuerySpec, b: &mut dphyp::QuerySpecBuilder) {
    for r in 0..spec.node_count() {
        b.set_cardinality(r, spec.cardinality(r));
        let refs = spec.lateral_refs(r).to_vec();
        if !refs.is_empty() {
            b.set_lateral_refs(r, &refs);
        }
    }
}

fn copy_into(spec: &QuerySpec, b: &mut dphyp::QuerySpecBuilder) {
    copy_relations(spec, b);
    for e in spec.edges() {
        add_edge(b, e.left(), e.right(), e.flex(), e.selectivity(), e.op());
    }
}

fn add_edge(
    b: &mut dphyp::QuerySpecBuilder,
    left: &[usize],
    right: &[usize],
    flex: &[usize],
    selectivity: f64,
    op: JoinOp,
) {
    if flex.is_empty() {
        b.add_edge(left, right, selectivity, op);
    } else {
        b.add_generalized_edge(left, right, flex, selectivity);
    }
}

fn fp(spec: &QuerySpec) -> Fingerprint {
    Fingerprint::of(&canonicalize(spec))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    #[test]
    fn renaming_and_reordering_preserve_the_shape_fingerprint(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = random_spec(&mut rng);
        let n = spec.node_count();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in (1..n).rev() {
            perm.swap(k, rng.random_range(0usize..k + 1));
        }
        let rotated = rng.random_range(0usize..8);
        let shuffled = permuted(&spec, &perm, rotated);
        prop_assert_eq!(
            fp(&spec).shape,
            fp(&shuffled).shape,
            "shape fingerprint must be relation-order-invariant"
        );
    }

    #[test]
    fn stats_drift_changes_only_the_stats_hash(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = random_spec(&mut rng);
        let n = spec.node_count();
        // Drift: perturb one cardinality and one selectivity.
        let victim = rng.random_range(0usize..n);
        let mut b = QuerySpec::builder(n);
        copy_relations(&spec, &mut b);
        b.set_cardinality(victim, spec.cardinality(victim) * 1.5 + 1.0);
        let edges: Vec<_> = spec.edges().cloned().collect();
        let edge_victim = rng.random_range(0usize..edges.len());
        for (i, e) in edges.iter().enumerate() {
            let s = if i == edge_victim {
                (e.selectivity() * 0.5).max(1e-12)
            } else {
                e.selectivity()
            };
            add_edge(&mut b, e.left(), e.right(), e.flex(), s, e.op());
        }
        let drifted = b.build();
        let a = fp(&spec);
        let d = fp(&drifted);
        prop_assert_eq!(a.shape, d.shape, "stats are not shape");
        prop_assert_ne!(a.stats, d.stats, "drift must show in the stats hash");
    }

    #[test]
    fn structural_mutations_change_the_shape_fingerprint(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = random_spec(&mut rng);
        let changed = mutated(&spec, &mut rng);
        prop_assert_ne!(
            fp(&spec).shape,
            fp(&changed).shape,
            "an edge/hypernode/relation change must alter the shape fingerprint"
        );
    }
}
