//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment has no route to crates.io, so the workspace vendors this shim. It
//! implements exactly the surface the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`] and [`Rng::random_range`] over integer and float ranges — on
//! top of a SplitMix64 generator. It is deterministic per seed (which is all the workload
//! generators need) but is **not** statistically equivalent to the real `StdRng` and not
//! cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Low-level source of pseudo-random 64-bit words.
pub trait RngCore {
    /// The next pseudo-random word.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling interface (blanket-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                // Spans covering the full 64-bit domain are not used by this workspace.
                let span = (end.wrapping_sub(start) as u64) + 1;
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(usize, u8, u16, u32, u64, i32, i64);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, passes casual statistical checks — good enough for deterministic
    /// workload generation. Not the real `rand::rngs::StdRng` (ChaCha12).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: usize = (0..100)
            .filter(|_| a.random_range(0u64..u64::MAX / 2) == c.random_range(0u64..u64::MAX / 2))
            .count();
        assert!(same < 5, "different seeds should give different streams");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(1..=3usize);
            assert!((1..=3).contains(&w));
            let f = rng.random_range(-3.0..-1.0f64);
            assert!((-3.0..-1.0).contains(&f));
            let i = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn values_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5usize..5);
    }
}
