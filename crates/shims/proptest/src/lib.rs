//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no route to crates.io, so the workspace vendors this shim. It
//! implements the subset of proptest the workspace's tests use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(...)]` inner attribute),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * integer-range strategies, `any::<T>()`, tuple strategies, and
//!   [`collection::vec`] / [`collection::btree_set`].
//!
//! Unlike real proptest there is **no shrinking** and no persisted failure seeds: cases are
//! generated from a deterministic per-test RNG (seeded from the test's module path and name), so
//! failures reproduce exactly on re-run. That trades minimal counterexamples for zero
//! dependencies, which is the right trade for this offline workspace.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::Range;

pub mod test_runner {
    //! Config, RNG and error plumbing used by the [`proptest!`](crate::proptest) expansion.

    use std::fmt;

    /// Subset of proptest's config: only the number of generated cases.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of cases generated per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed `prop_assert!` inside a property body.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic SplitMix64 stream; the seed is derived from the test name so every
    /// property gets an independent, reproducible sequence.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for the named test (pass `concat!(module_path!(), "::", name)`).
        pub fn deterministic(test_name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next pseudo-random word.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        #[inline]
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// A generator of values of one type. The shim equivalent of proptest's `Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u8, u16, u32, u64, i32, i64);

/// Strategy producing any value of `T` — the shim's `any::<T>()`.
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Values constructible from raw random words (backing [`any`]).
pub trait Arbitrary: fmt::Debug {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

pub mod collection {
    //! Collection strategies: `vec` and `btree_set`.

    use super::{BTreeSet, Range, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates sets whose size is at most the drawn target (duplicates collapse; generation
    /// retries a bounded number of times to reach the target).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.clone().generate(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 16 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod prelude {
    //! Everything a `use proptest::prelude::*;` test file expects.

    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Defines property tests. Shim version of proptest's macro of the same name: each property
/// becomes a plain `#[test]` running `cases` deterministic generations (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __inputs = {
                    let mut __s = String::new();
                    $(
                        __s.push_str(concat!(stringify!($arg), " = "));
                        __s.push_str(&format!("{:?}, ", $arg));
                    )*
                    __s
                };
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__e) = __result {
                    panic!(
                        "property {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __e,
                        __inputs,
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not panicking) so the
/// harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(format!(
                $($fmt)+
            )));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+),
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_collections_generate_in_bounds() {
        let mut rng = super::test_runner::TestRng::deterministic("shim::bounds");
        for _ in 0..500 {
            let v = super::Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let s =
                super::Strategy::generate(&super::collection::btree_set(0usize..8, 1..4), &mut rng);
            assert!(s.len() <= 3);
            assert!(s.iter().all(|&x| x < 8));
            let vec = super::Strategy::generate(
                &super::collection::vec((0usize..4, 0usize..4), 0..5),
                &mut rng,
            );
            assert!(vec.len() < 5);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = super::test_runner::TestRng::deterministic("x::y");
        let mut b = super::test_runner::TestRng::deterministic("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_expansion_works(a in 0usize..10, b in any::<u64>()) {
            prop_assert!(a < 10);
            prop_assert_eq!(a, a, "identity must hold for {}", a);
            prop_assert_ne!(b ^ 1, b);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config_works(x in 0usize..3) {
            prop_assert!(x < 3);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_reports_inputs() {
        proptest! {
            #[allow(unused)]
            fn inner(v in 5usize..6) {
                prop_assert!(v != 5, "v was {}", v);
            }
        }
        inner();
    }
}
