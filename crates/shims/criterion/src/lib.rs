//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no route to crates.io, so the workspace vendors this shim. It
//! keeps the bench files source-compatible (`criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`) and
//! reports a median wall-clock time per iteration to stdout. There are no statistical
//! comparisons against saved baselines — `reproduce --baseline` covers machine-readable
//! trending instead.

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Entry point handed to the benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(300),
        }
    }
}

/// Identifier `function/parameter` for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and the workload parameter it was run at.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Anything accepted as a benchmark identifier by [`BenchmarkGroup::bench_function`].
pub trait IntoBenchmarkLabel {
    /// The display label.
    fn label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn label(self) -> String {
        self
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.label());
        let mut bencher = Bencher::new(self.sample_size, self.warm_up, self.measurement);
        f(&mut bencher);
        bencher.report(&label);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let mut bencher = Bencher::new(self.sample_size, self.warm_up, self.measurement);
        f(&mut bencher, input);
        bencher.report(&label);
        self
    }

    /// Ends the group (kept for API compatibility; reporting happens per benchmark).
    pub fn finish(self) {}
}

/// Timer handed to the benchmark closure; call [`Bencher::iter`] with the workload.
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    median_ns: Option<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize, warm_up: Duration, measurement: Duration) -> Self {
        Bencher {
            sample_size,
            warm_up,
            measurement,
            median_ns: None,
            iters_per_sample: 0,
        }
    }

    /// Measures `f`: warm up, pick an iteration count that fits the measurement budget, then
    /// record `sample_size` samples and keep the median ns/iteration.
    pub fn iter<T, F>(&mut self, mut f: F)
    where
        F: FnMut() -> T,
    {
        // Warm-up (at least one call) while estimating the per-iteration time.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let budget_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters = (budget_ns / est_ns).clamp(1.0, 1e9) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        self.median_ns = Some(samples[samples.len() / 2]);
        self.iters_per_sample = iters;
    }

    fn report(&self, label: &str) {
        match self.median_ns {
            Some(ns) => {
                let (value, unit) = scale_ns(ns);
                println!(
                    "bench {label:<56} {value:>10.3} {unit}/iter  ({} samples x {} iters)",
                    self.sample_size, self.iters_per_sample
                );
            }
            None => println!("bench {label:<56} (no measurement: Bencher::iter never called)"),
        }
    }
}

fn scale_ns(ns: f64) -> (f64, &'static str) {
    if ns < 1_000.0 {
        (ns, "ns")
    } else if ns < 1_000_000.0 {
        (ns / 1_000.0, "µs")
    } else if ns < 1_000_000_000.0 {
        (ns / 1_000_000.0, "ms")
    } else {
        (ns / 1_000_000_000.0, "s")
    }
}

/// Bundles benchmark functions into a callable group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim-test");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum-to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_measures() {
        benches();
    }

    #[test]
    fn ns_scaling() {
        assert_eq!(scale_ns(500.0).1, "ns");
        assert_eq!(scale_ns(5_000.0).1, "µs");
        assert_eq!(scale_ns(5_000_000.0).1, "ms");
        assert_eq!(scale_ns(5_000_000_000.0).1, "s");
    }
}
