//! [`ObservedStats`]: a statistics overlay fed back from actual plan execution.
//!
//! The feedback loop's currency. An executor (e.g. `qo-exec`) measures what a plan actually
//! did — true base-relation cardinalities, per-edge selectivities inverted from observed join
//! outputs — and records it here, sparsely: only what was observed overrides the a-priori
//! catalog, everything else keeps its estimate. Applying the overlay to a [`Catalog`] produces
//! a new catalog whose [`Catalog::stats_epoch`] differs whenever any observation moved a
//! statistic, which is exactly the signal the plan-cache layer (`qo-service`) treats as stats
//! drift: the cached join order is re-costed under the observed statistics and re-optimized in
//! full when it has demonstrably gone stale.

use crate::catalog::Catalog;
use qo_bitset::NodeId;
use qo_hypergraph::EdgeId;

/// Observed selectivities are clamped into `[MIN_SELECTIVITY, 1]` so that a join observed to
/// produce zero rows still yields a catalog every validation accepts (selectivities must lie
/// in `(0, 1]`).
const MIN_SELECTIVITY: f64 = 1e-12;

/// The distilled scalar signal of one instrumented plan execution, as a serving layer
/// consumes it: the plan's *true* cost (`C_out` evaluated over actual intermediate
/// cardinalities) and the estimation error that produced it. Where [`ObservedStats`] feeds
/// the *planner* (re-optimize under reality), `ExecutionFeedback` feeds the *operator*:
/// `qo-exec`'s `ObservedExecution::feedback()` builds one, and `qo-service` records it into
/// its flight recorder and regret ledger.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecutionFeedback {
    /// Sum of actual intermediate cardinalities over all join nodes — the executed plan's
    /// cost under reality instead of estimates.
    pub true_cost: f64,
    /// Largest per-join q-error of the execution (1.0 for a plan with no joins).
    pub max_q_error: f64,
    /// Median per-join q-error of the execution.
    pub median_q_error: f64,
}

/// Sparse statistics observed from executing a plan: per-relation true cardinalities and
/// per-edge observed selectivities. Unobserved slots stay `None` and fall through to the base
/// catalog when the overlay is [applied](ObservedStats::apply).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObservedStats {
    cardinalities: Vec<Option<f64>>,
    selectivities: Vec<Option<f64>>,
}

impl ObservedStats {
    /// An empty overlay (applies as the identity).
    pub fn new() -> Self {
        ObservedStats::default()
    }

    /// Records the true cardinality of a base relation.
    pub fn observe_cardinality(&mut self, relation: NodeId, cardinality: f64) {
        if self.cardinalities.len() <= relation {
            self.cardinalities.resize(relation + 1, None);
        }
        self.cardinalities[relation] = Some(cardinality.max(0.0));
    }

    /// Records the observed selectivity of a predicate edge, clamped into `(0, 1]` (a join
    /// that produced zero rows observes the minimum representable selectivity, not zero).
    pub fn observe_selectivity(&mut self, edge: EdgeId, selectivity: f64) {
        if self.selectivities.len() <= edge {
            self.selectivities.resize(edge + 1, None);
        }
        self.selectivities[edge] = Some(selectivity.clamp(MIN_SELECTIVITY, 1.0));
    }

    /// The observed cardinality of a relation, if any.
    pub fn cardinality(&self, relation: NodeId) -> Option<f64> {
        self.cardinalities.get(relation).copied().flatten()
    }

    /// The observed selectivity of an edge, if any.
    pub fn selectivity(&self, edge: EdgeId) -> Option<f64> {
        self.selectivities.get(edge).copied().flatten()
    }

    /// Does the overlay carry no observation at all?
    pub fn is_empty(&self) -> bool {
        self.cardinalities.iter().all(Option::is_none)
            && self.selectivities.iter().all(Option::is_none)
    }

    /// Overlays the observations onto a base catalog: observed cardinalities and selectivities
    /// replace their estimates, everything else (lateral references, operators, TES splits,
    /// unobserved statistics) is carried over unchanged. Any observation that moved a statistic
    /// bumps the resulting catalog's [`Catalog::stats_epoch`].
    pub fn apply<const W: usize>(&self, base: &Catalog<W>) -> Catalog<W> {
        let mut b = Catalog::<W>::builder(base.relation_count());
        for r in 0..base.relation_count() {
            b.set_cardinality(
                r,
                self.cardinality(r).unwrap_or_else(|| base.cardinality(r)),
            );
            let refs = base.lateral_refs(r);
            if !refs.is_empty() {
                b.set_lateral_refs(r, refs);
            }
        }
        let edges = base.annotated_edge_count().max(self.selectivities.len());
        for e in 0..edges {
            let mut a = base.edge_annotation(e);
            if let Some(sel) = self.selectivity(e) {
                a.selectivity = sel;
            }
            b.annotate_edge(e, a);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::EdgeAnnotation;
    use qo_bitset::NodeSet;
    use qo_plan::JoinOp;

    fn base() -> Catalog<1> {
        let mut b = Catalog::<1>::builder(3);
        b.set_cardinality(0, 1000.0)
            .set_cardinality(1, 50.0)
            .set_cardinality(2, 10.0)
            .set_lateral_refs(2, NodeSet::from_iter([0]))
            .annotate_edge(0, EdgeAnnotation::inner(0.01))
            .annotate_edge(1, EdgeAnnotation::with_op(0.5, JoinOp::LeftOuter));
        b.build()
    }

    #[test]
    fn empty_overlay_is_the_identity_on_the_epoch() {
        let c = base();
        let overlay = ObservedStats::new();
        assert!(overlay.is_empty());
        let applied = overlay.apply(&c);
        assert_eq!(applied.stats_epoch(), c.stats_epoch());
        assert_eq!(applied.cardinality(0), 1000.0);
        assert_eq!(applied.edge_annotation(1).selectivity, 0.5);
    }

    #[test]
    fn observations_override_and_bump_the_epoch() {
        let c = base();
        let mut overlay = ObservedStats::new();
        overlay.observe_cardinality(0, 8.0);
        overlay.observe_selectivity(0, 0.14);
        assert!(!overlay.is_empty());
        let applied = overlay.apply(&c);
        assert_eq!(applied.cardinality(0), 8.0);
        assert_eq!(applied.cardinality(1), 50.0, "unobserved stays estimated");
        assert_eq!(applied.edge_annotation(0).selectivity, 0.14);
        assert_eq!(applied.edge_annotation(1).selectivity, 0.5);
        assert_ne!(
            applied.stats_epoch(),
            c.stats_epoch(),
            "drift is visible to the plan cache"
        );
    }

    #[test]
    fn operators_laterals_and_defaults_survive_the_overlay() {
        let c = base();
        let mut overlay = ObservedStats::new();
        overlay.observe_selectivity(1, 0.9);
        let applied = overlay.apply(&c);
        assert_eq!(applied.edge_annotation(1).op, JoinOp::LeftOuter);
        assert_eq!(applied.lateral_refs(2), NodeSet::from_iter([0]));
        assert!(applied.has_lateral_refs());
        // Observing an edge beyond the annotated range extends it; the gap keeps defaults.
        let mut wide = ObservedStats::new();
        wide.observe_selectivity(3, 0.25);
        let applied = wide.apply(&c);
        assert_eq!(applied.edge_annotation(2).selectivity, 1.0);
        assert_eq!(applied.edge_annotation(3).selectivity, 0.25);
    }

    #[test]
    fn observed_selectivities_are_clamped_into_validity() {
        let mut overlay = ObservedStats::new();
        overlay.observe_selectivity(0, 0.0); // an empty join observes ~zero
        overlay.observe_selectivity(1, 7.5); // a nonsense inversion stays a filter
        assert_eq!(overlay.selectivity(0), Some(1e-12));
        assert_eq!(overlay.selectivity(1), Some(1.0));
        overlay.observe_cardinality(0, -3.0);
        assert_eq!(overlay.cardinality(0), Some(0.0));
    }
}
