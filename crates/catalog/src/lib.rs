//! Relation statistics, cardinality estimation, cost models and the shared dynamic-programming
//! plan-construction machinery used by every join enumeration algorithm in this workspace.
//!
//! The DPhyp paper abstracts costing into a `cost` function attached to the hypergraph
//! ("join predicates, selectivities, and cardinalities are attached to the hypergraph",
//! Sec. 3.5). This crate is that attachment point:
//!
//! * [`Catalog`]: per-relation cardinalities and lateral references, per-hyperedge
//!   annotations (selectivity, originating operator, TES),
//! * [`ObservedStats`]: a sparse overlay of statistics observed from actual plan execution —
//!   applying it yields a catalog with a bumped [`StatsEpoch`], the drift signal the plan-cache
//!   layer re-optimizes under (the feedback loop),
//! * [`CardinalityEstimator`]: output-cardinality formulas per operator,
//! * [`CostModel`] with two implementations — [`CoutCost`] (the classic C_out used throughout
//!   the join-ordering literature) and [`MixedCost`] (a simple physical model distinguishing
//!   hash joins from nested-loop/dependent joins),
//! * [`table`]: the arena-based DP table ([`DpTable`]) — plan classes in a contiguous arena
//!   behind a hand-rolled FxHash-style `NodeSet → u32` slot map, with interned predicate edge
//!   lists,
//! * [`planner`]: the [`CcpHandler`] trait through which the enumeration algorithms report
//!   csg-cmp-pairs, the cost-based handler that implements the paper's `EmitCsgCmp`
//!   (monomorphized over the cost model), a counting handler used for search-space
//!   statistics, and the [`BudgetedHandler`] decorator that aborts an enumeration from inside
//!   `EmitCsgCmp` once a csg-cmp-pair budget is exhausted (the adaptive driver's early-exit
//!   signal, see [`EmitSignal`]),
//! * [`parallel`]: the shared-state primitives of multi-threaded enumeration — a
//!   [`ShardedDpTable`] partitioning the memo behind per-shard locks, the [`NodeSetSet`]
//!   membership set of the structure pass, and the [`SharedBudget`] deadline/abort state all
//!   cost-pass workers poll.

mod cardinality;
mod catalog;
mod cost;
mod observed;
pub mod parallel;
pub mod planner;
pub mod table;

pub use cardinality::CardinalityEstimator;
pub use catalog::{Catalog, CatalogBuilder, EdgeAnnotation, StatsEpoch};
pub use cost::{CostModel, CoutCost, MixedCost, SubPlanStats};
pub use observed::{ExecutionFeedback, ObservedStats};
pub use parallel::{shard_of, NodeSetSet, ShardReader, ShardedDpTable, SharedBudget, SHARD_COUNT};
pub use planner::{
    recost_table, BudgetedHandler, CcpHandler, CostBasedHandler, CountingHandler, EmitSignal,
    JoinCombiner, PruneCounters,
};
pub use table::{BestJoin, Candidate, CandidateJoin, DpTable, EdgeListRef, PlanClass};

pub use qo_bitset::{NodeId, NodeSet};
pub use qo_hypergraph::EdgeId;
pub use qo_plan::JoinOp;
