//! Cost models.

use qo_bitset::NodeSet;
use qo_plan::JoinOp;

/// Statistics of a sub-plan that a [`CostModel`] may inspect.
///
/// Generic over the mask width `W` like every planner-facing type; the default width covers
/// queries of up to 64 relations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SubPlanStats<const W: usize = 1> {
    /// Relations produced by the sub-plan.
    pub set: NodeSet<W>,
    /// Estimated output cardinality.
    pub cardinality: f64,
    /// Accumulated cost of the sub-plan.
    pub cost: f64,
}

impl<const W: usize> SubPlanStats<W> {
    /// Stats of a base-relation scan: zero accumulated cost.
    pub fn leaf(relation: usize, cardinality: f64) -> Self {
        SubPlanStats {
            set: NodeSet::single(relation),
            cardinality,
            cost: 0.0,
        }
    }
}

/// A cost model maps a candidate join (operator, inputs, estimated output cardinality) to the
/// accumulated cost of the resulting plan.
///
/// All models must be *monotone* in the input costs (adding cost to an input never makes the
/// output cheaper); this is what makes dynamic programming over plan classes optimal.
///
/// The trait carries the mask width so that implementations can inspect the input relation
/// sets; `dyn CostModel` (i.e. `dyn CostModel<1>`) keeps runtime model selection working on the
/// single-word tier, and the built-in models implement every width.
pub trait CostModel<const W: usize = 1> {
    /// Accumulated cost of joining `left` and `right` with `op`, producing `output_cardinality`
    /// tuples.
    fn join_cost(
        &self,
        op: JoinOp,
        left: &SubPlanStats<W>,
        right: &SubPlanStats<W>,
        output_cardinality: f64,
    ) -> f64;

    /// Human-readable name of the model.
    fn name(&self) -> &'static str;

    /// Branch-and-bound precondition: are this model's costs *non-negative* and *monotone in
    /// composition* — every candidate costs at least as much as either input sub-plan?
    ///
    /// Under that invariant a sub-plan whose accumulated cost already exceeds the cost of a
    /// known complete plan can never participate in a cheaper complete plan, so cost-bounded
    /// pruning (`dphyp`'s `AdaptiveOptions::pruning`) may skip registering it without losing
    /// the optimum. Defaults to `true` because the DP optimality contract above already
    /// demands monotone models; experimental models that violate it (negative costs, discounts
    /// for larger plans) must override this to `false`, which disables pruning for them.
    fn supports_pruning(&self) -> bool {
        true
    }
}

/// The classic `C_out` cost function: the sum of the cardinalities of all intermediate results.
///
/// This is the cost function used throughout the join-ordering literature (and in the paper's
/// predecessors) because it is symmetric, smooth and independent of physical operator choices —
/// ideal for comparing enumeration algorithms.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoutCost;

impl<const W: usize> CostModel<W> for CoutCost {
    fn join_cost(
        &self,
        _op: JoinOp,
        left: &SubPlanStats<W>,
        right: &SubPlanStats<W>,
        output_cardinality: f64,
    ) -> f64 {
        output_cardinality + left.cost + right.cost
    }

    fn name(&self) -> &'static str {
        "C_out"
    }
}

/// A simple physical cost model distinguishing hash-based joins from nested-loop evaluation.
///
/// * Regular (non-dependent) operators are costed as a hash join: build the smaller side, probe
///   with the larger one, then produce the output.
/// * Dependent operators must re-evaluate their right side per left tuple, i.e. behave like a
///   nested-loop join.
///
/// The model is deliberately coarse; it exists to demonstrate that the enumeration algorithms
/// are independent of the cost model and to exercise the asymmetric-cost code path
/// (commutativity handling in `EmitCsgCmp`).
#[derive(Clone, Copy, Debug, Default)]
pub struct MixedCost;

impl<const W: usize> CostModel<W> for MixedCost {
    fn join_cost(
        &self,
        op: JoinOp,
        left: &SubPlanStats<W>,
        right: &SubPlanStats<W>,
        output_cardinality: f64,
    ) -> f64 {
        let local = if op.is_dependent() {
            // Nested-loop / apply: the right side is evaluated once per left tuple.
            left.cardinality * right.cardinality.max(1.0)
        } else {
            // Hash join: build on the right input, probe with the left.
            2.0 * right.cardinality + left.cardinality
        };
        local + output_cardinality + left.cost + right.cost
    }

    fn name(&self) -> &'static str {
        "mixed(hash/nl)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(set: &[usize], card: f64, cost: f64) -> SubPlanStats {
        SubPlanStats {
            set: set.iter().copied().collect(),
            cardinality: card,
            cost,
        }
    }

    #[test]
    fn leaf_stats_have_zero_cost() {
        let s = SubPlanStats::<1>::leaf(3, 500.0);
        assert_eq!(s.cost, 0.0);
        assert_eq!(s.cardinality, 500.0);
        assert_eq!(s.set, NodeSet::single(3));
    }

    #[test]
    fn wide_leaf_stats_reach_the_high_word() {
        let s = SubPlanStats::<2>::leaf(100, 7.0);
        assert_eq!(s.set, NodeSet::single(100));
        assert_eq!(s.cost, 0.0);
    }

    #[test]
    fn cout_is_sum_of_intermediate_cardinalities() {
        let m = CoutCost;
        let l = stats(&[0], 100.0, 0.0);
        let r = stats(&[1], 200.0, 0.0);
        assert_eq!(m.join_cost(JoinOp::Inner, &l, &r, 50.0), 50.0);
        // Accumulation.
        let lr = stats(&[0, 1], 50.0, 50.0);
        let t = stats(&[2], 10.0, 0.0);
        assert_eq!(m.join_cost(JoinOp::Inner, &lr, &t, 25.0), 75.0);
        assert_eq!(CostModel::<1>::name(&m), "C_out");
    }

    #[test]
    fn cout_is_symmetric() {
        let m = CoutCost;
        let l = stats(&[0], 100.0, 5.0);
        let r = stats(&[1], 200.0, 7.0);
        assert_eq!(
            m.join_cost(JoinOp::Inner, &l, &r, 50.0),
            m.join_cost(JoinOp::Inner, &r, &l, 50.0)
        );
    }

    #[test]
    fn built_in_models_cost_identically_at_every_width() {
        // The width only changes the set representation, never the arithmetic.
        let narrow_l = stats(&[0], 1000.0, 3.0);
        let narrow_r = stats(&[1], 10.0, 1.0);
        let wide_l = SubPlanStats::<2> {
            set: NodeSet::single(0),
            cardinality: 1000.0,
            cost: 3.0,
        };
        let wide_r = SubPlanStats::<2> {
            set: NodeSet::single(65),
            cardinality: 10.0,
            cost: 1.0,
        };
        for op in [JoinOp::Inner, JoinOp::DepJoin] {
            assert_eq!(
                CoutCost.join_cost(op, &narrow_l, &narrow_r, 42.0),
                CoutCost.join_cost(op, &wide_l, &wide_r, 42.0),
            );
            assert_eq!(
                MixedCost.join_cost(op, &narrow_l, &narrow_r, 42.0),
                MixedCost.join_cost(op, &wide_l, &wide_r, 42.0),
            );
        }
    }

    #[test]
    fn mixed_is_asymmetric_and_penalizes_dependent_ops() {
        let m = MixedCost;
        let l = stats(&[0], 1000.0, 0.0);
        let r = stats(&[1], 10.0, 0.0);
        let ab = m.join_cost(JoinOp::Inner, &l, &r, 100.0);
        let ba = m.join_cost(JoinOp::Inner, &r, &l, 100.0);
        assert_ne!(ab, ba, "hash-join cost should depend on the build side");
        // Building on the small side (right = r) is cheaper.
        assert!(ab < ba);
        let dep = m.join_cost(JoinOp::DepJoin, &l, &r, 100.0);
        assert!(
            dep > ab,
            "dependent evaluation must be costlier than a hash join here"
        );
        assert_eq!(CostModel::<1>::name(&m), "mixed(hash/nl)");
    }

    #[test]
    fn both_models_are_monotone_in_input_cost() {
        let models: [&dyn CostModel; 2] = [&CoutCost, &MixedCost];
        for m in models {
            let l_cheap = stats(&[0], 100.0, 10.0);
            let l_pricey = stats(&[0], 100.0, 1000.0);
            let r = stats(&[1], 50.0, 0.0);
            assert!(
                m.join_cost(JoinOp::Inner, &l_cheap, &r, 42.0)
                    < m.join_cost(JoinOp::Inner, &l_pricey, &r, 42.0),
                "{} not monotone",
                m.name()
            );
        }
    }
}
