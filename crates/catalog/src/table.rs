//! The dynamic-programming table of the planner, re-architected for the hot path.
//!
//! The paper's metric is cost-function invocations per csg-cmp-pair, so the per-pair overhead
//! of the memo structure *is* the hot path. The table therefore avoids the two costs of the
//! obvious `HashMap<NodeSet, PlanClass>` design:
//!
//! * **SipHash + bucket indirection.** Plan classes live in one contiguous arena
//!   ([`DpTable::classes`] iterates it in insertion order) and are found through a hand-rolled
//!   open-addressing slot map from the raw set mask to a `u32` arena index, hashed with the
//!   FxHash-style finalizer of [`NodeSet::hash64`] (which folds every mask word). Lookups touch
//!   one flat array with linear probing — no SipHash rounds, no `(hash, key, value)` buckets.
//! * **Per-offer `Vec<EdgeId>` clones.** The connecting-predicate list of a join is interned
//!   into a shared arena ([`EdgeListRef`] is an 8-byte handle, hash-consed so equal lists are
//!   stored once); a rejected [`DpTable::offer`] allocates nothing, and [`PlanClass`] becomes
//!   `Copy`, which in turn lets every enumeration algorithm read table entries without cloning.
//!
//! Every type is generic over the mask width `W` (one word by default): a `DpTable<2>` memoizes
//! plan classes for queries of up to 128 relations with the same layout and probing scheme.

use crate::cost::SubPlanStats;
use qo_bitset::{NodeId, NodeSet};
use qo_hypergraph::EdgeId;
use qo_plan::{JoinOp, PlanNode};

/// Handle to an interned predicate list; resolve with [`DpTable::edge_list`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeListRef {
    offset: u32,
    len: u32,
}

impl EdgeListRef {
    /// Number of edges in the referenced list.
    #[inline]
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// Is the referenced list empty?
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// The root join of the best plan of a [`PlanClass`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BestJoin<const W: usize = 1> {
    /// Relations of the left input class.
    pub left: NodeSet<W>,
    /// Relations of the right input class.
    pub right: NodeSet<W>,
    /// Operator applied at the root (already turned into its dependent variant if required).
    pub op: JoinOp,
    /// Hyperedge ids whose predicates are evaluated at this join, interned in the owning
    /// [`DpTable`].
    pub predicates: EdgeListRef,
}

/// The best plan known for one set of relations (a "plan class").
///
/// Plan classes are plain `Copy` values (48 bytes at the default width): enumeration algorithms
/// read them out of the table by value instead of cloning heap-backed structs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlanClass<const W: usize = 1> {
    /// The relations covered by this class.
    pub set: NodeSet<W>,
    /// Estimated output cardinality of the class.
    pub cardinality: f64,
    /// Cost of the best plan found so far.
    pub cost: f64,
    /// How the best plan combines its inputs; `None` for base relations.
    pub best_join: Option<BestJoin<W>>,
}

impl<const W: usize> PlanClass<W> {
    /// The class viewed as sub-plan statistics (the combiner's input currency).
    pub fn stats(&self) -> SubPlanStats<W> {
        SubPlanStats {
            set: self.set,
            cardinality: self.cardinality,
            cost: self.cost,
        }
    }
}

/// A candidate plan class produced by the combiner, not yet memoized: its predicate list still
/// borrows the caller's connecting-edge buffer and is only interned if the offer is accepted.
#[derive(Clone, Copy, Debug)]
pub struct Candidate<'e, const W: usize = 1> {
    /// The relations covered by the candidate.
    pub set: NodeSet<W>,
    /// Estimated output cardinality.
    pub cardinality: f64,
    /// Cost of the candidate plan.
    pub cost: f64,
    /// The root join; `None` never occurs for combiner output but keeps the type parallel to
    /// [`PlanClass`].
    pub join: Option<CandidateJoin<'e, W>>,
}

impl<const W: usize> Candidate<'_, W> {
    /// The candidate viewed as sub-plan statistics (for chaining combinations without going
    /// through the table).
    pub fn stats(&self) -> SubPlanStats<W> {
        SubPlanStats {
            set: self.set,
            cardinality: self.cardinality,
            cost: self.cost,
        }
    }
}

/// The root join of a [`Candidate`].
#[derive(Clone, Copy, Debug)]
pub struct CandidateJoin<'e, const W: usize = 1> {
    /// Relations of the left input class.
    pub left: NodeSet<W>,
    /// Relations of the right input class.
    pub right: NodeSet<W>,
    /// Operator applied at the root.
    pub op: JoinOp,
    /// Hyperedge ids whose predicates are evaluated at this join.
    pub predicates: &'e [EdgeId],
}

/// Open-addressing map from non-empty relation-set keys to `u32` arena indexes.
///
/// The empty set — never a valid plan-class key — doubles as the vacancy sentinel, so a slot is
/// a bare `(NodeSet<W>, u32)` pair and probing is branch-light. The convention is confined to
/// [`SlotMap::is_vacant`]: vacancy means *all* words of the stored key are zero, which keeps
/// multi-word keys whose low word happens to be zero (e.g. `{R64}`) distinct from vacancies.
#[derive(Clone, Debug)]
struct SlotMap<const W: usize> {
    keys: Vec<NodeSet<W>>,
    slots: Vec<u32>,
    len: usize,
    /// log2 of the table size; kept so indexing can use the well-mixed high hash bits.
    bits: u32,
}

impl<const W: usize> SlotMap<W> {
    const INITIAL_BITS: u32 = 6; // 64 slots

    fn new() -> Self {
        SlotMap {
            keys: vec![NodeSet::EMPTY; 1 << Self::INITIAL_BITS],
            slots: vec![0; 1 << Self::INITIAL_BITS],
            len: 0,
            bits: Self::INITIAL_BITS,
        }
    }

    /// Is this stored key the vacancy sentinel (the empty set, i.e. every word zero)?
    #[inline]
    fn is_vacant(key: NodeSet<W>) -> bool {
        key.is_empty()
    }

    #[inline]
    fn get(&self, set: NodeSet<W>) -> Option<u32> {
        debug_assert!(
            !Self::is_vacant(set),
            "the empty set is never a plan-class key"
        );
        let cap_mask = self.keys.len() - 1;
        let mut i = set.hash_index(self.bits);
        loop {
            let k = self.keys[i];
            if k == set {
                return Some(self.slots[i]);
            }
            if Self::is_vacant(k) {
                return None;
            }
            i = (i + 1) & cap_mask;
        }
    }

    /// Inserts a new key. The caller guarantees `set` is not present.
    fn insert(&mut self, set: NodeSet<W>, slot: u32) {
        debug_assert!(
            !Self::is_vacant(set),
            "the empty set is never a plan-class key"
        );
        debug_assert!(self.get(set).is_none(), "duplicate slot-map insert");
        // Grow at 3/4 load to keep probe sequences short.
        if (self.len + 1) * 4 > self.keys.len() * 3 {
            self.grow();
        }
        let cap_mask = self.keys.len() - 1;
        let mut i = set.hash_index(self.bits);
        while !Self::is_vacant(self.keys[i]) {
            i = (i + 1) & cap_mask;
        }
        self.keys[i] = set;
        self.slots[i] = slot;
        self.len += 1;
    }

    fn grow(&mut self) {
        let old_keys = std::mem::take(&mut self.keys);
        let old_slots = std::mem::take(&mut self.slots);
        self.bits += 1;
        let cap = 1 << self.bits;
        self.keys = vec![NodeSet::EMPTY; cap];
        self.slots = vec![0; cap];
        let cap_mask = cap - 1;
        for (k, s) in old_keys.into_iter().zip(old_slots) {
            if !Self::is_vacant(k) {
                let mut i = k.hash_index(self.bits);
                while !Self::is_vacant(self.keys[i]) {
                    i = (i + 1) & cap_mask;
                }
                self.keys[i] = k;
                self.slots[i] = s;
            }
        }
    }
}

/// Hash-consing arena for predicate edge lists: equal lists share one storage slot, and
/// rejected offers never touch it.
#[derive(Clone, Debug)]
struct EdgeListInterner {
    data: Vec<EdgeId>,
    /// Open addressing over interned refs; `len == 0` marks a vacant slot (interned lists are
    /// never empty — a join always has at least one connecting predicate).
    table: Vec<EdgeListRef>,
    len: usize,
    bits: u32,
}

impl EdgeListInterner {
    const INITIAL_BITS: u32 = 6;

    fn new() -> Self {
        EdgeListInterner {
            data: Vec::new(),
            table: vec![EdgeListRef { offset: 0, len: 0 }; 1 << Self::INITIAL_BITS],
            len: 0,
            bits: Self::INITIAL_BITS,
        }
    }

    #[inline]
    fn resolve(&self, r: EdgeListRef) -> &[EdgeId] {
        &self.data[r.offset as usize..r.offset as usize + r.len as usize]
    }

    fn hash(list: &[EdgeId]) -> u64 {
        // Fx-style accumulate-and-mix over the edge ids.
        let mut h: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        for &e in list {
            h = (h.rotate_left(5) ^ e as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        // Final avalanche so short lists still fill the high bits.
        h ^= h >> 32;
        h.wrapping_mul(0xD6E8_FEB8_6659_FD93)
    }

    fn intern(&mut self, list: &[EdgeId]) -> EdgeListRef {
        debug_assert!(!list.is_empty(), "joins always have a connecting predicate");
        if (self.len + 1) * 4 > self.table.len() * 3 {
            self.grow();
        }
        let cap_mask = self.table.len() - 1;
        let mut i = (Self::hash(list) >> (64 - self.bits)) as usize;
        loop {
            let r = self.table[i];
            if r.len == 0 {
                let interned = EdgeListRef {
                    offset: u32::try_from(self.data.len()).expect("edge arena fits in u32"),
                    len: u32::try_from(list.len()).expect("edge list fits in u32"),
                };
                self.data.extend_from_slice(list);
                self.table[i] = interned;
                self.len += 1;
                return interned;
            }
            if self.resolve(r) == list {
                return r;
            }
            i = (i + 1) & cap_mask;
        }
    }

    fn grow(&mut self) {
        let old = std::mem::take(&mut self.table);
        self.bits += 1;
        let cap = 1 << self.bits;
        self.table = vec![EdgeListRef { offset: 0, len: 0 }; cap];
        let cap_mask = cap - 1;
        for r in old {
            if r.len != 0 {
                let mut i = (Self::hash(self.resolve(r)) >> (64 - self.bits)) as usize;
                while self.table[i].len != 0 {
                    i = (i + 1) & cap_mask;
                }
                self.table[i] = r;
            }
        }
    }
}

/// The dynamic programming table: best plan per connected set of relations.
///
/// See the module documentation for the layout rationale. The public surface mirrors what the
/// enumeration algorithms need: leaf seeding, membership tests, candidate offers and plan
/// reconstruction.
#[derive(Clone, Debug)]
pub struct DpTable<const W: usize = 1> {
    map: SlotMap<W>,
    classes: Vec<PlanClass<W>>,
    predicates: EdgeListInterner,
}

impl<const W: usize> Default for DpTable<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const W: usize> DpTable<W> {
    /// Creates an empty table.
    pub fn new() -> Self {
        DpTable {
            map: SlotMap::new(),
            classes: Vec::new(),
            predicates: EdgeListInterner::new(),
        }
    }

    /// Number of memoized plan classes (connected sets discovered so far).
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Does the table contain a plan for `set`?
    #[inline]
    pub fn contains(&self, set: NodeSet<W>) -> bool {
        !set.is_empty() && self.map.get(set).is_some()
    }

    /// The plan class for `set`, if any.
    #[inline]
    pub fn get(&self, set: NodeSet<W>) -> Option<&PlanClass<W>> {
        if set.is_empty() {
            return None;
        }
        self.map.get(set).map(|i| &self.classes[i as usize])
    }

    /// Iterates over all memoized classes in insertion order.
    pub fn classes(&self) -> impl Iterator<Item = &PlanClass<W>> {
        self.classes.iter()
    }

    /// Resolves an interned predicate list.
    #[inline]
    pub fn edge_list(&self, r: EdgeListRef) -> &[EdgeId] {
        self.predicates.resolve(r)
    }

    /// The predicate edge ids of a class's best join (empty for leaf classes).
    pub fn best_join_predicates(&self, class: &PlanClass<W>) -> &[EdgeId] {
        match class.best_join {
            Some(join) => self.edge_list(join.predicates),
            None => &[],
        }
    }

    /// Inserts the access plan for a single relation. Re-inserting a relation resets its class
    /// to a fresh leaf (cost 0, no join).
    pub fn insert_leaf(&mut self, relation: NodeId, cardinality: f64) {
        let set = NodeSet::single(relation);
        let class = PlanClass {
            set,
            cardinality,
            cost: 0.0,
            best_join: None,
        };
        match self.map.get(set) {
            Some(i) => self.classes[i as usize] = class,
            None => {
                let i = u32::try_from(self.classes.len()).expect("class arena fits in u32");
                self.classes.push(class);
                self.map.insert(set, i);
            }
        }
    }

    /// Offers a candidate plan class; it replaces the memoized one if it is cheaper (or if the
    /// set was unknown). Returns `true` if the candidate was accepted. On equal cost the
    /// incumbent wins, so the first plan found at a given cost is kept.
    pub fn offer(&mut self, candidate: Candidate<'_, W>) -> bool {
        match self.map.get(candidate.set) {
            Some(i) => {
                if candidate.cost < self.classes[i as usize].cost {
                    let class = self.admit(candidate);
                    self.classes[i as usize] = class;
                    true
                } else {
                    false
                }
            }
            None => {
                let class = self.admit(candidate);
                let i = u32::try_from(self.classes.len()).expect("class arena fits in u32");
                self.classes.push(class);
                self.map.insert(candidate.set, i);
                true
            }
        }
    }

    /// Interns an accepted candidate's predicate list and builds its stored class.
    fn admit(&mut self, candidate: Candidate<'_, W>) -> PlanClass<W> {
        let best_join = candidate.join.map(|j| BestJoin {
            left: j.left,
            right: j.right,
            op: j.op,
            predicates: self.predicates.intern(j.predicates),
        });
        PlanClass {
            set: candidate.set,
            cardinality: candidate.cardinality,
            cost: candidate.cost,
            best_join,
        }
    }

    /// Builds a minimal table containing exactly the plan classes of `plan`'s subtrees — one
    /// leaf class per scan, one join class per join node, with the plan's own cardinalities and
    /// costs.
    ///
    /// This is the persistence form of a finished optimization: a full enumeration table for a
    /// 20-relation star holds half a million classes (tens of megabytes), but the winning plan
    /// tree describes only `2n − 1` of them — enough to re-cost the *chosen* join order
    /// bottom-up under drifted statistics (see [`recost_table`](crate::recost_table)) at `O(n)`
    /// memory per cached query. The resulting table reconstructs `plan` exactly.
    ///
    /// # Panics
    /// Panics if a relation id of the plan does not fit the width `W`.
    pub fn from_plan(plan: &PlanNode) -> Self {
        let mut table = Self::new();
        table.absorb_plan(plan);
        table
    }

    /// Inserts every subtree of `plan` as a plan class; returns the subtree's relation set.
    fn absorb_plan(&mut self, plan: &PlanNode) -> NodeSet<W> {
        match plan {
            PlanNode::Scan {
                relation,
                cardinality,
            } => {
                self.insert_leaf(*relation, *cardinality);
                NodeSet::single(*relation)
            }
            PlanNode::Join {
                op,
                left,
                right,
                predicates,
                cardinality,
                cost,
            } => {
                let left_set = self.absorb_plan(left);
                let right_set = self.absorb_plan(right);
                let set = left_set | right_set;
                self.offer(Candidate {
                    set,
                    cardinality: *cardinality,
                    cost: *cost,
                    join: Some(CandidateJoin {
                        left: left_set,
                        right: right_set,
                        op: *op,
                        predicates,
                    }),
                });
                set
            }
        }
    }

    /// Reconstructs the full plan tree for `set` from the memoized join decisions.
    pub fn reconstruct(&self, set: NodeSet<W>) -> Option<PlanNode> {
        let class = self.get(set)?;
        match class.best_join {
            None => {
                let relation = set.min_node().expect("leaf class with empty set");
                Some(PlanNode::scan(relation, class.cardinality))
            }
            Some(join) => {
                let left = self.reconstruct(join.left)?;
                let right = self.reconstruct(join.right)?;
                Some(PlanNode::join(
                    join.op,
                    left,
                    right,
                    self.edge_list(join.predicates).to_vec(),
                    class.cardinality,
                    class.cost,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qo_bitset::NodeSet128;

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    fn candidate<const W: usize>(
        set: NodeSet<W>,
        cost: f64,
        predicates: &[EdgeId],
    ) -> Candidate<'_, W> {
        let left = set.min_singleton();
        Candidate {
            set,
            cardinality: 10.0,
            cost,
            join: Some(CandidateJoin {
                left,
                right: set - left,
                op: JoinOp::Inner,
                predicates,
            }),
        }
    }

    #[test]
    fn leaf_insert_get_contains() {
        let mut t = DpTable::<1>::new();
        assert!(t.is_empty());
        assert!(!t.contains(NodeSet::EMPTY));
        assert!(t.get(NodeSet::EMPTY).is_none());
        t.insert_leaf(3, 500.0);
        assert_eq!(t.len(), 1);
        assert!(t.contains(NodeSet::single(3)));
        let c = t.get(NodeSet::single(3)).unwrap();
        assert_eq!(c.cardinality, 500.0);
        assert_eq!(c.cost, 0.0);
        assert!(c.best_join.is_none());
        assert!(t.best_join_predicates(c).is_empty());
    }

    #[test]
    fn leaf_reinsertion_resets_the_class() {
        let mut t = DpTable::<1>::new();
        t.insert_leaf(0, 100.0);
        t.insert_leaf(1, 100.0);
        assert!(t.offer(candidate(ns(&[0, 1]), 42.0, &[7])));
        // Re-inserting a leaf must not create a duplicate class and must reset the stats.
        t.insert_leaf(0, 250.0);
        assert_eq!(t.len(), 3);
        let c = t.get(NodeSet::single(0)).unwrap();
        assert_eq!(c.cardinality, 250.0);
        assert_eq!(c.cost, 0.0);
        assert!(c.best_join.is_none());
    }

    #[test]
    fn offer_keeps_the_cheapest_and_breaks_ties_for_the_incumbent() {
        let mut t = DpTable::<1>::new();
        assert!(t.offer(candidate(ns(&[0, 1]), 100.0, &[0])));
        // Cheaper: replaces.
        assert!(t.offer(candidate(ns(&[0, 1]), 10.0, &[1])));
        assert_eq!(t.get(ns(&[0, 1])).unwrap().cost, 10.0);
        // Equal cost: the incumbent wins (deterministic tie-breaking on emission order).
        let mut tied = candidate(ns(&[0, 1]), 10.0, &[2]);
        tied.cardinality = 99.0;
        assert!(!t.offer(tied));
        let stored = t.get(ns(&[0, 1])).unwrap();
        assert_eq!(stored.cardinality, 10.0);
        assert_eq!(t.best_join_predicates(stored), &[1]);
        // More expensive: rejected.
        assert!(!t.offer(candidate(ns(&[0, 1]), 11.0, &[3])));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn equal_edge_lists_are_interned_once() {
        let mut t = DpTable::<1>::new();
        assert!(t.offer(candidate(ns(&[0, 1]), 5.0, &[3, 8])));
        assert!(t.offer(candidate(ns(&[0, 2]), 5.0, &[3, 8])));
        assert!(t.offer(candidate(ns(&[1, 2]), 5.0, &[4])));
        let a = t.get(ns(&[0, 1])).unwrap().best_join.unwrap().predicates;
        let b = t.get(ns(&[0, 2])).unwrap().best_join.unwrap().predicates;
        let c = t.get(ns(&[1, 2])).unwrap().best_join.unwrap().predicates;
        assert_eq!(a, b, "identical lists must share one interned slot");
        assert_ne!(a, c);
        assert_eq!(t.edge_list(a), &[3, 8]);
        assert_eq!(t.edge_list(c), &[4]);
        // Arena stores the shared list once plus the distinct one.
        assert_eq!(t.predicates.data.len(), 3);
    }

    #[test]
    fn slot_map_survives_growth_with_many_classes() {
        // Enough classes to force several slot-map and interner growth steps.
        let mut t = DpTable::<1>::new();
        for r in 0..16 {
            t.insert_leaf(r, 1.0 + r as f64);
        }
        let all = NodeSet::first_n(16);
        let mut count = 16usize;
        for s in all.subsets() {
            if s.is_singleton() || s.len() > 3 {
                continue;
            }
            let edges: Vec<EdgeId> = s.iter().collect();
            assert!(t.offer(candidate(s, s.mask() as f64, &edges)));
            count += 1;
        }
        assert_eq!(t.len(), count);
        // Every class is still reachable with intact data after rehashing.
        for s in all.subsets() {
            if s.len() > 3 {
                continue;
            }
            let c = t.get(s).expect("class survived growth");
            assert_eq!(c.set, s);
            if !s.is_singleton() {
                let expect: Vec<EdgeId> = s.iter().collect();
                assert_eq!(t.best_join_predicates(c), expect.as_slice());
            }
        }
        assert!(!t.contains(NodeSet::from_mask(1 << 20)));
    }

    #[test]
    fn reconstruct_resolves_interned_predicates() {
        let mut t = DpTable::<1>::new();
        t.insert_leaf(0, 10.0);
        t.insert_leaf(1, 20.0);
        t.insert_leaf(2, 30.0);
        assert!(t.offer(Candidate {
            set: ns(&[0, 1]),
            cardinality: 15.0,
            cost: 15.0,
            join: Some(CandidateJoin {
                left: ns(&[0]),
                right: ns(&[1]),
                op: JoinOp::Inner,
                predicates: &[0],
            }),
        }));
        assert!(t.offer(Candidate {
            set: ns(&[0, 1, 2]),
            cardinality: 7.0,
            cost: 22.0,
            join: Some(CandidateJoin {
                left: ns(&[0, 1]),
                right: ns(&[2]),
                op: JoinOp::LeftOuter,
                predicates: &[1, 2],
            }),
        }));
        let plan = t.reconstruct(ns(&[0, 1, 2])).expect("full plan");
        assert_eq!(plan.relations(), ns(&[0, 1, 2]));
        assert_eq!(plan.applied_predicates(), vec![0, 1, 2]);
        assert!(t.reconstruct(ns(&[1, 2])).is_none());
    }

    #[test]
    fn max_nodes_boundary_sets_are_usable_keys() {
        // Bit 63 and the full 64-relation mask must hash, store and compare correctly.
        let mut t = DpTable::<1>::new();
        t.insert_leaf(63, 5.0);
        assert!(t.contains(NodeSet::single(63)));
        let full = NodeSet::first_n(64);
        assert!(t.offer(candidate(full, 1.0, &[0])));
        assert!(t.contains(full));
        assert_eq!(t.get(full).unwrap().set, full);
    }

    #[test]
    fn vacancy_sentinel_is_all_words_zero_not_low_word_zero() {
        // The empty-adjacent keys of the wide tier: sets whose *low* word is zero (every member
        // lives in the high word) must not be mistaken for vacant slots, and sets whose high
        // word is zero must not collide with their single-word twins' storage convention.
        let mut t = DpTable::<2>::new();
        let low_word_zero = NodeSet128::single(64); // words [0, 1]
        let high_word_zero = NodeSet128::single(0); // words [1, 0]
        let straddling: NodeSet128 = [63, 64].into_iter().collect();
        t.insert_leaf(64, 11.0);
        t.insert_leaf(0, 22.0);
        assert!(
            t.contains(low_word_zero),
            "low-word-zero key must be stored"
        );
        assert!(t.contains(high_word_zero));
        assert_eq!(t.get(low_word_zero).unwrap().cardinality, 11.0);
        assert_eq!(t.get(high_word_zero).unwrap().cardinality, 22.0);
        assert!(t.offer(candidate(straddling, 3.0, &[0])));
        assert!(t.contains(straddling));
        // Lookups of absent empty-adjacent keys terminate at a vacancy instead of cycling.
        assert!(!t.contains(NodeSet128::single(65)));
        assert!(!t.contains(NodeSet128::single(1)));
        assert!(!t.contains(NodeSet128::EMPTY));
        assert!(t.get(NodeSet128::EMPTY).is_none());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn wide_slot_map_survives_growth_with_high_word_keys() {
        // Force growth with keys spread over both words, including many with a zero low word.
        let mut t = DpTable::<2>::new();
        for r in 0..128 {
            t.insert_leaf(r, r as f64 + 1.0);
        }
        assert_eq!(t.len(), 128);
        for r in 0..128 {
            let c = t.get(NodeSet128::single(r)).expect("leaf survived growth");
            assert_eq!(c.cardinality, r as f64 + 1.0);
        }
        // Pairs straddling the boundary remain addressable too.
        for r in 0..64 {
            let pair: NodeSet128 = [r, r + 64].into_iter().collect();
            assert!(t.offer(candidate(pair, r as f64, &[r])));
        }
        for r in 0..64 {
            let pair: NodeSet128 = [r, r + 64].into_iter().collect();
            assert_eq!(t.get(pair).expect("pair present").set, pair);
        }
    }

    #[test]
    fn wide_reconstruct_crosses_the_word_boundary() {
        let mut t = DpTable::<2>::new();
        t.insert_leaf(63, 10.0);
        t.insert_leaf(64, 20.0);
        let pair: NodeSet128 = [63, 64].into_iter().collect();
        assert!(t.offer(Candidate {
            set: pair,
            cardinality: 5.0,
            cost: 5.0,
            join: Some(CandidateJoin {
                left: NodeSet128::single(63),
                right: NodeSet128::single(64),
                op: JoinOp::Inner,
                predicates: &[0],
            }),
        }));
        let plan = t.reconstruct(pair).expect("plan reconstructs");
        assert_eq!(plan.relations_wide::<2>(), pair);
        assert_eq!(plan.join_count(), 1);
    }
}
