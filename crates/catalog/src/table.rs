//! The dynamic-programming table of the planner, re-architected for the hot path.
//!
//! The paper's metric is cost-function invocations per csg-cmp-pair, so the per-pair overhead
//! of the memo structure *is* the hot path. The table therefore avoids the two costs of the
//! obvious `HashMap<NodeSet, PlanClass>` design:
//!
//! * **SipHash + bucket indirection.** Plan classes live in one contiguous arena
//!   ([`DpTable::classes`] iterates it in insertion order) and are found through a hand-rolled
//!   open-addressing slot map from the raw 64-bit set mask to a `u32` arena index, hashed with
//!   the FxHash-style finalizer of [`NodeSet::hash64`]. Lookups touch one flat array with
//!   linear probing — no SipHash rounds, no `(hash, key, value)` buckets.
//! * **Per-offer `Vec<EdgeId>` clones.** The connecting-predicate list of a join is interned
//!   into a shared arena ([`EdgeListRef`] is an 8-byte handle, hash-consed so equal lists are
//!   stored once); a rejected [`DpTable::offer`] allocates nothing, and [`PlanClass`] becomes
//!   `Copy`, which in turn lets every enumeration algorithm read table entries without cloning.

use crate::cost::SubPlanStats;
use qo_bitset::{NodeId, NodeSet};
use qo_hypergraph::EdgeId;
use qo_plan::{JoinOp, PlanNode};

/// Handle to an interned predicate list; resolve with [`DpTable::edge_list`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeListRef {
    offset: u32,
    len: u32,
}

impl EdgeListRef {
    /// Number of edges in the referenced list.
    #[inline]
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// Is the referenced list empty?
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// The root join of the best plan of a [`PlanClass`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BestJoin {
    /// Relations of the left input class.
    pub left: NodeSet,
    /// Relations of the right input class.
    pub right: NodeSet,
    /// Operator applied at the root (already turned into its dependent variant if required).
    pub op: JoinOp,
    /// Hyperedge ids whose predicates are evaluated at this join, interned in the owning
    /// [`DpTable`].
    pub predicates: EdgeListRef,
}

/// The best plan known for one set of relations (a "plan class").
///
/// Plan classes are plain 48-byte `Copy` values: enumeration algorithms read them out of the
/// table by value instead of cloning heap-backed structs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlanClass {
    /// The relations covered by this class.
    pub set: NodeSet,
    /// Estimated output cardinality of the class.
    pub cardinality: f64,
    /// Cost of the best plan found so far.
    pub cost: f64,
    /// How the best plan combines its inputs; `None` for base relations.
    pub best_join: Option<BestJoin>,
}

impl PlanClass {
    /// The class viewed as sub-plan statistics (the combiner's input currency).
    pub fn stats(&self) -> SubPlanStats {
        SubPlanStats {
            set: self.set,
            cardinality: self.cardinality,
            cost: self.cost,
        }
    }
}

/// A candidate plan class produced by the combiner, not yet memoized: its predicate list still
/// borrows the caller's connecting-edge buffer and is only interned if the offer is accepted.
#[derive(Clone, Copy, Debug)]
pub struct Candidate<'e> {
    /// The relations covered by the candidate.
    pub set: NodeSet,
    /// Estimated output cardinality.
    pub cardinality: f64,
    /// Cost of the candidate plan.
    pub cost: f64,
    /// The root join; `None` never occurs for combiner output but keeps the type parallel to
    /// [`PlanClass`].
    pub join: Option<CandidateJoin<'e>>,
}

impl Candidate<'_> {
    /// The candidate viewed as sub-plan statistics (for chaining combinations without going
    /// through the table).
    pub fn stats(&self) -> SubPlanStats {
        SubPlanStats {
            set: self.set,
            cardinality: self.cardinality,
            cost: self.cost,
        }
    }
}

/// The root join of a [`Candidate`].
#[derive(Clone, Copy, Debug)]
pub struct CandidateJoin<'e> {
    /// Relations of the left input class.
    pub left: NodeSet,
    /// Relations of the right input class.
    pub right: NodeSet,
    /// Operator applied at the root.
    pub op: JoinOp,
    /// Hyperedge ids whose predicates are evaluated at this join.
    pub predicates: &'e [EdgeId],
}

/// Open-addressing map from raw non-zero set masks to `u32` arena indexes.
///
/// Mask `0` (the empty relation set, never a valid plan-class key) doubles as the vacancy
/// sentinel, so a slot is a bare `(u64, u32)` pair and probing is branch-light.
#[derive(Clone, Debug)]
struct SlotMap {
    masks: Vec<u64>,
    slots: Vec<u32>,
    len: usize,
    /// log2 of the table size; kept so indexing can use the well-mixed high hash bits.
    bits: u32,
}

impl SlotMap {
    const INITIAL_BITS: u32 = 6; // 64 slots

    fn new() -> Self {
        SlotMap {
            masks: vec![0; 1 << Self::INITIAL_BITS],
            slots: vec![0; 1 << Self::INITIAL_BITS],
            len: 0,
            bits: Self::INITIAL_BITS,
        }
    }

    #[inline]
    fn get(&self, set: NodeSet) -> Option<u32> {
        let mask = set.mask();
        debug_assert!(mask != 0, "the empty set is never a plan-class key");
        let cap_mask = self.masks.len() - 1;
        let mut i = set.hash_index(self.bits);
        loop {
            let m = self.masks[i];
            if m == mask {
                return Some(self.slots[i]);
            }
            if m == 0 {
                return None;
            }
            i = (i + 1) & cap_mask;
        }
    }

    /// Inserts a new key. The caller guarantees `set` is not present.
    fn insert(&mut self, set: NodeSet, slot: u32) {
        debug_assert!(set.mask() != 0, "the empty set is never a plan-class key");
        debug_assert!(self.get(set).is_none(), "duplicate slot-map insert");
        // Grow at 3/4 load to keep probe sequences short.
        if (self.len + 1) * 4 > self.masks.len() * 3 {
            self.grow();
        }
        let cap_mask = self.masks.len() - 1;
        let mut i = set.hash_index(self.bits);
        while self.masks[i] != 0 {
            i = (i + 1) & cap_mask;
        }
        self.masks[i] = set.mask();
        self.slots[i] = slot;
        self.len += 1;
    }

    fn grow(&mut self) {
        let old_masks = std::mem::take(&mut self.masks);
        let old_slots = std::mem::take(&mut self.slots);
        self.bits += 1;
        let cap = 1 << self.bits;
        self.masks = vec![0; cap];
        self.slots = vec![0; cap];
        let cap_mask = cap - 1;
        for (m, s) in old_masks.into_iter().zip(old_slots) {
            if m != 0 {
                let mut i = NodeSet::from_mask(m).hash_index(self.bits);
                while self.masks[i] != 0 {
                    i = (i + 1) & cap_mask;
                }
                self.masks[i] = m;
                self.slots[i] = s;
            }
        }
    }
}

/// Hash-consing arena for predicate edge lists: equal lists share one storage slot, and
/// rejected offers never touch it.
#[derive(Clone, Debug)]
struct EdgeListInterner {
    data: Vec<EdgeId>,
    /// Open addressing over interned refs; `len == 0` marks a vacant slot (interned lists are
    /// never empty — a join always has at least one connecting predicate).
    table: Vec<EdgeListRef>,
    len: usize,
    bits: u32,
}

impl EdgeListInterner {
    const INITIAL_BITS: u32 = 6;

    fn new() -> Self {
        EdgeListInterner {
            data: Vec::new(),
            table: vec![EdgeListRef { offset: 0, len: 0 }; 1 << Self::INITIAL_BITS],
            len: 0,
            bits: Self::INITIAL_BITS,
        }
    }

    #[inline]
    fn resolve(&self, r: EdgeListRef) -> &[EdgeId] {
        &self.data[r.offset as usize..r.offset as usize + r.len as usize]
    }

    fn hash(list: &[EdgeId]) -> u64 {
        // Fx-style accumulate-and-mix over the edge ids.
        let mut h: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        for &e in list {
            h = (h.rotate_left(5) ^ e as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        // Final avalanche so short lists still fill the high bits.
        h ^= h >> 32;
        h.wrapping_mul(0xD6E8_FEB8_6659_FD93)
    }

    fn intern(&mut self, list: &[EdgeId]) -> EdgeListRef {
        debug_assert!(!list.is_empty(), "joins always have a connecting predicate");
        if (self.len + 1) * 4 > self.table.len() * 3 {
            self.grow();
        }
        let cap_mask = self.table.len() - 1;
        let mut i = (Self::hash(list) >> (64 - self.bits)) as usize;
        loop {
            let r = self.table[i];
            if r.len == 0 {
                let interned = EdgeListRef {
                    offset: u32::try_from(self.data.len()).expect("edge arena fits in u32"),
                    len: u32::try_from(list.len()).expect("edge list fits in u32"),
                };
                self.data.extend_from_slice(list);
                self.table[i] = interned;
                self.len += 1;
                return interned;
            }
            if self.resolve(r) == list {
                return r;
            }
            i = (i + 1) & cap_mask;
        }
    }

    fn grow(&mut self) {
        let old = std::mem::take(&mut self.table);
        self.bits += 1;
        let cap = 1 << self.bits;
        self.table = vec![EdgeListRef { offset: 0, len: 0 }; cap];
        let cap_mask = cap - 1;
        for r in old {
            if r.len != 0 {
                let mut i = (Self::hash(self.resolve(r)) >> (64 - self.bits)) as usize;
                while self.table[i].len != 0 {
                    i = (i + 1) & cap_mask;
                }
                self.table[i] = r;
            }
        }
    }
}

/// The dynamic programming table: best plan per connected set of relations.
///
/// See the module documentation for the layout rationale. The public surface mirrors what the
/// enumeration algorithms need: leaf seeding, membership tests, candidate offers and plan
/// reconstruction.
#[derive(Clone, Debug)]
pub struct DpTable {
    map: SlotMap,
    classes: Vec<PlanClass>,
    predicates: EdgeListInterner,
}

impl Default for DpTable {
    fn default() -> Self {
        Self::new()
    }
}

impl DpTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        DpTable {
            map: SlotMap::new(),
            classes: Vec::new(),
            predicates: EdgeListInterner::new(),
        }
    }

    /// Number of memoized plan classes (connected sets discovered so far).
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Does the table contain a plan for `set`?
    #[inline]
    pub fn contains(&self, set: NodeSet) -> bool {
        !set.is_empty() && self.map.get(set).is_some()
    }

    /// The plan class for `set`, if any.
    #[inline]
    pub fn get(&self, set: NodeSet) -> Option<&PlanClass> {
        if set.is_empty() {
            return None;
        }
        self.map.get(set).map(|i| &self.classes[i as usize])
    }

    /// Iterates over all memoized classes in insertion order.
    pub fn classes(&self) -> impl Iterator<Item = &PlanClass> {
        self.classes.iter()
    }

    /// Resolves an interned predicate list.
    #[inline]
    pub fn edge_list(&self, r: EdgeListRef) -> &[EdgeId] {
        self.predicates.resolve(r)
    }

    /// The predicate edge ids of a class's best join (empty for leaf classes).
    pub fn best_join_predicates(&self, class: &PlanClass) -> &[EdgeId] {
        match class.best_join {
            Some(join) => self.edge_list(join.predicates),
            None => &[],
        }
    }

    /// Inserts the access plan for a single relation. Re-inserting a relation resets its class
    /// to a fresh leaf (cost 0, no join).
    pub fn insert_leaf(&mut self, relation: NodeId, cardinality: f64) {
        let set = NodeSet::single(relation);
        let class = PlanClass {
            set,
            cardinality,
            cost: 0.0,
            best_join: None,
        };
        match self.map.get(set) {
            Some(i) => self.classes[i as usize] = class,
            None => {
                let i = u32::try_from(self.classes.len()).expect("class arena fits in u32");
                self.classes.push(class);
                self.map.insert(set, i);
            }
        }
    }

    /// Offers a candidate plan class; it replaces the memoized one if it is cheaper (or if the
    /// set was unknown). Returns `true` if the candidate was accepted. On equal cost the
    /// incumbent wins, so the first plan found at a given cost is kept.
    pub fn offer(&mut self, candidate: Candidate<'_>) -> bool {
        match self.map.get(candidate.set) {
            Some(i) => {
                if candidate.cost < self.classes[i as usize].cost {
                    let class = self.admit(candidate);
                    self.classes[i as usize] = class;
                    true
                } else {
                    false
                }
            }
            None => {
                let class = self.admit(candidate);
                let i = u32::try_from(self.classes.len()).expect("class arena fits in u32");
                self.classes.push(class);
                self.map.insert(candidate.set, i);
                true
            }
        }
    }

    /// Interns an accepted candidate's predicate list and builds its stored class.
    fn admit(&mut self, candidate: Candidate<'_>) -> PlanClass {
        let best_join = candidate.join.map(|j| BestJoin {
            left: j.left,
            right: j.right,
            op: j.op,
            predicates: self.predicates.intern(j.predicates),
        });
        PlanClass {
            set: candidate.set,
            cardinality: candidate.cardinality,
            cost: candidate.cost,
            best_join,
        }
    }

    /// Reconstructs the full plan tree for `set` from the memoized join decisions.
    pub fn reconstruct(&self, set: NodeSet) -> Option<PlanNode> {
        let class = self.get(set)?;
        match class.best_join {
            None => {
                let relation = set.min_node().expect("leaf class with empty set");
                Some(PlanNode::scan(relation, class.cardinality))
            }
            Some(join) => {
                let left = self.reconstruct(join.left)?;
                let right = self.reconstruct(join.right)?;
                Some(PlanNode::join(
                    join.op,
                    left,
                    right,
                    self.edge_list(join.predicates).to_vec(),
                    class.cardinality,
                    class.cost,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    fn candidate(set: NodeSet, cost: f64, predicates: &[EdgeId]) -> Candidate<'_> {
        let left = set.min_singleton();
        Candidate {
            set,
            cardinality: 10.0,
            cost,
            join: Some(CandidateJoin {
                left,
                right: set - left,
                op: JoinOp::Inner,
                predicates,
            }),
        }
    }

    #[test]
    fn leaf_insert_get_contains() {
        let mut t = DpTable::new();
        assert!(t.is_empty());
        assert!(!t.contains(NodeSet::EMPTY));
        assert!(t.get(NodeSet::EMPTY).is_none());
        t.insert_leaf(3, 500.0);
        assert_eq!(t.len(), 1);
        assert!(t.contains(NodeSet::single(3)));
        let c = t.get(NodeSet::single(3)).unwrap();
        assert_eq!(c.cardinality, 500.0);
        assert_eq!(c.cost, 0.0);
        assert!(c.best_join.is_none());
        assert!(t.best_join_predicates(c).is_empty());
    }

    #[test]
    fn leaf_reinsertion_resets_the_class() {
        let mut t = DpTable::new();
        t.insert_leaf(0, 100.0);
        t.insert_leaf(1, 100.0);
        assert!(t.offer(candidate(ns(&[0, 1]), 42.0, &[7])));
        // Re-inserting a leaf must not create a duplicate class and must reset the stats.
        t.insert_leaf(0, 250.0);
        assert_eq!(t.len(), 3);
        let c = t.get(NodeSet::single(0)).unwrap();
        assert_eq!(c.cardinality, 250.0);
        assert_eq!(c.cost, 0.0);
        assert!(c.best_join.is_none());
    }

    #[test]
    fn offer_keeps_the_cheapest_and_breaks_ties_for_the_incumbent() {
        let mut t = DpTable::new();
        assert!(t.offer(candidate(ns(&[0, 1]), 100.0, &[0])));
        // Cheaper: replaces.
        assert!(t.offer(candidate(ns(&[0, 1]), 10.0, &[1])));
        assert_eq!(t.get(ns(&[0, 1])).unwrap().cost, 10.0);
        // Equal cost: the incumbent wins (deterministic tie-breaking on emission order).
        let mut tied = candidate(ns(&[0, 1]), 10.0, &[2]);
        tied.cardinality = 99.0;
        assert!(!t.offer(tied));
        let stored = t.get(ns(&[0, 1])).unwrap();
        assert_eq!(stored.cardinality, 10.0);
        assert_eq!(t.best_join_predicates(stored), &[1]);
        // More expensive: rejected.
        assert!(!t.offer(candidate(ns(&[0, 1]), 11.0, &[3])));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn equal_edge_lists_are_interned_once() {
        let mut t = DpTable::new();
        assert!(t.offer(candidate(ns(&[0, 1]), 5.0, &[3, 8])));
        assert!(t.offer(candidate(ns(&[0, 2]), 5.0, &[3, 8])));
        assert!(t.offer(candidate(ns(&[1, 2]), 5.0, &[4])));
        let a = t.get(ns(&[0, 1])).unwrap().best_join.unwrap().predicates;
        let b = t.get(ns(&[0, 2])).unwrap().best_join.unwrap().predicates;
        let c = t.get(ns(&[1, 2])).unwrap().best_join.unwrap().predicates;
        assert_eq!(a, b, "identical lists must share one interned slot");
        assert_ne!(a, c);
        assert_eq!(t.edge_list(a), &[3, 8]);
        assert_eq!(t.edge_list(c), &[4]);
        // Arena stores the shared list once plus the distinct one.
        assert_eq!(t.predicates.data.len(), 3);
    }

    #[test]
    fn slot_map_survives_growth_with_many_classes() {
        // Enough classes to force several slot-map and interner growth steps.
        let mut t = DpTable::new();
        for r in 0..16 {
            t.insert_leaf(r, 1.0 + r as f64);
        }
        let all = NodeSet::first_n(16);
        let mut count = 16usize;
        for s in all.subsets() {
            if s.is_singleton() || s.len() > 3 {
                continue;
            }
            let edges: Vec<EdgeId> = s.iter().collect();
            assert!(t.offer(candidate(s, s.mask() as f64, &edges)));
            count += 1;
        }
        assert_eq!(t.len(), count);
        // Every class is still reachable with intact data after rehashing.
        for s in all.subsets() {
            if s.len() > 3 {
                continue;
            }
            let c = t.get(s).expect("class survived growth");
            assert_eq!(c.set, s);
            if !s.is_singleton() {
                let expect: Vec<EdgeId> = s.iter().collect();
                assert_eq!(t.best_join_predicates(c), expect.as_slice());
            }
        }
        assert!(!t.contains(NodeSet::from_mask(1 << 20)));
    }

    #[test]
    fn reconstruct_resolves_interned_predicates() {
        let mut t = DpTable::new();
        t.insert_leaf(0, 10.0);
        t.insert_leaf(1, 20.0);
        t.insert_leaf(2, 30.0);
        assert!(t.offer(Candidate {
            set: ns(&[0, 1]),
            cardinality: 15.0,
            cost: 15.0,
            join: Some(CandidateJoin {
                left: ns(&[0]),
                right: ns(&[1]),
                op: JoinOp::Inner,
                predicates: &[0],
            }),
        }));
        assert!(t.offer(Candidate {
            set: ns(&[0, 1, 2]),
            cardinality: 7.0,
            cost: 22.0,
            join: Some(CandidateJoin {
                left: ns(&[0, 1]),
                right: ns(&[2]),
                op: JoinOp::LeftOuter,
                predicates: &[1, 2],
            }),
        }));
        let plan = t.reconstruct(ns(&[0, 1, 2])).expect("full plan");
        assert_eq!(plan.relations(), ns(&[0, 1, 2]));
        assert_eq!(plan.applied_predicates(), vec![0, 1, 2]);
        assert!(t.reconstruct(ns(&[1, 2])).is_none());
    }

    #[test]
    fn max_nodes_boundary_sets_are_usable_keys() {
        // Bit 63 and the full 64-relation mask must hash, store and compare correctly.
        let mut t = DpTable::new();
        t.insert_leaf(63, 5.0);
        assert!(t.contains(NodeSet::single(63)));
        let full = NodeSet::first_n(64);
        assert!(t.offer(candidate(full, 1.0, &[0])));
        assert!(t.contains(full));
        assert_eq!(t.get(full).unwrap().set, full);
    }
}
