//! The [`Catalog`]: statistics and operator annotations attached to a query hypergraph.

use qo_bitset::{NodeId, NodeSet};
use qo_hypergraph::{EdgeId, Hypergraph};
use qo_plan::JoinOp;

/// Per-hyperedge annotation: the join predicate's selectivity, the operator the edge was derived
/// from (Sec. 5.4: "we associate with each hyperedge the operator from which it was derived"),
/// and the operator's total eligibility set for the generate-and-test variant of Sec. 5.8.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeAnnotation<const W: usize = 1> {
    /// Selectivity of the predicate, in `(0, 1]`.
    pub selectivity: f64,
    /// Operator the edge was derived from. Plain join predicates use [`JoinOp::Inner`].
    pub op: JoinOp,
    /// Relations that must be on the left side before the operator may be applied
    /// (TES ∩ T(left)). Empty means "no constraint beyond the edge's own hypernode".
    pub tes_left: NodeSet<W>,
    /// Relations that must be on the right side before the operator may be applied
    /// (TES ∩ T(right)).
    pub tes_right: NodeSet<W>,
}

impl<const W: usize> EdgeAnnotation<W> {
    /// Annotation for a plain inner-join predicate with the given selectivity.
    pub fn inner(selectivity: f64) -> Self {
        EdgeAnnotation {
            selectivity,
            op: JoinOp::Inner,
            tes_left: NodeSet::EMPTY,
            tes_right: NodeSet::EMPTY,
        }
    }

    /// Annotation for a predicate attached to an arbitrary operator.
    pub fn with_op(selectivity: f64, op: JoinOp) -> Self {
        EdgeAnnotation {
            selectivity,
            op,
            tes_left: NodeSet::EMPTY,
            tes_right: NodeSet::EMPTY,
        }
    }

    /// Attaches an explicit TES split (used by the generate-and-test comparison).
    pub fn with_tes(mut self, tes_left: NodeSet<W>, tes_right: NodeSet<W>) -> Self {
        self.tes_left = tes_left;
        self.tes_right = tes_right;
        self
    }

    /// The full TES of the operator (left and right requirement combined).
    pub fn tes(&self) -> NodeSet<W> {
        self.tes_left | self.tes_right
    }
}

impl<const W: usize> Default for EdgeAnnotation<W> {
    fn default() -> Self {
        EdgeAnnotation::inner(1.0)
    }
}

/// A digest of every statistic a [`Catalog`] feeds into costing: cardinalities, selectivities
/// and lateral-reference sets, folded into one 64-bit value.
///
/// Two catalogs over the same query shape cost every plan identically **iff** they agree on
/// these inputs, so the epoch is the currency of staleness: the plan-cache subsystem stamps
/// each cached `DpTable` with the epoch it was costed under, and a changed epoch on an
/// otherwise identical shape means "same query, drifted statistics" — the incremental
/// re-costing case rather than a fresh optimization. The digest hashes the raw `f64` bits, so
/// any representable drift (even in the last ulp) changes the epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StatsEpoch(pub u64);

impl StatsEpoch {
    /// The seed every digest chain starts from.
    pub const SEED: StatsEpoch = StatsEpoch(0x5174_7A75_2722_0A95);

    /// Folds one word into the digest (FxHash-style rotate-xor-multiply). Public so other
    /// digests in the costing pipeline (e.g. the plan service's option keys) share one hashing
    /// scheme instead of re-implementing it.
    #[inline]
    pub fn fold(self, word: u64) -> StatsEpoch {
        StatsEpoch((self.0.rotate_left(5) ^ word).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Final avalanche: spreads near-identical chains over the whole `u64` range.
    #[inline]
    pub fn finalize(self) -> StatsEpoch {
        let mut h = self.0;
        h ^= h >> 32;
        StatsEpoch(h.wrapping_mul(0xD6E8_FEB8_6659_FD93))
    }
}

/// Statistics and annotations for one query: base-relation cardinalities, lateral references of
/// table functions / dependent subqueries, and per-edge annotations.
///
/// A `Catalog` is always interpreted relative to a [`Hypergraph`] with the same number of nodes
/// and edges; [`Catalog::validate_for`] checks the correspondence.
#[derive(Clone, Debug)]
pub struct Catalog<const W: usize = 1> {
    cardinalities: Vec<f64>,
    lateral_refs: Vec<NodeSet<W>>,
    edge_annotations: Vec<EdgeAnnotation<W>>,
    /// Union of all relations that appear in some lateral-reference set; empty for the vast
    /// majority of queries, letting the planner skip the per-pair free-table scans entirely.
    any_lateral: NodeSet<W>,
}

impl<const W: usize> Catalog<W> {
    /// Starts building a catalog for `node_count` relations.
    pub fn builder(node_count: usize) -> CatalogBuilder<W> {
        CatalogBuilder::new(node_count)
    }

    /// Convenience constructor: every relation has the given cardinality, every edge (up to
    /// `edge_count`) is an inner join with the given selectivity.
    pub fn uniform(
        node_count: usize,
        cardinality: f64,
        edge_count: usize,
        selectivity: f64,
    ) -> Self {
        let mut b = CatalogBuilder::new(node_count);
        for i in 0..node_count {
            b.set_cardinality(i, cardinality);
        }
        for e in 0..edge_count {
            b.annotate_edge(e, EdgeAnnotation::inner(selectivity));
        }
        b.build()
    }

    /// Number of relations covered by the catalog.
    pub fn relation_count(&self) -> usize {
        self.cardinalities.len()
    }

    /// Cardinality of a base relation.
    pub fn cardinality(&self, relation: NodeId) -> f64 {
        self.cardinalities[relation]
    }

    /// Relations referenced laterally (freely) by the given relation — non-empty only for
    /// table-valued functions and dependent subqueries (Sec. 5.6).
    pub fn lateral_refs(&self, relation: NodeId) -> NodeSet<W> {
        self.lateral_refs[relation]
    }

    /// Does any relation of the query carry lateral references? When `false` — the common case
    /// — every [`Catalog::free_tables`] result is empty and the planner's dependent-join
    /// analysis can be skipped per pair.
    #[inline]
    pub fn has_lateral_refs(&self) -> bool {
        !self.any_lateral.is_empty()
    }

    /// Union of the lateral references of all relations in `set` that are not satisfied within
    /// `set` itself: `FT(set) \ set`.
    pub fn free_tables(&self, set: NodeSet<W>) -> NodeSet<W> {
        if self.any_lateral.is_empty() {
            return NodeSet::EMPTY;
        }
        let mut ft = NodeSet::EMPTY;
        for r in set {
            ft |= self.lateral_refs[r];
        }
        ft - set
    }

    /// Annotation of a hyperedge. Edges beyond the annotated range get the default annotation
    /// (inner join, selectivity 1).
    pub fn edge_annotation(&self, edge: EdgeId) -> EdgeAnnotation<W> {
        self.edge_annotations.get(edge).copied().unwrap_or_default()
    }

    /// Number of edges carrying an explicit annotation (edges beyond it read as the default).
    pub fn annotated_edge_count(&self) -> usize {
        self.edge_annotations.len()
    }

    /// Product of the selectivities of the given edges.
    pub fn selectivity_product(&self, edges: &[EdgeId]) -> f64 {
        edges
            .iter()
            .map(|&e| self.edge_annotation(e).selectivity)
            .product()
    }

    /// The statistics epoch of this catalog: a digest over every costing input (cardinalities,
    /// selectivities, lateral-reference sets, operators). See [`StatsEpoch`].
    pub fn stats_epoch(&self) -> StatsEpoch {
        let mut epoch = StatsEpoch::SEED.fold(self.cardinalities.len() as u64);
        for &c in &self.cardinalities {
            epoch = epoch.fold(c.to_bits());
        }
        for refs in &self.lateral_refs {
            for w in refs.words() {
                epoch = epoch.fold(w);
            }
        }
        epoch = epoch.fold(self.edge_annotations.len() as u64);
        for a in &self.edge_annotations {
            epoch = epoch.fold(a.selectivity.to_bits());
            epoch = epoch.fold(a.op as u64);
        }
        epoch.finalize()
    }

    /// Checks that the catalog matches the graph: same relation count and no annotated edge
    /// beyond the graph's edge count. Returns an error message otherwise.
    pub fn validate_for(&self, graph: &Hypergraph<W>) -> Result<(), String> {
        if self.relation_count() != graph.node_count() {
            return Err(format!(
                "catalog covers {} relations but the graph has {}",
                self.relation_count(),
                graph.node_count()
            ));
        }
        if self.edge_annotations.len() > graph.edge_count() {
            return Err(format!(
                "catalog annotates {} edges but the graph has only {}",
                self.edge_annotations.len(),
                graph.edge_count()
            ));
        }
        for (i, &c) in self.cardinalities.iter().enumerate() {
            if !(c.is_finite() && c >= 0.0) {
                return Err(format!("relation R{i} has invalid cardinality {c}"));
            }
        }
        for (i, a) in self.edge_annotations.iter().enumerate() {
            if !(a.selectivity.is_finite() && a.selectivity > 0.0 && a.selectivity <= 1.0) {
                return Err(format!(
                    "edge e{i} has invalid selectivity {}",
                    a.selectivity
                ));
            }
        }
        Ok(())
    }
}

/// Builder for [`Catalog`].
#[derive(Clone, Debug)]
pub struct CatalogBuilder<const W: usize = 1> {
    cardinalities: Vec<f64>,
    lateral_refs: Vec<NodeSet<W>>,
    edge_annotations: Vec<EdgeAnnotation<W>>,
}

impl<const W: usize> CatalogBuilder<W> {
    /// Creates a builder for `node_count` relations, all with a default cardinality of 1000.
    pub fn new(node_count: usize) -> Self {
        CatalogBuilder {
            cardinalities: vec![1000.0; node_count],
            lateral_refs: vec![NodeSet::EMPTY; node_count],
            edge_annotations: Vec::new(),
        }
    }

    /// Sets the cardinality of a relation.
    pub fn set_cardinality(&mut self, relation: NodeId, cardinality: f64) -> &mut Self {
        self.cardinalities[relation] = cardinality;
        self
    }

    /// Sets the lateral references of a relation (for table functions / dependent subqueries).
    pub fn set_lateral_refs(&mut self, relation: NodeId, refs: NodeSet<W>) -> &mut Self {
        self.lateral_refs[relation] = refs;
        self
    }

    /// Annotates the edge with the given id; intermediate edge ids get default annotations.
    pub fn annotate_edge(&mut self, edge: EdgeId, annotation: EdgeAnnotation<W>) -> &mut Self {
        if self.edge_annotations.len() <= edge {
            self.edge_annotations
                .resize(edge + 1, EdgeAnnotation::default());
        }
        self.edge_annotations[edge] = annotation;
        self
    }

    /// Shorthand for annotating an inner-join edge with a selectivity.
    pub fn set_selectivity(&mut self, edge: EdgeId, selectivity: f64) -> &mut Self {
        let mut a = if self.edge_annotations.len() > edge {
            self.edge_annotations[edge]
        } else {
            EdgeAnnotation::default()
        };
        a.selectivity = selectivity;
        self.annotate_edge(edge, a)
    }

    /// Finalizes the catalog.
    pub fn build(&self) -> Catalog<W> {
        let any_lateral = self
            .lateral_refs
            .iter()
            .fold(NodeSet::EMPTY, |acc, &r| acc | r);
        Catalog {
            cardinalities: self.cardinalities.clone(),
            lateral_refs: self.lateral_refs.clone(),
            edge_annotations: self.edge_annotations.clone(),
            any_lateral,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qo_hypergraph::Hypergraph;

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let mut b = Catalog::<1>::builder(3);
        b.set_cardinality(0, 10.0).set_cardinality(2, 500.0);
        let c = b.build();
        assert_eq!(c.relation_count(), 3);
        assert_eq!(c.cardinality(0), 10.0);
        assert_eq!(c.cardinality(1), 1000.0);
        assert_eq!(c.cardinality(2), 500.0);
    }

    #[test]
    fn uniform_catalog() {
        let c = Catalog::<1>::uniform(4, 100.0, 3, 0.5);
        for i in 0..4 {
            assert_eq!(c.cardinality(i), 100.0);
        }
        for e in 0..3 {
            assert_eq!(c.edge_annotation(e).selectivity, 0.5);
            assert_eq!(c.edge_annotation(e).op, JoinOp::Inner);
        }
        // Unannotated edges get the default.
        assert_eq!(c.edge_annotation(17).selectivity, 1.0);
    }

    #[test]
    fn selectivity_product() {
        let mut b = Catalog::<1>::builder(3);
        b.set_selectivity(0, 0.5).set_selectivity(1, 0.1);
        let c = b.build();
        assert!((c.selectivity_product(&[0, 1]) - 0.05).abs() < 1e-12);
        assert_eq!(c.selectivity_product(&[]), 1.0);
    }

    #[test]
    fn free_tables_excludes_self() {
        let mut b = Catalog::builder(4);
        // R2 is a table function referencing R0; R3 references R2.
        b.set_lateral_refs(2, ns(&[0]));
        b.set_lateral_refs(3, ns(&[2]));
        let c = b.build();
        assert_eq!(c.free_tables(ns(&[2])), ns(&[0]));
        assert_eq!(c.free_tables(ns(&[2, 3])), ns(&[0]));
        assert_eq!(c.free_tables(ns(&[0, 2, 3])), NodeSet::EMPTY);
        assert_eq!(c.free_tables(ns(&[1])), NodeSet::EMPTY);
    }

    #[test]
    fn edge_annotation_helpers() {
        let a = EdgeAnnotation::<1>::with_op(0.2, JoinOp::LeftAnti).with_tes(ns(&[0, 1]), ns(&[2]));
        assert_eq!(a.op, JoinOp::LeftAnti);
        assert_eq!(a.tes(), ns(&[0, 1, 2]));
        let d = EdgeAnnotation::<1>::default();
        assert_eq!(d.op, JoinOp::Inner);
        assert_eq!(d.selectivity, 1.0);
    }

    #[test]
    fn stats_epoch_tracks_every_costing_input() {
        let base = Catalog::<1>::uniform(3, 100.0, 2, 0.5);
        assert_eq!(base.stats_epoch(), base.stats_epoch(), "deterministic");

        // Cardinality drift — even a tiny one — changes the epoch.
        let mut b = Catalog::<1>::builder(3);
        b.set_cardinality(0, 100.0)
            .set_cardinality(1, 100.0)
            .set_cardinality(2, 100.0 + 1e-9)
            .set_selectivity(0, 0.5)
            .set_selectivity(1, 0.5);
        assert_ne!(b.build().stats_epoch(), base.stats_epoch());

        // Selectivity drift changes it too.
        let mut b = Catalog::<1>::builder(3);
        for r in 0..3 {
            b.set_cardinality(r, 100.0);
        }
        b.set_selectivity(0, 0.5).set_selectivity(1, 0.25);
        assert_ne!(b.build().stats_epoch(), base.stats_epoch());

        // Operators and lateral references are costing inputs as well.
        let mut b = Catalog::<1>::builder(3);
        for r in 0..3 {
            b.set_cardinality(r, 100.0);
        }
        b.annotate_edge(0, EdgeAnnotation::with_op(0.5, JoinOp::LeftOuter))
            .set_selectivity(1, 0.5);
        assert_ne!(b.build().stats_epoch(), base.stats_epoch());

        let mut b = Catalog::<1>::builder(3);
        for r in 0..3 {
            b.set_cardinality(r, 100.0);
        }
        b.set_selectivity(0, 0.5)
            .set_selectivity(1, 0.5)
            .set_lateral_refs(2, ns(&[0]));
        assert_ne!(b.build().stats_epoch(), base.stats_epoch());
    }

    #[test]
    fn validation_catches_mismatches() {
        let mut b = Hypergraph::<1>::builder(3);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(1, 2);
        let g = b.build();

        let good = Catalog::uniform(3, 100.0, 2, 0.5);
        assert!(good.validate_for(&g).is_ok());

        let wrong_nodes = Catalog::uniform(4, 100.0, 2, 0.5);
        assert!(wrong_nodes.validate_for(&g).is_err());

        let too_many_edges = Catalog::uniform(3, 100.0, 5, 0.5);
        assert!(too_many_edges.validate_for(&g).is_err());

        let mut bad_sel = Catalog::builder(3);
        bad_sel.set_selectivity(0, 0.0);
        assert!(bad_sel.build().validate_for(&g).is_err());

        let mut bad_card = Catalog::builder(3);
        bad_card.set_cardinality(1, f64::NAN);
        assert!(bad_card.build().validate_for(&g).is_err());
    }
}
