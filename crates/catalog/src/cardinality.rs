//! Output-cardinality estimation per join operator.

use crate::catalog::Catalog;
use qo_bitset::NodeSet;
use qo_hypergraph::{EdgeId, Hypergraph};
use qo_plan::JoinOp;

/// Estimates output cardinalities for plan classes and join results.
///
/// The estimator uses the textbook independence model: the cardinality of an inner join is the
/// product of the input cardinalities times the product of the selectivities of all predicates
/// evaluated at the join. Non-inner operators adjust the inner estimate according to their
/// semantics (an outer join preserves at least its outer side, a semijoin never exceeds its left
/// input, and so on). The formulas only need to be *deterministic and consistent* for the
/// reproduction — all enumeration algorithms share them, so plan-quality comparisons are fair.
#[derive(Clone, Copy)]
pub struct CardinalityEstimator<'a, const W: usize = 1> {
    catalog: &'a Catalog<W>,
    graph: &'a Hypergraph<W>,
}

impl<'a, const W: usize> CardinalityEstimator<'a, W> {
    /// Creates an estimator for the given catalog/graph pair.
    pub fn new(catalog: &'a Catalog<W>, graph: &'a Hypergraph<W>) -> Self {
        CardinalityEstimator { catalog, graph }
    }

    /// The catalog this estimator reads statistics from.
    pub fn catalog(&self) -> &'a Catalog<W> {
        self.catalog
    }

    /// The hypergraph this estimator resolves edges against.
    pub fn graph(&self) -> &'a Hypergraph<W> {
        self.graph
    }

    /// Cardinality of a base relation.
    pub fn base(&self, relation: usize) -> f64 {
        self.catalog.cardinality(relation)
    }

    /// Independence-model cardinality of the set `s` treated as a pure inner join of all its
    /// relations with all internal predicates applied. Used for sanity checks and as the
    /// canonical class cardinality of inner-join-only queries.
    pub fn inner_set(&self, s: NodeSet<W>) -> f64 {
        let mut card: f64 = s.iter().map(|r| self.catalog.cardinality(r)).product();
        for e in self.graph.edges_within(s) {
            card *= self.catalog.edge_annotation(e).selectivity;
        }
        card
    }

    /// Cardinality of joining two plan classes with the given operator and connecting
    /// predicates.
    ///
    /// `left_card`/`right_card` are the estimated cardinalities of the two inputs; `edges` are
    /// the hyperedges connecting them (their selectivities are all applied, mirroring the
    /// conjunction assembled by `EmitCsgCmp`).
    pub fn join(&self, op: JoinOp, left_card: f64, right_card: f64, edges: &[EdgeId]) -> f64 {
        let sel = self.catalog.selectivity_product(edges);
        join_cardinality(op, left_card, right_card, sel)
    }

    /// Same as [`CardinalityEstimator::join`] but with the combined selectivity already
    /// computed. Width-independent; delegates to the crate-internal `join_cardinality` core.
    pub fn join_with_selectivity(op: JoinOp, left_card: f64, right_card: f64, sel: f64) -> f64 {
        join_cardinality(op, left_card, right_card, sel)
    }
}

/// Output cardinality of joining two inputs with the given operator and combined selectivity.
///
/// This is the width-independent core of the estimator (it only sees scalar statistics), shared
/// by every `NodeSet` width the planner is instantiated at.
pub fn join_cardinality(op: JoinOp, left_card: f64, right_card: f64, sel: f64) -> f64 {
    let inner = left_card * right_card * sel;
    match op.regular_counterpart() {
        JoinOp::Inner => inner,
        // An outer join preserves every outer tuple at least once.
        JoinOp::LeftOuter => inner.max(left_card),
        JoinOp::FullOuter => inner.max(left_card + right_card),
        // A semijoin keeps each left tuple at most once; the probability that a left tuple
        // finds at least one partner is approximated by min(1, sel * |R|).
        JoinOp::LeftSemi => left_card * (sel * right_card).min(1.0),
        // The antijoin keeps the complement of the semijoin.
        JoinOp::LeftAnti => (left_card - left_card * (sel * right_card).min(1.0)).max(0.0),
        // The nestjoin produces exactly one output tuple per left tuple (binary grouping).
        JoinOp::LeftNest => left_card,
        // Dependent operators were mapped to their regular counterpart above.
        _ => unreachable!("regular_counterpart returned a dependent operator"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::EdgeAnnotation;
    use qo_hypergraph::Hypergraph;

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    fn setup() -> (Catalog, Hypergraph) {
        let mut b = Hypergraph::builder(3);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(1, 2);
        let g = b.build();
        let mut cb = Catalog::builder(3);
        cb.set_cardinality(0, 100.0)
            .set_cardinality(1, 200.0)
            .set_cardinality(2, 50.0)
            .annotate_edge(0, EdgeAnnotation::inner(0.01))
            .annotate_edge(1, EdgeAnnotation::inner(0.1));
        (cb.build(), g)
    }

    #[test]
    fn base_and_inner_set() {
        let (c, g) = setup();
        let est = CardinalityEstimator::new(&c, &g);
        assert_eq!(est.base(1), 200.0);
        // {0,1}: 100 * 200 * 0.01 = 200
        assert!((est.inner_set(ns(&[0, 1])) - 200.0).abs() < 1e-9);
        // {0,2}: no internal predicate ⇒ cross product 5000
        assert!((est.inner_set(ns(&[0, 2])) - 5000.0).abs() < 1e-9);
        // full set: 100*200*50*0.01*0.1 = 1000
        assert!((est.inner_set(ns(&[0, 1, 2])) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn inner_join_cardinality() {
        let (c, g) = setup();
        let est = CardinalityEstimator::new(&c, &g);
        let card = est.join(JoinOp::Inner, 100.0, 200.0, &[0]);
        assert!((card - 200.0).abs() < 1e-9);
    }

    #[test]
    fn left_outer_preserves_left() {
        // Very selective predicate: inner result would be tiny, outer join keeps all 100 left
        // tuples.
        let card = join_cardinality(JoinOp::LeftOuter, 100.0, 10.0, 1e-6);
        assert_eq!(card, 100.0);
        // Non-selective: behaves like the inner join.
        let card = join_cardinality(JoinOp::LeftOuter, 100.0, 10.0, 0.5);
        assert_eq!(card, 500.0);
    }

    #[test]
    fn full_outer_preserves_both() {
        let card = join_cardinality(JoinOp::FullOuter, 100.0, 40.0, 1e-9);
        assert_eq!(card, 140.0);
    }

    #[test]
    fn semi_and_anti_partition_the_left_side() {
        let (l, r, sel) = (1000.0, 50.0, 0.004);
        let semi = join_cardinality(JoinOp::LeftSemi, l, r, sel);
        let anti = join_cardinality(JoinOp::LeftAnti, l, r, sel);
        assert!(semi <= l);
        assert!(anti <= l);
        assert!(
            (semi + anti - l).abs() < 1e-9,
            "semi + anti must equal the left input"
        );
        // Semijoin never exceeds the left side even for sel = 1.
        let semi_full = join_cardinality(JoinOp::LeftSemi, l, r, 1.0);
        assert_eq!(semi_full, l);
        let anti_full = join_cardinality(JoinOp::LeftAnti, l, r, 1.0);
        assert_eq!(anti_full, 0.0);
    }

    #[test]
    fn nestjoin_outputs_one_group_per_left_tuple() {
        let card = join_cardinality(JoinOp::LeftNest, 77.0, 1e6, 0.5);
        assert_eq!(card, 77.0);
    }

    #[test]
    fn dependent_ops_follow_their_regular_counterpart() {
        for (dep, reg) in [
            (JoinOp::DepJoin, JoinOp::Inner),
            (JoinOp::DepLeftOuter, JoinOp::LeftOuter),
            (JoinOp::DepLeftSemi, JoinOp::LeftSemi),
            (JoinOp::DepLeftAnti, JoinOp::LeftAnti),
            (JoinOp::DepLeftNest, JoinOp::LeftNest),
        ] {
            let d = join_cardinality(dep, 123.0, 45.0, 0.1);
            let r = join_cardinality(reg, 123.0, 45.0, 0.1);
            assert_eq!(d, r, "{dep:?} vs {reg:?}");
        }
    }

    #[test]
    fn unannotated_edges_have_selectivity_one() {
        let (c, g) = setup();
        let est = CardinalityEstimator::new(&c, &g);
        let card = est.join(JoinOp::Inner, 10.0, 10.0, &[]);
        assert_eq!(card, 100.0);
    }
}
