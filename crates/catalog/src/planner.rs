//! Shared dynamic-programming machinery: the csg-cmp-pair handler interface and the cost-based
//! plan construction that implements the paper's `EmitCsgCmp` (the DP table itself lives in
//! [`crate::table`]).
//!
//! Every enumeration algorithm in this workspace (DPhyp, DPccp, DPsize, DPsub, the TES
//! generate-and-test variant) reports the csg-cmp-pairs it discovers through the [`CcpHandler`]
//! trait. The [`CostBasedHandler`] reacts by building and costing the candidate plans and
//! memoizing the best plan per relation set in a [`DpTable`]; the [`CountingHandler`] merely
//! counts pairs, which is how the tests compare an algorithm's emissions against the brute-force
//! oracle of `qo-hypergraph`.
//!
//! Both the combiner and the handler are generic over the [`CostModel`] (defaulting to
//! `dyn CostModel` for callers that need runtime model selection): monomorphized instantiations
//! inline the cost function straight into `EmitCsgCmp`, which runs once per csg-cmp-pair and is
//! the planner's measured hot path.

use crate::catalog::Catalog;
use crate::cost::{CostModel, SubPlanStats};
use crate::parallel::NodeSetSet;
pub use crate::table::{BestJoin, Candidate, CandidateJoin, DpTable, EdgeListRef, PlanClass};
use qo_bitset::{NodeId, NodeSet};
use qo_hypergraph::{EdgeId, Hypergraph};
use qo_plan::JoinOp;
use std::collections::HashSet;

/// Flow signal returned by [`CcpHandler::emit_ccp`]: should the enumeration keep going?
///
/// This is the early-exit channel of the budgeted optimization driver: a handler that has
/// exhausted its csg-cmp-pair budget (see [`BudgetedHandler`]) answers [`EmitSignal::Abort`]
/// *from inside* `EmitCsgCmp`, and the enumerator unwinds immediately instead of finishing an
/// enumeration whose pair count may be astronomically large (a 96-relation star has `95·2^94`
/// pairs). Handlers without a budget simply always return [`EmitSignal::Continue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use = "enumeration must unwind when the handler aborts"]
pub enum EmitSignal {
    /// Keep enumerating.
    Continue,
    /// Stop: the handler accepts no further pairs (e.g. its ccp budget is exhausted).
    Abort,
}

impl EmitSignal {
    /// Is this the abort signal?
    #[inline]
    pub fn is_abort(self) -> bool {
        self == EmitSignal::Abort
    }
}

/// Interface through which enumeration algorithms report their progress.
///
/// The contract mirrors the paper's use of the DP table:
/// * [`CcpHandler::init_leaf`] is called once per relation before enumeration starts,
/// * [`CcpHandler::contains`] answers "does the DP table have an entry for this set", which the
///   algorithms use as their connectivity test,
/// * [`CcpHandler::emit_ccp`] is called exactly once per canonical csg-cmp-pair `(S1, S2)` and
///   must register `S1 ∪ S2` so that later `contains` calls see it. Its [`EmitSignal`] return
///   value lets the handler abort the enumeration early; once a handler has answered
///   [`EmitSignal::Abort`] the algorithm must not emit further pairs.
pub trait CcpHandler<const W: usize = 1> {
    /// Registers the access plan for a single relation.
    fn init_leaf(&mut self, relation: NodeId);

    /// Does a plan class for `set` exist yet?
    fn contains(&self, set: NodeSet<W>) -> bool;

    /// Processes the csg-cmp-pair `(s1, s2)` and reports whether enumeration may continue.
    fn emit_ccp(&mut self, s1: NodeSet<W>, s2: NodeSet<W>) -> EmitSignal;

    /// Number of csg-cmp-pairs processed so far.
    fn ccp_count(&self) -> usize;
}

/// Combines two plan classes into a candidate class: recovers the operator from the hyperedge
/// annotations, decides the operator orientation and the dependent-join question (Sec. 5.6),
/// estimates cardinality and cost.
///
/// `M` is the cost model; instantiating the combiner with a concrete model (the normal case)
/// lets the compiler inline [`CostModel::join_cost`] into the per-pair hot path. The
/// `dyn CostModel` default keeps one dynamically-dispatched instantiation available for callers
/// that select the model at runtime.
pub struct JoinCombiner<'a, M: ?Sized = dyn CostModel, const W: usize = 1>
where
    M: CostModel<W>,
{
    graph: &'a Hypergraph<W>,
    catalog: &'a Catalog<W>,
    cost_model: &'a M,
    /// When set, every connecting edge's TES must be contained in `S1 ∪ S2` (with the left/right
    /// split respected). This is the generate-and-test approach the paper compares against in
    /// Fig. 8a; the hypergraph-based approach encodes the same constraints as hyperedges and
    /// needs no test.
    enforce_tes: bool,
}

impl<'a, M: CostModel<W> + ?Sized, const W: usize> JoinCombiner<'a, M, W> {
    /// Creates a combiner.
    pub fn new(graph: &'a Hypergraph<W>, catalog: &'a Catalog<W>, cost_model: &'a M) -> Self {
        JoinCombiner {
            graph,
            catalog,
            cost_model,
            enforce_tes: false,
        }
    }

    /// Enables the TES generate-and-test check (see [`JoinCombiner`] docs).
    pub fn with_tes_enforcement(mut self, enforce: bool) -> Self {
        self.enforce_tes = enforce;
        self
    }

    /// The hypergraph joined over.
    pub fn graph(&self) -> &'a Hypergraph<W> {
        self.graph
    }

    /// The catalog consulted for statistics.
    pub fn catalog(&self) -> &'a Catalog<W> {
        self.catalog
    }

    /// Combines the sub-plans `a` and `b` into the best candidate for `a.set ∪ b.set`, or
    /// `None` if no valid join exists (no connecting edge, TES violated, unresolved lateral
    /// references, …).
    ///
    /// `edges` must be the connecting edges of `(a.set, b.set)` — the caller obtains them via
    /// [`Hypergraph::connecting_edges_into`] into a reused buffer so that the per-pair hot path
    /// performs no allocation; the returned candidate borrows that buffer until it is offered
    /// to the [`DpTable`] (which interns the list only if the offer is accepted).
    pub fn combine<'e>(
        &self,
        a: &SubPlanStats<W>,
        b: &SubPlanStats<W>,
        edges: &'e [EdgeId],
    ) -> Option<Candidate<'e, W>> {
        debug_assert!(a.set.is_disjoint(b.set));
        debug_assert_eq!(edges, self.graph.connecting_edges(a.set, b.set).as_slice());
        if edges.is_empty() {
            return None;
        }
        let union = a.set | b.set;
        let selectivity = self.catalog.selectivity_product(edges);

        // Recover the operator: prefer the (unique) non-inner operator among the connecting
        // edges; plain predicates keep the inner join.
        let mut op = JoinOp::Inner;
        let mut defining_edge: Option<EdgeId> = None;
        for &e in edges {
            let ann = self.catalog.edge_annotation(e);
            if !ann.op.is_inner() {
                debug_assert!(
                    op.is_inner() || op == ann.op,
                    "conflicting non-inner operators on one csg-cmp-pair: {op:?} vs {:?}",
                    ann.op
                );
                op = ann.op;
                defining_edge = Some(e);
            } else if defining_edge.is_none() {
                defining_edge = Some(e);
            }
        }

        if self.enforce_tes && !self.tes_satisfied(edges, a.set, b.set) {
            return None;
        }

        // Candidate orientations. Non-commutative operators are oriented by their defining
        // hyperedge: the edge's left hypernode belongs to the operator's left input (Sec. 5.4).
        let mut orientations: [Option<(&SubPlanStats<W>, &SubPlanStats<W>)>; 2] = [None, None];
        if op.is_commutative() {
            orientations[0] = Some((a, b));
            orientations[1] = Some((b, a));
        } else {
            let e = self.graph.edge(defining_edge.expect("non-empty edge list"));
            if e.left().is_subset_of(a.set) && e.right().is_subset_of(b.set) {
                orientations[0] = Some((a, b));
            } else {
                orientations[0] = Some((b, a));
            }
        }

        // Dependent-join inputs (Sec. 5.6), hoisted out of the orientation loop; for the common
        // lateral-free catalog both sets are empty and the per-pair scans are skipped entirely.
        let (ft_a, ft_b) = if self.catalog.has_lateral_refs() {
            (
                self.catalog.free_tables(a.set),
                self.catalog.free_tables(b.set),
            )
        } else {
            (NodeSet::EMPTY, NodeSet::EMPTY)
        };

        let mut best: Option<Candidate<'e, W>> = None;
        for (outer, inner) in orientations.into_iter().flatten() {
            if self.enforce_tes && !self.tes_orientation_ok(edges, outer.set, inner.set) {
                continue;
            }
            // Dependent-join decision (Sec. 5.6): FT(P2) ∩ S1 ≠ ∅ turns the operator into its
            // dependent counterpart; the lateral references must be fully available on the
            // outer side.
            let (ft_outer, ft_inner) = if outer.set == a.set {
                (ft_a, ft_b)
            } else {
                (ft_b, ft_a)
            };
            if ft_outer.intersects(inner.set) {
                // The outer side would depend on the inner side — invalid for left-handed
                // operators; the swapped orientation (if allowed) handles it.
                continue;
            }
            let actual_op = if ft_inner.intersects(outer.set) {
                if !ft_inner.is_subset_of(outer.set) {
                    // Some lateral references are not yet available; this pair cannot be joined
                    // here.
                    continue;
                }
                op.dependent_counterpart()
            } else {
                op
            };
            let cardinality = crate::cardinality::join_cardinality(
                actual_op,
                outer.cardinality,
                inner.cardinality,
                selectivity,
            );
            let cost = self
                .cost_model
                .join_cost(actual_op, outer, inner, cardinality);
            let candidate = Candidate {
                set: union,
                cardinality,
                cost,
                join: Some(CandidateJoin {
                    left: outer.set,
                    right: inner.set,
                    op: actual_op,
                    predicates: edges,
                }),
            };
            match &best {
                Some(b) if b.cost <= candidate.cost => {}
                _ => best = Some(candidate),
            }
        }
        best
    }

    /// Does [`combine`](Self::combine) on this pair return a candidate? `true` whenever
    /// [`always_combines`](Self::always_combines) holds; otherwise this replays exactly the
    /// structural rejections of `combine` — empty edge list, TES violation, no orientation
    /// surviving the lateral-dependency checks — without touching cardinality or cost.
    ///
    /// The parallel enumeration's structure pass uses this to register only those unions whose
    /// cost pass will actually produce a plan class, so that every membership answer the
    /// enumerator sees matches what the sequential cost-based handler would have built.
    pub fn feasible(&self, a_set: NodeSet<W>, b_set: NodeSet<W>, edges: &[EdgeId]) -> bool {
        debug_assert!(a_set.is_disjoint(b_set));
        if edges.is_empty() {
            return false;
        }
        if self.enforce_tes && !self.tes_satisfied(edges, a_set, b_set) {
            return false;
        }
        // Recover the operator exactly as `combine` does — it decides the orientations.
        let mut op = JoinOp::Inner;
        let mut defining_edge: Option<EdgeId> = None;
        for &e in edges {
            let ann = self.catalog.edge_annotation(e);
            if !ann.op.is_inner() {
                op = ann.op;
                defining_edge = Some(e);
            } else if defining_edge.is_none() {
                defining_edge = Some(e);
            }
        }
        let mut orientations: [Option<(NodeSet<W>, NodeSet<W>)>; 2] = [None, None];
        if op.is_commutative() {
            orientations[0] = Some((a_set, b_set));
            orientations[1] = Some((b_set, a_set));
        } else {
            let e = self.graph.edge(defining_edge.expect("non-empty edge list"));
            if e.left().is_subset_of(a_set) && e.right().is_subset_of(b_set) {
                orientations[0] = Some((a_set, b_set));
            } else {
                orientations[0] = Some((b_set, a_set));
            }
        }
        let (ft_a, ft_b) = if self.catalog.has_lateral_refs() {
            (
                self.catalog.free_tables(a_set),
                self.catalog.free_tables(b_set),
            )
        } else {
            (NodeSet::EMPTY, NodeSet::EMPTY)
        };
        for (outer, inner) in orientations.into_iter().flatten() {
            if self.enforce_tes && !self.tes_orientation_ok(edges, outer, inner) {
                continue;
            }
            let (ft_outer, ft_inner) = if outer == a_set {
                (ft_a, ft_b)
            } else {
                (ft_b, ft_a)
            };
            if ft_outer.intersects(inner) {
                continue;
            }
            if ft_inner.intersects(outer) && !ft_inner.is_subset_of(outer) {
                continue;
            }
            // Past these checks, `combine` always produces a candidate for this orientation.
            return true;
        }
        false
    }

    /// `true` when [`combine`](Self::combine) succeeds for *every* connected csg-cmp-pair: with
    /// TES enforcement off and no lateral references, no orientation is ever skipped. Callers
    /// that only need membership (the parallel structure pass) can then drop the per-pair
    /// connecting-edge collection and [`feasible`](Self::feasible) call entirely.
    pub fn always_combines(&self) -> bool {
        !self.enforce_tes && !self.catalog.has_lateral_refs()
    }

    fn tes_satisfied(&self, edges: &[EdgeId], s1: NodeSet<W>, s2: NodeSet<W>) -> bool {
        let union = s1 | s2;
        edges.iter().all(|&e| {
            let tes = self.catalog.edge_annotation(e).tes();
            tes.is_subset_of(union)
        })
    }

    fn tes_orientation_ok(&self, edges: &[EdgeId], outer: NodeSet<W>, inner: NodeSet<W>) -> bool {
        edges.iter().all(|&e| {
            let ann = self.catalog.edge_annotation(e);
            if ann.op.is_inner() || ann.op.is_commutative() {
                return true;
            }
            (ann.tes_left.is_empty() || ann.tes_left.is_subset_of(outer))
                && (ann.tes_right.is_empty() || ann.tes_right.is_subset_of(inner))
        })
    }
}

/// Observable effect of cost-bounded branch-and-bound pruning on one enumeration.
///
/// Reported by [`CostBasedHandler::prune_counters`] and surfaced through the adaptive driver's
/// telemetry; all three counters are zero when pruning is disabled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneCounters {
    /// Csg-cmp-pairs skipped *without any cost evaluation* because at least one input class
    /// had already been pruned (every plan through it is over the bound). `exact_ccps -
    /// pruned_pairs` is the number of pairs actually costed.
    pub pruned_pairs: usize,
    /// Evaluated candidates denied registration because their accumulated cost exceeded the
    /// bound.
    pub pruned_classes: usize,
    /// Times a completed plan improved on — and tightened — the upper bound.
    pub bound_updates: usize,
}

impl PruneCounters {
    /// Component-wise sum, for aggregating per-worker counters.
    pub fn merge(self, other: PruneCounters) -> PruneCounters {
        PruneCounters {
            pruned_pairs: self.pruned_pairs + other.pruned_pairs,
            pruned_classes: self.pruned_classes + other.pruned_classes,
            bound_updates: self.bound_updates + other.bound_updates,
        }
    }
}

/// Branch-and-bound state of a pruning [`CostBasedHandler`].
///
/// Pruned sets are recorded as *tombstones* in a separate membership set rather than being
/// registered in the DP table: the enumerator's `contains` queries keep answering exactly as
/// they would without pruning (so the emission sequence — and with it every ccp count, budget
/// decision and adaptive-tier outcome — is bit-identical), while the costing work for plans
/// through pruned classes is skipped. A tombstoned set can later be resurrected by a cheaper
/// split that fits the bound; the table entry then takes precedence.
struct PruneState<const W: usize> {
    /// Current upper bound: the cost of the best complete plan known so far (seeded from a
    /// heuristic full plan, tightened whenever enumeration completes a cheaper one). Candidates
    /// strictly above the bound are pruned; ties survive, which keeps the winning plan — join
    /// order included — identical to the unpruned enumeration even when the seed is optimal.
    bound: f64,
    /// The full relation set, whose candidates tighten the bound.
    full: NodeSet<W>,
    /// Sets whose every candidate so far was over the bound: "member" for the enumerator,
    /// absent from the table.
    tombstones: NodeSetSet<W>,
    counters: PruneCounters,
}

/// The standard cost-based handler: reacts to each csg-cmp-pair exactly like the paper's
/// `EmitCsgCmp`, i.e. builds the candidate plan(s) for `S1 ∪ S2` and memoizes the cheapest.
///
/// Generic over the cost model like [`JoinCombiner`]; a concrete `M` makes the whole
/// pair-processing path — connecting-edge collection into a reused buffer, candidate
/// construction, cost call, table offer — free of virtual dispatch and allocation.
///
/// [`with_bound`](Self::with_bound) additionally enables cost-bounded branch-and-bound
/// pruning: candidates whose accumulated cost exceeds a known complete-plan cost are not
/// registered (sound because the cost models are monotone and non-negative — see
/// [`CostModel::supports_pruning`]), and the bound tightens whenever enumeration completes a
/// cheaper full plan.
pub struct CostBasedHandler<'a, M: ?Sized = dyn CostModel, const W: usize = 1>
where
    M: CostModel<W>,
{
    combiner: JoinCombiner<'a, M, W>,
    table: DpTable<W>,
    /// Reused connecting-edge buffer; one `emit_ccp` at a time borrows it.
    edge_buf: Vec<EdgeId>,
    ccps: usize,
    /// Branch-and-bound state; `None` when pruning is off.
    prune: Option<PruneState<W>>,
}

impl<'a, M: CostModel<W> + ?Sized, const W: usize> CostBasedHandler<'a, M, W> {
    /// Creates a handler over an empty DP table.
    pub fn new(combiner: JoinCombiner<'a, M, W>) -> Self {
        CostBasedHandler {
            combiner,
            table: DpTable::new(),
            edge_buf: Vec::new(),
            ccps: 0,
            prune: None,
        }
    }

    /// Creates a handler that prunes against the upper bound `bound` (the cost of some known
    /// complete plan, e.g. from a greedy pre-pass; `f64::INFINITY` disables all pruning while
    /// keeping the counters at zero).
    ///
    /// The caller must ensure the cost model satisfies the branch-and-bound precondition
    /// ([`CostModel::supports_pruning`]); the handler debug-asserts monotonicity on every
    /// evaluated candidate.
    pub fn with_bound(combiner: JoinCombiner<'a, M, W>, bound: f64) -> Self {
        let full = combiner.graph().all_nodes();
        CostBasedHandler {
            combiner,
            table: DpTable::new(),
            edge_buf: Vec::new(),
            ccps: 0,
            prune: Some(PruneState {
                bound,
                full,
                tombstones: NodeSetSet::new(),
                counters: PruneCounters::default(),
            }),
        }
    }

    /// The underlying DP table.
    pub fn table(&self) -> &DpTable<W> {
        &self.table
    }

    /// Consumes the handler and returns the DP table.
    pub fn into_table(self) -> DpTable<W> {
        self.table
    }

    /// The combiner used by this handler.
    pub fn combiner(&self) -> &JoinCombiner<'a, M, W> {
        &self.combiner
    }

    /// The pruning counters (all zero when the handler was built without a bound).
    pub fn prune_counters(&self) -> PruneCounters {
        self.prune.as_ref().map(|p| p.counters).unwrap_or_default()
    }

    /// Processes one pair under the branch-and-bound regime. `self.prune` is `Some`.
    fn emit_ccp_bounded(&mut self, s1: NodeSet<W>, s2: NodeSet<W>) -> EmitSignal {
        let (a, b) = match (self.table.get(s1), self.table.get(s2)) {
            (Some(a), Some(b)) => (a.stats(), b.stats()),
            _ => {
                // At least one input class was pruned, so every plan through this pair is over
                // the bound already: skip the cost evaluation entirely. Membership of the
                // union must still match the unpruned enumeration, so a structurally
                // infeasible pair (which would create no class) leaves no tombstone.
                let prune = self.prune.as_mut().expect("bounded path");
                debug_assert!(
                    prune.tombstones.contains(s1) || prune.tombstones.contains(s2),
                    "emit_ccp called before both classes exist: {s1:?}, {s2:?}"
                );
                prune.counters.pruned_pairs += 1;
                let union = s1 | s2;
                if !self.table.contains(union) && !prune.tombstones.contains(union) {
                    let feasible = self.combiner.always_combines() || {
                        self.combiner
                            .graph()
                            .connecting_edges_into(s1, s2, &mut self.edge_buf);
                        self.combiner.feasible(s1, s2, &self.edge_buf)
                    };
                    if feasible {
                        prune.tombstones.insert(union);
                    }
                }
                return EmitSignal::Continue;
            }
        };
        self.combiner
            .graph()
            .connecting_edges_into(s1, s2, &mut self.edge_buf);
        if let Some(candidate) = self.combiner.combine(&a, &b, &self.edge_buf) {
            debug_assert!(
                candidate.cost >= a.cost.max(b.cost).max(0.0),
                "cost model violates the branch-and-bound precondition \
                 (CostModel::supports_pruning): candidate {} < inputs {} / {}",
                candidate.cost,
                a.cost,
                b.cost
            );
            let prune = self.prune.as_mut().expect("bounded path");
            if candidate.cost > prune.bound {
                // Over the bound: skip registration. Only tombstone sets with no real class —
                // an earlier, cheaper split may already have admitted this union.
                prune.counters.pruned_classes += 1;
                if !self.table.contains(candidate.set) {
                    prune.tombstones.insert(candidate.set);
                }
            } else {
                let set = candidate.set;
                self.table.offer(candidate);
                if set == prune.full {
                    let best = self.table.get(set).expect("offered").cost;
                    if best < prune.bound {
                        prune.bound = best;
                        prune.counters.bound_updates += 1;
                    }
                }
            }
        }
        EmitSignal::Continue
    }
}

impl<M: CostModel<W> + ?Sized, const W: usize> CcpHandler<W> for CostBasedHandler<'_, M, W> {
    fn init_leaf(&mut self, relation: NodeId) {
        let card = self.combiner.catalog().cardinality(relation);
        self.table.insert_leaf(relation, card);
    }

    fn contains(&self, set: NodeSet<W>) -> bool {
        self.table.contains(set)
            || self
                .prune
                .as_ref()
                .is_some_and(|p| p.tombstones.contains(set))
    }

    fn emit_ccp(&mut self, s1: NodeSet<W>, s2: NodeSet<W>) -> EmitSignal {
        self.ccps += 1;
        if self.prune.is_some() {
            return self.emit_ccp_bounded(s1, s2);
        }
        let (a, b) = match (self.table.get(s1), self.table.get(s2)) {
            (Some(a), Some(b)) => (a.stats(), b.stats()),
            _ => {
                debug_assert!(
                    false,
                    "emit_ccp called before both classes exist: {s1:?}, {s2:?}"
                );
                return EmitSignal::Continue;
            }
        };
        self.combiner
            .graph()
            .connecting_edges_into(s1, s2, &mut self.edge_buf);
        if let Some(candidate) = self.combiner.combine(&a, &b, &self.edge_buf) {
            self.table.offer(candidate);
        }
        EmitSignal::Continue
    }

    fn ccp_count(&self) -> usize {
        self.ccps
    }
}

/// Re-costs every memoized plan class of `table` bottom-up under the (possibly drifted)
/// statistics of `catalog`, without re-enumerating any csg-cmp-pairs.
///
/// This is the incremental half of plan caching: the join *structure* of a cached table — which
/// sets exist and how each one's best plan splits — is kept verbatim, while cardinalities,
/// selectivities and costs are recomputed through the same [`JoinCombiner`] the enumeration
/// used, so a re-costed class is bit-identical to what a from-scratch optimization would
/// compute for the same join order. The arena's insertion order is a topological order (every
/// class's inputs were created before the class itself), so one forward pass suffices.
///
/// Returns `None` when the table does not fit the graph/catalog — a child class missing, a
/// stored join no longer connected, a leaf out of range, or an invalid catalog. Callers treat
/// that as a cache miss and fall back to a full optimization; it cannot happen when the table
/// was built for a query of the same shape.
pub fn recost_table<M: CostModel<W> + ?Sized, const W: usize>(
    table: &DpTable<W>,
    graph: &Hypergraph<W>,
    catalog: &Catalog<W>,
    cost_model: &M,
) -> Option<DpTable<W>> {
    if catalog.validate_for(graph).is_err() {
        return None;
    }
    let combiner = JoinCombiner::new(graph, catalog, cost_model);
    let mut out = DpTable::new();
    let mut edge_buf: Vec<EdgeId> = Vec::new();
    for class in table.classes() {
        match class.best_join {
            None => {
                if !class.set.is_singleton() {
                    return None;
                }
                let relation = class.set.min_node()?;
                if relation >= graph.node_count() {
                    return None;
                }
                out.insert_leaf(relation, catalog.cardinality(relation));
            }
            Some(join) => {
                // The inputs were re-costed earlier in this pass (topological arena order).
                let left = out.get(join.left)?.stats();
                let right = out.get(join.right)?.stats();
                // Recollect the connecting edges instead of trusting the interned list: the
                // combiner's contract (and its orientation/operator recovery) is defined over
                // exactly the graph's connecting edges of the pair.
                graph.connecting_edges_into(join.left, join.right, &mut edge_buf);
                let candidate = combiner.combine(&left, &right, &edge_buf)?;
                if candidate.set != class.set {
                    return None;
                }
                out.offer(candidate);
            }
        }
    }
    // Every class must have been re-admitted exactly once; a shortfall means the structure
    // references sets the pass never produced.
    (out.len() == table.len()).then_some(out)
}

/// A handler that only records which csg-cmp-pairs were emitted. Used to validate enumeration
/// algorithms against the brute-force oracle and to measure search-space sizes without paying
/// for plan construction.
#[derive(Clone, Debug)]
pub struct CountingHandler<const W: usize = 1> {
    connected: HashSet<NodeSet<W>>,
    pairs: Vec<(NodeSet<W>, NodeSet<W>)>,
}

impl<const W: usize> Default for CountingHandler<W> {
    fn default() -> Self {
        CountingHandler {
            connected: HashSet::new(),
            pairs: Vec::new(),
        }
    }
}

impl<const W: usize> CountingHandler<W> {
    /// Creates an empty counting handler.
    pub fn new() -> Self {
        Self::default()
    }

    /// All emitted pairs in emission order.
    pub fn pairs(&self) -> &[(NodeSet<W>, NodeSet<W>)] {
        &self.pairs
    }

    /// The emitted pairs in canonical form (`min(S1) ≺ min(S2)`), sorted — directly comparable
    /// with `qo_hypergraph::enumerate_ccps`.
    pub fn canonical_pairs(&self) -> Vec<(NodeSet<W>, NodeSet<W>)> {
        let mut v: Vec<_> = self
            .pairs
            .iter()
            .map(|&(a, b)| {
                if a.min_node() <= b.min_node() {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        v.sort();
        v
    }
}

impl<const W: usize> CcpHandler<W> for CountingHandler<W> {
    fn init_leaf(&mut self, relation: NodeId) {
        self.connected.insert(NodeSet::single(relation));
    }

    fn contains(&self, set: NodeSet<W>) -> bool {
        self.connected.contains(&set)
    }

    fn emit_ccp(&mut self, s1: NodeSet<W>, s2: NodeSet<W>) -> EmitSignal {
        self.connected.insert(s1 | s2);
        self.pairs.push((s1, s2));
        EmitSignal::Continue
    }

    fn ccp_count(&self) -> usize {
        self.pairs.len()
    }
}

/// Decorates any [`CcpHandler`] with a csg-cmp-pair budget and an optional wall-clock
/// deadline: the wrapped handler processes at most `budget` pairs, and the first pair beyond
/// the budget — or the first deadline check past the deadline — answers [`EmitSignal::Abort`]
/// *without* the pair being forwarded.
///
/// The pair boundary is deliberately exclusive of the abort: a budget exactly equal to the
/// true pair count of a query lets the enumeration complete (the budget-th pair is still
/// processed; only a would-be `budget + 1`-th aborts), so "budget = known ccp count" never
/// falls back spuriously. The deadline is polled every
/// [`DEADLINE_CHECK_INTERVAL`](Self::DEADLINE_CHECK_INTERVAL) pairs — including before the
/// very first one, so even a zero time budget aborts immediately — keeping the `Instant::now`
/// syscall off the per-pair hot path. This is the budget state behind the adaptive
/// optimization driver in the `dphyp` crate, which reacts to [`BudgetedHandler::aborted`] by
/// re-planning with iterative dynamic programming or greedy operator ordering.
#[derive(Clone, Debug)]
pub struct BudgetedHandler<H, const W: usize = 1> {
    inner: H,
    budget: usize,
    deadline: Option<std::time::Instant>,
    aborted: bool,
    deadline_exceeded: bool,
}

impl<H: CcpHandler<W>, const W: usize> BudgetedHandler<H, W> {
    /// How many pairs pass between two wall-clock polls (a power of two; the check runs when
    /// `ccp_count % INTERVAL == 0`). At roughly 10M pairs/s, 1024 pairs ≈ 100 µs of deadline
    /// slack — far below any useful time budget.
    pub const DEADLINE_CHECK_INTERVAL: usize = 1024;

    /// Wraps `inner`, allowing it to process at most `budget` csg-cmp-pairs.
    pub fn new(inner: H, budget: usize) -> Self {
        BudgetedHandler {
            inner,
            budget,
            deadline: None,
            aborted: false,
            deadline_exceeded: false,
        }
    }

    /// Additionally aborts the enumeration once `deadline` has passed (checked every
    /// [`DEADLINE_CHECK_INTERVAL`](Self::DEADLINE_CHECK_INTERVAL) pairs).
    pub fn with_deadline(mut self, deadline: std::time::Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The configured pair budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Did the enumeration hit the budget (pairs or wall clock) and abort?
    pub fn aborted(&self) -> bool {
        self.aborted
    }

    /// Was the abort caused by the wall-clock deadline (rather than the pair budget)?
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline_exceeded
    }

    /// A shared reference to the wrapped handler.
    pub fn inner(&self) -> &H {
        &self.inner
    }

    /// Unwraps the budgeted decoration.
    pub fn into_inner(self) -> H {
        self.inner
    }
}

impl<H: CcpHandler<W>, const W: usize> CcpHandler<W> for BudgetedHandler<H, W> {
    fn init_leaf(&mut self, relation: NodeId) {
        self.inner.init_leaf(relation);
    }

    fn contains(&self, set: NodeSet<W>) -> bool {
        self.inner.contains(set)
    }

    fn emit_ccp(&mut self, s1: NodeSet<W>, s2: NodeSet<W>) -> EmitSignal {
        let count = self.inner.ccp_count();
        if count >= self.budget {
            self.aborted = true;
            return EmitSignal::Abort;
        }
        if let Some(deadline) = self.deadline {
            if count % Self::DEADLINE_CHECK_INTERVAL == 0 && std::time::Instant::now() >= deadline {
                self.aborted = true;
                self.deadline_exceeded = true;
                return EmitSignal::Abort;
            }
        }
        self.inner.emit_ccp(s1, s2)
    }

    fn ccp_count(&self) -> usize {
        self.inner.ccp_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::EdgeAnnotation;
    use crate::cost::{CoutCost, MixedCost};
    use qo_plan::PlanShape;

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    fn leaf_stats(relation: usize, cardinality: f64) -> SubPlanStats {
        SubPlanStats::leaf(relation, cardinality)
    }

    /// Combines two sub-plans the way the handler does, with a fresh edge buffer. Returns an
    /// owned view `(candidate-as-stats, join)` so tests can chain combinations.
    fn combine_pair<'e, M: CostModel + ?Sized>(
        combiner: &JoinCombiner<'_, M>,
        a: &SubPlanStats,
        b: &SubPlanStats,
        edges: &'e mut Vec<EdgeId>,
    ) -> Option<Candidate<'e>> {
        combiner.graph().connecting_edges_into(a.set, b.set, edges);
        combiner.combine(a, b, edges)
    }

    /// Chain R0 - R1 - R2 with distinctive cardinalities.
    fn chain3() -> (Hypergraph, Catalog) {
        let mut b = Hypergraph::builder(3);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(1, 2);
        let g = b.build();
        let mut cb = Catalog::builder(3);
        cb.set_cardinality(0, 10.0)
            .set_cardinality(1, 1000.0)
            .set_cardinality(2, 10.0)
            .annotate_edge(0, EdgeAnnotation::inner(0.01))
            .annotate_edge(1, EdgeAnnotation::inner(0.01));
        (g, cb.build())
    }

    #[test]
    fn reconstruct_builds_the_recorded_tree() {
        let (g, c) = chain3();
        let model = CoutCost;
        let combiner = JoinCombiner::new(&g, &c, &model);
        let mut h = CostBasedHandler::new(combiner);
        for r in 0..3 {
            h.init_leaf(r);
        }
        let _ = h.emit_ccp(ns(&[0]), ns(&[1]));
        let _ = h.emit_ccp(ns(&[1]), ns(&[2]));
        let _ = h.emit_ccp(ns(&[0, 1]), ns(&[2]));
        let _ = h.emit_ccp(ns(&[0]), ns(&[1, 2]));
        assert_eq!(h.ccp_count(), 4);
        let table = h.into_table();
        let plan = table.reconstruct(ns(&[0, 1, 2])).expect("full plan");
        assert_eq!(plan.relations(), ns(&[0, 1, 2]));
        assert_eq!(plan.join_count(), 2);
        assert_eq!(plan.applied_predicates(), vec![0, 1]);
        // With C_out both bushy arrangements tie; the plan must at least be a valid tree shape.
        assert!(matches!(
            plan.shape(),
            PlanShape::LeftDeep | PlanShape::RightDeep | PlanShape::ZigZag | PlanShape::Linear
        ));
        // Missing set → None.
        assert!(table.reconstruct(ns(&[0, 2])).is_none());
    }

    #[test]
    fn handler_is_usable_through_dyn_cost_model() {
        // The default `dyn CostModel` instantiation keeps runtime model selection working.
        let (g, c) = chain3();
        let model: &dyn CostModel = &CoutCost;
        let combiner: JoinCombiner<'_> = JoinCombiner::new(&g, &c, model);
        let mut h = CostBasedHandler::new(combiner);
        for r in 0..3 {
            h.init_leaf(r);
        }
        assert_eq!(h.emit_ccp(ns(&[0]), ns(&[1])), EmitSignal::Continue);
        assert!(h.contains(ns(&[0, 1])));
    }

    #[test]
    fn combiner_requires_a_connecting_edge() {
        let (g, c) = chain3();
        let model = CoutCost;
        let combiner = JoinCombiner::new(&g, &c, &model);
        let a = leaf_stats(0, 10.0);
        let b = leaf_stats(2, 10.0);
        let mut edges = Vec::new();
        assert!(
            combine_pair(&combiner, &a, &b, &mut edges).is_none(),
            "R0 and R2 are not adjacent"
        );
    }

    #[test]
    fn combiner_inner_join_cost_and_cardinality() {
        let (g, c) = chain3();
        let model = CoutCost;
        let combiner = JoinCombiner::new(&g, &c, &model);
        let a = leaf_stats(0, 10.0);
        let b = leaf_stats(1, 1000.0);
        let mut edges = Vec::new();
        let combined = combine_pair(&combiner, &a, &b, &mut edges).expect("adjacent");
        // 10 * 1000 * 0.01 = 100
        assert!((combined.cardinality - 100.0).abs() < 1e-9);
        assert!((combined.cost - 100.0).abs() < 1e-9);
        assert_eq!(combined.set, ns(&[0, 1]));
        let join = combined.join.unwrap();
        assert_eq!(join.op, JoinOp::Inner);
        assert_eq!(join.predicates, &[0]);
    }

    #[test]
    fn combiner_orients_asymmetric_cost_models() {
        // With MixedCost (build on the right input), joining big ⋈ small must place the small
        // side on the right.
        let (g, c) = chain3();
        let model = MixedCost;
        let combiner = JoinCombiner::new(&g, &c, &model);
        let small = leaf_stats(0, 10.0);
        let big = leaf_stats(1, 1000.0);
        let mut edges = Vec::new();
        let combined = combine_pair(&combiner, &small, &big, &mut edges).unwrap();
        let join = combined.join.unwrap();
        assert_eq!(join.left, ns(&[1]), "large input should be the probe side");
        assert_eq!(join.right, ns(&[0]));
    }

    #[test]
    fn combiner_orients_non_commutative_ops_by_edge_sides() {
        // R0 ⟕ R1: edge left = {0}, right = {1}. Even when the classes are passed in swapped
        // order the plan must keep R0 on the left.
        let mut gb = Hypergraph::builder(2);
        gb.add_simple_edge(0, 1);
        let g = gb.build();
        let mut cb = Catalog::builder(2);
        cb.set_cardinality(0, 10.0)
            .set_cardinality(1, 100.0)
            .annotate_edge(0, EdgeAnnotation::with_op(0.5, JoinOp::LeftOuter));
        let c = cb.build();
        let model = CoutCost;
        let combiner = JoinCombiner::new(&g, &c, &model);
        let r0 = leaf_stats(0, 10.0);
        let r1 = leaf_stats(1, 100.0);
        for (x, y) in [(&r0, &r1), (&r1, &r0)] {
            let mut edges = Vec::new();
            let combined = combine_pair(&combiner, x, y, &mut edges).unwrap();
            let join = combined.join.unwrap();
            assert_eq!(join.op, JoinOp::LeftOuter);
            assert_eq!(join.left, ns(&[0]));
            assert_eq!(join.right, ns(&[1]));
        }
    }

    #[test]
    fn combiner_turns_lateral_references_into_dependent_joins() {
        // R1 is a table function referencing R0 (e.g. R0 CROSS APPLY f(R0.x)).
        let mut gb = Hypergraph::builder(2);
        gb.add_simple_edge(0, 1);
        let g = gb.build();
        let mut cb = Catalog::builder(2);
        cb.set_cardinality(0, 100.0)
            .set_cardinality(1, 5.0)
            .set_lateral_refs(1, ns(&[0]))
            .annotate_edge(0, EdgeAnnotation::inner(1.0));
        let c = cb.build();
        let model = CoutCost;
        let combiner = JoinCombiner::new(&g, &c, &model);
        let r0 = leaf_stats(0, 100.0);
        let r1 = leaf_stats(1, 5.0);
        let mut edges = Vec::new();
        let combined = combine_pair(&combiner, &r0, &r1, &mut edges).unwrap();
        let join = combined.join.unwrap();
        assert_eq!(
            join.op,
            JoinOp::DepJoin,
            "lateral reference must force a d-join"
        );
        assert_eq!(
            join.left,
            ns(&[0]),
            "the referenced relation must be on the left"
        );
        // Same result regardless of argument order.
        let combined2 = combine_pair(&combiner, &r1, &r0, &mut edges).unwrap();
        assert_eq!(combined2.join.unwrap().op, JoinOp::DepJoin);
    }

    #[test]
    fn lateral_refs_resolve_at_the_join_that_provides_the_referenced_relation() {
        // R1 references R2. Joining R0 with R1 is still allowed (the reference floats up and is
        // bound higher in the plan), but the join that finally brings R2 in must be a dependent
        // join with R2 on the left.
        let mut gb = Hypergraph::builder(3);
        gb.add_simple_edge(0, 1);
        gb.add_simple_edge(1, 2);
        let g = gb.build();
        let mut cb = Catalog::builder(3);
        cb.set_cardinality(0, 10.0)
            .set_cardinality(1, 10.0)
            .set_cardinality(2, 10.0)
            .set_lateral_refs(1, ns(&[2]));
        let c = cb.build();
        let model = CoutCost;
        let combiner = JoinCombiner::new(&g, &c, &model);
        // R0 ⋈ R1: reference to R2 is not touched by this join — stays a regular join.
        let mut edges = Vec::new();
        let r01 = combine_pair(
            &combiner,
            &leaf_stats(0, 10.0),
            &leaf_stats(1, 10.0),
            &mut edges,
        )
        .expect("adjacent");
        assert_eq!(r01.join.as_ref().unwrap().op, JoinOp::Inner);
        let r01_stats = r01.stats();
        // ({R0,R1}) with R2: the only valid orientation places R2 (the referenced relation) on
        // the left and turns the operator into a dependent join.
        let mut edges2 = Vec::new();
        let combined = combine_pair(&combiner, &r01_stats, &leaf_stats(2, 10.0), &mut edges2)
            .expect("adjacent");
        let join = combined.join.unwrap();
        assert_eq!(join.op, JoinOp::DepJoin);
        assert_eq!(join.left, ns(&[2]));
        assert_eq!(join.right, ns(&[0, 1]));
    }

    #[test]
    fn tes_enforcement_rejects_incomplete_pairs() {
        // Edge (0,1) carries an antijoin whose TES additionally requires R2 on the left.
        let mut gb = Hypergraph::builder(3);
        gb.add_simple_edge(0, 1);
        gb.add_simple_edge(0, 2);
        let g = gb.build();
        let mut cb = Catalog::builder(3);
        cb.annotate_edge(
            0,
            EdgeAnnotation::with_op(0.5, JoinOp::LeftAnti).with_tes(ns(&[0, 2]), ns(&[1])),
        );
        cb.annotate_edge(1, EdgeAnnotation::inner(0.5));
        let c = cb.build();
        let model = CoutCost;

        let tes_combiner = JoinCombiner::new(&g, &c, &model).with_tes_enforcement(true);
        // {R0} vs {R1}: TES {0,2} not contained in the union → rejected.
        let mut edges = Vec::new();
        assert!(combine_pair(
            &tes_combiner,
            &leaf_stats(0, 100.0),
            &leaf_stats(1, 100.0),
            &mut edges
        )
        .is_none());
        // {R0,R2} vs {R1}: satisfied.
        let r02 = SubPlanStats {
            set: ns(&[0, 2]),
            cardinality: 5000.0,
            cost: 5000.0,
        };
        let combined = combine_pair(&tes_combiner, &r02, &leaf_stats(1, 100.0), &mut edges)
            .expect("TES satisfied");
        assert_eq!(combined.join.unwrap().op, JoinOp::LeftAnti);

        // Without enforcement the incomplete pair is accepted (this is exactly the extra work
        // the generate-and-test variant wastes).
        let plain = JoinCombiner::new(&g, &c, &model);
        assert!(combine_pair(
            &plain,
            &leaf_stats(0, 100.0),
            &leaf_stats(1, 100.0),
            &mut edges
        )
        .is_some());
    }

    #[test]
    fn counting_handler_tracks_connectivity_and_pairs() {
        let mut h = CountingHandler::new();
        h.init_leaf(0);
        h.init_leaf(1);
        h.init_leaf(2);
        assert!(h.contains(ns(&[1])));
        assert!(!h.contains(ns(&[0, 1])));
        let _ = h.emit_ccp(ns(&[1]), ns(&[0]));
        assert!(h.contains(ns(&[0, 1])));
        let _ = h.emit_ccp(ns(&[0, 1]), ns(&[2]));
        assert_eq!(h.ccp_count(), 2);
        let canon = h.canonical_pairs();
        assert_eq!(canon, vec![(ns(&[0]), ns(&[1])), (ns(&[0, 1]), ns(&[2]))]);
    }

    #[test]
    fn budgeted_handler_aborts_strictly_beyond_the_budget() {
        let mut h = BudgetedHandler::new(CountingHandler::<1>::new(), 2);
        for r in 0..4 {
            h.init_leaf(r);
        }
        assert_eq!(h.budget(), 2);
        // Pairs 1 and 2 are within the budget and forwarded to the wrapped handler.
        assert_eq!(h.emit_ccp(ns(&[0]), ns(&[1])), EmitSignal::Continue);
        assert_eq!(h.emit_ccp(ns(&[0, 1]), ns(&[2])), EmitSignal::Continue);
        assert!(!h.aborted(), "budget == emitted pairs must not abort");
        assert!(h.contains(ns(&[0, 1, 2])));
        // The budget + 1-th pair aborts and is NOT forwarded.
        assert_eq!(h.emit_ccp(ns(&[0, 1, 2]), ns(&[3])), EmitSignal::Abort);
        assert!(h.aborted());
        assert_eq!(h.ccp_count(), 2);
        assert!(!h.contains(ns(&[0, 1, 2, 3])));
        assert_eq!(h.inner().pairs().len(), 2);
        assert_eq!(h.into_inner().ccp_count(), 2);
    }

    #[test]
    fn zero_budget_aborts_on_the_first_pair() {
        let mut h = BudgetedHandler::new(CountingHandler::<1>::new(), 0);
        h.init_leaf(0);
        h.init_leaf(1);
        assert_eq!(h.emit_ccp(ns(&[0]), ns(&[1])), EmitSignal::Abort);
        assert!(h.aborted());
        assert_eq!(h.ccp_count(), 0);
    }

    #[test]
    fn expired_deadline_aborts_the_very_first_pair() {
        let mut h = BudgetedHandler::new(CountingHandler::<1>::new(), usize::MAX)
            .with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
        h.init_leaf(0);
        h.init_leaf(1);
        // ccp_count == 0 is a check point, so the expired deadline fires before any pair.
        assert_eq!(h.emit_ccp(ns(&[0]), ns(&[1])), EmitSignal::Abort);
        assert!(h.aborted());
        assert!(h.deadline_exceeded());
        assert_eq!(h.ccp_count(), 0);
    }

    #[test]
    fn generous_deadline_does_not_interfere_with_the_pair_budget() {
        let far = std::time::Instant::now() + std::time::Duration::from_secs(3600);
        let mut h = BudgetedHandler::new(CountingHandler::<1>::new(), 1).with_deadline(far);
        for r in 0..3 {
            h.init_leaf(r);
        }
        assert_eq!(h.emit_ccp(ns(&[0]), ns(&[1])), EmitSignal::Continue);
        assert_eq!(h.emit_ccp(ns(&[0, 1]), ns(&[2])), EmitSignal::Abort);
        assert!(h.aborted());
        assert!(!h.deadline_exceeded(), "the pair budget aborted, not time");
    }

    /// Exhaustive little DP over `chain3` through the cost-based handler.
    fn solve_chain3(graph: &Hypergraph, catalog: &Catalog) -> DpTable {
        let combiner = JoinCombiner::new(graph, catalog, &CoutCost);
        let mut h = CostBasedHandler::new(combiner);
        for r in 0..3 {
            h.init_leaf(r);
        }
        let _ = h.emit_ccp(ns(&[0]), ns(&[1]));
        let _ = h.emit_ccp(ns(&[1]), ns(&[2]));
        let _ = h.emit_ccp(ns(&[0, 1]), ns(&[2]));
        let _ = h.emit_ccp(ns(&[0]), ns(&[1, 2]));
        h.into_table()
    }

    #[test]
    fn recost_under_unchanged_statistics_is_the_identity() {
        let (g, c) = chain3();
        let table = solve_chain3(&g, &c);
        let recosted = recost_table(&table, &g, &c, &CoutCost).expect("structure fits");
        assert_eq!(recosted.len(), table.len());
        for class in table.classes() {
            let again = recosted.get(class.set).expect("class survives");
            assert_eq!(
                again.cost, class.cost,
                "bit-identical cost for {:?}",
                class.set
            );
            assert_eq!(again.cardinality, class.cardinality);
            assert_eq!(
                again.best_join.map(|j| (j.left, j.right, j.op)),
                class.best_join.map(|j| (j.left, j.right, j.op)),
                "join structure is preserved verbatim"
            );
        }
        assert_eq!(
            recosted.reconstruct(g.all_nodes()),
            table.reconstruct(g.all_nodes())
        );
    }

    #[test]
    fn recost_applies_drifted_statistics_bottom_up() {
        let (g, c) = chain3();
        let table = solve_chain3(&g, &c);
        // Drift: the middle relation shrinks 10x, edge 0 becomes more selective.
        let mut cb = Catalog::builder(3);
        cb.set_cardinality(0, 10.0)
            .set_cardinality(1, 100.0)
            .set_cardinality(2, 10.0)
            .annotate_edge(0, EdgeAnnotation::inner(0.001))
            .annotate_edge(1, EdgeAnnotation::inner(0.01));
        let drifted = cb.build();
        assert_ne!(c.stats_epoch(), drifted.stats_epoch());
        let recosted = recost_table(&table, &g, &drifted, &CoutCost).expect("same shape");
        // The re-costed classes carry exactly the costs a from-scratch DP over the same join
        // order computes: rebuild the chain bottom-up by hand through the combiner.
        let fresh = solve_chain3(&g, &drifted);
        for class in recosted.classes() {
            let reference = fresh.get(class.set).expect("same sets");
            if class.best_join.map(|j| (j.left, j.right))
                == reference.best_join.map(|j| (j.left, j.right))
            {
                assert_eq!(
                    class.cost, reference.cost,
                    "bit-identical for {:?}",
                    class.set
                );
                assert_eq!(class.cardinality, reference.cardinality);
            }
        }
        // Leaves picked up the new cardinalities.
        assert_eq!(recosted.get(ns(&[1])).unwrap().cardinality, 100.0);
    }

    #[test]
    fn recost_rejects_tables_that_do_not_fit_the_graph() {
        let (g, c) = chain3();
        let table = solve_chain3(&g, &c);
        // A graph missing the 1-2 edge: the stored joins are no longer connected.
        let mut b = Hypergraph::builder(3);
        b.add_simple_edge(0, 1);
        let sparse = b.build();
        let sparse_catalog = Catalog::uniform(3, 100.0, 1, 0.5);
        assert!(recost_table(&table, &sparse, &sparse_catalog, &CoutCost).is_none());
        // A catalog for a different relation count is rejected outright.
        let wrong = Catalog::uniform(4, 100.0, 2, 0.5);
        assert!(recost_table(&table, &g, &wrong, &CoutCost).is_none());
    }

    #[test]
    fn plan_tables_round_trip_and_recost() {
        let (g, c) = chain3();
        let full = solve_chain3(&g, &c);
        let plan = full.reconstruct(g.all_nodes()).expect("complete plan");
        // The plan-derived table holds exactly the subtrees of the plan (2n − 1 classes) and
        // reconstructs the identical tree.
        let compact = DpTable::<1>::from_plan(&plan);
        assert_eq!(compact.len(), 2 * 3 - 1);
        assert_eq!(compact.reconstruct(g.all_nodes()), Some(plan.clone()));
        // Re-costing the compact table under the same stats reproduces the plan bit-for-bit.
        let recosted = recost_table(&compact, &g, &c, &CoutCost).expect("fits");
        assert_eq!(recosted.reconstruct(g.all_nodes()), Some(plan));
    }
}
