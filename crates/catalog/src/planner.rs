//! Shared dynamic-programming machinery: the DP table, the csg-cmp-pair handler interface and
//! the cost-based plan construction that implements the paper's `EmitCsgCmp`.
//!
//! Every enumeration algorithm in this workspace (DPhyp, DPccp, DPsize, DPsub, the TES
//! generate-and-test variant) reports the csg-cmp-pairs it discovers through the [`CcpHandler`]
//! trait. The [`CostBasedHandler`] reacts by building and costing the candidate plans and
//! memoizing the best plan per relation set in a [`DpTable`]; the [`CountingHandler`] merely
//! counts pairs, which is how the tests compare an algorithm's emissions against the brute-force
//! oracle of `qo-hypergraph`.

use crate::cardinality::CardinalityEstimator;
use crate::catalog::Catalog;
use crate::cost::{CostModel, SubPlanStats};
use qo_bitset::{NodeId, NodeSet};
use qo_hypergraph::{EdgeId, Hypergraph};
use qo_plan::{JoinOp, PlanNode};
use std::collections::{HashMap, HashSet};

/// The best plan known for one set of relations (a "plan class").
#[derive(Clone, Debug, PartialEq)]
pub struct PlanClass {
    /// The relations covered by this class.
    pub set: NodeSet,
    /// Estimated output cardinality of the class.
    pub cardinality: f64,
    /// Cost of the best plan found so far.
    pub cost: f64,
    /// How the best plan combines its inputs; `None` for base relations.
    pub best_join: Option<BestJoin>,
}

/// The root join of the best plan of a [`PlanClass`].
#[derive(Clone, Debug, PartialEq)]
pub struct BestJoin {
    /// Relations of the left input class.
    pub left: NodeSet,
    /// Relations of the right input class.
    pub right: NodeSet,
    /// Operator applied at the root (already turned into its dependent variant if required).
    pub op: JoinOp,
    /// Hyperedge ids whose predicates are evaluated at this join.
    pub predicates: Vec<EdgeId>,
}

impl PlanClass {
    fn stats(&self) -> SubPlanStats {
        SubPlanStats {
            set: self.set,
            cardinality: self.cardinality,
            cost: self.cost,
        }
    }
}

/// The dynamic programming table: best plan per connected set of relations.
#[derive(Clone, Debug, Default)]
pub struct DpTable {
    classes: HashMap<NodeSet, PlanClass>,
}

impl DpTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        DpTable {
            classes: HashMap::new(),
        }
    }

    /// Number of memoized plan classes (connected sets discovered so far).
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Does the table contain a plan for `set`?
    pub fn contains(&self, set: NodeSet) -> bool {
        self.classes.contains_key(&set)
    }

    /// The plan class for `set`, if any.
    pub fn get(&self, set: NodeSet) -> Option<&PlanClass> {
        self.classes.get(&set)
    }

    /// Iterates over all memoized classes (no particular order).
    pub fn classes(&self) -> impl Iterator<Item = &PlanClass> {
        self.classes.values()
    }

    /// Inserts the access plan for a single relation.
    pub fn insert_leaf(&mut self, relation: NodeId, cardinality: f64) {
        let set = NodeSet::single(relation);
        self.classes.insert(
            set,
            PlanClass {
                set,
                cardinality,
                cost: 0.0,
                best_join: None,
            },
        );
    }

    /// Offers a candidate plan class; it replaces the memoized one if it is cheaper (or if the
    /// set was unknown). Returns `true` if the candidate was accepted.
    pub fn offer(&mut self, candidate: PlanClass) -> bool {
        match self.classes.get_mut(&candidate.set) {
            Some(existing) => {
                if candidate.cost < existing.cost {
                    *existing = candidate;
                    true
                } else {
                    false
                }
            }
            None => {
                self.classes.insert(candidate.set, candidate);
                true
            }
        }
    }

    /// Reconstructs the full plan tree for `set` from the memoized join decisions.
    pub fn reconstruct(&self, set: NodeSet) -> Option<PlanNode> {
        let class = self.classes.get(&set)?;
        match &class.best_join {
            None => {
                let relation = set.min_node().expect("leaf class with empty set");
                Some(PlanNode::scan(relation, class.cardinality))
            }
            Some(join) => {
                let left = self.reconstruct(join.left)?;
                let right = self.reconstruct(join.right)?;
                Some(PlanNode::join(
                    join.op,
                    left,
                    right,
                    join.predicates.clone(),
                    class.cardinality,
                    class.cost,
                ))
            }
        }
    }
}

/// Interface through which enumeration algorithms report their progress.
///
/// The contract mirrors the paper's use of the DP table:
/// * [`CcpHandler::init_leaf`] is called once per relation before enumeration starts,
/// * [`CcpHandler::contains`] answers "does the DP table have an entry for this set", which the
///   algorithms use as their connectivity test,
/// * [`CcpHandler::emit_ccp`] is called exactly once per canonical csg-cmp-pair `(S1, S2)` and
///   must register `S1 ∪ S2` so that later `contains` calls see it.
pub trait CcpHandler {
    /// Registers the access plan for a single relation.
    fn init_leaf(&mut self, relation: NodeId);

    /// Does a plan class for `set` exist yet?
    fn contains(&self, set: NodeSet) -> bool;

    /// Processes the csg-cmp-pair `(s1, s2)`.
    fn emit_ccp(&mut self, s1: NodeSet, s2: NodeSet);

    /// Number of csg-cmp-pairs processed so far.
    fn ccp_count(&self) -> usize;
}

/// Combines two plan classes into a candidate class: finds the connecting predicates, recovers
/// the operator from the hyperedge annotations, decides the operator orientation and the
/// dependent-join question (Sec. 5.6), estimates cardinality and cost.
pub struct JoinCombiner<'a> {
    graph: &'a Hypergraph,
    catalog: &'a Catalog,
    cost_model: &'a dyn CostModel,
    /// When set, every connecting edge's TES must be contained in `S1 ∪ S2` (with the left/right
    /// split respected). This is the generate-and-test approach the paper compares against in
    /// Fig. 8a; the hypergraph-based approach encodes the same constraints as hyperedges and
    /// needs no test.
    enforce_tes: bool,
}

impl<'a> JoinCombiner<'a> {
    /// Creates a combiner.
    pub fn new(graph: &'a Hypergraph, catalog: &'a Catalog, cost_model: &'a dyn CostModel) -> Self {
        JoinCombiner {
            graph,
            catalog,
            cost_model,
            enforce_tes: false,
        }
    }

    /// Enables the TES generate-and-test check (see [`JoinCombiner`] docs).
    pub fn with_tes_enforcement(mut self, enforce: bool) -> Self {
        self.enforce_tes = enforce;
        self
    }

    /// The hypergraph joined over.
    pub fn graph(&self) -> &'a Hypergraph {
        self.graph
    }

    /// The catalog consulted for statistics.
    pub fn catalog(&self) -> &'a Catalog {
        self.catalog
    }

    /// Combines `a` and `b` into the best candidate plan class for `a.set ∪ b.set`, or `None`
    /// if no valid join exists (no connecting edge, TES violated, unresolved lateral
    /// references, …).
    pub fn combine(&self, a: &PlanClass, b: &PlanClass) -> Option<PlanClass> {
        debug_assert!(a.set.is_disjoint(b.set));
        let edges = self.graph.connecting_edges(a.set, b.set);
        if edges.is_empty() {
            return None;
        }
        let union = a.set | b.set;
        let selectivity = self.catalog.selectivity_product(&edges);

        // Recover the operator: prefer the (unique) non-inner operator among the connecting
        // edges; plain predicates keep the inner join.
        let mut op = JoinOp::Inner;
        let mut defining_edge: Option<EdgeId> = None;
        for &e in &edges {
            let ann = self.catalog.edge_annotation(e);
            if !ann.op.is_inner() {
                debug_assert!(
                    op.is_inner() || op == ann.op,
                    "conflicting non-inner operators on one csg-cmp-pair: {op:?} vs {:?}",
                    ann.op
                );
                op = ann.op;
                defining_edge = Some(e);
            } else if defining_edge.is_none() {
                defining_edge = Some(e);
            }
        }

        if self.enforce_tes && !self.tes_satisfied(&edges, a.set, b.set) {
            return None;
        }

        // Candidate orientations. Non-commutative operators are oriented by their defining
        // hyperedge: the edge's left hypernode belongs to the operator's left input (Sec. 5.4).
        let mut orientations: Vec<(&PlanClass, &PlanClass)> = Vec::with_capacity(2);
        if op.is_commutative() {
            orientations.push((a, b));
            orientations.push((b, a));
        } else {
            let e = self.graph.edge(defining_edge.expect("non-empty edge list"));
            if e.left().is_subset_of(a.set) && e.right().is_subset_of(b.set) {
                orientations.push((a, b));
            } else {
                orientations.push((b, a));
            }
        }

        let mut best: Option<PlanClass> = None;
        for (outer, inner) in orientations {
            if self.enforce_tes && !self.tes_orientation_ok(&edges, outer.set, inner.set) {
                continue;
            }
            // Dependent-join decision (Sec. 5.6): FT(P2) ∩ S1 ≠ ∅ turns the operator into its
            // dependent counterpart; the lateral references must be fully available on the
            // outer side.
            let ft_inner = self.catalog.free_tables(inner.set);
            let ft_outer = self.catalog.free_tables(outer.set);
            if ft_outer.intersects(inner.set) {
                // The outer side would depend on the inner side — invalid for left-handed
                // operators; the swapped orientation (if allowed) handles it.
                continue;
            }
            let actual_op = if ft_inner.intersects(outer.set) {
                if !ft_inner.is_subset_of(outer.set) {
                    // Some lateral references are not yet available; this pair cannot be joined
                    // here.
                    continue;
                }
                op.dependent_counterpart()
            } else {
                op
            };
            let cardinality = CardinalityEstimator::join_with_selectivity(
                actual_op,
                outer.cardinality,
                inner.cardinality,
                selectivity,
            );
            let cost =
                self.cost_model
                    .join_cost(actual_op, &outer.stats(), &inner.stats(), cardinality);
            let candidate = PlanClass {
                set: union,
                cardinality,
                cost,
                best_join: Some(BestJoin {
                    left: outer.set,
                    right: inner.set,
                    op: actual_op,
                    predicates: edges.clone(),
                }),
            };
            match &best {
                Some(b) if b.cost <= candidate.cost => {}
                _ => best = Some(candidate),
            }
        }
        best
    }

    fn tes_satisfied(&self, edges: &[EdgeId], s1: NodeSet, s2: NodeSet) -> bool {
        let union = s1 | s2;
        edges.iter().all(|&e| {
            let tes = self.catalog.edge_annotation(e).tes();
            tes.is_subset_of(union)
        })
    }

    fn tes_orientation_ok(&self, edges: &[EdgeId], outer: NodeSet, inner: NodeSet) -> bool {
        edges.iter().all(|&e| {
            let ann = self.catalog.edge_annotation(e);
            if ann.op.is_inner() || ann.op.is_commutative() {
                return true;
            }
            (ann.tes_left.is_empty() || ann.tes_left.is_subset_of(outer))
                && (ann.tes_right.is_empty() || ann.tes_right.is_subset_of(inner))
        })
    }
}

/// The standard cost-based handler: reacts to each csg-cmp-pair exactly like the paper's
/// `EmitCsgCmp`, i.e. builds the candidate plan(s) for `S1 ∪ S2` and memoizes the cheapest.
pub struct CostBasedHandler<'a> {
    combiner: JoinCombiner<'a>,
    table: DpTable,
    ccps: usize,
}

impl<'a> CostBasedHandler<'a> {
    /// Creates a handler over an empty DP table.
    pub fn new(combiner: JoinCombiner<'a>) -> Self {
        CostBasedHandler {
            combiner,
            table: DpTable::new(),
            ccps: 0,
        }
    }

    /// The underlying DP table.
    pub fn table(&self) -> &DpTable {
        &self.table
    }

    /// Consumes the handler and returns the DP table.
    pub fn into_table(self) -> DpTable {
        self.table
    }

    /// The combiner used by this handler.
    pub fn combiner(&self) -> &JoinCombiner<'a> {
        &self.combiner
    }
}

impl CcpHandler for CostBasedHandler<'_> {
    fn init_leaf(&mut self, relation: NodeId) {
        let card = self.combiner.catalog().cardinality(relation);
        self.table.insert_leaf(relation, card);
    }

    fn contains(&self, set: NodeSet) -> bool {
        self.table.contains(set)
    }

    fn emit_ccp(&mut self, s1: NodeSet, s2: NodeSet) {
        self.ccps += 1;
        let (Some(a), Some(b)) = (self.table.get(s1), self.table.get(s2)) else {
            debug_assert!(false, "emit_ccp called before both classes exist: {s1:?}, {s2:?}");
            return;
        };
        if let Some(candidate) = self.combiner.combine(a, b) {
            self.table.offer(candidate);
        }
    }

    fn ccp_count(&self) -> usize {
        self.ccps
    }
}

/// A handler that only records which csg-cmp-pairs were emitted. Used to validate enumeration
/// algorithms against the brute-force oracle and to measure search-space sizes without paying
/// for plan construction.
#[derive(Clone, Debug, Default)]
pub struct CountingHandler {
    connected: HashSet<NodeSet>,
    pairs: Vec<(NodeSet, NodeSet)>,
}

impl CountingHandler {
    /// Creates an empty counting handler.
    pub fn new() -> Self {
        Self::default()
    }

    /// All emitted pairs in emission order.
    pub fn pairs(&self) -> &[(NodeSet, NodeSet)] {
        &self.pairs
    }

    /// The emitted pairs in canonical form (`min(S1) ≺ min(S2)`), sorted — directly comparable
    /// with `qo_hypergraph::enumerate_ccps`.
    pub fn canonical_pairs(&self) -> Vec<(NodeSet, NodeSet)> {
        let mut v: Vec<_> = self
            .pairs
            .iter()
            .map(|&(a, b)| {
                if a.min_node() <= b.min_node() {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        v.sort();
        v
    }
}

impl CcpHandler for CountingHandler {
    fn init_leaf(&mut self, relation: NodeId) {
        self.connected.insert(NodeSet::single(relation));
    }

    fn contains(&self, set: NodeSet) -> bool {
        self.connected.contains(&set)
    }

    fn emit_ccp(&mut self, s1: NodeSet, s2: NodeSet) {
        self.connected.insert(s1 | s2);
        self.pairs.push((s1, s2));
    }

    fn ccp_count(&self) -> usize {
        self.pairs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::EdgeAnnotation;
    use crate::cost::{CoutCost, MixedCost};
    use qo_plan::PlanShape;

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    /// Chain R0 - R1 - R2 with distinctive cardinalities.
    fn chain3() -> (Hypergraph, Catalog) {
        let mut b = Hypergraph::builder(3);
        b.add_simple_edge(0, 1);
        b.add_simple_edge(1, 2);
        let g = b.build();
        let mut cb = Catalog::builder(3);
        cb.set_cardinality(0, 10.0)
            .set_cardinality(1, 1000.0)
            .set_cardinality(2, 10.0)
            .annotate_edge(0, EdgeAnnotation::inner(0.01))
            .annotate_edge(1, EdgeAnnotation::inner(0.01));
        (g, cb.build())
    }

    #[test]
    fn dp_table_leaf_and_offer_semantics() {
        let mut t = DpTable::new();
        assert!(t.is_empty());
        t.insert_leaf(0, 100.0);
        t.insert_leaf(1, 50.0);
        assert_eq!(t.len(), 2);
        assert!(t.contains(NodeSet::single(0)));
        assert!(!t.contains(ns(&[0, 1])));

        let expensive = PlanClass {
            set: ns(&[0, 1]),
            cardinality: 10.0,
            cost: 100.0,
            best_join: Some(BestJoin {
                left: ns(&[0]),
                right: ns(&[1]),
                op: JoinOp::Inner,
                predicates: vec![0],
            }),
        };
        assert!(t.offer(expensive.clone()));
        // A cheaper plan replaces it.
        let cheap = PlanClass {
            cost: 10.0,
            ..expensive.clone()
        };
        assert!(t.offer(cheap));
        assert_eq!(t.get(ns(&[0, 1])).unwrap().cost, 10.0);
        // An equally expensive plan does not.
        let equal = PlanClass {
            cost: 10.0,
            cardinality: 99.0,
            ..expensive
        };
        assert!(!t.offer(equal));
        assert_eq!(t.get(ns(&[0, 1])).unwrap().cardinality, 10.0);
    }

    #[test]
    fn reconstruct_builds_the_recorded_tree() {
        let (g, c) = chain3();
        let model = CoutCost;
        let combiner = JoinCombiner::new(&g, &c, &model);
        let mut h = CostBasedHandler::new(combiner);
        for r in 0..3 {
            h.init_leaf(r);
        }
        h.emit_ccp(ns(&[0]), ns(&[1]));
        h.emit_ccp(ns(&[1]), ns(&[2]));
        h.emit_ccp(ns(&[0, 1]), ns(&[2]));
        h.emit_ccp(ns(&[0]), ns(&[1, 2]));
        assert_eq!(h.ccp_count(), 4);
        let table = h.into_table();
        let plan = table.reconstruct(ns(&[0, 1, 2])).expect("full plan");
        assert_eq!(plan.relations(), ns(&[0, 1, 2]));
        assert_eq!(plan.join_count(), 2);
        assert_eq!(plan.applied_predicates(), vec![0, 1]);
        // With C_out both bushy arrangements tie; the plan must at least be a valid tree shape.
        assert!(matches!(
            plan.shape(),
            PlanShape::LeftDeep | PlanShape::RightDeep | PlanShape::ZigZag | PlanShape::Linear
        ));
        // Missing set → None.
        assert!(table.reconstruct(ns(&[0, 2])).is_none());
    }

    #[test]
    fn combiner_requires_a_connecting_edge() {
        let (g, c) = chain3();
        let model = CoutCost;
        let combiner = JoinCombiner::new(&g, &c, &model);
        let a = PlanClass {
            set: ns(&[0]),
            cardinality: 10.0,
            cost: 0.0,
            best_join: None,
        };
        let b = PlanClass {
            set: ns(&[2]),
            cardinality: 10.0,
            cost: 0.0,
            best_join: None,
        };
        assert!(combiner.combine(&a, &b).is_none(), "R0 and R2 are not adjacent");
    }

    #[test]
    fn combiner_inner_join_cost_and_cardinality() {
        let (g, c) = chain3();
        let model = CoutCost;
        let combiner = JoinCombiner::new(&g, &c, &model);
        let a = PlanClass {
            set: ns(&[0]),
            cardinality: 10.0,
            cost: 0.0,
            best_join: None,
        };
        let b = PlanClass {
            set: ns(&[1]),
            cardinality: 1000.0,
            cost: 0.0,
            best_join: None,
        };
        let combined = combiner.combine(&a, &b).expect("adjacent");
        // 10 * 1000 * 0.01 = 100
        assert!((combined.cardinality - 100.0).abs() < 1e-9);
        assert!((combined.cost - 100.0).abs() < 1e-9);
        assert_eq!(combined.set, ns(&[0, 1]));
        let join = combined.best_join.unwrap();
        assert_eq!(join.op, JoinOp::Inner);
        assert_eq!(join.predicates, vec![0]);
    }

    #[test]
    fn combiner_orients_asymmetric_cost_models() {
        // With MixedCost (build on the right input), joining big ⋈ small must place the small
        // side on the right.
        let (g, c) = chain3();
        let model = MixedCost;
        let combiner = JoinCombiner::new(&g, &c, &model);
        let small = PlanClass {
            set: ns(&[0]),
            cardinality: 10.0,
            cost: 0.0,
            best_join: None,
        };
        let big = PlanClass {
            set: ns(&[1]),
            cardinality: 1000.0,
            cost: 0.0,
            best_join: None,
        };
        let combined = combiner.combine(&small, &big).unwrap();
        let join = combined.best_join.unwrap();
        assert_eq!(join.left, ns(&[1]), "large input should be the probe side");
        assert_eq!(join.right, ns(&[0]));
    }

    #[test]
    fn combiner_orients_non_commutative_ops_by_edge_sides() {
        // R0 ⟕ R1: edge left = {0}, right = {1}. Even when the classes are passed in swapped
        // order the plan must keep R0 on the left.
        let mut gb = Hypergraph::builder(2);
        gb.add_simple_edge(0, 1);
        let g = gb.build();
        let mut cb = Catalog::builder(2);
        cb.set_cardinality(0, 10.0)
            .set_cardinality(1, 100.0)
            .annotate_edge(0, EdgeAnnotation::with_op(0.5, JoinOp::LeftOuter));
        let c = cb.build();
        let model = CoutCost;
        let combiner = JoinCombiner::new(&g, &c, &model);
        let r0 = PlanClass {
            set: ns(&[0]),
            cardinality: 10.0,
            cost: 0.0,
            best_join: None,
        };
        let r1 = PlanClass {
            set: ns(&[1]),
            cardinality: 100.0,
            cost: 0.0,
            best_join: None,
        };
        for (x, y) in [(&r0, &r1), (&r1, &r0)] {
            let combined = combiner.combine(x, y).unwrap();
            let join = combined.best_join.unwrap();
            assert_eq!(join.op, JoinOp::LeftOuter);
            assert_eq!(join.left, ns(&[0]));
            assert_eq!(join.right, ns(&[1]));
        }
    }

    #[test]
    fn combiner_turns_lateral_references_into_dependent_joins() {
        // R1 is a table function referencing R0 (e.g. R0 CROSS APPLY f(R0.x)).
        let mut gb = Hypergraph::builder(2);
        gb.add_simple_edge(0, 1);
        let g = gb.build();
        let mut cb = Catalog::builder(2);
        cb.set_cardinality(0, 100.0)
            .set_cardinality(1, 5.0)
            .set_lateral_refs(1, ns(&[0]))
            .annotate_edge(0, EdgeAnnotation::inner(1.0));
        let c = cb.build();
        let model = CoutCost;
        let combiner = JoinCombiner::new(&g, &c, &model);
        let r0 = PlanClass {
            set: ns(&[0]),
            cardinality: 100.0,
            cost: 0.0,
            best_join: None,
        };
        let r1 = PlanClass {
            set: ns(&[1]),
            cardinality: 5.0,
            cost: 0.0,
            best_join: None,
        };
        let combined = combiner.combine(&r0, &r1).unwrap();
        let join = combined.best_join.unwrap();
        assert_eq!(join.op, JoinOp::DepJoin, "lateral reference must force a d-join");
        assert_eq!(join.left, ns(&[0]), "the referenced relation must be on the left");
        // Same result regardless of argument order.
        let combined2 = combiner.combine(&r1, &r0).unwrap();
        assert_eq!(combined2.best_join.unwrap().op, JoinOp::DepJoin);
    }

    #[test]
    fn lateral_refs_resolve_at_the_join_that_provides_the_referenced_relation() {
        // R1 references R2. Joining R0 with R1 is still allowed (the reference floats up and is
        // bound higher in the plan), but the join that finally brings R2 in must be a dependent
        // join with R2 on the left.
        let mut gb = Hypergraph::builder(3);
        gb.add_simple_edge(0, 1);
        gb.add_simple_edge(1, 2);
        let g = gb.build();
        let mut cb = Catalog::builder(3);
        cb.set_cardinality(0, 10.0)
            .set_cardinality(1, 10.0)
            .set_cardinality(2, 10.0)
            .set_lateral_refs(1, ns(&[2]));
        let c = cb.build();
        let model = CoutCost;
        let combiner = JoinCombiner::new(&g, &c, &model);
        let leaf = |r: usize| PlanClass {
            set: NodeSet::single(r),
            cardinality: 10.0,
            cost: 0.0,
            best_join: None,
        };
        // R0 ⋈ R1: reference to R2 is not touched by this join — stays a regular join.
        let r01 = combiner.combine(&leaf(0), &leaf(1)).expect("adjacent");
        assert_eq!(r01.best_join.as_ref().unwrap().op, JoinOp::Inner);
        // ({R0,R1}) with R2: the only valid orientation places R2 (the referenced relation) on
        // the left and turns the operator into a dependent join.
        let combined = combiner.combine(&r01, &leaf(2)).expect("adjacent");
        let join = combined.best_join.unwrap();
        assert_eq!(join.op, JoinOp::DepJoin);
        assert_eq!(join.left, ns(&[2]));
        assert_eq!(join.right, ns(&[0, 1]));
    }

    #[test]
    fn tes_enforcement_rejects_incomplete_pairs() {
        // Edge (0,1) carries an antijoin whose TES additionally requires R2 on the left.
        let mut gb = Hypergraph::builder(3);
        gb.add_simple_edge(0, 1);
        gb.add_simple_edge(0, 2);
        let g = gb.build();
        let mut cb = Catalog::builder(3);
        cb.annotate_edge(
            0,
            EdgeAnnotation::with_op(0.5, JoinOp::LeftAnti).with_tes(ns(&[0, 2]), ns(&[1])),
        );
        cb.annotate_edge(1, EdgeAnnotation::inner(0.5));
        let c = cb.build();
        let model = CoutCost;
        let leaf = |r: usize| PlanClass {
            set: NodeSet::single(r),
            cardinality: 100.0,
            cost: 0.0,
            best_join: None,
        };

        let tes_combiner = JoinCombiner::new(&g, &c, &model).with_tes_enforcement(true);
        // {R0} vs {R1}: TES {0,2} not contained in the union → rejected.
        assert!(tes_combiner.combine(&leaf(0), &leaf(1)).is_none());
        // {R0,R2} vs {R1}: satisfied.
        let r02 = PlanClass {
            set: ns(&[0, 2]),
            cardinality: 5000.0,
            cost: 5000.0,
            best_join: Some(BestJoin {
                left: ns(&[0]),
                right: ns(&[2]),
                op: JoinOp::Inner,
                predicates: vec![1],
            }),
        };
        let combined = tes_combiner.combine(&r02, &leaf(1)).expect("TES satisfied");
        assert_eq!(combined.best_join.unwrap().op, JoinOp::LeftAnti);

        // Without enforcement the incomplete pair is accepted (this is exactly the extra work
        // the generate-and-test variant wastes).
        let plain = JoinCombiner::new(&g, &c, &model);
        assert!(plain.combine(&leaf(0), &leaf(1)).is_some());
    }

    #[test]
    fn counting_handler_tracks_connectivity_and_pairs() {
        let mut h = CountingHandler::new();
        h.init_leaf(0);
        h.init_leaf(1);
        h.init_leaf(2);
        assert!(h.contains(ns(&[1])));
        assert!(!h.contains(ns(&[0, 1])));
        h.emit_ccp(ns(&[1]), ns(&[0]));
        assert!(h.contains(ns(&[0, 1])));
        h.emit_ccp(ns(&[0, 1]), ns(&[2]));
        assert_eq!(h.ccp_count(), 2);
        let canon = h.canonical_pairs();
        assert_eq!(canon, vec![(ns(&[0]), ns(&[1])), (ns(&[0, 1]), ns(&[2]))]);
    }
}
