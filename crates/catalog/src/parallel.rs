//! Shared-state primitives for parallel plan enumeration: the sharded DP table, an
//! open-addressing membership set, and the shared abort/deadline state of a multi-threaded
//! cost pass.
//!
//! The memo's correctness argument — each class's best plan depends only on classes over
//! *strictly smaller* relation sets — is exactly the dependency structure a level-parallel
//! schedule must respect. [`ShardedDpTable`] partitions the plan classes over
//! [`SHARD_COUNT`] independently locked [`DpTable`] shards keyed by the *low* bits of
//! [`NodeSet::hash64`] (the slot maps inside each shard probe with the *high* bits, so shard
//! choice and in-shard probing stay independent). A level-synchronized pass then alternates
//! between a read phase — every worker holds read locks on all shards and looks up sealed
//! smaller-size classes — and an install phase in which each worker write-locks only the
//! shards it owns. Because a size-`s` class is created at exactly level `s` and each set hashes
//! to exactly one shard, shard ownership makes every install a conflict-free insert.

use crate::table::DpTable;
use qo_bitset::{NodeId, NodeSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{RwLock, RwLockReadGuard};
use std::time::Instant;

/// Number of shards of a [`ShardedDpTable`]. A fixed power of two independent of the thread
/// count: shard assignment (and therefore the install schedule) never depends on how many
/// workers run, which keeps the produced table identical at every parallelism level.
pub const SHARD_COUNT: usize = 64;

/// The shard a relation set lives in. Uses the *low* bits of [`NodeSet::hash64`]:
/// [`NodeSet::hash_index`] — the in-shard slot probe — consumes the high bits, and overlapping
/// the two would cluster each shard's keys into a narrow probe range.
#[inline]
pub fn shard_of<const W: usize>(set: NodeSet<W>) -> usize {
    (set.hash64() as usize) & (SHARD_COUNT - 1)
}

/// An open-addressing hash set of non-empty relation sets, probing exactly like the slot map of
/// [`DpTable`] (FxHash-style [`NodeSet::hash_index`], empty-set vacancy sentinel, linear
/// probing, growth at 3/4 load).
///
/// This is the membership state of the parallel enumeration's *structure pass*: it answers the
/// enumerator's `contains` queries — "was `S1 ∪ S2` registered by an earlier emission?" —
/// without carrying any plan or cost payload.
#[derive(Clone, Debug)]
pub struct NodeSetSet<const W: usize = 1> {
    keys: Vec<NodeSet<W>>,
    len: usize,
    bits: u32,
}

impl<const W: usize> Default for NodeSetSet<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const W: usize> NodeSetSet<W> {
    const INITIAL_BITS: u32 = 6; // 64 slots

    /// Creates an empty set.
    pub fn new() -> Self {
        NodeSetSet {
            keys: vec![NodeSet::EMPTY; 1 << Self::INITIAL_BITS],
            len: 0,
            bits: Self::INITIAL_BITS,
        }
    }

    /// Number of member sets.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is `set` a member? The empty set never is.
    #[inline]
    pub fn contains(&self, set: NodeSet<W>) -> bool {
        if set.is_empty() {
            return false;
        }
        let cap_mask = self.keys.len() - 1;
        let mut i = set.hash_index(self.bits);
        loop {
            let k = self.keys[i];
            if k == set {
                return true;
            }
            if k.is_empty() {
                return false;
            }
            i = (i + 1) & cap_mask;
        }
    }

    /// Inserts `set`; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics (in debug builds) when handed the empty set, which doubles as the vacancy
    /// sentinel and can never be a member.
    pub fn insert(&mut self, set: NodeSet<W>) -> bool {
        debug_assert!(!set.is_empty(), "the empty set is never a member");
        if (self.len + 1) * 4 > self.keys.len() * 3 {
            self.grow();
        }
        let cap_mask = self.keys.len() - 1;
        let mut i = set.hash_index(self.bits);
        loop {
            let k = self.keys[i];
            if k == set {
                return false;
            }
            if k.is_empty() {
                self.keys[i] = set;
                self.len += 1;
                return true;
            }
            i = (i + 1) & cap_mask;
        }
    }

    fn grow(&mut self) {
        let old = std::mem::take(&mut self.keys);
        self.bits += 1;
        let cap = 1 << self.bits;
        self.keys = vec![NodeSet::EMPTY; cap];
        let cap_mask = cap - 1;
        for k in old {
            if !k.is_empty() {
                let mut i = k.hash_index(self.bits);
                while !self.keys[i].is_empty() {
                    i = (i + 1) & cap_mask;
                }
                self.keys[i] = k;
            }
        }
    }
}

/// Shared abort state of a multi-threaded enumeration pass: an optional wall-clock deadline,
/// the sticky abort flag every worker polls, and an atomic tally of processed pairs.
///
/// The csg-cmp-pair *budget* itself is not enforced here: the parallel enumeration spends its
/// pair budget in the serial structure pass (through the ordinary
/// [`BudgetedHandler`](crate::BudgetedHandler)), so budget semantics — "budget == true pair
/// count completes, budget − 1 falls back" — are byte-for-byte those of the sequential tier at
/// any thread count. What remains thread-shared is the deadline and the abort signal.
#[derive(Debug)]
pub struct SharedBudget {
    deadline: Option<Instant>,
    pairs: AtomicUsize,
    aborted: AtomicBool,
    deadline_exceeded: AtomicBool,
}

impl SharedBudget {
    /// How many locally processed pairs pass between two wall-clock polls of one worker;
    /// mirrors [`BudgetedHandler::DEADLINE_CHECK_INTERVAL`](crate::BudgetedHandler).
    pub const DEADLINE_CHECK_INTERVAL: usize = 1024;

    /// Creates the shared state, optionally with a deadline.
    pub fn new(deadline: Option<Instant>) -> Self {
        SharedBudget {
            deadline,
            pairs: AtomicUsize::new(0),
            aborted: AtomicBool::new(false),
            deadline_exceeded: AtomicBool::new(false),
        }
    }

    /// Signals every worker to stop processing (sticky).
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
    }

    /// Has any worker aborted the pass?
    #[inline]
    pub fn aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// Did the abort come from the wall-clock deadline?
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline_exceeded.load(Ordering::Acquire)
    }

    /// Polls the deadline; when it has passed, flags the pass as aborted (and
    /// deadline-exceeded) and returns `true`. Returns `true` immediately if another worker
    /// already aborted.
    pub fn poll_deadline(&self) -> bool {
        if self.aborted() {
            return true;
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.deadline_exceeded.store(true, Ordering::Release);
                self.abort();
                true
            }
            _ => false,
        }
    }

    /// Adds a worker's locally counted pairs to the shared tally.
    pub fn add_pairs(&self, n: usize) {
        self.pairs.fetch_add(n, Ordering::Relaxed);
    }

    /// Total pairs processed across all workers so far.
    pub fn pairs(&self) -> usize {
        self.pairs.load(Ordering::Relaxed)
    }
}

/// A [`DpTable`] sharded over [`SHARD_COUNT`] per-shard `RwLock`s so that a level-synchronized
/// pass can read sealed smaller-size classes from all shards concurrently while each worker
/// installs new classes only into the shards it owns (see the module docs for the protocol).
#[derive(Debug)]
pub struct ShardedDpTable<const W: usize = 1> {
    shards: Vec<RwLock<DpTable<W>>>,
}

impl<const W: usize> Default for ShardedDpTable<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const W: usize> ShardedDpTable<W> {
    /// Creates an empty table of [`SHARD_COUNT`] shards.
    pub fn new() -> Self {
        ShardedDpTable {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(DpTable::new()))
                .collect(),
        }
    }

    /// The lock of shard `index` (for the install phase of a level pass).
    #[inline]
    pub fn shard(&self, index: usize) -> &RwLock<DpTable<W>> {
        &self.shards[index]
    }

    /// Seeds the access plan for a single relation into its shard.
    pub fn insert_leaf(&self, relation: NodeId, cardinality: f64) {
        let shard = shard_of(NodeSet::<W>::single(relation));
        self.shards[shard]
            .write()
            .expect("shard lock poisoned")
            .insert_leaf(relation, cardinality);
    }

    /// Total memoized classes across all shards (briefly read-locks each shard).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").len())
            .sum()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes read guards on every shard, yielding a coherent point-in-time view for the read
    /// phase of a level (no writer can interleave while the guards are held).
    pub fn read_all(&self) -> ShardReader<'_, W> {
        ShardReader {
            guards: self
                .shards
                .iter()
                .map(|s| s.read().expect("shard lock poisoned"))
                .collect(),
        }
    }

    /// Consumes the sharded table and merges every class into one plain [`DpTable`] (shard 0
    /// first; each set lives in exactly one shard, so every merge offer is a fresh insert).
    /// The merged table carries the identical classes, costs and join structures — only the
    /// arena insertion order differs, which nothing observes.
    pub fn into_merged(self) -> DpTable<W> {
        let mut merged = DpTable::new();
        for lock in self.shards {
            let shard = lock.into_inner().expect("shard lock poisoned");
            for class in shard.classes() {
                match class.best_join {
                    None => {
                        let relation = class.set.min_node().expect("leaf class with empty set");
                        merged.insert_leaf(relation, class.cardinality);
                    }
                    Some(join) => {
                        merged.offer(crate::table::Candidate {
                            set: class.set,
                            cardinality: class.cardinality,
                            cost: class.cost,
                            join: Some(crate::table::CandidateJoin {
                                left: join.left,
                                right: join.right,
                                op: join.op,
                                predicates: shard.edge_list(join.predicates),
                            }),
                        });
                    }
                }
            }
        }
        merged
    }
}

/// Read guards on every shard of a [`ShardedDpTable`]: the lock-free-read view of all sealed
/// levels during one level's read phase.
pub struct ShardReader<'a, const W: usize> {
    guards: Vec<RwLockReadGuard<'a, DpTable<W>>>,
}

impl<const W: usize> ShardReader<'_, W> {
    /// The plan class for `set`, if any shard holds it.
    #[inline]
    pub fn get(&self, set: NodeSet<W>) -> Option<&crate::table::PlanClass<W>> {
        self.guards[shard_of(set)].get(set)
    }

    /// Does any shard hold a class for `set`?
    #[inline]
    pub fn contains(&self, set: NodeSet<W>) -> bool {
        self.guards[shard_of(set)].contains(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Candidate, CandidateJoin};
    use qo_plan::JoinOp;

    fn ns(v: &[usize]) -> NodeSet {
        v.iter().copied().collect()
    }

    #[test]
    fn shard_of_uses_low_bits_disjoint_from_slot_probing() {
        // All shards must be reachable, and shard choice must differ from the high-bit slot
        // index for at least some sets (they use opposite ends of the hash).
        let mut seen = [false; SHARD_COUNT];
        for mask in 1u64..=4096 {
            seen[shard_of(NodeSet::<1>::from_mask(mask))] = true;
        }
        assert!(seen.iter().all(|&s| s), "some shard is unreachable");
    }

    #[test]
    fn node_set_set_inserts_contains_and_grows() {
        let mut s = NodeSetSet::<1>::new();
        assert!(s.is_empty());
        assert!(!s.contains(ns(&[0])));
        assert!(!s.contains(NodeSet::EMPTY));
        // Enough members to force several growth steps.
        for mask in 1u64..=500 {
            assert!(s.insert(NodeSet::from_mask(mask)), "fresh insert {mask}");
        }
        assert_eq!(s.len(), 500);
        for mask in 1u64..=500 {
            assert!(s.contains(NodeSet::from_mask(mask)), "member {mask} lost");
            assert!(!s.insert(NodeSet::from_mask(mask)), "duplicate {mask}");
        }
        assert!(!s.contains(NodeSet::from_mask(501)));
        assert_eq!(s.len(), 500);
    }

    #[test]
    fn wide_node_set_set_distinguishes_high_word_members() {
        let mut s = NodeSetSet::<2>::new();
        let low: NodeSet<2> = NodeSet::single(0);
        let high: NodeSet<2> = NodeSet::single(64);
        assert!(s.insert(high));
        assert!(s.contains(high));
        assert!(!s.contains(low), "low/high twins must not collide");
        assert!(s.insert(low));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn sharded_table_round_trips_through_merge() {
        let table = ShardedDpTable::<1>::new();
        for r in 0..8 {
            table.insert_leaf(r, 10.0 * (r + 1) as f64);
        }
        assert_eq!(table.len(), 8);
        {
            let reader = table.read_all();
            assert!(reader.contains(ns(&[3])));
            assert_eq!(reader.get(ns(&[3])).unwrap().cardinality, 40.0);
            assert!(!reader.contains(ns(&[0, 1])));
        }
        // Install a join class through its shard lock, as a cost-pass worker would.
        let pair = ns(&[0, 1]);
        table
            .shard(shard_of(pair))
            .write()
            .unwrap()
            .offer(Candidate {
                set: pair,
                cardinality: 5.0,
                cost: 42.0,
                join: Some(CandidateJoin {
                    left: ns(&[0]),
                    right: ns(&[1]),
                    op: JoinOp::Inner,
                    predicates: &[7],
                }),
            });
        assert_eq!(table.len(), 9);
        let merged = table.into_merged();
        assert_eq!(merged.len(), 9);
        let class = merged.get(pair).expect("merged class");
        assert_eq!(class.cost, 42.0);
        assert_eq!(merged.best_join_predicates(class), &[7]);
        assert_eq!(merged.get(ns(&[5])).unwrap().cardinality, 60.0);
        // The merged table reconstructs plans like any sequential table.
        let plan = merged.reconstruct(pair).expect("plan");
        assert_eq!(plan.join_count(), 1);
    }

    #[test]
    fn shared_budget_abort_and_deadline() {
        let b = SharedBudget::new(None);
        assert!(!b.aborted());
        assert!(!b.poll_deadline(), "no deadline, no abort");
        b.add_pairs(100);
        b.add_pairs(20);
        assert_eq!(b.pairs(), 120);
        b.abort();
        assert!(b.aborted());
        assert!(!b.deadline_exceeded(), "explicit abort is not a timeout");
        assert!(b.poll_deadline(), "polls observe a foreign abort");

        let expired = SharedBudget::new(Some(Instant::now() - std::time::Duration::from_millis(1)));
        assert!(expired.poll_deadline());
        assert!(expired.aborted());
        assert!(expired.deadline_exceeded());

        let distant =
            SharedBudget::new(Some(Instant::now() + std::time::Duration::from_secs(3600)));
        assert!(!distant.poll_deadline());
        assert!(!distant.aborted());
    }
}
