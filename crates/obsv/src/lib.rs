//! Zero-dependency structured tracing and metrics for the optimizer stack.
//!
//! The crate has two halves, both built exclusively on `std`:
//!
//! - [`span`]: a hierarchical span/event API ([`Span::enter`], [`event`]) routed through a
//!   thread-local [`ObsvSink`]. When no sink is installed (the default — the "noop" path) a
//!   span is a `None`-carrying guard: no timestamp is taken, nothing is allocated, and the
//!   whole call compiles down to a thread-local check. [`RecordingSink`] captures closed
//!   spans and events into bounded ring buffers and hands them back as a [`Trace`].
//! - [`metrics`]: typed [`Counter`]s, [`Gauge`]s and log2-bucketed [`Histogram`]s behind a
//!   [`MetricsRegistry`]. The hot path is pure `AtomicU64` arithmetic — no floats, no locks —
//!   and a [`MetricsSnapshot`] renders to the Prometheus text exposition format on demand
//!   (with one `# HELP`/`# TYPE` header per metric family, labeled series included).
//!
//! On top of the span half sits [`sample`]: the always-on tier. A [`SamplingSink`] admits
//! every serve through a two-atomic fast path and installs a per-serve [`RecordingSink`]
//! only for the decided 1-in-N (plus serves following a detected slow one), teeing into any
//! ambient sink. Harvested [`SampledTrace`] exemplars are retained in a deterministic
//! bounded reservoir.
//!
//! The planner phases instrumented across the workspace are, in pipeline order:
//! `parse` → `lower` → `canonicalize` → `seed_bound` → `enumerate` → `cost_pass`
//! (with per-size-level `cost_pass_level_*` events) → `idp` / `greedy` → `recost` →
//! `feedback`. See ARCHITECTURE.md's "Observability" section for the full hierarchy.

pub mod metrics;
pub mod sample;
pub mod span;

pub use metrics::{
    metric_family, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    HISTOGRAM_BUCKETS,
};
pub use sample::{
    ActiveSample, SampleOutcome, SampleTrigger, SampledTrace, SamplerOptions, SamplerStats,
    SamplingSink, ServeTicket, TeeSink,
};
pub use span::{
    current_sink, event, install_sink, with_sink, EventRecord, NoopSink, ObsvSink, RecordingSink,
    SinkGuard, Span, SpanRecord, Trace,
};
